//! Campaign quickstart: README's library example against the real
//! workspace surface.

use c11tester::Config;
use c11tester_campaign::{Campaign, CampaignBudget};

fn main() {
    let report = Campaign::new(Config::new().with_seed(7))
        .with_workers(4)
        .run(&CampaignBudget::executions(200), || {
            c11tester_workloads::ds::rwlock_buggy::run_buggy();
        });
    print!("{report}");
    assert!(report.found_bug());
}
