//! Quickstart: find a relaxed-atomics message-passing bug in under a
//! minute.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The program under test publishes data through a flag with
//! `Ordering::Relaxed` — the classic broken message-passing idiom. Under
//! plain `std` atomics on x86 you will essentially never observe the
//! failure; under the model, C11Tester explores the legal weak
//! behaviors and the race detector flags the unsynchronized data
//! access.

use c11tester::sync::atomic::{AtomicU32, Ordering};
use c11tester::{Config, Model, Shared};
use std::sync::Arc;

fn main() {
    let mut model = Model::new(Config::new().with_seed(42));

    let report = model.check(200, || {
        // All model objects are created inside the execution.
        let data = Arc::new(Shared::named("message.data", 0u64));
        let ready = Arc::new(AtomicU32::named("message.ready", 0));

        let (d, r) = (Arc::clone(&data), Arc::clone(&ready));
        let producer = c11tester::thread::spawn(move || {
            d.set(123456789);
            // BUG: should be Ordering::Release.
            r.store(1, Ordering::Relaxed);
        });

        if ready.load(Ordering::Acquire) == 1 {
            // Races with the producer's write: relaxed publication does
            // not synchronize.
            let _ = data.get();
        }
        producer.join();
    });

    println!("{report}");
    assert!(
        report.executions_with_race > 0,
        "the relaxed-publication race should have been detected"
    );
    println!("Quickstart: the injected relaxed-publication bug was detected.");
}
