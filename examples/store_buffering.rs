//! Exploring weak-memory outcomes: the store-buffering litmus test.
//!
//! ```text
//! cargo run --release --example store_buffering
//! ```
//!
//! Two threads each store to one variable and load the other. Under
//! sequential consistency at least one load sees a store; with relaxed
//! atomics both may read 0 — a behavior real hardware (x86 included!)
//! exhibits. The example prints the outcome histogram under both
//! orderings and shows the `(0, 0)` row appearing only for relaxed.

use c11tester::sync::atomic::{AtomicU32, Ordering};
use c11tester::{Config, Model};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::sync::Mutex as StdMutex;

fn histogram(order: Ordering, runs: u64) -> BTreeMap<(u32, u32), u64> {
    let mut model = Model::new(Config::new().with_seed(7));
    let hist = StdMutex::new(BTreeMap::new());
    for _ in 0..runs {
        model.run(|| {
            let x = Arc::new(AtomicU32::new(0));
            let y = Arc::new(AtomicU32::new(0));
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let t = c11tester::thread::spawn(move || {
                x2.store(1, order);
                y2.load(order)
            });
            y.store(1, order);
            let r2 = x.load(order);
            let r1 = t.join();
            *hist.lock().expect("hist").entry((r1, r2)).or_insert(0) += 1;
        });
    }
    hist.into_inner().expect("hist")
}

fn main() {
    const RUNS: u64 = 300;
    for (label, order) in [("Relaxed", Ordering::Relaxed), ("SeqCst", Ordering::SeqCst)] {
        println!("store buffering with {label} atomics ({RUNS} executions):");
        let hist = histogram(order, RUNS);
        for ((r1, r2), n) in &hist {
            println!("  (r1={r1}, r2={r2}): {n}");
        }
        let weak = hist.get(&(0, 0)).copied().unwrap_or(0);
        match order {
            Ordering::Relaxed => {
                assert!(weak > 0, "relaxed SB must exhibit (0,0)");
                println!("  -> the weak (0,0) outcome appeared {weak} times\n");
            }
            _ => {
                assert_eq!(weak, 0, "seq_cst SB must never exhibit (0,0)");
                println!("  -> the weak (0,0) outcome is impossible under SeqCst\n");
            }
        }
    }
}
