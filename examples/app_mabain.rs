//! Finding a real application bug: the Mabain lost-drain assertion.
//!
//! ```text
//! cargo run --release --example app_mabain
//! ```
//!
//! The paper's Mabain finding (§8.2): the insertion test stops its
//! asynchronous writer without checking that the job queue has drained,
//! so keys can be lost. The model finds both the assertion failure and
//! the seeded statistics-counter data race.

use c11tester::{Config, Model, Policy};
use c11tester_workloads::apps::mabain::{self, MabainConfig};

fn main() {
    const RUNS: u64 = 300;
    let mut model = Model::new(Config::for_policy(Policy::C11Tester).with_seed(0x4ABA));
    let report = model.check(RUNS, || {
        mabain::run(MabainConfig::default());
    });
    println!("Mabain insertion test, {RUNS} executions\n{report}");
    let lost = report
        .failures
        .iter()
        .filter(|(_, f)| matches!(f, c11tester::Failure::Panic(m) if m.contains("lost")))
        .count();
    println!("lost-drain assertion fired in {lost} executions");
    assert!(lost > 0, "the lost-drain bug should fire");
    assert!(
        report.executions_with_race > 0,
        "the stats counter race should fire"
    );
}
