//! Stress-testing a lock-free MPMC queue and reading the tool's
//! statistics output.
//!
//! ```text
//! cargo run --release --example mpmc_stress
//! ```
//!
//! Runs the Table-2 mpmc-queue benchmark (which carries a seeded
//! relaxed-publication bug) repeatedly, printing the detection rate,
//! the distinct race reports, and the per-execution operation counts
//! the paper's Table 3 is built from.

use c11tester::{Config, Model, Policy};
use c11tester_workloads::ds::mpmc_queue;

fn main() {
    const RUNS: u64 = 300;
    let mut model = Model::new(Config::for_policy(Policy::C11Tester).with_seed(0xFEED));
    let report = model.check(RUNS, mpmc_queue::run);

    println!("mpmc-queue, {RUNS} executions under C11Tester\n{report}");
    println!(
        "operation totals: {} atomic ops, {} normal accesses, {} rejected rf-candidates",
        report.total_stats.atomic_ops(),
        report.total_stats.normal_accesses,
        report.total_stats.candidates_rejected,
    );
    assert!(
        report.executions_with_race > 0,
        "the seeded relaxed publication should race"
    );
}
