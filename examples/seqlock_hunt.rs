//! Hunting the §8.1 seqlock bug with all three tools.
//!
//! ```text
//! cargo run --release --example seqlock_hunt
//! ```
//!
//! Reproduces the paper's headline result in miniature: the seqlock
//! with relaxed counter increments tears, C11Tester's memory-model
//! fragment can produce (and therefore detect) the torn read, and the
//! tsan11-family fragments cannot.

use c11tester::{Config, Model, Policy};
use c11tester_workloads::ds::seqlock;

fn main() {
    const RUNS: u64 = 500;
    println!("seqlock with relaxed counter increments, {RUNS} executions per tool\n");
    for policy in [Policy::C11Tester, Policy::Tsan11Rec, Policy::Tsan11] {
        let mut model = Model::new(Config::for_policy(policy).with_seed(0x5E41));
        let report = model.check(RUNS, seqlock::run_buggy);
        println!(
            "{:<10}: torn reads detected in {:>5.1}% of executions",
            policy.name(),
            100.0 * report.bug_detection_rate()
        );
        if let Some((ix, failure)) = report.failures.first() {
            println!("            first at execution #{ix}: {failure}");
        }
    }
    println!("\ncontrol: the corrected seqlock under C11Tester");
    let mut model = Model::new(Config::for_policy(Policy::C11Tester).with_seed(0x5E42));
    let report = model.check(200, seqlock::run_fixed);
    println!(
        "C11Tester : torn reads detected in {:>5.1}% of executions",
        100.0 * report.bug_detection_rate()
    );
    assert_eq!(report.executions_with_bug, 0);
}
