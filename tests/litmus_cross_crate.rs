//! Workspace-level integration tests: drive the public `c11tester` API
//! against the workloads crate and cross-check behaviors that span
//! crates (policies × workloads × reports).

use c11tester::{Config, Model, Policy, PruneConfig};
use c11tester_workloads::{ds, DsBench};

/// Every Table-2 benchmark runs to completion (possibly with races)
/// under every policy — no deadlocks, no engine panics.
#[test]
fn ds_suite_runs_under_every_policy() {
    for policy in Policy::all() {
        for bench in DsBench::all() {
            let mut model = Model::new(Config::for_policy(policy).with_seed(9));
            for _ in 0..3 {
                let report = model.run(|| bench.run());
                assert!(
                    !matches!(report.failure, Some(c11tester::Failure::Deadlock)),
                    "{policy}/{}: deadlock: {report}",
                    bench.name()
                );
                assert!(
                    !matches!(report.failure, Some(c11tester::Failure::TooManyEvents(_))),
                    "{policy}/{}: runaway: {report}",
                    bench.name()
                );
            }
        }
    }
}

/// Pruning modes don't change which bugs the §8.1 benchmarks expose.
#[test]
fn pruning_preserves_bug_detection() {
    let run = |prune: PruneConfig| {
        let mut model = Model::new(
            Config::for_policy(Policy::C11Tester)
                .with_seed(10)
                .with_prune(prune),
        );
        let report = model.check(150, ds::seqlock::run_buggy);
        report.executions_with_bug > 0
    };
    assert!(run(PruneConfig::disabled()));
    assert!(run(PruneConfig::conservative(128)));
}

/// The detection-rate ordering of Table 2 holds in aggregate: the full
/// fragment detects at least as often as the restricted ones on the
/// RMW-dependent benchmarks.
#[test]
fn detection_rates_order_by_fragment() {
    let rate = |policy: Policy, bench: DsBench| {
        let mut model = Model::new(Config::for_policy(policy).with_seed(11));
        let report = model.check(100, || bench.run());
        report.race_detection_rate()
    };
    for bench in [DsBench::ChaseLevDeque, DsBench::McsLock] {
        let full = rate(Policy::C11Tester, bench);
        let restricted = rate(Policy::Tsan11Rec, bench);
        assert!(
            full >= restricted,
            "{}: C11Tester rate {full} < tsan11rec rate {restricted}",
            bench.name()
        );
    }
}

/// Distinct race labels accumulate across executions without
/// duplicates (the §7.6 report-once behavior at the model level).
#[test]
fn distinct_races_are_deduplicated_across_runs() {
    let mut model = Model::new(Config::for_policy(Policy::C11Tester).with_seed(12));
    let report = model.check(60, || DsBench::MsQueue.run());
    let mut labels: Vec<(String, c11tester::RaceKind)> = report
        .distinct_races()
        .iter()
        .map(|r| (r.label.clone(), r.kind))
        .collect();
    let before = labels.len();
    labels.sort();
    labels.dedup();
    assert_eq!(before, labels.len(), "duplicate distinct races reported");
    assert!(before >= 1);
}

/// Statistics accumulate sensibly across the suite.
#[test]
fn stats_accumulate_over_check() {
    let mut model = Model::new(Config::for_policy(Policy::C11Tester).with_seed(13));
    let one = model.run(|| DsBench::MpmcQueue.run()).stats;
    let mut model = Model::new(Config::for_policy(Policy::C11Tester).with_seed(13));
    let many = model.check(5, || DsBench::MpmcQueue.run()).total_stats;
    assert!(many.atomic_ops() >= one.atomic_ops());
    assert!(many.rmws >= one.rmws);
}
