//! # c11tester-rs
//!
//! Umbrella crate for the **c11tester-rs** workspace — a Rust
//! reproduction of *C11Tester: A Race Detector for C/C++ Atomics*
//! (Luo & Demsky, ASPLOS 2021).
//!
//! The workspace is layered:
//!
//! * [`core`] (`c11tester-core`) — the constraint-based C/C++11
//!   memory-model engine (mo-graph, clock vectors, prior sets);
//! * [`runtime`] (`c11tester-runtime`) — run-token handover and
//!   pluggable testing strategies;
//! * [`race`] (`c11tester-race`) — FastTrack-style race detection with
//!   a mergeable cross-execution dedup history;
//! * [`model`] (`c11tester`) — the user-facing `std`-shaped API and
//!   the per-execution [`model::Model`] driver;
//! * [`campaign`] (`c11tester-campaign`) — parallel exploration
//!   campaigns that shard thousands of executions across worker
//!   threads with deterministic per-execution seeds;
//! * [`adaptive`] (`c11tester-adaptive`) — adaptive epoch-driven
//!   campaigns: deterministic bandit controllers (UCB1, EXP3-style)
//!   that reweight the strategy mix between epochs from the live
//!   per-strategy detection columns.
//!
//! This crate re-exports them under one roof and hosts the repository's
//! `examples/` and cross-crate integration tests.

#![warn(missing_docs)]

pub use c11tester as model;
pub use c11tester_adaptive as adaptive;
pub use c11tester_campaign as campaign;
pub use c11tester_core as core;
pub use c11tester_race as race;
pub use c11tester_runtime as runtime;
