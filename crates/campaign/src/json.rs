//! Hand-rolled JSON serialization for [`CampaignReport`].
//!
//! The offline build environment has no access to `serde`, so the
//! campaign report serializes itself: a ~hundred lines of emitter
//! beats carrying a vendored serde fork. Output is deterministic —
//! objects are emitted in fixed field order, arrays in the dedup
//! history's key order — which is what the canonical-form
//! byte-identity contract of [`CampaignReport::canonical_json`] rests
//! on.

use crate::CampaignReport;
use c11tester::{AccessKind, Failure};
use c11tester_core::ExecStats;

/// Escapes a string per RFC 8259.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn access_kind(kind: AccessKind) -> &'static str {
    match kind {
        AccessKind::NonAtomic => "non-atomic",
        AccessKind::Atomic => "atomic",
        AccessKind::Volatile => "volatile",
    }
}

fn failure(f: &Failure) -> (&'static str, String) {
    match f {
        Failure::Deadlock => ("deadlock", "all live threads blocked".to_string()),
        Failure::Panic(msg) => ("panic", msg.clone()),
        Failure::TooManyEvents(n) => ("too-many-events", format!("{n} events")),
    }
}

fn stats(s: &ExecStats) -> String {
    format!(
        concat!(
            "{{\"atomic_loads\":{},\"atomic_stores\":{},\"rmws\":{},",
            "\"fences\":{},\"sync_ops\":{},\"normal_accesses\":{},",
            "\"volatile_accesses\":{},\"candidates_rejected\":{},",
            "\"pruned_stores\":{},\"pruned_loads\":{},\"pruned_fences\":{},",
            "\"prune_passes\":{},\"atomic_ops\":{},",
            "\"mograph\":{{\"edges_added\":{},\"edges_redundant\":{},",
            "\"merges\":{},\"rmw_edges\":{}}}}}"
        ),
        s.atomic_loads,
        s.atomic_stores,
        s.rmws,
        s.fences,
        s.sync_ops,
        s.normal_accesses,
        s.volatile_accesses,
        s.candidates_rejected,
        s.pruned_stores,
        s.pruned_loads,
        s.pruned_fences,
        s.prune_passes,
        s.atomic_ops(),
        s.mograph.edges_added,
        s.mograph.edges_redundant,
        s.mograph.merges,
        s.mograph.rmw_edges,
    )
}

/// The canonical (worker-count independent) object.
///
/// Schema `c11campaign/v2` adds the `per_strategy` column array (one
/// row per strategy spec that drove at least one execution, sorted by
/// spec) on top of v1's aggregate; `strategy` became the canonical
/// spec / mix label instead of a Debug rendering.
pub(crate) fn canonical(r: &CampaignReport) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"schema\":\"c11campaign/v2\"");
    out.push_str(&format!(",\"base_seed\":{}", r.base_seed));
    out.push_str(&format!(",\"policy\":\"{}\"", esc(r.policy)));
    out.push_str(&format!(",\"strategy\":\"{}\"", esc(&r.strategy)));
    out.push_str(&format!(
        ",\"budget\":{{\"max_executions\":{},\"deadline_secs\":{},\"stop_on_first_bug\":{}}}",
        r.budget.max_executions,
        r.budget
            .deadline
            .map(|d| d.as_secs_f64().to_string())
            .unwrap_or_else(|| "null".to_string()),
        r.budget.stop_on_first_bug,
    ));
    out.push_str(&format!(",\"stop_reason\":\"{}\"", r.stop_reason.name()));
    let a = &r.aggregate;
    out.push_str(&format!(",\"executions\":{}", a.executions));
    out.push_str(&format!(
        ",\"executions_with_race\":{}",
        a.executions_with_race
    ));
    out.push_str(&format!(
        ",\"executions_with_bug\":{}",
        a.executions_with_bug
    ));
    out.push_str(&format!(
        ",\"race_detection_rate\":{}",
        a.race_detection_rate()
    ));
    out.push_str(&format!(
        ",\"bug_detection_rate\":{}",
        a.bug_detection_rate()
    ));
    out.push_str(",\"per_strategy\":[");
    for (i, (name, b)) in a.per_strategy.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            concat!(
                "{{\"strategy\":\"{}\",\"executions\":{},",
                "\"executions_with_race\":{},\"executions_with_bug\":{},",
                "\"race_detection_rate\":{},\"bug_detection_rate\":{},",
                "\"distinct_races\":{}}}"
            ),
            esc(name),
            b.executions,
            b.executions_with_race,
            b.executions_with_bug,
            b.race_detection_rate(),
            b.bug_detection_rate(),
            b.races.len(),
        ));
    }
    out.push(']');
    out.push_str(",\"distinct_races\":[");
    for (i, (_, entry)) in a.races.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let rep = &entry.report;
        out.push_str(&format!(
            concat!(
                "{{\"label\":\"{}\",\"kind\":\"{}\",\"obj\":{},\"offset\":{},",
                "\"current_tid\":{},\"current_kind\":\"{}\",\"prior_tid\":{},",
                "\"prior_atomic\":{},\"first_execution\":{},\"occurrences\":{}}}"
            ),
            esc(&rep.label),
            rep.kind,
            rep.obj.0,
            rep.offset,
            rep.current_tid.index(),
            access_kind(rep.current_kind),
            rep.prior_tid.index(),
            rep.prior_atomic,
            entry.first_execution,
            entry.occurrences,
        ));
    }
    out.push(']');
    out.push_str(",\"failures\":[");
    for (i, (ix, f)) in a.failures.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (kind, msg) = failure(f);
        out.push_str(&format!(
            "{{\"execution\":{ix},\"kind\":\"{kind}\",\"message\":\"{}\"}}",
            esc(&msg)
        ));
    }
    out.push(']');
    out.push_str(&format!(
        ",\"elided_volatile_races\":{}",
        a.elided_volatile_races
    ));
    out.push_str(&format!(",\"stats\":{}", stats(&a.total_stats)));
    out.push('}');
    out
}

/// The full object: canonical plus timing.
pub(crate) fn full(r: &CampaignReport) -> String {
    format!(
        "{{\"campaign\":{},\"timing\":{{\"workers\":{},\"wall_secs\":{},\"executions_per_second\":{}}}}}",
        canonical(r),
        r.workers,
        r.wall_time.as_secs_f64(),
        r.throughput(),
    )
}

#[cfg(test)]
mod tests {
    use crate::{Campaign, CampaignBudget};
    use c11tester::Config;

    #[test]
    fn json_is_well_formed_and_canonical_excludes_timing() {
        let report = Campaign::new(Config::new().with_seed(9))
            .with_workers(2)
            .run(&CampaignBudget::executions(20), || {
                c11tester_workloads::ds::rwlock_buggy::run_buggy();
            });
        let canonical = report.canonical_json();
        let full = report.to_json();
        // Structure smoke checks (no JSON parser in the offline env).
        assert!(canonical.starts_with('{') && canonical.ends_with('}'));
        assert!(canonical.contains("\"schema\":\"c11campaign/v2\""));
        assert!(canonical.contains("\"executions\":20"));
        assert!(canonical.contains("\"per_strategy\":[{\"strategy\":\"random\""));
        assert!(canonical.contains("\"distinct_races\":["));
        assert!(!canonical.contains("wall_secs"));
        assert!(full.contains("\"campaign\":{"));
        assert!(full.contains("\"workers\":2"));
        assert!(full.contains("wall_secs"));
        // Balanced braces/brackets outside strings (labels here contain
        // neither, so a raw count suffices).
        let opens = canonical.matches('{').count();
        let closes = canonical.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn escaping_handles_quotes_and_control_chars() {
        assert_eq!(super::esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(super::esc("\u{1}"), "\\u0001");
    }
}
