//! Hand-rolled JSON serialization for [`CampaignReport`].
//!
//! The offline build environment has no access to `serde`, so the
//! campaign report serializes itself: a ~hundred lines of emitter
//! beats carrying a vendored serde fork. Output is deterministic —
//! objects are emitted in fixed field order, arrays in the dedup
//! history's key order — which is what the canonical-form
//! byte-identity contract of [`CampaignReport::canonical_json`] rests
//! on.

use crate::epoch::EpochTrace;
use crate::exec::CrashRecord;
use crate::wire::{access_kind_name, esc, race_kind_name};
use crate::{CampaignBudget, CampaignReport};
use c11tester::{CoverageMap, DedupHistory, Failure, StrategyLedger, TestReport};
use c11tester_core::ExecStats;

fn failure(f: &Failure) -> (&'static str, String) {
    let msg = match f {
        Failure::Deadlock => "all live threads blocked".to_string(),
        Failure::Panic(msg) => msg.clone(),
        Failure::TooManyEvents(n) => format!("{n} events"),
        Failure::Infra(msg) => msg.clone(),
    };
    (f.kind_name(), msg)
}

/// Emits the stats object; `alloc` appends the allocation-diagnostic
/// block (recycled/fresh provisioning, clock spills). The block is
/// **off by default and never part of the canonical form**: recycled
/// counts depend on worker count and on recycled-vs-fresh provisioning,
/// so including them would break the byte-identity contract (and every
/// checked-in golden). `c11campaign --alloc-stats` opts in explicitly.
fn stats_with(s: &ExecStats, alloc: bool) -> String {
    let alloc_block = if alloc {
        format!(
            ",\"alloc\":{{\"fresh_executions\":{},\"recycled_executions\":{},\"clock_spills\":{}}}",
            s.alloc.fresh_executions, s.alloc.recycled_executions, s.alloc.clock_spills,
        )
    } else {
        String::new()
    };
    format!(
        concat!(
            "{{\"atomic_loads\":{},\"atomic_stores\":{},\"rmws\":{},",
            "\"fences\":{},\"sync_ops\":{},\"normal_accesses\":{},",
            "\"volatile_accesses\":{},\"candidates_rejected\":{},",
            "\"pruned_stores\":{},\"pruned_loads\":{},\"pruned_fences\":{},",
            "\"prune_passes\":{},\"atomic_ops\":{},",
            "\"mograph\":{{\"edges_added\":{},\"edges_redundant\":{},",
            "\"merges\":{},\"rmw_edges\":{}}}{}}}"
        ),
        s.atomic_loads,
        s.atomic_stores,
        s.rmws,
        s.fences,
        s.sync_ops,
        s.normal_accesses,
        s.volatile_accesses,
        s.candidates_rejected,
        s.pruned_stores,
        s.pruned_loads,
        s.pruned_fences,
        s.prune_passes,
        s.atomic_ops(),
        s.mograph.edges_added,
        s.mograph.edges_redundant,
        s.mograph.merges,
        s.mograph.rmw_edges,
        alloc_block,
    )
}

/// Emits `,"budget":{…}`.
fn push_budget(out: &mut String, budget: &CampaignBudget) {
    out.push_str(&format!(
        ",\"budget\":{{\"max_executions\":{},\"deadline_secs\":{},\"stop_on_first_bug\":{}}}",
        budget.max_executions,
        budget
            .deadline
            .map(|d| d.as_secs_f64().to_string())
            .unwrap_or_else(|| "null".to_string()),
        budget.stop_on_first_bug,
    ));
}

/// Emits the aggregate's scalar detection block:
/// `,"executions":…,…,"bug_detection_rate":…,"crashes":…`.
fn push_detection_scalars(out: &mut String, a: &TestReport, crashes: usize) {
    out.push_str(&format!(",\"executions\":{}", a.executions));
    out.push_str(&format!(
        ",\"executions_with_race\":{}",
        a.executions_with_race
    ));
    out.push_str(&format!(
        ",\"executions_with_bug\":{}",
        a.executions_with_bug
    ));
    out.push_str(&format!(
        ",\"race_detection_rate\":{}",
        a.race_detection_rate()
    ));
    out.push_str(&format!(
        ",\"bug_detection_rate\":{}",
        a.bug_detection_rate()
    ));
    out.push_str(&format!(",\"crashes\":{crashes}"));
}

/// Emits `,"crash_records":[…]` — one row per execution that killed
/// its worker process (v4).
fn push_crash_records(out: &mut String, crashes: &[CrashRecord]) {
    out.push_str(",\"crash_records\":[");
    for (i, c) in crashes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"execution\":{},\"strategy\":\"{}\",\"kind\":\"{}\",\"code\":{}}}",
            c.index,
            esc(&c.strategy),
            c.kind.name(),
            c.kind
                .code()
                .map(|n| n.to_string())
                .unwrap_or_else(|| "null".to_string()),
        ));
    }
    out.push(']');
}

/// Emits `,"per_strategy":[…]` — one column row per strategy spec.
fn push_per_strategy(out: &mut String, ledger: &StrategyLedger) {
    out.push_str(",\"per_strategy\":[");
    for (i, (name, b)) in ledger.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            concat!(
                "{{\"strategy\":\"{}\",\"executions\":{},",
                "\"executions_with_race\":{},\"executions_with_bug\":{},",
                "\"race_detection_rate\":{},\"bug_detection_rate\":{},",
                "\"distinct_races\":{}}}"
            ),
            esc(name),
            b.executions,
            b.executions_with_race,
            b.executions_with_bug,
            b.race_detection_rate(),
            b.bug_detection_rate(),
            b.races.len(),
        ));
    }
    out.push(']');
}

/// Emits `,"distinct_races":[…]`.
fn push_distinct_races(out: &mut String, races: &DedupHistory) {
    out.push_str(",\"distinct_races\":[");
    for (i, (_, entry)) in races.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let rep = &entry.report;
        out.push_str(&format!(
            concat!(
                "{{\"label\":\"{}\",\"kind\":\"{}\",\"obj\":{},\"offset\":{},",
                "\"current_tid\":{},\"current_kind\":\"{}\",\"prior_tid\":{},",
                "\"prior_atomic\":{},\"first_execution\":{},\"occurrences\":{}}}"
            ),
            esc(&rep.label),
            race_kind_name(rep.kind),
            rep.obj.0,
            rep.offset,
            rep.current_tid.index(),
            access_kind_name(rep.current_kind),
            rep.prior_tid.index(),
            rep.prior_atomic,
            entry.first_execution,
            entry.occurrences,
        ));
    }
    out.push(']');
}

/// Emits `,"failures":[…]`.
fn push_failures(out: &mut String, failures: &[(u64, Failure)]) {
    out.push_str(",\"failures\":[");
    for (i, (ix, f)) in failures.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (kind, msg) = failure(f);
        out.push_str(&format!(
            "{{\"execution\":{ix},\"kind\":\"{kind}\",\"message\":\"{}\"}}",
            esc(&msg)
        ));
    }
    out.push(']');
}

/// Emits the shared aggregate tail: races, failures, elisions, stats.
fn push_aggregate_tail(out: &mut String, a: &TestReport, alloc: bool) {
    push_distinct_races(out, &a.races);
    push_failures(out, &a.failures);
    out.push_str(&format!(
        ",\"elided_volatile_races\":{}",
        a.elided_volatile_races
    ));
    out.push_str(&format!(",\"stats\":{}", stats_with(&a.total_stats, alloc)));
}

fn json_opt_u64(v: Option<u64>) -> String {
    v.map(|n| n.to_string())
        .unwrap_or_else(|| "null".to_string())
}

/// The canonical (worker-count independent) object.
///
/// Schema history: `c11campaign/v2` added the `per_strategy` column
/// array (one row per strategy spec that drove at least one execution,
/// sorted by spec) on top of v1's aggregate, and made `strategy` the
/// canonical spec / mix label instead of a Debug rendering.
/// `c11campaign/v4` adds the `crashes` scalar and the `crash_records`
/// array (fork-isolated campaigns record a worker-process death per
/// crashing execution; in-process campaigns always emit `0` / `[]`).
pub(crate) fn canonical(r: &CampaignReport) -> String {
    canonical_with(r, false)
}

/// [`canonical`] with an opt-in allocation-diagnostics block inside
/// `stats` (`c11campaign --alloc-stats`). Never the default: the block
/// is worker-count and provisioning dependent by design, so it is kept
/// out of the byte-identity contract and the checked-in goldens.
pub(crate) fn canonical_with(r: &CampaignReport, alloc: bool) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"schema\":\"c11campaign/v4\"");
    out.push_str(&format!(",\"base_seed\":{}", r.base_seed));
    out.push_str(&format!(",\"policy\":\"{}\"", esc(r.policy)));
    out.push_str(&format!(",\"strategy\":\"{}\"", esc(&r.strategy)));
    push_budget(&mut out, &r.budget);
    out.push_str(&format!(",\"stop_reason\":\"{}\"", r.stop_reason.name()));
    let a = &r.aggregate;
    push_detection_scalars(&mut out, a, r.crashes.len());
    push_per_strategy(&mut out, &a.per_strategy);
    push_crash_records(&mut out, &r.crashes);
    push_aggregate_tail(&mut out, a, alloc);
    out.push('}');
    out
}

/// The canonical epoch-trace object for adaptive campaigns.
///
/// Schema `c11campaign/v3` kept every v2 aggregate field (same names,
/// same order — a v2 reader sees a superset) and added:
///
/// * an `adaptive` header (`policy`, `epoch_len`, `initial_mix`,
///   `epochs`);
/// * a top-level `first_bug_execution` (the executions-to-first-bug
///   metric, `null` when no bug was found);
/// * an `epochs` array — per epoch: the mix that drove it, its
///   detection scalars, its per-strategy columns, and the running
///   `cumulative` totals after the epoch.
///
/// `c11campaign/v4` adds crash accounting exactly as in the plain
/// report: a `crashes` scalar per epoch row and at the top level, plus
/// the top-level `crash_records` array (the epochs' records
/// concatenated in index order).
pub(crate) fn canonical_trace(t: &EpochTrace) -> String {
    canonical_trace_with(t, false)
}

/// [`canonical_trace`] with the opt-in allocation-diagnostics block
/// (see [`canonical_with`]).
pub(crate) fn canonical_trace_with(t: &EpochTrace, alloc: bool) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"schema\":\"c11campaign/v4\"");
    out.push_str(&format!(",\"base_seed\":{}", t.base_seed));
    out.push_str(&format!(",\"policy\":\"{}\"", esc(t.policy)));
    out.push_str(&format!(",\"strategy\":\"{}\"", esc(&t.initial_mix)));
    out.push_str(&format!(
        ",\"adaptive\":{{\"policy\":\"{}\",\"epoch_len\":{},\"initial_mix\":\"{}\",\"epochs\":{}}}",
        esc(&t.adaptive_policy),
        t.epoch_len,
        esc(&t.initial_mix),
        t.records.len(),
    ));
    push_budget(&mut out, &t.budget);
    out.push_str(&format!(",\"stop_reason\":\"{}\"", t.stop_reason.name()));
    let all_crashes = t.crash_records();
    push_detection_scalars(&mut out, &t.aggregate, all_crashes.len());
    out.push_str(&format!(
        ",\"first_bug_execution\":{}",
        json_opt_u64(t.aggregate.first_bug_execution())
    ));
    out.push_str(",\"epochs\":[");
    let mut cumulative = TestReport::default();
    for (i, rec) in t.records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        cumulative.merge(&rec.aggregate);
        out.push_str(&format!(
            "{{\"epoch\":{},\"start_index\":{},\"mix\":\"{}\"",
            rec.epoch,
            rec.start_index,
            esc(&rec.mix)
        ));
        push_detection_scalars(&mut out, &rec.aggregate, rec.crashes.len());
        push_per_strategy(&mut out, &rec.aggregate.per_strategy);
        out.push_str(&format!(
            concat!(
                ",\"cumulative\":{{\"executions\":{},\"executions_with_race\":{},",
                "\"executions_with_bug\":{},\"distinct_races\":{},",
                "\"first_bug_execution\":{}}}"
            ),
            cumulative.executions,
            cumulative.executions_with_race,
            cumulative.executions_with_bug,
            cumulative.races.len(),
            json_opt_u64(cumulative.first_bug_execution()),
        ));
        out.push('}');
    }
    out.push(']');
    push_per_strategy(&mut out, &t.aggregate.per_strategy);
    push_crash_records(&mut out, &all_crashes);
    push_aggregate_tail(&mut out, &t.aggregate, alloc);
    out.push('}');
    out
}

/// Emits `"distinct":{…}`-shaped behavior counts for `map`.
fn distinct_counts(map: &CoverageMap) -> String {
    format!(
        concat!(
            "{{\"rf_edges\":{},\"mo_edges\":{},\"races\":{},",
            "\"interleavings\":{},\"total\":{}}}"
        ),
        map.distinct_rf_edges(),
        map.distinct_mo_edges(),
        map.distinct_races(),
        map.distinct_interleavings(),
        map.distinct_total(),
    )
}

/// Emits the behavior arrays shared by both coverage forms:
/// `,"collected_executions":…,"distinct":{…},"rf_edges":[…],…`.
fn push_coverage_body(out: &mut String, map: &CoverageMap) {
    out.push_str(&format!(
        ",\"collected_executions\":{}",
        map.collected_executions()
    ));
    out.push_str(&format!(",\"distinct\":{}", distinct_counts(map)));
    out.push_str(",\"rf_edges\":[");
    for (i, ((obj, store, load), s)) in map.rf_edges().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            concat!(
                "{{\"obj\":{},\"store_tid\":{},\"load_tid\":{},",
                "\"first_execution\":{},\"occurrences\":{}}}"
            ),
            obj, store, load, s.first_execution, s.occurrences,
        ));
    }
    out.push_str("],\"mo_edges\":[");
    for (i, ((obj, from, to), s)) in map.mo_edges().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            concat!(
                "{{\"obj\":{},\"from_tid\":{},\"to_tid\":{},",
                "\"first_execution\":{},\"occurrences\":{}}}"
            ),
            obj, from, to, s.first_execution, s.occurrences,
        ));
    }
    out.push_str("],\"races\":[");
    for (i, (key, s)) in map.races().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            concat!(
                "{{\"label\":\"{}\",\"kind\":\"{}\",",
                "\"first_execution\":{},\"occurrences\":{}}}"
            ),
            esc(&key.label),
            race_kind_name(key.kind),
            s.first_execution,
            s.occurrences,
        ));
    }
    out.push_str("],\"interleavings\":[");
    for (i, (hash, s)) in map.interleavings().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"hash\":{},\"first_execution\":{},\"occurrences\":{}}}",
            hash, s.first_execution, s.occurrences,
        ));
    }
    out.push(']');
}

/// The `c11coverage/v1` object for a plain (single-mix) campaign.
///
/// Everything inside is determined by `(config, budget)` alone when
/// coverage collection was enabled for the whole run, so — exactly like
/// the canonical campaign form — the emitted JSON is byte-identical
/// across worker counts and across in-process vs fork-isolated
/// backends. A plain campaign has no epoch structure; its `epochs`
/// growth-curve array is empty.
pub(crate) fn coverage(r: &CampaignReport) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"schema\":\"c11coverage/v1\"");
    out.push_str(&format!(",\"base_seed\":{}", r.base_seed));
    out.push_str(&format!(",\"policy\":\"{}\"", esc(r.policy)));
    out.push_str(&format!(",\"strategy\":\"{}\"", esc(&r.strategy)));
    push_coverage_body(&mut out, &r.aggregate.coverage);
    out.push_str(",\"epochs\":[]}");
    out
}

/// The `c11coverage/v1` object for an adaptive campaign: the overall
/// behavior arrays plus a per-epoch growth curve (`new_behaviors` =
/// behaviors first exhibited in that epoch, and the cumulative distinct
/// counts after it).
pub(crate) fn coverage_trace(t: &EpochTrace) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str("{\"schema\":\"c11coverage/v1\"");
    out.push_str(&format!(",\"base_seed\":{}", t.base_seed));
    out.push_str(&format!(",\"policy\":\"{}\"", esc(t.policy)));
    out.push_str(&format!(",\"strategy\":\"{}\"", esc(&t.initial_mix)));
    push_coverage_body(&mut out, &t.aggregate.coverage);
    out.push_str(",\"epochs\":[");
    let mut cumulative = CoverageMap::new();
    for (i, rec) in t.records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let new_behaviors = rec.aggregate.coverage.count_new(&cumulative);
        cumulative.merge(&rec.aggregate.coverage);
        out.push_str(&format!(
            concat!(
                "{{\"epoch\":{},\"start_index\":{},\"mix\":\"{}\",",
                "\"executions\":{},\"new_behaviors\":{},\"cumulative\":{}}}"
            ),
            rec.epoch,
            rec.start_index,
            esc(&rec.mix),
            rec.aggregate.executions,
            new_behaviors,
            distinct_counts(&cumulative),
        ));
    }
    out.push_str("]}");
    out
}

/// The full object: canonical plus timing.
pub(crate) fn full(r: &CampaignReport) -> String {
    format!(
        "{{\"campaign\":{},\"timing\":{{\"workers\":{},\"wall_secs\":{},\"executions_per_second\":{}}}}}",
        canonical(r),
        r.workers,
        r.wall_time.as_secs_f64(),
        r.throughput(),
    )
}

#[cfg(test)]
mod tests {
    use crate::{Campaign, CampaignBudget};
    use c11tester::Config;

    #[test]
    fn json_is_well_formed_and_canonical_excludes_timing() {
        let report = Campaign::new(Config::new().with_seed(9))
            .with_workers(2)
            .run(&CampaignBudget::executions(20), || {
                c11tester_workloads::ds::rwlock_buggy::run_buggy();
            });
        let canonical = report.canonical_json();
        let full = report.to_json();
        // Structure smoke checks (no JSON parser in the offline env).
        assert!(canonical.starts_with('{') && canonical.ends_with('}'));
        assert!(canonical.contains("\"schema\":\"c11campaign/v4\""));
        assert!(canonical.contains("\"executions\":20"));
        assert!(canonical.contains("\"per_strategy\":[{\"strategy\":\"random\""));
        assert!(canonical.contains("\"crashes\":0"));
        assert!(canonical.contains("\"crash_records\":[]"));
        assert!(canonical.contains("\"distinct_races\":["));
        assert!(!canonical.contains("wall_secs"));
        assert!(full.contains("\"campaign\":{"));
        assert!(full.contains("\"workers\":2"));
        assert!(full.contains("wall_secs"));
        // Balanced braces/brackets outside strings (labels here contain
        // neither, so a raw count suffices).
        let opens = canonical.matches('{').count();
        let closes = canonical.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn v3_trace_json_carries_adaptive_header_epochs_and_cumulatives() {
        use crate::{EpochRecord, EpochTrace, StopReason};
        use c11tester::StrategyMix;
        let mix = StrategyMix::parse("random:1,pct2:1").expect("valid mix");
        let config = Config::new().with_seed(9).with_mix(mix);
        let campaign = crate::Campaign::new(config).with_workers(2);
        let racy = || c11tester_workloads::ds::rwlock_buggy::run_buggy();
        let e0 = campaign.run_range(0, &CampaignBudget::executions(10), racy);
        let e1 = campaign.run_range(10, &CampaignBudget::executions(10), racy);
        let mut aggregate = e0.aggregate.clone();
        aggregate.merge(&e1.aggregate);
        let trace = EpochTrace {
            base_seed: 9,
            policy: "C11Tester",
            adaptive_policy: "ucb1".to_string(),
            epoch_len: 10,
            initial_mix: "random:1,pct2:1".to_string(),
            budget: CampaignBudget::executions(20),
            stop_reason: StopReason::BudgetExhausted,
            records: vec![
                EpochRecord {
                    epoch: 0,
                    start_index: 0,
                    mix: "random:1,pct2:1".to_string(),
                    aggregate: e0.aggregate,
                    crashes: Vec::new(),
                },
                EpochRecord {
                    epoch: 1,
                    start_index: 10,
                    mix: "random:1,pct2:3".to_string(),
                    aggregate: e1.aggregate,
                    crashes: vec![crate::CrashRecord {
                        index: 13,
                        strategy: "pct2".to_string(),
                        kind: crate::CrashKind::Signal(11),
                    }],
                },
            ],
            aggregate,
        };
        let json = trace.canonical_json();
        assert!(json.starts_with("{\"schema\":\"c11campaign/v4\""));
        assert!(json.contains(
            "\"crash_records\":[{\"execution\":13,\"strategy\":\"pct2\",\
             \"kind\":\"signal\",\"code\":11}]"
        ));
        assert!(json.contains("\"crashes\":1"));
        assert!(json.contains(
            "\"adaptive\":{\"policy\":\"ucb1\",\"epoch_len\":10,\
             \"initial_mix\":\"random:1,pct2:1\",\"epochs\":2}"
        ));
        assert!(json.contains("\"epochs\":[{\"epoch\":0,\"start_index\":0,\"mix\":"));
        assert!(json.contains("\"mix\":\"random:1,pct2:3\""));
        assert!(json.contains("\"cumulative\":{\"executions\":10,"));
        assert!(json.contains("\"cumulative\":{\"executions\":20,"));
        assert!(json.contains("\"first_bug_execution\":"));
        assert!(json.contains("\"executions\":20"));
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }
}
