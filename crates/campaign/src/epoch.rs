//! Epoch-granular campaign traces.
//!
//! An adaptive campaign splits its execution budget into fixed-size
//! **epochs**: each epoch runs as an ordinary sharded campaign over a
//! contiguous range of the global execution-index stream
//! ([`crate::Campaign::run_range`]) under that epoch's
//! [`c11tester::StrategyMix`], and a controller reweights the mix
//! between epochs from the per-strategy detection columns. The
//! [`EpochTrace`] is the closed-loop run's canonical record: one
//! [`EpochRecord`] per epoch (mix, per-strategy columns, aggregate)
//! plus the overall aggregate, serialized as `c11campaign/v3`
//! canonical JSON.
//!
//! Determinism: every epoch keeps the campaign's **base seed** and
//! walks **global** execution indices, so execution `start_index + i`
//! of epoch `e` is reproducible by `(seed, epoch-mix, index)` alone —
//! parse [`EpochRecord::mix`], set it on the base config, and
//! [`c11tester::Model::run_at`] the global index. Because fixed-budget
//! range campaigns aggregate byte-identically for any worker count and
//! reweighting is a pure function of completed-epoch aggregates, the
//! whole trace (and its canonical JSON) is byte-identical across
//! worker counts.

use crate::exec::CrashRecord;
use crate::json;
use crate::{CampaignBudget, StopReason};
use c11tester::TestReport;

/// One completed epoch of an adaptive campaign.
#[derive(Clone, Debug)]
pub struct EpochRecord {
    /// 0-based epoch number.
    pub epoch: u64,
    /// First global execution index of the epoch (`epoch · epoch_len`).
    pub start_index: u64,
    /// Canonical spec of the mix that drove this epoch
    /// ([`c11tester::StrategyMix::spec`]) — parse it to replay any of
    /// the epoch's executions by global index.
    pub mix: String,
    /// The epoch's aggregate (including its per-strategy ledger),
    /// identical to a serial run of the same index range.
    pub aggregate: TestReport,
    /// Executions of this epoch that killed their worker process,
    /// sorted by index. Always empty for in-process epochs.
    pub crashes: Vec<CrashRecord>,
}

impl EpochRecord {
    /// Number of executions this epoch completed.
    pub fn executions(&self) -> u64 {
        self.aggregate.executions
    }

    /// `start_index` plus the number of executions the epoch
    /// *completed*. For a fixed-budget epoch this is one past its last
    /// global index; an early-stopped epoch (first bug, deadline)
    /// completes a strided subset across workers, so a flagged index
    /// may lie at or beyond this bound — use the trace's nominal
    /// `epoch_len` for the full index range.
    pub fn end_index(&self) -> u64 {
        self.start_index + self.aggregate.executions
    }
}

/// The canonical record of one adaptive (epoch-driven) campaign run.
#[derive(Clone, Debug)]
pub struct EpochTrace {
    /// Base seed shared by every epoch (epochs vary the *mix*, never
    /// the seed, so global indices stay replayable).
    pub base_seed: u64,
    /// Memory-model policy name.
    pub policy: &'static str,
    /// Canonical spec of the reweighting policy (`fixed`, `ucb1[@c]`,
    /// `exp3[@eta]`, …).
    pub adaptive_policy: String,
    /// Nominal epoch length in executions (the final epoch may be
    /// shorter when the budget is not a multiple).
    pub epoch_len: u64,
    /// Canonical spec of the initial mix (epoch 0's mix).
    pub initial_mix: String,
    /// The overall budget the adaptive campaign ran under.
    pub budget: CampaignBudget,
    /// Why the campaign stopped.
    pub stop_reason: StopReason,
    /// Completed epochs in order.
    pub records: Vec<EpochRecord>,
    /// Aggregate merged over all epochs — equal to a single campaign
    /// over the same index stream when the mix never changes.
    pub aggregate: TestReport,
}

impl EpochTrace {
    /// The canonical (worker-count independent) `c11campaign/v3` JSON
    /// form: the v2 aggregate fields plus an `adaptive` header and an
    /// `epochs` array carrying each epoch's mix, per-strategy columns,
    /// and running cumulative totals. Byte-identical for any worker
    /// count over a fixed budget.
    pub fn canonical_json(&self) -> String {
        json::canonical_trace(self)
    }

    /// The canonical trace plus the opt-in `alloc` diagnostics block
    /// inside `stats` (see
    /// [`crate::CampaignReport::canonical_json_with_alloc_stats`]).
    /// Not covered by the byte-identity contract.
    pub fn canonical_json_with_alloc_stats(&self) -> String {
        json::canonical_trace_with(self, true)
    }

    /// The `c11coverage/v1` behavior-coverage object for the adaptive
    /// run: the overall behavior arrays plus a per-epoch
    /// `new_behaviors` growth curve (see `docs/COVERAGE.md`).
    /// Meaningful only when the run collected coverage; byte-identical
    /// across worker counts, like [`EpochTrace::canonical_json`].
    pub fn coverage_json(&self) -> String {
        json::coverage_trace(self)
    }

    /// The record for epoch `e`, if it completed.
    pub fn record(&self, epoch: u64) -> Option<&EpochRecord> {
        self.records.iter().find(|r| r.epoch == epoch)
    }

    /// Number of completed epochs.
    pub fn epochs(&self) -> usize {
        self.records.len()
    }

    /// The mix specs in epoch order — the controller's reweighting
    /// trajectory.
    pub fn mix_trajectory(&self) -> Vec<&str> {
        self.records.iter().map(|r| r.mix.as_str()).collect()
    }

    /// Every crash record across all epochs, in index order (epochs
    /// cover disjoint ascending index ranges, so concatenation is
    /// already sorted).
    pub fn crash_records(&self) -> Vec<CrashRecord> {
        self.records
            .iter()
            .flat_map(|r| r.crashes.iter().cloned())
            .collect()
    }
}

impl std::fmt::Display for EpochTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "adaptive campaign: {} epoch(s) of {} execution(s), policy {}, seed {:#x}, {}",
            self.records.len(),
            self.epoch_len,
            self.adaptive_policy,
            self.base_seed,
            self.stop_reason.name(),
        )?;
        let mut cumulative_bugs = 0u64;
        for r in &self.records {
            cumulative_bugs += r.aggregate.executions_with_bug;
            writeln!(
                f,
                "  epoch {:>3} [{}..{}): mix {} — {}/{} with bugs (cum {}){}",
                r.epoch,
                r.start_index,
                r.end_index(),
                r.mix,
                r.aggregate.executions_with_bug,
                r.aggregate.executions,
                cumulative_bugs,
                if r.crashes.is_empty() {
                    String::new()
                } else {
                    format!(", {} crash(es)", r.crashes.len())
                },
            )?;
        }
        write!(f, "{}", self.aggregate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accessors_cover_the_index_range() {
        let aggregate = TestReport {
            executions: 16,
            ..Default::default()
        };
        let record = EpochRecord {
            epoch: 2,
            start_index: 32,
            mix: "random:1".to_string(),
            aggregate,
            crashes: Vec::new(),
        };
        assert_eq!(record.executions(), 16);
        assert_eq!(record.end_index(), 48);
    }

    #[test]
    fn trace_lookup_and_trajectory() {
        let record = |epoch: u64, mix: &str| EpochRecord {
            epoch,
            start_index: epoch * 8,
            mix: mix.to_string(),
            aggregate: TestReport::default(),
            crashes: Vec::new(),
        };
        let trace = EpochTrace {
            base_seed: 7,
            policy: "C11Tester",
            adaptive_policy: "ucb1".to_string(),
            epoch_len: 8,
            initial_mix: "random:1,pct2:1".to_string(),
            budget: CampaignBudget::executions(16),
            stop_reason: StopReason::BudgetExhausted,
            records: vec![record(0, "random:1,pct2:1"), record(1, "random:1,pct2:3")],
            aggregate: TestReport::default(),
        };
        assert_eq!(trace.epochs(), 2);
        assert_eq!(trace.record(1).expect("epoch 1").mix, "random:1,pct2:3");
        assert!(trace.record(2).is_none());
        assert_eq!(
            trace.mix_trajectory(),
            ["random:1,pct2:1", "random:1,pct2:3"]
        );
        assert!(trace.to_string().contains("epoch   1"));
    }
}
