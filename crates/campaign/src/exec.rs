//! Execution backends for campaigns: the [`Executor`] abstraction.
//!
//! A [`crate::Campaign`] describes *what* to explore — a configuration,
//! a budget, a global execution-index stream. An [`Executor`] decides
//! *where* those executions run:
//!
//! * [`InProcess`] — the classic path: worker **threads** inside the
//!   campaign process ([`crate::Campaign::run_range`]). Fastest, but a
//!   program under test that segfaults, aborts, or wedges takes the
//!   whole campaign down with it.
//! * `ForkServer` (in the `c11tester-isolation` crate) — worker
//!   **processes**: each batch of executions runs in a child that
//!   re-enters the campaign binary via the hidden `c11campaign
//!   --worker` mode and streams per-execution results back over a
//!   pipe. A child death becomes a [`CrashRecord`] instead of a
//!   campaign death.
//!
//! Both backends answer the same question for the same inputs: the
//! aggregate over a fixed-budget index range is **byte-identical**
//! between them on any healthy target, because an execution is a pure
//! function of `(config, global index)` no matter which process runs
//! it. Crashes are part of that determinism story too: whether
//! execution `i` crashes is decided by `(config, i)` alone, so the
//! crash list (sorted by index) is identical across worker counts and
//! batch sizes.
//!
//! The executor interface works on *named* [`Target`]s rather than
//! closures — a child process cannot be handed a closure, only a name
//! it can resolve in its own address space via [`crate::targets`].

use crate::targets::Target;
use crate::{Campaign, CampaignBudget, CampaignReport, StopReason};
use c11tester::{Config, TestReport};
use c11tester_telemetry::CampaignMetrics;

/// How an isolated execution died.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CrashKind {
    /// The worker process was killed by a signal (e.g. 11 = SIGSEGV,
    /// 6 = SIGABRT).
    Signal(i32),
    /// The worker process exited with a nonzero status without
    /// completing its batch.
    Exit(i32),
    /// The worker process exceeded the per-execution timeout and was
    /// killed by the pool.
    Timeout,
}

impl CrashKind {
    /// Stable machine-readable name (used in JSON output).
    pub fn name(&self) -> &'static str {
        match self {
            CrashKind::Signal(_) => "signal",
            CrashKind::Exit(_) => "exit",
            CrashKind::Timeout => "timeout",
        }
    }

    /// The signal or exit code, when the kind carries one.
    pub fn code(&self) -> Option<i32> {
        match self {
            CrashKind::Signal(n) | CrashKind::Exit(n) => Some(*n),
            CrashKind::Timeout => None,
        }
    }
}

impl std::fmt::Display for CrashKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrashKind::Signal(n) => write!(f, "killed by signal {n}"),
            CrashKind::Exit(n) => write!(f, "exited with status {n}"),
            CrashKind::Timeout => write!(f, "exceeded the execution timeout"),
        }
    }
}

/// One execution that took its worker process down instead of
/// completing — the crash itself is the detection signal (the paper's
/// evaluation targets real crash-prone programs; a segfault under
/// controlled scheduling is a reproducible bug report).
///
/// The record pins the campaign coordinates needed to replay the crash
/// serially: re-run global index [`CrashRecord::index`] under the
/// campaign's config (`Model::run_at`, or `c11campaign --worker` with
/// a one-execution range) and the same schedule — and the same crash —
/// reproduces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashRecord {
    /// Global execution index that was in flight when the worker died.
    pub index: u64,
    /// Canonical spec of the strategy assigned to that index
    /// ([`Config::strategy_for`]).
    pub strategy: String,
    /// How the worker died.
    pub kind: CrashKind,
}

impl std::fmt::Display for CrashRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "execution #{} (strategy {}): {}",
            self.index, self.strategy, self.kind
        )
    }
}

/// The outcome of running one global index range under an executor:
/// the mergeable aggregate over every execution that *completed*, plus
/// a [`CrashRecord`] for every execution that did not.
#[derive(Clone, Debug)]
pub struct RangeOutcome {
    /// Order-independent aggregate over the completed executions.
    pub aggregate: TestReport,
    /// Executions that killed their worker, sorted by index. Always
    /// empty for [`InProcess`] (a crash there kills the campaign).
    pub crashes: Vec<CrashRecord>,
    /// Why the range ended.
    pub stop_reason: StopReason,
    /// Diagnostic telemetry for this range (worker utilization, phase
    /// timings, fork-server health). Never part of the canonical form
    /// and never part of the determinism contract.
    pub metrics: CampaignMetrics,
}

/// A backend that can run a contiguous range of the global
/// execution-index stream for a named target.
///
/// Implementations must preserve the campaign determinism contract:
/// over a fixed budget (no early stop), the returned aggregate and
/// crash list depend only on `(config, first_index, budget)` — not on
/// worker counts, batch sizes, or scheduling of the backend itself.
pub trait Executor: std::fmt::Debug + Sync {
    /// Stable backend name (`in-process`, `fork-server`) for reports
    /// and logs.
    fn name(&self) -> &'static str;

    /// Runs executions `first_index .. first_index +
    /// budget.max_executions` of `target` under `config`, fanning out
    /// over `workers` threads or processes.
    ///
    /// Errors are *infrastructure* failures (the worker binary cannot
    /// be spawned, the pipe protocol broke) — a crashing program under
    /// test is not an error but a [`CrashRecord`].
    fn run_range(
        &self,
        config: &Config,
        workers: usize,
        target: &Target,
        first_index: u64,
        budget: &CampaignBudget,
    ) -> Result<RangeOutcome, String>;
}

/// The classic thread-pool backend: executions run on worker threads
/// inside the current process via [`Campaign::run_range`].
///
/// No isolation: a segfault or abort in the program under test kills
/// the whole campaign, and a wedged execution wedges its worker. Use
/// the fork server (`c11tester-isolation`) for crash-prone targets.
#[derive(Copy, Clone, Debug, Default)]
pub struct InProcess;

impl Executor for InProcess {
    fn name(&self) -> &'static str {
        "in-process"
    }

    fn run_range(
        &self,
        config: &Config,
        workers: usize,
        target: &Target,
        first_index: u64,
        budget: &CampaignBudget,
    ) -> Result<RangeOutcome, String> {
        let target = *target;
        let report = Campaign::new(config.clone())
            .with_workers(workers)
            .run_range(first_index, budget, move || target.run());
        Ok(RangeOutcome {
            aggregate: report.aggregate,
            crashes: Vec::new(),
            stop_reason: report.stop_reason,
            metrics: report.metrics,
        })
    }
}

impl Campaign {
    /// Runs the campaign on a *named* target through an [`Executor`] —
    /// the entry point that supports process isolation. With
    /// [`InProcess`] this is equivalent to [`Campaign::run`] on the
    /// target's body; with a fork server, crashing executions are
    /// recorded in [`CampaignReport::crashes`] instead of killing the
    /// campaign.
    pub fn run_target(
        &self,
        executor: &dyn Executor,
        target: &Target,
        budget: &CampaignBudget,
    ) -> Result<CampaignReport, String> {
        let start = std::time::Instant::now();
        let outcome = executor.run_range(self.config(), self.workers(), target, 0, budget)?;
        Ok(CampaignReport {
            base_seed: self.config().seed,
            policy: self.config().policy.name(),
            strategy: self.config().strategy_label(),
            budget: budget.clone(),
            stop_reason: outcome.stop_reason,
            aggregate: outcome.aggregate,
            crashes: outcome.crashes,
            workers: self.workers(),
            wall_time: start.elapsed(),
            metrics: outcome.metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::targets;
    use c11tester::Config;

    #[test]
    fn in_process_executor_matches_the_closure_path() {
        let target = targets::find("rwlock-buggy").expect("target exists");
        let config = Config::new().with_seed(0xEE);
        let campaign = Campaign::new(config.clone()).with_workers(2);
        let via_executor = campaign
            .run_target(&InProcess, &target, &CampaignBudget::executions(24))
            .expect("in-process execution is infallible");
        let via_closure = campaign.run(&CampaignBudget::executions(24), move || target.run());
        assert_eq!(via_executor.aggregate, via_closure.aggregate);
        assert!(via_executor.crashes.is_empty());
        assert_eq!(
            via_executor.canonical_json(),
            via_closure.canonical_json(),
            "executor and closure paths must agree byte-for-byte"
        );
    }

    #[test]
    fn crash_kinds_render_and_name_stably() {
        assert_eq!(CrashKind::Signal(11).name(), "signal");
        assert_eq!(CrashKind::Signal(11).code(), Some(11));
        assert_eq!(CrashKind::Exit(3).name(), "exit");
        assert_eq!(CrashKind::Timeout.name(), "timeout");
        assert_eq!(CrashKind::Timeout.code(), None);
        let rec = CrashRecord {
            index: 7,
            strategy: "pct2".to_string(),
            kind: CrashKind::Signal(11),
        };
        assert!(rec.to_string().contains("execution #7"));
        assert!(rec.to_string().contains("signal 11"));
    }
}
