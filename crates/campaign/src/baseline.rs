//! Baseline loading and regression diffing for campaign reports.
//!
//! Campaign detection rates are the project's primary quality signal
//! (paper Tables 1–2): a commit that silently halves the race
//! detection rate on a workload is a detector regression even when
//! every unit test passes. This module closes that loop: persist a
//! canonical-JSON report (`c11campaign --canonical > baseline.json`),
//! then later runs compare themselves against it with
//! `c11campaign --baseline baseline.json` — nonzero exit when a rate
//! regressed beyond a threshold.
//!
//! The offline environment has no serde, so [`JsonValue`] is a minimal
//! recursive-descent JSON reader — enough to load the reports this
//! workspace's own emitter produces (any conforming RFC 8259 document
//! parses). [`BaselineSummary`] extracts the comparable surface from
//! `c11campaign/v2`, `/v3`, **and** `/v4` canonical documents (and the
//! `--json` full form, which wraps the canonical object under a
//! `"campaign"` key): aggregate detection rates, the per-strategy
//! columns, and — for v4 — the crash count. The schema family is
//! documented field-by-field in `docs/SCHEMA.md`.

use std::collections::BTreeMap;

// ---------------------------------------------------------------------
// Minimal JSON reader
// ---------------------------------------------------------------------

/// A parsed JSON value.
///
/// Numbers keep their raw text so 64-bit integers (seeds, indices)
/// round-trip exactly instead of through `f64`.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, kept as its source text.
    Number(String),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (first occurrence).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{}` at byte {} (found {:?})",
            byte as char,
            *pos,
            bytes.get(*pos).map(|b| *b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(fields));
                    }
                    other => {
                        return Err(format!(
                            "expected `,` or `}}` in object at byte {} (found {:?})",
                            *pos,
                            other.map(|b| *b as char)
                        ))
                    }
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    other => {
                        return Err(format!(
                            "expected `,` or `]` in array at byte {} (found {:?})",
                            *pos,
                            other.map(|b| *b as char)
                        ))
                    }
                }
            }
        }
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("expected `{literal}` at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let raw = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number bytes");
    if raw.is_empty() || raw.parse::<f64>().is_err() {
        return Err(format!("bad number `{raw}` at byte {start}"));
    }
    Ok(JsonValue::Number(raw.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = Vec::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => {
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".to_string())
            }
            b'\\' => {
                let esc = bytes.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0C),
                    b'u' => {
                        let hex = bytes.get(*pos..*pos + 4).ok_or("truncated \\u escape")?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        *pos += 4;
                        // Surrogate pairs don't appear in our emitter's
                        // output; map lone surrogates to U+FFFD.
                        let c = char::from_u32(code).unwrap_or('\u{FFFD}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(format!("unknown escape `\\{}`", other as char)),
                }
            }
            other => out.push(other),
        }
    }
    Err("unterminated string".to_string())
}

// ---------------------------------------------------------------------
// Baseline summaries and diffing
// ---------------------------------------------------------------------

/// Detection rates for one strategy column.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StrategyRates {
    /// Executions the strategy drove.
    pub executions: u64,
    /// Fraction of them that detected a race.
    pub race_detection_rate: f64,
    /// Fraction of them that found any bug.
    pub bug_detection_rate: f64,
}

/// The comparable surface of a campaign report: what `--baseline`
/// diffs between two runs.
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineSummary {
    /// Schema of the source document (`c11campaign/v2`, `/v3`, or
    /// `/v4`).
    pub schema: String,
    /// Base seed of the campaign.
    pub base_seed: u64,
    /// Strategy / mix label.
    pub strategy: String,
    /// Total executions.
    pub executions: u64,
    /// Aggregate race detection rate.
    pub race_detection_rate: f64,
    /// Aggregate bug detection rate.
    pub bug_detection_rate: f64,
    /// Executions that crashed their worker process (v4; `0` for v2/v3
    /// documents, which predate crash accounting).
    pub crashes: u64,
    /// Per-strategy columns keyed by strategy spec.
    pub per_strategy: BTreeMap<String, StrategyRates>,
}

impl BaselineSummary {
    /// Extracts the summary from a canonical `c11campaign/v2`, `/v3`,
    /// or `/v4` JSON document, or from the `--json` full form (which
    /// wraps the canonical object under a `"campaign"` key).
    pub fn parse(text: &str) -> Result<BaselineSummary, String> {
        let doc = JsonValue::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        // Unwrap the full form's {"campaign": {...}, "timing": {...}}.
        let doc = doc.get("campaign").unwrap_or(&doc);
        let schema = doc
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or("missing `schema` field")?;
        if !matches!(
            schema,
            "c11campaign/v2" | "c11campaign/v3" | "c11campaign/v4"
        ) {
            return Err(format!(
                "unsupported schema `{schema}` (expected c11campaign/v2, v3, or v4)"
            ));
        }
        let u64_field = |key: &str| {
            doc.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or(format!("missing numeric `{key}` field"))
        };
        let f64_field = |key: &str| {
            doc.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or(format!("missing numeric `{key}` field"))
        };
        let mut per_strategy = BTreeMap::new();
        for row in doc
            .get("per_strategy")
            .and_then(JsonValue::as_array)
            .ok_or("missing `per_strategy` array")?
        {
            let spec = row
                .get("strategy")
                .and_then(JsonValue::as_str)
                .ok_or("per_strategy row missing `strategy`")?;
            let rates = StrategyRates {
                executions: row
                    .get("executions")
                    .and_then(JsonValue::as_u64)
                    .ok_or("per_strategy row missing `executions`")?,
                race_detection_rate: row
                    .get("race_detection_rate")
                    .and_then(JsonValue::as_f64)
                    .ok_or("per_strategy row missing `race_detection_rate`")?,
                bug_detection_rate: row
                    .get("bug_detection_rate")
                    .and_then(JsonValue::as_f64)
                    .ok_or("per_strategy row missing `bug_detection_rate`")?,
            };
            per_strategy.insert(spec.to_string(), rates);
        }
        Ok(BaselineSummary {
            schema: schema.to_string(),
            base_seed: u64_field("base_seed")?,
            strategy: doc
                .get("strategy")
                .and_then(JsonValue::as_str)
                .unwrap_or("")
                .to_string(),
            executions: u64_field("executions")?,
            race_detection_rate: f64_field("race_detection_rate")?,
            bug_detection_rate: f64_field("bug_detection_rate")?,
            // v2/v3 documents predate crash accounting: default 0.
            crashes: doc.get("crashes").and_then(JsonValue::as_u64).unwrap_or(0),
            per_strategy,
        })
    }
}

/// One compared metric: baseline value vs current value.
#[derive(Clone, Debug)]
pub struct MetricDelta {
    /// Human-readable metric name (e.g. `aggregate race rate`,
    /// `strategy pct2 bug rate`).
    pub metric: String,
    /// The baseline's rate.
    pub baseline: f64,
    /// The current run's rate.
    pub current: f64,
}

impl MetricDelta {
    /// Rate change (positive = improvement).
    pub fn delta(&self) -> f64 {
        self.current - self.baseline
    }
}

impl std::fmt::Display for MetricDelta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {:.1}% -> {:.1}% ({:+.1}pt)",
            self.metric,
            100.0 * self.baseline,
            100.0 * self.current,
            100.0 * self.delta(),
        )
    }
}

/// The outcome of diffing a current run against a baseline.
#[derive(Clone, Debug)]
pub struct BaselineDiff {
    /// Every compared metric, in stable order.
    pub deltas: Vec<MetricDelta>,
    /// Threshold the regression check used (absolute rate drop).
    pub threshold: f64,
    /// Informational notes (strategy columns only one side has, …).
    pub notes: Vec<String>,
}

impl BaselineDiff {
    /// Compares `current` against `baseline`: aggregate race/bug
    /// detection rates plus per-strategy rates for every strategy both
    /// reports cover. A metric **regresses** when the current rate
    /// drops more than `threshold` (absolute) below the baseline's.
    pub fn compare(
        current: &BaselineSummary,
        baseline: &BaselineSummary,
        threshold: f64,
    ) -> BaselineDiff {
        let mut deltas = vec![
            MetricDelta {
                metric: "aggregate race rate".to_string(),
                baseline: baseline.race_detection_rate,
                current: current.race_detection_rate,
            },
            MetricDelta {
                metric: "aggregate bug rate".to_string(),
                baseline: baseline.bug_detection_rate,
                current: current.bug_detection_rate,
            },
        ];
        let mut notes = Vec::new();
        if current.executions != baseline.executions {
            notes.push(format!(
                "execution budgets differ (baseline {}, current {}): rates are \
                 compared, not counts",
                baseline.executions, current.executions
            ));
        }
        if current.crashes != baseline.crashes {
            notes.push(format!(
                "crash counts differ (baseline {}, current {})",
                baseline.crashes, current.crashes
            ));
        }
        for (spec, base) in &baseline.per_strategy {
            match current.per_strategy.get(spec) {
                Some(cur) => {
                    deltas.push(MetricDelta {
                        metric: format!("strategy {spec} race rate"),
                        baseline: base.race_detection_rate,
                        current: cur.race_detection_rate,
                    });
                    deltas.push(MetricDelta {
                        metric: format!("strategy {spec} bug rate"),
                        baseline: base.bug_detection_rate,
                        current: cur.bug_detection_rate,
                    });
                }
                None => notes.push(format!(
                    "strategy `{spec}` present only in the baseline (not compared)"
                )),
            }
        }
        for spec in current.per_strategy.keys() {
            if !baseline.per_strategy.contains_key(spec) {
                notes.push(format!(
                    "strategy `{spec}` present only in the current run (not compared)"
                ));
            }
        }
        BaselineDiff {
            deltas,
            threshold,
            notes,
        }
    }

    /// Metrics that regressed beyond the threshold.
    pub fn regressions(&self) -> Vec<&MetricDelta> {
        self.deltas
            .iter()
            .filter(|d| d.delta() < -self.threshold)
            .collect()
    }

    /// Whether any metric regressed beyond the threshold.
    pub fn regressed(&self) -> bool {
        !self.regressions().is_empty()
    }
}

impl std::fmt::Display for BaselineDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for d in &self.deltas {
            let marker = if d.delta() < -self.threshold {
                " REGRESSED"
            } else {
                ""
            };
            writeln!(f, "  {d}{marker}")?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        write!(
            f,
            "{} metric(s) compared, {} regression(s) beyond {:.1}pt",
            self.deltas.len(),
            self.regressions().len(),
            100.0 * self.threshold,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_reader_handles_the_emitters_shapes() {
        let doc = JsonValue::parse(
            r#"{"a":1,"b":-2.5,"c":"x\n\"y\"","d":[true,false,null],"e":{},"f":18446744073709551615}"#,
        )
        .expect("valid JSON");
        assert_eq!(doc.get("a").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(doc.get("b").and_then(JsonValue::as_f64), Some(-2.5));
        assert_eq!(doc.get("c").and_then(JsonValue::as_str), Some("x\n\"y\""));
        assert_eq!(
            doc.get("d").and_then(JsonValue::as_array).map(|a| a.len()),
            Some(3)
        );
        assert_eq!(doc.get("e"), Some(&JsonValue::Object(Vec::new())));
        // u64::MAX round-trips exactly (would be lossy through f64).
        assert_eq!(doc.get("f").and_then(JsonValue::as_u64), Some(u64::MAX));
        assert!(JsonValue::parse("{\"unterminated\":").is_err());
        assert!(JsonValue::parse("{} trailing").is_err());
        assert!(JsonValue::parse("{1: 2}").is_err());
    }

    #[test]
    fn summary_round_trips_through_a_real_campaign_report() {
        use crate::{Campaign, CampaignBudget};
        use c11tester::{Config, StrategyMix};
        let config = Config::new()
            .with_seed(0xB5)
            .with_mix(StrategyMix::parse("random:1,pct2:1").expect("valid mix"));
        let report = Campaign::new(config)
            .with_workers(2)
            .run(&CampaignBudget::executions(24), || {
                c11tester_workloads::ds::rwlock_buggy::run_buggy()
            });
        let canonical = BaselineSummary::parse(&report.canonical_json()).expect("parses");
        assert_eq!(canonical.schema, "c11campaign/v4");
        assert_eq!(canonical.crashes, 0);
        assert_eq!(canonical.base_seed, 0xB5);
        assert_eq!(canonical.executions, 24);
        assert_eq!(canonical.strategy, "random:1,pct2:1");
        assert_eq!(
            canonical
                .per_strategy
                .values()
                .map(|r| r.executions)
                .sum::<u64>(),
            24
        );
        // The full (--json) form parses to the identical summary.
        let full = BaselineSummary::parse(&report.to_json()).expect("parses full form");
        assert_eq!(full, canonical);
    }

    #[test]
    fn diff_flags_regressions_beyond_the_threshold_only() {
        let base = BaselineSummary {
            schema: "c11campaign/v2".to_string(),
            base_seed: 1,
            strategy: "random:1,pct2:1".to_string(),
            executions: 100,
            race_detection_rate: 0.8,
            bug_detection_rate: 0.8,
            crashes: 0,
            per_strategy: [
                (
                    "random".to_string(),
                    StrategyRates {
                        executions: 50,
                        race_detection_rate: 0.9,
                        bug_detection_rate: 0.9,
                    },
                ),
                (
                    "pct2".to_string(),
                    StrategyRates {
                        executions: 50,
                        race_detection_rate: 0.7,
                        bug_detection_rate: 0.7,
                    },
                ),
            ]
            .into_iter()
            .collect(),
        };
        // Identical run: no regression at any threshold.
        let diff = BaselineDiff::compare(&base, &base, 0.0);
        assert!(!diff.regressed());
        assert_eq!(diff.deltas.len(), 6);

        // Drop pct2's rates by 0.2: caught at threshold 0.05, tolerated
        // at threshold 0.25.
        let mut worse = base.clone();
        let pct2 = worse.per_strategy.get_mut("pct2").expect("pct2 column");
        pct2.race_detection_rate = 0.5;
        pct2.bug_detection_rate = 0.5;
        let diff = BaselineDiff::compare(&worse, &base, 0.05);
        assert!(diff.regressed());
        let regressed: Vec<&str> = diff
            .regressions()
            .iter()
            .map(|d| d.metric.as_str())
            .collect();
        assert_eq!(
            regressed,
            ["strategy pct2 race rate", "strategy pct2 bug rate"]
        );
        assert!(!BaselineDiff::compare(&worse, &base, 0.25).regressed());
        // Improvements never count as regressions.
        assert!(!BaselineDiff::compare(&base, &worse, 0.05).regressed());
        assert!(diff.to_string().contains("REGRESSED"));
    }

    #[test]
    fn summary_rejects_unknown_schemas_and_garbage() {
        assert!(BaselineSummary::parse("not json").is_err());
        let err = BaselineSummary::parse(r#"{"schema":"c11campaign/v1"}"#).unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
        let err = BaselineSummary::parse(r#"{"executions":3}"#).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn pre_crash_schemas_still_parse_with_zero_crashes() {
        // A literal v2 document (the pre-v4 canonical shape, no
        // `crashes` scalar): saved baselines from older runs must keep
        // loading after the v4 bump.
        let v2 = r#"{"schema":"c11campaign/v2","base_seed":7,"policy":"C11Tester",
            "strategy":"random:1","budget":{"max_executions":4,"deadline_secs":null,
            "stop_on_first_bug":false},"stop_reason":"budget-exhausted",
            "executions":4,"executions_with_race":2,"executions_with_bug":2,
            "race_detection_rate":0.5,"bug_detection_rate":0.5,
            "per_strategy":[{"strategy":"random","executions":4,
            "executions_with_race":2,"executions_with_bug":2,
            "race_detection_rate":0.5,"bug_detection_rate":0.5,
            "distinct_races":1}],"distinct_races":[],"failures":[]}"#;
        let summary = BaselineSummary::parse(v2).expect("v2 documents stay readable");
        assert_eq!(summary.schema, "c11campaign/v2");
        assert_eq!(summary.crashes, 0);
        assert_eq!(summary.executions, 4);
        // And a crash-count mismatch is surfaced as a note, not a
        // regression.
        let mut v4 = summary.clone();
        v4.schema = "c11campaign/v4".to_string();
        v4.crashes = 3;
        let diff = BaselineDiff::compare(&v4, &summary, 0.05);
        assert!(!diff.regressed());
        assert!(diff.notes.iter().any(|n| n.contains("crash counts differ")));
    }
}
