//! `c11campaign` — run a parallel exploration campaign on a built-in
//! workload.
//!
//! ```text
//! c11campaign --target seqlock-buggy --executions 1000 --workers 8 --seed 7
//! c11campaign --target rwlock-buggy --stop-on-first-bug
//! c11campaign --target rwlock-buggy --mix random:2,pct2:1,pct3:1
//! c11campaign --target ms-queue --deadline-secs 10 --json
//! c11campaign --list
//! ```

use c11tester::{Config, Policy, StrategyMix};
use c11tester_campaign::{targets, Campaign, CampaignBudget};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
c11campaign — parallel exploration campaigns over the built-in workloads

USAGE:
    c11campaign --target <NAME> [OPTIONS]
    c11campaign --list

OPTIONS:
    --target <NAME>         workload to campaign on (see --list)
    --executions <N>        execution budget [default: 1000]
    --workers <N>           worker threads [default: all CPUs]
    --seed <N>              base seed (decimal or 0x-hex) [default: 0xC11]
    --policy <P>            c11tester | tsan11 | tsan11rec [default: c11tester]
    --mix <SPEC>            strategy mix: comma-separated <strategy>[:<weight>]
                            entries, where <strategy> is random, burst[@<mean>],
                            or pct<depth>[@<ops>] (e.g. random:4,pct2:2,pct3:1,
                            burst:1). Execution i runs under the strategy
                            assigned from (seed, i); the report gains
                            per-strategy detection columns.
    --stop-on-first-bug     stop all workers at the first bug
    --deadline-secs <SECS>  wall-clock deadline for the campaign
    --json                  emit the full JSON report instead of text
    --list                  list available targets
    --help                  show this help
";

struct Args {
    target: Option<String>,
    executions: u64,
    workers: Option<usize>,
    seed: u64,
    policy: Policy,
    mix: Option<StrategyMix>,
    stop_on_first_bug: bool,
    deadline_secs: Option<f64>,
    json: bool,
    list: bool,
}

fn parse_u64(s: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|_| format!("not a number: `{s}`"))
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        target: None,
        executions: 1000,
        workers: None,
        seed: 0xC11,
        policy: Policy::C11Tester,
        mix: None,
        stop_on_first_bug: false,
        deadline_secs: None,
        json: false,
        list: false,
    };
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--target" => args.target = Some(value()?),
            "--executions" => args.executions = parse_u64(&value()?)?,
            "--workers" => {
                let v = value()?;
                let n: usize = v.parse().map_err(|_| format!("not a number: `{v}`"))?;
                if n == 0 {
                    return Err("--workers must be at least 1".into());
                }
                args.workers = Some(n);
            }
            "--seed" => args.seed = parse_u64(&value()?)?,
            "--policy" => {
                let v = value()?;
                args.policy = match v.to_ascii_lowercase().as_str() {
                    "c11tester" => Policy::C11Tester,
                    "tsan11" => Policy::Tsan11,
                    "tsan11rec" => Policy::Tsan11Rec,
                    _ => return Err(format!("unknown policy `{v}`")),
                };
            }
            "--mix" => args.mix = Some(StrategyMix::parse(&value()?)?),
            "--stop-on-first-bug" => args.stop_on_first_bug = true,
            "--deadline-secs" => {
                let v = value()?;
                let secs: f64 = v.parse().map_err(|_| format!("not a number: `{v}`"))?;
                // Finite and within Duration range, so from_secs_f64
                // cannot panic (rejects nan/inf/1e20 cleanly).
                if !secs.is_finite() || secs <= 0.0 || secs > 1e9 {
                    return Err("--deadline-secs must be a positive number of seconds".into());
                }
                args.deadline_secs = Some(secs);
            }
            "--json" => args.json = true,
            "--list" => args.list = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn list_targets() {
    println!("{:<18} {:<12} DESCRIPTION", "TARGET", "GROUP");
    for t in targets::all() {
        println!("{:<18} {:<12} {}", t.name, t.group, t.description);
    }
}

/// Restores default `SIGPIPE` so `c11campaign ... | head` exits
/// quietly instead of panicking on a closed stdout (Rust ignores
/// `SIGPIPE` by default; declared directly since the `libc` crate is
/// unavailable offline).
#[cfg(unix)]
fn reset_sigpipe() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGPIPE: i32 = 13;
    const SIG_DFL: usize = 0;
    unsafe {
        signal(SIGPIPE, SIG_DFL);
    }
}

#[cfg(not(unix))]
fn reset_sigpipe() {}

fn main() -> ExitCode {
    reset_sigpipe();
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.list {
        list_targets();
        return ExitCode::SUCCESS;
    }
    let Some(name) = args.target.as_deref() else {
        eprintln!("error: --target (or --list) is required\n\n{USAGE}");
        return ExitCode::from(2);
    };
    let Some(target) = targets::find(name) else {
        eprintln!("error: unknown target `{name}`; available targets:\n");
        list_targets();
        return ExitCode::from(2);
    };

    let mut config = Config::for_policy(args.policy).with_seed(args.seed);
    if let Some(mix) = args.mix {
        config = config.with_mix(mix);
    }
    let mut campaign = Campaign::new(config);
    if let Some(w) = args.workers {
        campaign = campaign.with_workers(w);
    }
    let mut budget =
        CampaignBudget::executions(args.executions).with_stop_on_first_bug(args.stop_on_first_bug);
    if let Some(secs) = args.deadline_secs {
        budget = budget.with_deadline(Duration::from_secs_f64(secs));
    }

    let report = campaign.run(&budget, move || target.run());
    if args.json {
        println!("{}", report.to_json());
    } else {
        println!("target: {} ({})", target.name, target.group);
        print!("{report}");
    }
    ExitCode::SUCCESS
}
