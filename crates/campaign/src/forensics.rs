//! Race forensics: per-race provenance bundles.
//!
//! A campaign's deduplicated race list says *what* raced; a forensics
//! bundle says *how to look at it*. For every deduplicated race class
//! the campaign re-runs the **witness execution** — the lowest global
//! index that exhibited the race, a pure function of `(seed, index)`
//! under the determinism contract — with schedule tracing enabled, and
//! writes two files per race into `--forensics-dir`:
//!
//! * `race-NNN.json` — a `c11forensics/v1` document: the replay key
//!   `(seed, epoch, index)`, the exemplar race report, every distinct
//!   access-pair shape observed behind the dedup key, a bounded window
//!   of committed events around the racing object, and a `verified`
//!   flag recording whether the replay reproduced the race class.
//! * `race-NNN.dot` — the witness execution's event graph in Graphviz
//!   DOT: one cluster per thread, program-order edges within each
//!   thread, dashed reads-from edges, and per-object modification-order
//!   edges between consecutive stores.
//!
//! Bundles are numbered in [`DedupHistory`] iteration order (sorted by
//! [`RaceKey`]), so the directory layout is deterministic for any
//! worker count.
//!
//! Known limitation, inherited from the trace layer: only **model
//! ops** (atomic / volatile stores, loads, RMWs) are traced, so the
//! non-atomic half of a data race never appears as an event. The
//! window is anchored on the racing *object*'s atomic traffic — or,
//! when the object has none, on the tail of the execution, which is
//! where the detector fired.

use crate::wire::{access_kind_name, esc, race_kind_name};
use c11tester::{DedupEntry, DedupHistory, ExecutionReport, RaceKey};
use c11tester_telemetry::{TraceEvent, TraceKind};
use std::collections::BTreeMap;
use std::path::Path;

/// Committed events kept on each side of the racing object's accesses
/// in the bundled window.
const WINDOW: usize = 16;

// The shared-buffer capture sink moved down into the telemetry crate
// (the fuzz oracle in `c11tester-genprog` needs it below this crate);
// re-exported here so forensics callers keep their import path.
pub use c11tester_telemetry::CaptureSink;

/// One re-run of a race's witness execution, produced by the replay
/// closure handed to [`write_bundles`].
#[derive(Debug)]
pub struct Witness {
    /// Epoch the witness index fell into (0 for plain campaigns).
    pub epoch: u64,
    /// The replayed execution's report.
    pub report: ExecutionReport,
    /// The replayed execution's committed-event sequence.
    pub events: Vec<TraceEvent>,
}

/// What [`write_bundles`] wrote.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ForensicsSummary {
    /// Bundles written (one per deduplicated race).
    pub bundles: usize,
    /// Bundles whose replay reproduced the race class.
    pub verified: usize,
}

impl std::fmt::Display for ForensicsSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} forensics bundle(s), {} verified by replay",
            self.bundles, self.verified
        )
    }
}

/// Writes one `race-NNN.{json,dot}` bundle per deduplicated race into
/// `dir`, creating it if needed. `replay` re-runs the given global
/// execution index with tracing enabled and returns the [`Witness`];
/// how (plain `Model::run_at`, or an adaptive epoch's reconstructed
/// mix) is the caller's business. Bundle numbering follows the
/// history's sorted iteration order, so output is deterministic.
pub fn write_bundles<R>(
    dir: &Path,
    seed: u64,
    races: &DedupHistory,
    mut replay: R,
) -> Result<ForensicsSummary, String>
where
    R: FnMut(u64) -> Result<Witness, String>,
{
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("cannot create forensics dir {}: {e}", dir.display()))?;
    let mut summary = ForensicsSummary::default();
    for (i, (key, entry)) in races.iter().enumerate() {
        let witness = replay(entry.first_execution)?;
        let verified = witness.report.races.iter().any(|r| r.key() == *key);
        let stem = format!("race-{i:03}");
        let json = bundle_json(seed, key, entry, &witness, verified);
        let dot = bundle_dot(&stem, entry, &witness.events);
        for (ext, body) in [("json", json), ("dot", dot)] {
            let path = dir.join(format!("{stem}.{ext}"));
            std::fs::write(&path, body)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        }
        summary.bundles += 1;
        summary.verified += usize::from(verified);
    }
    Ok(summary)
}

/// The `c11forensics/v1` document for one race class.
fn bundle_json(
    seed: u64,
    key: &RaceKey,
    entry: &DedupEntry,
    witness: &Witness,
    verified: bool,
) -> String {
    let r = &entry.report;
    let mut out = String::new();
    out.push_str("{\"schema\":\"c11forensics/v1\"");
    out.push_str(&format!(
        ",\"replay\":{{\"seed\":{seed},\"epoch\":{},\"index\":{}}}",
        witness.epoch, entry.first_execution,
    ));
    out.push_str(&format!(
        ",\"race\":{{\"label\":\"{}\",\"kind\":\"{}\",\"obj\":{},\"offset\":{},\
         \"current_tid\":{},\"current_kind\":\"{}\",\"prior_tid\":{},\"prior_atomic\":{}}}",
        esc(&key.label),
        race_kind_name(key.kind),
        r.obj.0,
        r.offset,
        r.current_tid.index(),
        access_kind_name(r.current_kind),
        r.prior_tid.index(),
        r.prior_atomic,
    ));
    out.push_str(&format!(
        ",\"first_execution\":{},\"occurrences\":{}",
        entry.first_execution, entry.occurrences,
    ));
    out.push_str(",\"shapes\":[");
    for (i, s) in entry.shapes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"current_tid\":{},\"current_kind\":\"{}\",\"prior_tid\":{},\"prior_atomic\":{}}}",
            s.current_tid,
            access_kind_name(s.current_kind),
            s.prior_tid,
            s.prior_atomic,
        ));
    }
    out.push(']');
    out.push_str(&format!(",\"verified\":{verified}"));
    let (lo, hi) = window_bounds(&witness.events, r.obj.0);
    out.push_str(&format!(
        ",\"trace\":{{\"total_events\":{},\"window_start\":{lo},\"window\":[",
        witness.events.len(),
    ));
    for (i, e) in witness.events[lo..hi].iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&event_json(e));
    }
    out.push_str("]}}");
    out
}

/// The window `[lo, hi)` of events bundled for the racing object: all
/// accesses of `obj` plus [`WINDOW`] events of context on each side,
/// or the execution's tail when the object has no traced accesses
/// (non-atomic race halves are never traced).
fn window_bounds(events: &[TraceEvent], obj: u64) -> (usize, usize) {
    let first = events.iter().position(|e| e.obj == obj);
    let last = events.iter().rposition(|e| e.obj == obj);
    match (first, last) {
        (Some(first), Some(last)) => (
            first.saturating_sub(WINDOW),
            (last + 1 + WINDOW).min(events.len()),
        ),
        _ => (events.len().saturating_sub(2 * WINDOW), events.len()),
    }
}

/// One committed event as a JSON object (same field names as the
/// JSONL trace encoding, minus the replay key carried bundle-wide).
fn event_json(e: &TraceEvent) -> String {
    let opt = |v: Option<u64>| v.map_or_else(|| "null".to_string(), |v| v.to_string());
    format!(
        "{{\"kind\":\"{}\",\"thread\":{},\"seq\":{},\"obj\":{},\"order\":\"{}\",\
         \"access\":\"{}\",\"value\":{},\"rf\":{},\"old\":{}}}",
        e.kind.name(),
        e.thread,
        e.seq,
        e.obj,
        e.order,
        e.access,
        e.value,
        opt(e.rf),
        opt(e.old),
    )
}

/// The witness execution's event graph in Graphviz DOT: one cluster
/// per thread, solid program-order edges, dashed `rf` edges, and
/// per-object `mo` edges between consecutive stores. Nodes for the
/// racing object are filled so the conflict region stands out.
fn bundle_dot(stem: &str, entry: &DedupEntry, events: &[TraceEvent]) -> String {
    let racing_obj = entry.report.obj.0;
    let mut out = String::new();
    out.push_str(&format!("digraph \"{}\" {{\n", esc(stem)));
    out.push_str("  rankdir=TB;\n");
    out.push_str("  node [shape=box, fontname=\"monospace\", fontsize=10];\n");
    out.push_str(&format!(
        "  label=\"{} on `{}`\";\n",
        race_kind_name(entry.report.kind),
        esc(&entry.report.label),
    ));

    let mut by_thread: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
    for e in events {
        by_thread.entry(e.thread).or_default().push(e);
    }
    for (tid, evs) in &by_thread {
        out.push_str(&format!(
            "  subgraph \"cluster_t{tid}\" {{\n    label=\"T{tid}\";\n"
        ));
        for e in evs {
            let fill = if e.obj == racing_obj {
                ", style=filled, fillcolor=lightyellow"
            } else {
                ""
            };
            out.push_str(&format!(
                "    n{} [label=\"#{} {} obj{}={} {}\"{fill}];\n",
                e.seq,
                e.seq,
                e.kind.name(),
                e.obj,
                e.value,
                e.order,
            ));
        }
        out.push_str("  }\n");
    }

    // Program order: consecutive events of each thread.
    for evs in by_thread.values() {
        for pair in evs.windows(2) {
            out.push_str(&format!("  n{} -> n{};\n", pair[0].seq, pair[1].seq));
        }
    }
    // Reads-from: only when the source store is itself a traced event
    // (loads from an object's initial value carry no producer node).
    let seqs: std::collections::BTreeSet<u64> = events.iter().map(|e| e.seq).collect();
    for e in events {
        if let Some(rf) = e.rf {
            if seqs.contains(&rf) && rf != e.seq {
                out.push_str(&format!(
                    "  n{rf} -> n{} [style=dashed, color=blue, label=\"rf\"];\n",
                    e.seq,
                ));
            }
        }
    }
    // Modification order: consecutive stores to each object.
    let mut stores: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
    for e in events {
        if matches!(e.kind, TraceKind::Store | TraceKind::Rmw) {
            stores.entry(e.obj).or_default().push(e);
        }
    }
    for evs in stores.values() {
        for pair in evs.windows(2) {
            out.push_str(&format!(
                "  n{} -> n{} [color=red, label=\"mo\"];\n",
                pair[0].seq, pair[1].seq,
            ));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use c11tester::{AccessKind, RaceKind, RaceReport, ThreadId};
    use c11tester_core::ObjId;
    use c11tester_telemetry::{TraceKey, TraceSink};

    fn event(kind: TraceKind, thread: u64, seq: u64, obj: u64, rf: Option<u64>) -> TraceEvent {
        TraceEvent {
            kind,
            thread,
            seq,
            obj,
            order: "Relaxed",
            access: "atomic",
            value: seq,
            rf,
            old: None,
        }
    }

    fn history() -> DedupHistory {
        let mut h = DedupHistory::new();
        h.record(
            5,
            &RaceReport {
                label: "flag".into(),
                obj: ObjId(3),
                offset: 0,
                kind: RaceKind::ReadAfterWrite,
                current_tid: ThreadId::from_index(2),
                current_kind: AccessKind::NonAtomic,
                prior_tid: ThreadId::from_index(1),
                prior_atomic: false,
            },
        );
        h
    }

    fn witness(index: u64, with_obj: bool) -> Witness {
        let obj = if with_obj { 3 } else { 9 };
        Witness {
            epoch: 0,
            report: ExecutionReport {
                execution_index: index,
                strategy: "random".into(),
                races: history().iter().map(|(_, e)| e.report.clone()).collect(),
                failure: None,
                stats: Default::default(),
                elided_volatile_races: 0,
                coverage: Default::default(),
            },
            events: vec![
                event(TraceKind::Store, 1, 1, obj, None),
                event(TraceKind::Load, 2, 2, obj, Some(1)),
                event(TraceKind::Rmw, 2, 3, 7, None),
            ],
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("c11forensics-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn bundles_carry_replay_key_shapes_and_window() {
        let dir = temp_dir("bundle");
        let races = history();
        let summary = write_bundles(&dir, 0xfeed, &races, |index| Ok(witness(index, true)))
            .expect("bundles written");
        assert_eq!(
            summary,
            ForensicsSummary {
                bundles: 1,
                verified: 1
            }
        );
        let json = std::fs::read_to_string(dir.join("race-000.json")).expect("json");
        assert!(json.starts_with("{\"schema\":\"c11forensics/v1\""));
        assert!(json.contains("\"replay\":{\"seed\":65261,\"epoch\":0,\"index\":5}"));
        assert!(json.contains("\"label\":\"flag\""));
        assert!(json.contains("\"kind\":\"read-write\""));
        assert!(json.contains("\"shapes\":[{\"current_tid\":2"));
        assert!(json.contains("\"verified\":true"));
        assert!(json.contains("\"total_events\":3"));
        // All three events fit in the window around obj 3.
        assert!(json.contains("\"window_start\":0"));
        assert_eq!(json.matches("\"seq\":").count(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dot_has_clusters_po_rf_and_mo_edges() {
        let dir = temp_dir("dot");
        let races = history();
        write_bundles(&dir, 1, &races, |index| Ok(witness(index, true))).expect("bundles written");
        let dot = std::fs::read_to_string(dir.join("race-000.dot")).expect("dot");
        assert!(dot.starts_with("digraph \"race-000\" {"));
        assert!(dot.contains("subgraph \"cluster_t1\""));
        assert!(dot.contains("subgraph \"cluster_t2\""));
        assert!(dot.contains("n2 -> n3;"), "po edge within T2");
        assert!(dot.contains("n1 -> n2 [style=dashed, color=blue, label=\"rf\"]"));
        assert!(
            dot.contains("fillcolor=lightyellow"),
            "racing obj highlighted"
        );
        assert!(dot.ends_with("}\n"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unverified_replay_and_missing_obj_fall_back_to_tail_window() {
        let dir = temp_dir("tail");
        let races = history();
        let summary = write_bundles(&dir, 1, &races, |index| {
            let mut w = witness(index, false);
            w.report.races.clear(); // replay "missed" the race
            Ok(w)
        })
        .expect("bundles written");
        assert_eq!(summary.verified, 0);
        let json = std::fs::read_to_string(dir.join("race-000.json")).expect("json");
        assert!(json.contains("\"verified\":false"));
        assert!(json.contains("\"total_events\":3"));
        assert!(
            json.contains("\"window_start\":0"),
            "tail window covers all"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn capture_sink_shares_its_buffer_across_clones() {
        let sink = CaptureSink::new();
        let mut handle: Box<dyn TraceSink> = Box::new(sink.clone());
        let key = TraceKey {
            seed: 1,
            epoch: 0,
            index: 4,
        };
        handle.record(key, &[event(TraceKind::Store, 1, 1, 3, None)]);
        let records = sink.take();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].0, key);
        assert_eq!(records[0].1.len(), 1);
        assert!(sink.take().is_empty(), "take drains");
    }
}
