//! Shared CLI plumbing for the workspace binaries.
//!
//! `c11campaign` and `c11bench` grew their own copies of the same two
//! fragments — a decimal/hex number parser and the flag-error epilogue
//! — and the copies drifted (one printed `error: <msg>` followed by a
//! blank line and the usage text, the other squeezed the usage onto
//! the message's trailing newline). Scripted callers that match on
//! stderr care about the exact shape, so both binaries now route
//! through these helpers and cannot diverge again.

use std::process::ExitCode;

/// Parses a `u64` CLI value, accepting decimal (`1000`) or 0x-prefixed
/// hex (`0xC11`, `0XC11`).
pub fn parse_u64(s: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|_| format!("not a number: `{s}`"))
}

/// Reports a flag/usage failure the one canonical way: `error: <msg>`,
/// a blank line, the usage text, exit code 2.
pub fn usage_error(msg: &str, usage: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{usage}");
    ExitCode::from(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_u64_accepts_decimal_and_hex() {
        assert_eq!(parse_u64("1000"), Ok(1000));
        assert_eq!(parse_u64("0xC11"), Ok(0xC11));
        assert_eq!(parse_u64("0XC11"), Ok(0xC11));
        assert_eq!(parse_u64("0"), Ok(0));
        assert_eq!(parse_u64(&format!("{}", u64::MAX)), Ok(u64::MAX));
        assert!(parse_u64("").is_err());
        assert!(parse_u64("-3").is_err());
        assert!(parse_u64("0x").is_err());
        assert!(parse_u64("12q").is_err());
        assert_eq!(parse_u64("nope"), Err("not a number: `nope`".to_string()));
    }

    #[test]
    fn usage_error_exits_2() {
        // The message shape is asserted end-to-end by the CLI smoke
        // tests; here just pin the exit code contract.
        let code = usage_error("boom", "USAGE: x");
        assert_eq!(format!("{code:?}"), format!("{:?}", ExitCode::from(2)));
    }
}
