//! Shared string tables for every JSON emitter in the workspace.
//!
//! The canonical campaign report (`json.rs`) and the isolation wire
//! protocol (`c11tester-isolation`) must render the same values the
//! same way **forever** — the fork-server byte-identity contract
//! literally diffs their outputs. Keeping the escape function and the
//! enum name tables here, used by both emitters (and inverted by the
//! wire parser), makes a silent divergence impossible.

use c11tester::{AccessKind, RaceKind};

/// Escapes a string per RFC 8259 (the subset our emitters produce).
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Stable name for an access kind (`non-atomic`, `atomic`,
/// `volatile`).
pub fn access_kind_name(kind: AccessKind) -> &'static str {
    match kind {
        AccessKind::NonAtomic => "non-atomic",
        AccessKind::Atomic => "atomic",
        AccessKind::Volatile => "volatile",
    }
}

/// Inverse of [`access_kind_name`].
pub fn parse_access_kind(name: &str) -> Result<AccessKind, String> {
    match name {
        "non-atomic" => Ok(AccessKind::NonAtomic),
        "atomic" => Ok(AccessKind::Atomic),
        "volatile" => Ok(AccessKind::Volatile),
        other => Err(format!("unknown access kind `{other}`")),
    }
}

/// Stable name for a race kind (`write-write`, `write-read`,
/// `read-write`) — matches the [`RaceKind`] `Display` rendering.
pub fn race_kind_name(kind: RaceKind) -> &'static str {
    match kind {
        RaceKind::WriteAfterWrite => "write-write",
        RaceKind::WriteAfterRead => "write-read",
        RaceKind::ReadAfterWrite => "read-write",
    }
}

/// Inverse of [`race_kind_name`].
pub fn parse_race_kind(name: &str) -> Result<RaceKind, String> {
    match name {
        "write-write" => Ok(RaceKind::WriteAfterWrite),
        "write-read" => Ok(RaceKind::WriteAfterRead),
        "read-write" => Ok(RaceKind::ReadAfterWrite),
        other => Err(format!("unknown race kind `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_and_match_display() {
        for kind in [
            RaceKind::WriteAfterWrite,
            RaceKind::WriteAfterRead,
            RaceKind::ReadAfterWrite,
        ] {
            assert_eq!(race_kind_name(kind), kind.to_string());
            assert_eq!(parse_race_kind(race_kind_name(kind)), Ok(kind));
        }
        for kind in [
            AccessKind::NonAtomic,
            AccessKind::Atomic,
            AccessKind::Volatile,
        ] {
            assert_eq!(parse_access_kind(access_kind_name(kind)), Ok(kind));
        }
        assert!(parse_race_kind("nope").is_err());
        assert!(parse_access_kind("nope").is_err());
    }

    #[test]
    fn escaping_is_rfc8259() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
        assert_eq!(esc("plain"), "plain");
    }
}
