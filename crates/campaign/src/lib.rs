//! # c11tester-campaign
//!
//! Parallel exploration campaigns for **c11tester-rs**.
//!
//! C11Tester's methodology is statistical (paper §7.6, Tables 1–2):
//! re-run a program under randomized controlled scheduling thousands of
//! times and report the fraction of executions that exhibit each race.
//! The [`c11tester::Model`] drives executions strictly serially on one
//! OS thread; a [`Campaign`] shards the same logical execution stream
//! over `N` worker threads:
//!
//! * worker `w` owns a [`Model::for_shard`] walking execution indices
//!   `w, w + N, w + 2N, …` — the built-in strategies derive their
//!   random stream from `(seed, index)` alone, so **any single
//!   execution is reproducible by `(seed, execution_index)` regardless
//!   of worker count** (replay with [`Model::run_at`]);
//! * workers stream [`ExecutionReport`]s through a channel into an
//!   aggregator that merges race dedup histories
//!   ([`c11tester_race::DedupHistory`]), sums
//!   [`c11tester_core::ExecStats`], and computes detection rates;
//! * the resulting [`CampaignReport`] is **byte-identical for any
//!   worker count** (over a fixed budget), and equal to the serial
//!   [`Model::run_many`] aggregate — parallelism is a pure speedup,
//!   never a semantic change.
//!
//! Budgets ([`CampaignBudget`]) bound a campaign by execution count,
//! wall-clock deadline, or first bug found.
//!
//! Campaigns can **mix strategies** (paper §3's pluggable framework,
//! Tables 1–2's strategy-dependent detection rates): configure a
//! [`c11tester::StrategyMix`] (e.g. `random:2,pct2:1,pct3:1`) via
//! [`Config::with_mix`] and each execution index is deterministically
//! assigned a strategy from `(seed, index)` alone — replay-by-index
//! and byte-identical aggregation across worker counts are preserved,
//! and the report gains per-strategy detection columns
//! ([`CampaignReport::per_strategy`]).
//!
//! Campaigns can also run **fork-isolated**: the [`Executor`]
//! abstraction separates what to explore from where executions run.
//! [`InProcess`] is the thread-pool backend above; the fork server in
//! the `c11tester-isolation` crate runs batches in child processes so
//! a segfaulting program under test becomes a [`CrashRecord`] in
//! [`CampaignReport::crashes`] instead of killing the campaign
//! (canonical JSON schema `c11campaign/v4`; see `docs/SCHEMA.md`).
//!
//! ```
//! use c11tester_campaign::{Campaign, CampaignBudget};
//! use c11tester::{Config, Model};
//!
//! let config = Config::new().with_seed(7);
//! let campaign = Campaign::new(config.clone()).with_workers(4);
//! let report = campaign.run(&CampaignBudget::executions(40), || {
//!     c11tester_workloads::ds::rwlock_buggy::run_buggy();
//! });
//! assert_eq!(report.aggregate.executions, 40);
//!
//! // The parallel aggregate equals the serial reference:
//! let serial = Model::new(config).run_many(40, || {
//!     c11tester_workloads::ds::rwlock_buggy::run_buggy();
//! });
//! assert_eq!(report.aggregate, serial);
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baseline;
pub mod cli;
mod epoch;
mod exec;
pub mod forensics;
mod json;
pub mod targets;
pub mod wire;

pub use epoch::{EpochRecord, EpochTrace};
pub use exec::{CrashKind, CrashRecord, Executor, InProcess, RangeOutcome};
pub use forensics::{CaptureSink, ForensicsSummary, Witness};

use c11tester::{Config, ExecutionReport, Model, TestReport};
use c11tester_telemetry::{CampaignMetrics, WorkerMetrics};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Resource bounds for one campaign.
///
/// A campaign always stops once `max_executions` executions completed;
/// a deadline or stop-on-first-bug bound can end it earlier. Only the
/// fixed-budget mode (no early stop triggered) promises worker-count
/// independent aggregates — an early stop cuts the execution stream at
/// a racy point by construction.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignBudget {
    /// Maximum number of executions (execution indices `0..max`).
    pub max_executions: u64,
    /// Optional wall-clock deadline for the whole campaign.
    pub deadline: Option<Duration>,
    /// Stop all workers as soon as any execution exhibits a bug.
    pub stop_on_first_bug: bool,
}

impl CampaignBudget {
    /// A budget of exactly `max_executions` executions.
    pub fn executions(max_executions: u64) -> Self {
        CampaignBudget {
            max_executions,
            deadline: None,
            stop_on_first_bug: false,
        }
    }

    /// Adds a wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Stops the campaign at the first bug (race, assertion violation,
    /// or deadlock).
    pub fn with_stop_on_first_bug(mut self, stop: bool) -> Self {
        self.stop_on_first_bug = stop;
        self
    }
}

/// Why a campaign ended.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// Every execution index in the budget was explored.
    BudgetExhausted,
    /// `stop_on_first_bug` was set and a bug was found.
    FirstBug,
    /// The wall-clock deadline expired.
    Deadline,
}

impl StopReason {
    /// Stable machine-readable name (used in JSON output).
    pub fn name(self) -> &'static str {
        match self {
            StopReason::BudgetExhausted => "budget-exhausted",
            StopReason::FirstBug => "first-bug",
            StopReason::Deadline => "deadline",
        }
    }
}

/// The aggregated outcome of a campaign.
///
/// `aggregate` carries the memory-model-level result (identical to the
/// serial [`Model::run_many`] report over the same budget);
/// the remaining fields describe the campaign run itself. Timing and
/// worker count are excluded from [`CampaignReport::canonical_json`] so
/// the canonical form is byte-identical across worker counts.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Base seed every execution index derives its stream from.
    pub base_seed: u64,
    /// Memory-model policy name (`C11Tester`, `tsan11`, `tsan11rec`).
    pub policy: &'static str,
    /// Canonical strategy label ([`Config::strategy_label`]): the mix
    /// spec (e.g. `random:2,pct2:1,pct3:1`) when the campaign mixes
    /// strategies, the single strategy's spec otherwise.
    pub strategy: String,
    /// The budget the campaign ran under.
    pub budget: CampaignBudget,
    /// Why the campaign stopped.
    pub stop_reason: StopReason,
    /// Order-independent aggregate over all completed executions.
    pub aggregate: TestReport,
    /// Executions that killed their worker process instead of
    /// completing, sorted by index. Always empty for in-process
    /// campaigns; populated by fork-isolated runs
    /// ([`Campaign::run_target`] with a fork-server [`Executor`]).
    pub crashes: Vec<CrashRecord>,
    /// Number of worker threads used (not part of the canonical form).
    pub workers: usize,
    /// Wall-clock duration (not part of the canonical form).
    pub wall_time: Duration,
    /// Diagnostic campaign telemetry (per-worker utilization, phase
    /// timings, fork-server health). Like `workers` and `wall_time`,
    /// **never** part of the canonical form — see `docs/METRICS.md`.
    pub metrics: CampaignMetrics,
}

impl CampaignReport {
    /// Fraction of executions that detected a race (Table 2's "rate").
    pub fn race_detection_rate(&self) -> f64 {
        self.aggregate.race_detection_rate()
    }

    /// Fraction of executions that found any bug (§8.1's rates).
    pub fn bug_detection_rate(&self) -> f64 {
        self.aggregate.bug_detection_rate()
    }

    /// Executions per wall-clock second.
    pub fn throughput(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs > 0.0 {
            self.aggregate.executions as f64 / secs
        } else {
            0.0
        }
    }

    /// Did any execution exhibit a bug?
    pub fn found_bug(&self) -> bool {
        self.aggregate.executions_with_bug > 0
    }

    /// Per-strategy detection columns: one bucket per strategy that
    /// drove at least one execution (a single bucket for unmixed
    /// campaigns). Bucket counters sum to the aggregate's.
    pub fn per_strategy(&self) -> &c11tester::StrategyLedger {
        &self.aggregate.per_strategy
    }

    /// The canonical (worker-count independent) JSON form: everything
    /// determined by `(config, budget)` alone. Two campaigns over the
    /// same configuration and fixed budget produce byte-identical
    /// canonical JSON for **any** worker counts.
    pub fn canonical_json(&self) -> String {
        json::canonical(self)
    }

    /// The canonical form plus the opt-in `alloc` diagnostics block
    /// inside `stats` (recycled-vs-fresh provisioning and clock-vector
    /// spill counts). **Not** covered by the byte-identity contract:
    /// provisioning depends on worker count and on execution-state
    /// recycling, which is exactly why the block is excluded from
    /// [`CampaignReport::canonical_json`] and from the goldens.
    pub fn canonical_json_with_alloc_stats(&self) -> String {
        json::canonical_with(self, true)
    }

    /// The full JSON form: the canonical object plus campaign timing
    /// (workers, wall seconds, throughput).
    pub fn to_json(&self) -> String {
        json::full(self)
    }

    /// The `c11coverage/v1` behavior-coverage object (see
    /// `docs/COVERAGE.md`): distinct rf edges, mo adjacencies, race
    /// classes, and interleaving signatures with per-behavior
    /// provenance. Meaningful only when the campaign ran with coverage
    /// collection enabled ([`c11tester::set_coverage`] /
    /// `c11campaign --coverage-out`); otherwise every array is empty.
    /// Byte-identical across worker counts and across in-process vs
    /// fork-isolated backends, like the canonical form.
    pub fn coverage_json(&self) -> String {
        json::coverage(self)
    }
}

impl std::fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "campaign: {} executions on {} worker(s) in {:.2?} ({:.0} exec/s), seed {:#x}, strategy {}, {}",
            self.aggregate.executions,
            self.workers,
            self.wall_time,
            self.throughput(),
            self.base_seed,
            self.strategy,
            self.stop_reason.name(),
        )?;
        if !self.crashes.is_empty() {
            writeln!(
                f,
                "crashes: {} execution(s) killed their worker",
                self.crashes.len()
            )?;
            for c in &self.crashes {
                writeln!(f, "  {c}")?;
            }
        }
        write!(f, "{}", self.aggregate)
    }
}

/// A parallel exploration campaign over one configuration.
///
/// See the [crate docs](crate) for the determinism contract.
#[derive(Clone, Debug)]
pub struct Campaign {
    config: Config,
    workers: usize,
}

impl Campaign {
    /// Creates a campaign over `config`, defaulting to one worker per
    /// available CPU.
    pub fn new(config: Config) -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Campaign { config, workers }
    }

    /// Sets the worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "a campaign needs at least one worker");
        self.workers = workers;
        self
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The campaign's model configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Runs the campaign: fans executions of `program` out over the
    /// workers until the budget is exhausted (or an early-stop bound
    /// triggers) and aggregates the streamed per-execution reports.
    pub fn run<F>(&self, budget: &CampaignBudget, program: F) -> CampaignReport
    where
        F: Fn() + Send + Sync,
    {
        self.run_range(0, budget, program)
    }

    /// Runs the campaign over the global execution-index range
    /// `first_index .. first_index + budget.max_executions` — the
    /// epoch-granular entry point. Epoch `e` of an adaptive campaign
    /// with epoch length `L` runs `run_range(e·L, …)` so every epoch
    /// keeps walking the *same* global index stream: an execution is
    /// still reproducible by `(config, global index)` alone, and a
    /// fixed-budget range aggregates byte-identically for any worker
    /// count, exactly like [`Campaign::run`] (which is
    /// `run_range(0, …)`).
    pub fn run_range<F>(
        &self,
        first_index: u64,
        budget: &CampaignBudget,
        program: F,
    ) -> CampaignReport
    where
        F: Fn() + Send + Sync,
    {
        let start = Instant::now();
        let end_index = first_index.saturating_add(budget.max_executions);
        // Never spin up more workers than executions: shard `w` of `N`
        // would walk `first + w, first + w + N, …`, all ≥ end_index.
        let workers = self
            .workers
            .min(budget.max_executions.max(1).min(usize::MAX as u64) as usize)
            .max(1);
        let stop = AtomicBool::new(false);
        let bug_stop = AtomicBool::new(false);
        let deadline_stop = AtomicBool::new(false);
        let (tx, rx) = mpsc::channel::<ExecutionReport>();
        // Diagnostic side channel: one message per worker at loop exit
        // (two clock reads per worker for the whole campaign — the
        // telemetry cost model keeps the hot loop untouched).
        let (mtx, mrx) = mpsc::channel::<WorkerMetrics>();

        let aggregate = std::thread::scope(|scope| {
            for w in 0..workers {
                let tx = tx.clone();
                let mtx = mtx.clone();
                let config = self.config.clone();
                let program = &program;
                let (stop, bug_stop, deadline_stop) = (&stop, &bug_stop, &deadline_stop);
                let builder = std::thread::Builder::new().name(format!("c11campaign-{w}"));
                builder
                    .spawn_scoped(scope, move || {
                        let busy_start = Instant::now();
                        let mut completed = 0u64;
                        let mut model =
                            Model::for_shard_from(config, first_index + w as u64, workers as u64);
                        while model.next_execution_index() < end_index
                            && !stop.load(Ordering::Relaxed)
                        {
                            if let Some(deadline) = budget.deadline {
                                if start.elapsed() >= deadline {
                                    deadline_stop.store(true, Ordering::Relaxed);
                                    stop.store(true, Ordering::Relaxed);
                                    break;
                                }
                            }
                            let report = model.run(program);
                            let bug = report.found_bug();
                            if tx.send(report).is_err() {
                                break;
                            }
                            completed += 1;
                            if bug && budget.stop_on_first_bug {
                                bug_stop.store(true, Ordering::Relaxed);
                                stop.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                        let thread_stats = model.thread_stats();
                        let _ = mtx.send(WorkerMetrics {
                            worker: w as u64,
                            executions: completed,
                            busy_nanos: busy_start.elapsed().as_nanos() as u64,
                            pooled_dispatches: thread_stats.pooled_dispatches,
                            fresh_spawns: thread_stats.fresh_spawns,
                        });
                    })
                    .expect("failed to spawn campaign worker");
            }
            drop(tx);
            drop(mtx);
            // Aggregate on the calling thread while workers stream.
            let mut aggregate = TestReport::default();
            while let Ok(report) = rx.recv() {
                aggregate.absorb(&report);
            }
            aggregate
        });
        let mut worker_metrics: Vec<WorkerMetrics> = mrx.iter().collect();
        worker_metrics.sort_by_key(|m| m.worker);

        let stop_reason = if bug_stop.load(Ordering::Relaxed) {
            StopReason::FirstBug
        } else if deadline_stop.load(Ordering::Relaxed) {
            StopReason::Deadline
        } else {
            StopReason::BudgetExhausted
        };
        let wall_time = start.elapsed();
        let metrics = CampaignMetrics {
            phase: aggregate.total_stats.phase,
            graph: aggregate.total_stats.mograph_perf.to_metrics(),
            workers: worker_metrics,
            executions: aggregate.executions,
            wall_nanos: wall_time.as_nanos() as u64,
            ..CampaignMetrics::default()
        };
        CampaignReport {
            base_seed: self.config.seed,
            policy: self.config.policy.name(),
            strategy: self.config.strategy_label(),
            budget: budget.clone(),
            stop_reason,
            aggregate,
            crashes: Vec::new(),
            workers,
            wall_time,
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn racy_program() {
        c11tester_workloads::ds::rwlock_buggy::run_buggy();
    }

    #[test]
    fn campaign_covers_exactly_the_budget() {
        let report = Campaign::new(Config::new().with_seed(3))
            .with_workers(3)
            .run(&CampaignBudget::executions(10), || {});
        assert_eq!(report.aggregate.executions, 10);
        assert_eq!(report.stop_reason, StopReason::BudgetExhausted);
        assert_eq!(report.workers, 3);
        assert!(!report.found_bug());
    }

    #[test]
    fn workers_never_exceed_executions() {
        let report = Campaign::new(Config::new())
            .with_workers(8)
            .run(&CampaignBudget::executions(2), || {});
        assert_eq!(report.workers, 2);
        assert_eq!(report.aggregate.executions, 2);
    }

    #[test]
    fn run_range_partitions_the_global_stream() {
        // Epoch-granular runs over [0,20) + [20,60) must merge to the
        // single campaign over [0,60): same config, same global
        // indices, order-independent aggregation.
        let config = Config::new().with_seed(0xE9);
        let campaign = Campaign::new(config.clone()).with_workers(3);
        let whole = campaign.run(&CampaignBudget::executions(60), racy_program);
        let mut merged = TestReport::default();
        merged.merge(
            &campaign
                .run_range(0, &CampaignBudget::executions(20), racy_program)
                .aggregate,
        );
        merged.merge(
            &campaign
                .run_range(20, &CampaignBudget::executions(40), racy_program)
                .aggregate,
        );
        assert_eq!(merged, whole.aggregate);
    }

    #[test]
    fn campaign_equals_serial_run_many() {
        let config = Config::new().with_seed(0xA5);
        let parallel = Campaign::new(config.clone())
            .with_workers(4)
            .run(&CampaignBudget::executions(60), racy_program);
        let serial = Model::new(config).run_many(60, racy_program);
        assert_eq!(parallel.aggregate, serial);
        assert!(parallel.aggregate.executions_with_race > 0);
    }

    #[test]
    fn deadline_stops_early() {
        let budget = CampaignBudget::executions(u64::MAX).with_deadline(Duration::from_millis(50));
        let report = Campaign::new(Config::new())
            .with_workers(2)
            .run(&budget, racy_program);
        assert_eq!(report.stop_reason, StopReason::Deadline);
        assert!(report.aggregate.executions < u64::MAX);
    }

    #[test]
    fn zero_execution_budget_is_a_noop() {
        let report = Campaign::new(Config::new())
            .with_workers(4)
            .run(&CampaignBudget::executions(0), racy_program);
        assert_eq!(report.aggregate.executions, 0);
        assert_eq!(report.stop_reason, StopReason::BudgetExhausted);
    }
}
