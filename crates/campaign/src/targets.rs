//! Named campaign targets: the built-in workloads of
//! `c11tester-workloads`, addressable by CLI-friendly names.
//!
//! Covers the Table-2 data-structure suite, the §8.1 injected-bug
//! benchmarks (buggy *and* fixed variants), the Table-1 application
//! simulations, and the crash-prone isolation targets (group `crash`
//! — run those under `--isolate` only; see `c11tester-isolation`).
//!
//! Named targets are also the unit of **process isolation**: a fork
//! server child cannot be handed a closure, so `c11campaign --worker`
//! re-resolves the target by name in the child via [`find`].

use c11tester_workloads::{ds, AppBench, DsBench};

/// How a target's body is invoked.
#[derive(Copy, Clone, Debug)]
enum Body {
    Ds(DsBench),
    App(AppBench),
    Free(fn()),
}

/// A named workload a campaign can run.
#[derive(Copy, Clone, Debug)]
pub struct Target {
    /// CLI name (`c11campaign --target <name>`).
    pub name: &'static str,
    /// Table/section of the paper the workload comes from.
    pub group: &'static str,
    /// One-line description.
    pub description: &'static str,
    body: Body,
}

impl Target {
    /// Runs one execution of the workload body (call inside a model
    /// execution — a `Model` or `Campaign` closure).
    pub fn run(&self) {
        match self.body {
            Body::Ds(b) => b.run(),
            Body::App(a) => a.run_default(),
            Body::Free(f) => f(),
        }
    }
}

/// All built-in targets, in presentation order.
pub fn all() -> Vec<Target> {
    let mut targets = Vec::new();
    for b in DsBench::all() {
        targets.push(Target {
            name: b.name(),
            group: "table2",
            description: "CDSChecker data-structure benchmark (paper Table 2)",
            body: Body::Ds(b),
        });
    }
    targets.push(Target {
        name: "seqlock-buggy",
        group: "section8.1",
        description: "seqlock with the injected relaxed-ordering bug (paper §8.1)",
        body: Body::Free(ds::seqlock::run_buggy),
    });
    targets.push(Target {
        name: "seqlock-fixed",
        group: "section8.1",
        description: "seqlock with correct orderings (control for §8.1)",
        body: Body::Free(ds::seqlock::run_fixed),
    });
    targets.push(Target {
        name: "rwlock-buggy",
        group: "section8.1",
        description: "reader-writer lock with the injected bug (paper §8.1)",
        body: Body::Free(ds::rwlock_buggy::run_buggy),
    });
    targets.push(Target {
        name: "rwlock-fixed",
        group: "section8.1",
        description: "reader-writer lock with correct orderings (control for §8.1)",
        body: Body::Free(ds::rwlock_buggy::run_fixed),
    });
    targets.push(Target {
        name: "null-deref-buggy",
        group: "crash",
        description: "relaxed message passing that segfaults when the race manifests \
                      (run under --isolate)",
        body: Body::Free(ds::crashy::run_null_deref),
    });
    targets.push(Target {
        name: "spin-forever",
        group: "crash",
        description: "execution that wedges forever without model ops \
                      (run under --isolate --exec-timeout)",
        body: Body::Free(ds::crashy::run_spin_forever),
    });
    for (a, name) in [
        (AppBench::Silo, "silo"),
        (AppBench::Gdax, "gdax"),
        (AppBench::Mabain, "mabain"),
        (AppBench::Iris, "iris"),
        (AppBench::JsBench, "jsbench"),
    ] {
        targets.push(Target {
            name,
            group: "table1",
            description: "application simulation (paper Table 1)",
            body: Body::App(a),
        });
    }
    targets
}

/// Looks a target up by its CLI name (case-insensitive).
pub fn find(name: &str) -> Option<Target> {
    all()
        .into_iter()
        .find(|t| t.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_resolvable() {
        let targets = all();
        let mut names: Vec<&str> = targets.iter().map(|t| t.name).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate target names");
        for n in names {
            assert!(find(n).is_some());
            assert!(find(&n.to_uppercase()).is_some(), "lookup case-insensitive");
        }
    }

    #[test]
    fn covers_tables_and_injected_bugs() {
        let targets = all();
        let group_count = |g: &str| targets.iter().filter(|t| t.group == g).count();
        assert_eq!(group_count("table2"), 7);
        assert_eq!(group_count("section8.1"), 4);
        assert_eq!(group_count("crash"), 2);
        assert_eq!(group_count("table1"), 5);
    }

    #[test]
    fn targets_run_inside_a_campaign() {
        use crate::{Campaign, CampaignBudget};
        let target = find("seqlock-buggy").expect("target exists");
        let report = Campaign::new(c11tester::Config::new().with_seed(1))
            .with_workers(2)
            .run(&CampaignBudget::executions(8), move || target.run());
        assert_eq!(report.aggregate.executions, 8);
    }
}
