//! Named campaign targets: the built-in workloads of
//! `c11tester-workloads`, addressable by CLI-friendly names.
//!
//! Covers the Table-2 data-structure suite, the §8.1 injected-bug
//! benchmarks (buggy *and* fixed variants), the Table-1 application
//! simulations, the crash-prone isolation targets (group `crash`
//! — run those under `--isolate` only; see `c11tester-isolation`),
//! and the **generated programs** of `c11tester-genprog` (group
//! `gen`): any `gen:<pseed>` name resolves to the seeded program that
//! pseed generates, so the whole campaign stack — sharding,
//! `--isolate`, coverage maps, adaptive policies — runs over fuzzed
//! programs unchanged.
//!
//! Named targets are also the unit of **process isolation**: a fork
//! server child cannot be handed a closure, so `c11campaign --worker`
//! re-resolves the target by name in the child via [`find`].

use c11tester_workloads::{ds, AppBench, DsBench};
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// How a target's body is invoked.
#[derive(Copy, Clone, Debug)]
enum Body {
    Ds(DsBench),
    App(AppBench),
    Free(fn()),
    /// A generated program, regenerated from its pseed per execution.
    Gen(u64),
}

/// A named workload a campaign can run.
#[derive(Copy, Clone, Debug)]
pub struct Target {
    /// CLI name (`c11campaign --target <name>`).
    pub name: &'static str,
    /// Table/section of the paper the workload comes from.
    pub group: &'static str,
    /// One-line description.
    pub description: &'static str,
    body: Body,
}

impl Target {
    /// Runs one execution of the workload body (call inside a model
    /// execution — a `Model` or `Campaign` closure).
    pub fn run(&self) {
        match self.body {
            Body::Ds(b) => b.run(),
            Body::App(a) => a.run_default(),
            Body::Free(f) => f(),
            Body::Gen(pseed) => c11tester_genprog::run_generated(pseed),
        }
    }
}

/// Shared description of every `gen:<pseed>` target.
const GEN_DESCRIPTION: &str =
    "seeded generated program over the atomic-op grammar (pure function of the pseed)";

/// Showcase pseeds listed by `--list-targets` / `all()`; any other
/// `gen:<pseed>` still resolves via [`resolve`].
const GEN_SHOWCASE: &[(&str, u64)] = &[
    ("gen:1", 1),
    ("gen:2", 2),
    ("gen:3", 3),
    ("gen:4", 4),
    ("gen:5", 5),
    ("gen:6", 6),
    ("gen:7", 7),
    ("gen:8", 8),
];

/// Interns the canonical name of a dynamic `gen` target. `Target`
/// stays `Copy` with a `&'static str` name (every existing use site —
/// fork-server children, move closures, bench tables — depends on
/// that), so non-showcase names are leaked once per distinct pseed
/// and cached.
fn gen_name(pseed: u64) -> &'static str {
    if let Some((name, _)) = GEN_SHOWCASE.iter().find(|(_, p)| *p == pseed) {
        return name;
    }
    static CACHE: OnceLock<Mutex<BTreeMap<u64, &'static str>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut map = cache.lock().expect("gen-name cache poisoned");
    map.entry(pseed)
        .or_insert_with(|| Box::leak(format!("gen:{pseed}").into_boxed_str()))
}

/// Builds the target for a program seed.
fn gen_target(pseed: u64) -> Target {
    Target {
        name: gen_name(pseed),
        group: "gen",
        description: GEN_DESCRIPTION,
        body: Body::Gen(pseed),
    }
}

/// All built-in targets, in presentation order.
pub fn all() -> Vec<Target> {
    let mut targets = Vec::new();
    for b in DsBench::all() {
        targets.push(Target {
            name: b.name(),
            group: "table2",
            description: "CDSChecker data-structure benchmark (paper Table 2)",
            body: Body::Ds(b),
        });
    }
    targets.push(Target {
        name: "seqlock-buggy",
        group: "section8.1",
        description: "seqlock with the injected relaxed-ordering bug (paper §8.1)",
        body: Body::Free(ds::seqlock::run_buggy),
    });
    targets.push(Target {
        name: "seqlock-fixed",
        group: "section8.1",
        description: "seqlock with correct orderings (control for §8.1)",
        body: Body::Free(ds::seqlock::run_fixed),
    });
    targets.push(Target {
        name: "rwlock-buggy",
        group: "section8.1",
        description: "reader-writer lock with the injected bug (paper §8.1)",
        body: Body::Free(ds::rwlock_buggy::run_buggy),
    });
    targets.push(Target {
        name: "rwlock-fixed",
        group: "section8.1",
        description: "reader-writer lock with correct orderings (control for §8.1)",
        body: Body::Free(ds::rwlock_buggy::run_fixed),
    });
    targets.push(Target {
        name: "null-deref-buggy",
        group: "crash",
        description: "relaxed message passing that segfaults when the race manifests \
                      (run under --isolate)",
        body: Body::Free(ds::crashy::run_null_deref),
    });
    targets.push(Target {
        name: "spin-forever",
        group: "crash",
        description: "execution that wedges forever without model ops \
                      (run under --isolate --exec-timeout)",
        body: Body::Free(ds::crashy::run_spin_forever),
    });
    // Scaled-up variants whose per-location histories (and mo-graph)
    // grow well past the litmus scale: the coherence-graph benchmark
    // group (`c11bench --targets group:graph`).
    targets.push(Target {
        name: "mpmc-queue-large",
        group: "graph",
        description: "mpmc-queue with 4x the items per thread (coherence-graph scaling)",
        body: Body::Free(ds::mpmc_queue::run_large),
    });
    targets.push(Target {
        name: "ms-queue-large",
        group: "graph",
        description: "ms-queue with 6x the items over a larger node pool (coherence-graph scaling)",
        body: Body::Free(ds::ms_queue::run_large),
    });
    targets.push(Target {
        name: "silo-large",
        group: "graph",
        description: "silo at the paper's -t 5 scale: 5 workers, 50 txns each, 8 records",
        body: Body::Free(c11tester_workloads::apps::silo::run_large),
    });
    // Long-execution target for the §7.1 `--memory-limit` smoke: 10×
    // the default mpmc-queue length, long enough that the unlimited
    // mo-graph arena visibly outgrows the windowed-pruning plateau.
    // Its own group keeps the `graph` bench gate's target set stable.
    targets.push(Target {
        name: "mpmc-queue-10x",
        group: "longrun",
        description: "mpmc-queue at 10x the default items per thread (§7.1 memory limiting)",
        body: Body::Free(|| ds::mpmc_queue::run_n(20)),
    });
    for (a, name) in [
        (AppBench::Silo, "silo"),
        (AppBench::Gdax, "gdax"),
        (AppBench::Mabain, "mabain"),
        (AppBench::Iris, "iris"),
        (AppBench::JsBench, "jsbench"),
    ] {
        targets.push(Target {
            name,
            group: "table1",
            description: "application simulation (paper Table 1)",
            body: Body::App(a),
        });
    }
    for &(_, pseed) in GEN_SHOWCASE {
        targets.push(gen_target(pseed));
    }
    targets
}

/// The result of resolving a target name.
#[derive(Clone, Debug)]
pub enum Lookup {
    /// The name resolved to a runnable target.
    Found(Target),
    /// The name used the `gen:<pseed>` form but the pseed did not
    /// parse; the payload is the error to report (a usage error —
    /// exit 2 — not an unknown-target error).
    MalformedGen(String),
    /// No such target.
    Unknown,
}

/// Resolves a target name (case-insensitive): first the built-in
/// table, then the open-ended `gen:<pseed>` namespace (pseed decimal
/// or `0x` hex, canonicalized to `gen:<decimal>`).
pub fn resolve(name: &str) -> Lookup {
    if let Some(t) = all()
        .into_iter()
        .find(|t| t.name.eq_ignore_ascii_case(name))
    {
        return Lookup::Found(t);
    }
    let lower = name.to_ascii_lowercase();
    if let Some(spec) = lower.strip_prefix("gen:") {
        return match crate::cli::parse_u64(spec) {
            Ok(pseed) => Lookup::Found(gen_target(pseed)),
            Err(e) => Lookup::MalformedGen(format!("malformed gen target `{name}`: {e}")),
        };
    }
    Lookup::Unknown
}

/// Looks a target up by its CLI name (case-insensitive); malformed
/// `gen:` specs resolve to `None` here — CLI front ends should prefer
/// [`resolve`] to report them as usage errors instead.
pub fn find(name: &str) -> Option<Target> {
    match resolve(name) {
        Lookup::Found(t) => Some(t),
        Lookup::MalformedGen(_) | Lookup::Unknown => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_resolvable() {
        let targets = all();
        let mut names: Vec<&str> = targets.iter().map(|t| t.name).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate target names");
        for n in names {
            assert!(find(n).is_some());
            assert!(find(&n.to_uppercase()).is_some(), "lookup case-insensitive");
        }
    }

    #[test]
    fn covers_tables_and_injected_bugs() {
        let targets = all();
        let group_count = |g: &str| targets.iter().filter(|t| t.group == g).count();
        assert_eq!(group_count("table2"), 7);
        assert_eq!(group_count("section8.1"), 4);
        assert_eq!(group_count("crash"), 2);
        assert_eq!(group_count("table1"), 5);
        assert_eq!(group_count("graph"), 3);
        assert_eq!(group_count("gen"), 8);
    }

    #[test]
    fn gen_names_resolve_beyond_the_showcase_table() {
        // Round-trips: hex and decimal specs canonicalize to the same
        // decimal name, pointing at the same generated program.
        let t = find("gen:0x8").expect("hex spec resolves");
        assert_eq!(t.name, "gen:8");
        assert_eq!(t.group, "gen");
        assert_eq!(find("gen:8").unwrap().name, "gen:8");
        assert_eq!(find("GEN:8").unwrap().name, "gen:8", "case-insensitive");
        // A pseed outside the showcase interns a canonical name; the
        // same pseed yields the same &'static str.
        let a = find("gen:123456").unwrap();
        let b = find("gen:0x1E240").unwrap();
        assert_eq!(a.name, "gen:123456");
        assert!(std::ptr::eq(a.name, b.name), "names are interned once");
    }

    #[test]
    fn malformed_gen_specs_are_usage_errors_not_unknown() {
        for bad in ["gen:", "gen:x", "gen:12z", "gen:0x"] {
            match resolve(bad) {
                Lookup::MalformedGen(msg) => {
                    assert!(msg.contains("malformed gen target"), "{msg}");
                    assert!(msg.contains(bad), "{msg}");
                }
                other => panic!("expected MalformedGen for {bad:?}, got {other:?}"),
            }
            assert!(find(bad).is_none());
        }
        assert!(matches!(resolve("no-such-target"), Lookup::Unknown));
        assert!(matches!(resolve("silo"), Lookup::Found(_)));
    }

    #[test]
    fn gen_targets_run_deterministically_inside_a_campaign() {
        use crate::{Campaign, CampaignBudget};
        let target = find("gen:3").expect("target exists");
        let run = |workers| {
            Campaign::new(c11tester::Config::new().with_seed(5))
                .with_workers(workers)
                .run(&CampaignBudget::executions(8), move || target.run())
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.aggregate.executions, 8);
        assert_eq!(
            one.canonical_json(),
            four.canonical_json(),
            "gen campaigns are worker-count invariant"
        );
    }

    #[test]
    fn targets_run_inside_a_campaign() {
        use crate::{Campaign, CampaignBudget};
        let target = find("seqlock-buggy").expect("target exists");
        let report = Campaign::new(c11tester::Config::new().with_seed(1))
            .with_workers(2)
            .run(&CampaignBudget::executions(8), move || target.run());
        assert_eq!(report.aggregate.executions, 8);
    }
}
