//! First-class §7.1 memory limiting: long executions keep resident
//! mo-graph state bounded, without giving up campaign determinism.
//!
//! The workload is the mpmc-queue body at **10× its default length**
//! (`run_n(20)` vs the benchmark's `run_n(2)`) and beyond — long
//! enough that the unlimited graph's arena grows linearly with the
//! execution, which is exactly the §7.1 scenario. Per the paper,
//! `--memory-limit` discards trace state older than a window even when
//! some thread never observed it (mpmc-queue's seeded bug is a missing
//! release edge, so conservative pruning alone could never retire the
//! producers' histories); that may narrow producible behaviors but is
//! what makes the bound unconditional.

use c11tester::{Config, Model};
use c11tester_campaign::{Campaign, CampaignBudget};
use c11tester_workloads::ds::mpmc_queue;

fn long_mpmc() {
    mpmc_queue::run_n(20);
}

/// Peak arena-resident node count per execution, with and without the
/// memory limit. The limited run must stay *bounded*: its high-water
/// mark plateaus at the trace-window scale while the unlimited graph
/// keeps tracking execution length — 10× default and 30× default land
/// on the same plateau.
#[test]
fn memory_limit_bounds_live_mograph_nodes_at_10x_length() {
    let seed = 0xE0_11;
    let mut unlimited = Model::new(Config::new().with_seed(seed));
    let mut limited = Model::new(Config::new().with_seed(seed).with_memory_limit());
    for _ in 0..3 {
        let base = unlimited.run(long_mpmc);
        let capped = limited.run(long_mpmc);
        // Windowed pruning may change prune/graph statistics, never
        // detection: the seeded payload race must still surface.
        assert!(
            !capped.races.is_empty(),
            "--memory-limit run no longer detects the seeded mpmc race"
        );
        let base_peak = base.stats.mograph_perf.peak_live_nodes;
        let capped_peak = capped.stats.mograph_perf.peak_live_nodes;
        assert!(
            base_peak > 150,
            "10x workload no longer grows the unlimited graph ({base_peak} peak nodes) — \
             the bound below is not being exercised"
        );
        assert!(
            capped_peak < 128,
            "--memory-limit peak {capped_peak} is not bounded vs unlimited peak {base_peak}"
        );
        assert!(
            capped.stats.mograph_perf.compactions > 0,
            "the memory-limited run never compacted"
        );
    }
    // The bound is independent of execution length: at 30× default the
    // unlimited arena roughly triples again, the limited one does not
    // leave its plateau.
    let base = unlimited.run(|| mpmc_queue::run_n(60));
    let capped = limited.run(|| mpmc_queue::run_n(60));
    let base_peak = base.stats.mograph_perf.peak_live_nodes;
    let capped_peak = capped.stats.mograph_perf.peak_live_nodes;
    assert!(base_peak > 400, "30x unlimited peak {base_peak}");
    assert!(
        capped_peak < 128,
        "--memory-limit peak {capped_peak} grew with execution length (unlimited {base_peak})"
    );
}

/// The §7.1 mode keeps the campaign determinism contract at 10×
/// length: canonical output is byte-identical across worker counts.
#[test]
fn memory_limited_long_runs_are_byte_identical_across_worker_counts() {
    let budget = CampaignBudget::executions(8);
    let config = Config::new().with_seed(0xE0_12).with_memory_limit();
    let reference = Campaign::new(config.clone())
        .with_workers(1)
        .run(&budget, long_mpmc)
        .canonical_json();
    for workers in [4, 8] {
        let got = Campaign::new(config.clone())
            .with_workers(workers)
            .run(&budget, long_mpmc)
            .canonical_json();
        assert_eq!(
            got, reference,
            "memory-limited canonical JSON diverged at {workers} workers"
        );
    }
}
