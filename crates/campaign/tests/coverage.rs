//! Library-level behavior-coverage contract:
//!
//! * with the gate armed, a campaign's [`CoverageMap`] (and its
//!   `c11coverage/v1` JSON) is byte-identical across 1/4/8 workers and
//!   equal to the serial `Model::run_many` fold;
//! * the coverage gate never perturbs canonical campaign JSON;
//! * the map's race keys agree with the dedup history, and
//!   `collected_executions` counts exactly the gated executions.
//!
//! The gate is a process global; every test here takes `gate_lock()`
//! before touching it (tests in one binary run on parallel threads).

use c11tester::{set_coverage, Config, Model};
use c11tester_campaign::baseline::JsonValue;
use c11tester_campaign::{Campaign, CampaignBudget};
use c11tester_workloads::ds::rwlock_buggy;
use std::sync::{Mutex, MutexGuard, PoisonError};

const SEED: u64 = 0xC0FFEE;

fn gate_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn racy() {
    rwlock_buggy::run_buggy();
}

fn campaign(workers: usize) -> c11tester_campaign::CampaignReport {
    Campaign::new(Config::new().with_seed(SEED))
        .with_workers(workers)
        .run(&CampaignBudget::executions(120), racy)
}

#[test]
fn coverage_map_is_worker_count_independent_and_matches_serial() {
    let _gate = gate_lock();
    set_coverage(true);
    let reports: Vec<_> = [1usize, 4, 8].into_iter().map(campaign).collect();
    let serial = Model::new(Config::new().with_seed(SEED)).run_many(120, racy);
    set_coverage(false);

    for r in &reports[1..] {
        assert_eq!(
            r.aggregate.coverage, reports[0].aggregate.coverage,
            "coverage map diverged across worker counts"
        );
        assert_eq!(r.coverage_json(), reports[0].coverage_json());
    }
    assert_eq!(
        reports[0].aggregate.coverage, serial.coverage,
        "parallel fold != serial fold"
    );
    let map = &reports[0].aggregate.coverage;
    assert_eq!(map.collected_executions(), 120);
    assert!(map.distinct_rf_edges() > 0);
    assert!(map.distinct_interleavings() > 0);
    // Race behaviors and the dedup history must agree on the classes.
    assert_eq!(
        map.distinct_races(),
        reports[0].aggregate.races.iter().count() as u64
    );
}

#[test]
fn coverage_json_is_schema_valid_and_gate_off_runs_stay_canonical() {
    let _gate = gate_lock();
    set_coverage(true);
    let with_coverage = campaign(4);
    set_coverage(false);
    let without = campaign(4);

    // The canonical report ignores the gate entirely.
    assert_eq!(
        with_coverage.canonical_json(),
        without.canonical_json(),
        "coverage collection leaked into canonical JSON"
    );
    // Gate off, nothing is collected and the JSON says so.
    assert!(without.aggregate.coverage.is_empty());
    assert_eq!(without.aggregate.coverage.collected_executions(), 0);

    let doc = JsonValue::parse(&with_coverage.coverage_json()).expect("coverage JSON parses");
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some("c11coverage/v1")
    );
    assert_eq!(doc.get("base_seed").and_then(JsonValue::as_u64), Some(SEED));
    let distinct = doc.get("distinct").expect("distinct block");
    for (field, expect) in [
        (
            "rf_edges",
            with_coverage.aggregate.coverage.distinct_rf_edges(),
        ),
        (
            "mo_edges",
            with_coverage.aggregate.coverage.distinct_mo_edges(),
        ),
        ("races", with_coverage.aggregate.coverage.distinct_races()),
        (
            "interleavings",
            with_coverage.aggregate.coverage.distinct_interleavings(),
        ),
        ("total", with_coverage.aggregate.coverage.distinct_total()),
    ] {
        assert_eq!(
            distinct.get(field).and_then(JsonValue::as_u64),
            Some(expect),
            "distinct.{field}"
        );
    }
    // Plain campaigns carry an empty epochs array (growth curves are
    // an adaptive-trace feature).
    assert_eq!(
        doc.get("epochs").and_then(JsonValue::as_array),
        Some(&[][..])
    );
}
