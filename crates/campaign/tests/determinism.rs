//! Campaign determinism contract (the tentpole acceptance tests):
//!
//! * same base seed → **byte-identical** aggregated `CampaignReport`
//!   (canonical form) across 1, 4, and 8 workers;
//! * a ≥ 1000-execution campaign on 8 workers produces the same
//!   deduplicated race set and detection-rate counts as the serial
//!   `Model::run_many` path with the same base seed;
//! * stop-on-first-bug on `workloads::ds::rwlock_buggy` ends the
//!   campaign early with the bug in hand;
//! * any single execution replays by `(seed, execution_index)`.

use c11tester::{Config, Model};
use c11tester_campaign::{Campaign, CampaignBudget, StopReason};
use c11tester_workloads::ds::rwlock_buggy;

const SEED: u64 = 0xDE7EC7;

fn racy() {
    rwlock_buggy::run_buggy();
}

#[test]
fn canonical_report_is_byte_identical_across_1_4_8_workers() {
    let budget = CampaignBudget::executions(120);
    let reports: Vec<_> = [1usize, 4, 8]
        .into_iter()
        .map(|w| {
            Campaign::new(Config::new().with_seed(SEED))
                .with_workers(w)
                .run(&budget, racy)
        })
        .collect();
    let canon: Vec<String> = reports.iter().map(|r| r.canonical_json()).collect();
    assert_eq!(canon[0], canon[1], "1 vs 4 workers");
    assert_eq!(canon[1], canon[2], "4 vs 8 workers");
    // The aggregates are equal as values too, not just as JSON.
    assert_eq!(reports[0].aggregate, reports[1].aggregate);
    assert_eq!(reports[1].aggregate, reports[2].aggregate);
    // And the campaign found real races to aggregate.
    assert!(reports[0].aggregate.executions_with_race > 0);
}

#[test]
fn thousand_execution_campaign_matches_serial_run_many() {
    // The acceptance bar: >= 1000 executions, 8 workers, same dedup
    // race set and detection-rate counts as Model::run_many.
    let executions = 1000;
    let campaign = Campaign::new(Config::new().with_seed(SEED))
        .with_workers(8)
        .run(&CampaignBudget::executions(executions), racy);
    let serial = Model::new(Config::new().with_seed(SEED)).run_many(executions, racy);

    assert_eq!(campaign.aggregate, serial, "full aggregate equality");
    // Spelled out, the fields the acceptance criterion names:
    assert_eq!(
        campaign.aggregate.executions_with_race,
        serial.executions_with_race
    );
    assert_eq!(
        campaign.aggregate.executions_with_bug,
        serial.executions_with_bug
    );
    assert_eq!(
        campaign.aggregate.distinct_races(),
        serial.distinct_races(),
        "deduplicated race sets"
    );
    assert_eq!(campaign.aggregate.executions, executions);
    assert!(serial.executions_with_race > 0, "workload must race");
}

#[test]
fn stop_on_first_bug_ends_the_campaign_early() {
    let budget = CampaignBudget::executions(1_000_000).with_stop_on_first_bug(true);
    let report = Campaign::new(Config::new().with_seed(SEED))
        .with_workers(4)
        .run(&budget, racy);
    assert_eq!(report.stop_reason, StopReason::FirstBug);
    assert!(report.found_bug());
    assert!(
        report.aggregate.executions < 1000,
        "stop-on-first-bug must cut the budget short (ran {})",
        report.aggregate.executions
    );
    assert!(
        !report.aggregate.races.is_empty(),
        "the bug is in the report"
    );
}

#[test]
fn any_campaign_execution_replays_by_seed_and_index() {
    // Pick the first racy execution a campaign found and replay it
    // serially by (seed, index): same races, same stats.
    let report = Campaign::new(Config::new().with_seed(SEED))
        .with_workers(4)
        .run(&CampaignBudget::executions(40), racy);
    let (_, entry) = report
        .aggregate
        .races
        .iter()
        .next()
        .expect("campaign found a race");
    let index = entry.first_execution;

    let mut model = Model::new(Config::new().with_seed(SEED));
    let replayed = model.run_at(index, racy);
    assert_eq!(replayed.execution_index, index);
    assert!(
        replayed.races.iter().any(|r| r.key() == entry.report.key()),
        "replay of execution #{index} must reproduce the race"
    );
}
