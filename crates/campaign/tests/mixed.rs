//! Determinism contract for **strategy-mixed** campaigns (the
//! acceptance tests of the schedule-diversification tentpole):
//!
//! * a mixed campaign (`random:2,pct2:1,pct3:1`) over `rwlock_buggy`
//!   produces byte-identical canonical JSON for 1, 4, and 8 workers;
//! * the per-strategy columns tile the aggregate exactly (executions,
//!   race/bug counts, and the union of the per-strategy dedup
//!   histories);
//! * the mixed campaign equals the serial `Model::run_many` reference
//!   over the same resolver;
//! * `Model::run_at(i)` replays execution `i` under the same strategy
//!   the campaign assigned it.

use c11tester::{Config, DedupHistory, Model, StrategyMix};
use c11tester_campaign::{Campaign, CampaignBudget};
use c11tester_workloads::ds::rwlock_buggy;

const SEED: u64 = 0x3144;
const MIX: &str = "random:2,pct2:1,pct3:1";

fn racy() {
    rwlock_buggy::run_buggy();
}

fn mixed_config() -> Config {
    Config::new()
        .with_seed(SEED)
        .with_mix(StrategyMix::parse(MIX).expect("valid mix"))
}

#[test]
fn mixed_canonical_json_is_byte_identical_across_1_4_8_workers() {
    let budget = CampaignBudget::executions(120);
    let reports: Vec<_> = [1usize, 4, 8]
        .into_iter()
        .map(|w| {
            Campaign::new(mixed_config())
                .with_workers(w)
                .run(&budget, racy)
        })
        .collect();
    let canon: Vec<String> = reports.iter().map(|r| r.canonical_json()).collect();
    assert_eq!(canon[0], canon[1], "1 vs 4 workers");
    assert_eq!(canon[1], canon[2], "4 vs 8 workers");
    assert_eq!(reports[0].aggregate, reports[1].aggregate);
    assert_eq!(reports[1].aggregate, reports[2].aggregate);
    // The canonical form carries the mix label and per-strategy rows.
    assert!(canon[0].contains(&format!("\"strategy\":\"{MIX}\"")));
    assert!(canon[0].contains("\"per_strategy\":[{\"strategy\":"));
    // All three member strategies actually drove executions.
    assert_eq!(reports[0].per_strategy().len(), 3);
    assert!(reports[0].aggregate.executions_with_race > 0);
}

#[test]
fn per_strategy_columns_sum_exactly_to_the_aggregate() {
    let report = Campaign::new(mixed_config())
        .with_workers(4)
        .run(&CampaignBudget::executions(200), racy);
    let agg = &report.aggregate;
    let ledger = report.per_strategy();

    assert_eq!(ledger.total_executions(), agg.executions);
    let race_sum: u64 = ledger.iter().map(|(_, b)| b.executions_with_race).sum();
    let bug_sum: u64 = ledger.iter().map(|(_, b)| b.executions_with_bug).sum();
    assert_eq!(race_sum, agg.executions_with_race);
    assert_eq!(bug_sum, agg.executions_with_bug);

    // The union of the per-strategy dedup histories is the aggregate
    // history: same race classes, same occurrence counts, same
    // lowest-index exemplars.
    let mut union = DedupHistory::new();
    for (_, bucket) in ledger.iter() {
        union.merge(&bucket.races);
    }
    assert_eq!(union, agg.races);

    // Every bucket's counters are internally consistent.
    for (name, b) in ledger.iter() {
        assert!(b.executions > 0, "empty bucket {name} should not exist");
        assert!(b.executions_with_race <= b.executions);
        assert!(b.executions_with_bug <= b.executions);
        assert!(b.executions_with_race <= b.executions_with_bug);
    }
}

#[test]
fn mixed_campaign_equals_serial_run_many_with_the_same_resolver() {
    let executions = 300;
    let campaign = Campaign::new(mixed_config())
        .with_workers(8)
        .run(&CampaignBudget::executions(executions), racy);
    let serial = Model::new(mixed_config()).run_many(executions, racy);
    assert_eq!(campaign.aggregate, serial, "full aggregate equality");
    assert_eq!(campaign.aggregate.per_strategy, serial.per_strategy);
}

#[test]
fn run_at_replays_under_the_strategy_the_campaign_assigned() {
    let config = mixed_config();
    let mix = config.mix.clone().expect("mix set");
    let campaign = Campaign::new(config.clone())
        .with_workers(4)
        .run(&CampaignBudget::executions(40), racy);

    // The campaign recorded every execution under its assigned
    // strategy; spot-check indices across the whole range by replay.
    let mut replayer = Model::new(config.clone());
    for index in [0u64, 7, 13, 26, 39] {
        let assigned = mix.strategy_at(SEED, index);
        let replayed = replayer.run_at(index, racy);
        assert_eq!(
            replayed.strategy,
            assigned.spec(),
            "execution #{index} must replay under its assigned strategy"
        );
    }

    // And a race found by the campaign replays with its race intact at
    // the recorded first_execution index.
    let (_, entry) = campaign
        .aggregate
        .races
        .iter()
        .next()
        .expect("campaign found a race");
    let index = entry.first_execution;
    let replayed = replayer.run_at(index, racy);
    assert_eq!(replayed.strategy, mix.strategy_at(SEED, index).spec());
    assert!(
        replayed.races.iter().any(|r| r.key() == entry.report.key()),
        "replay of execution #{index} must reproduce the race"
    );
}

#[test]
fn unmixed_campaign_has_a_single_strategy_bucket() {
    // Control: without a mix the ledger degenerates to one bucket that
    // equals the aggregate.
    let report = Campaign::new(Config::new().with_seed(SEED))
        .with_workers(2)
        .run(&CampaignBudget::executions(50), racy);
    let ledger = report.per_strategy();
    assert_eq!(ledger.len(), 1);
    let (name, bucket) = ledger.iter().next().expect("one bucket");
    assert_eq!(name, "random");
    assert_eq!(bucket.executions, report.aggregate.executions);
    assert_eq!(
        bucket.executions_with_race,
        report.aggregate.executions_with_race
    );
    assert_eq!(bucket.races, report.aggregate.races);
}
