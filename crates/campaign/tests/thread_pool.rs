//! Thread-pool determinism contract (library level).
//!
//! The pooled model-thread runtime re-dispatches workload closures
//! onto OS worker threads that stay alive across a model's executions
//! (see `ARCHITECTURE.md` "threading model"). These tests pin the
//! contract that makes that legal:
//!
//! * a pooled execution is **observationally identical** to one whose
//!   model threads are spawned fresh — same reports, same behavioral
//!   stats, same canonical JSON;
//! * worker count changes which executions share a pool (each campaign
//!   worker's shard reuses that worker's pool), so canonical
//!   byte-identity pooled-vs-fresh across 1/4/8 workers exercises
//!   every interleaving of warm and cold pools;
//! * after warmup the pool stops creating OS threads: `fresh_spawns`
//!   stays at the high-water mark while `pooled_dispatches` grows;
//! * the contract holds for every [`HandoverKind`] — the pool only
//!   changes *where* the run-token mailboxes live, never what they do.

use c11tester::{Config, HandoverKind, Model, TestReport};
use c11tester_campaign::{Campaign, CampaignBudget};

/// 10 child threads + main: enough width that a pooled model's
/// steady-state pool is exercised well past one worker.
fn wide_program() {
    use c11tester::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let x = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..10)
        .map(|i| {
            let x = Arc::clone(&x);
            c11tester::thread::spawn(move || {
                x.fetch_add(1, Ordering::AcqRel);
                x.store(i + 1, Ordering::Release);
            })
        })
        .collect();
    for h in handles {
        h.join();
    }
}

fn racy_program() {
    c11tester_workloads::ds::rwlock_buggy::run_buggy();
}

/// The strictest form of pooled-vs-fresh: replay every index of a
/// pooled model's stream on spawn-per-execution models and require
/// identical per-execution reports and aggregate.
#[test]
fn pooled_model_stream_equals_fresh_spawn_replays() {
    // Pool semantics only exist with OS-thread handover — the fiber
    // default multiplexes model threads on the driver and uses no pool.
    let pooled_config = || {
        Config::new()
            .with_seed(0x9001)
            .with_handover(HandoverKind::Park)
    };
    let fresh_config = || pooled_config().with_thread_pool(false);
    let mut pooled = Model::new(pooled_config());
    let mut aggregate = TestReport::default();
    for index in 0..12 {
        // From index 1 on, this model re-dispatches onto warm workers.
        let pooled_report = pooled.run(racy_program);
        assert_eq!(pooled_report.execution_index, index);
        let mut fresh = Model::new(fresh_config());
        let fresh_report = fresh.run_at(index, racy_program);
        assert_eq!(
            pooled_report.races, fresh_report.races,
            "index {index}: races diverged pooled-vs-fresh"
        );
        assert_eq!(
            pooled_report.failure, fresh_report.failure,
            "index {index}: failure diverged pooled-vs-fresh"
        );
        assert_eq!(
            pooled_report.stats, fresh_report.stats,
            "index {index}: behavioral stats diverged pooled-vs-fresh"
        );
        aggregate.absorb(&pooled_report);
    }
    // And the pooled model's aggregate equals the serial reference run
    // entirely without a pool.
    let serial = Model::new(fresh_config()).run_many(12, racy_program);
    assert_eq!(aggregate, serial);
}

/// Canonical byte-identity pooled-vs-fresh across worker counts, which
/// permutes how executions map onto warm and cold pools.
#[test]
fn canonical_json_identical_pooled_vs_fresh_across_worker_counts() {
    for (name, program) in [
        ("racy", racy_program as fn()),
        ("wide", wide_program as fn()),
    ] {
        let budget = CampaignBudget::executions(24);
        let pooled_config = Config::new()
            .with_seed(0x9002)
            .with_handover(HandoverKind::Park);
        let fresh_config = pooled_config.clone().with_thread_pool(false);
        let reference = Campaign::new(fresh_config.clone())
            .with_workers(1)
            .run(&budget, program)
            .canonical_json();
        for workers in [1, 4, 8] {
            for (mode, config) in [("pooled", &pooled_config), ("fresh", &fresh_config)] {
                let got = Campaign::new(config.clone())
                    .with_workers(workers)
                    .run(&budget, program)
                    .canonical_json();
                assert_eq!(
                    got, reference,
                    "{name}: canonical JSON diverged ({mode}, {workers} workers)"
                );
            }
        }
    }
}

/// The whole point of the tentpole: OS thread creation is bounded by
/// the peak number of concurrently-live model threads (the pool's
/// high-water mark), not by the execution count. A spawn-per-execution
/// runtime pays `children × executions` creations; the pool pays at
/// most `children + 1` in total and re-dispatches everything else.
/// (The pool may still grow *after* the first execution — a later
/// schedule can keep more children live at once than any earlier one —
/// so the pin is the width bound, not first-execution flatness.)
#[test]
fn no_fresh_spawns_after_warmup() {
    let os_config = || {
        Config::new()
            .with_seed(0x9003)
            .with_handover(HandoverKind::Park)
    };
    let mut model = Model::new(os_config());
    model.run(wide_program);
    let warm = model.thread_stats();
    assert!(
        warm.fresh_spawns > 0,
        "first execution must grow the pool from empty"
    );
    for _ in 0..8 {
        model.run(wide_program);
    }
    let steady = model.thread_stats();
    assert!(
        steady.fresh_spawns <= 11,
        "{} OS threads created over 9 executions of a 10-child workload — \
         the pool is spawning past its high-water mark",
        steady.fresh_spawns
    );
    // Every one of the 90 child threads was either a pool growth or a
    // re-dispatch, and re-dispatches dominate.
    assert_eq!(steady.pooled_dispatches + steady.fresh_spawns, 90);
    assert!(
        steady.pooled_dispatches >= 79,
        "steady-state executions must re-dispatch onto pooled workers"
    );
    // The opt-out really opts out: no pool, every model thread is a
    // fresh OS spawn.
    let mut fresh = Model::new(os_config().with_thread_pool(false));
    fresh.run(wide_program);
    fresh.run(wide_program);
    let stats = fresh.thread_stats();
    assert_eq!(stats.pooled_dispatches, 0);
    assert!(stats.fresh_spawns >= 20, "10 children × 2 executions");
}

/// Every handover strategy produces the same canonical bytes, pooled
/// or fresh. Budgets are tiny: `Spin` burns a full scheduling quantum
/// per switch on a single-core host.
#[test]
fn canonical_json_identical_across_all_handover_kinds() {
    for program in [racy_program as fn(), wide_program as fn()] {
        let budget = CampaignBudget::executions(3);
        let mut reference: Option<String> = None;
        for kind in HandoverKind::all() {
            for thread_pool in [true, false] {
                let config = Config::new()
                    .with_seed(0x9004)
                    .with_handover(kind)
                    .with_thread_pool(thread_pool);
                let got = Campaign::new(config)
                    .with_workers(1)
                    .run(&budget, program)
                    .canonical_json();
                match &reference {
                    None => reference = Some(got),
                    Some(want) => assert_eq!(
                        &got,
                        want,
                        "canonical JSON diverged under {} (thread_pool={thread_pool})",
                        kind.name()
                    ),
                }
            }
        }
    }
}
