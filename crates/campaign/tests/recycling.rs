//! Recycling determinism contract (library level).
//!
//! The hot-path allocation overhaul recycles `Execution` state between
//! the runs of a `Model` (arena, dense location table, mo-graph, and
//! scratch capacity survive; see `ARCHITECTURE.md` "hot path &
//! allocation discipline"). These tests pin the contract that makes
//! that legal:
//!
//! * a recycled execution is **observationally identical** to a fresh
//!   one — same reports, same behavioral stats, same canonical JSON;
//! * worker count changes *which* executions share a recycled state
//!   (worker `w` recycles along its shard `w, w+N, …`), so canonical
//!   byte-identity across 1/4/8 workers exercises every mixing of
//!   recycled-vs-fresh provisioning;
//! * clock vectors spill transparently past
//!   [`c11tester_core::INLINE_SLOTS`] threads — the inline→spill
//!   transition must be equally invisible.

use c11tester::{Config, Model, TestReport};
use c11tester_campaign::{Campaign, CampaignBudget};

/// A workload with 10 child threads + main: clock vectors must spill
/// past the 8-slot inline capacity, and the spilled vectors are
/// exercised by RMWs, release/acquire pairs, and race-checked
/// non-atomic cells.
fn wide_program() {
    use c11tester::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let x = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..10)
        .map(|i| {
            let x = Arc::clone(&x);
            c11tester::thread::spawn(move || {
                x.fetch_add(1, Ordering::AcqRel);
                let _ = x.load(Ordering::Acquire);
                x.store(i + 1, Ordering::Release);
            })
        })
        .collect();
    for h in handles {
        h.join();
    }
    let final_value = x.load(Ordering::Acquire);
    assert!(final_value <= 20, "model atomics stayed coherent");
}

fn racy_program() {
    c11tester_workloads::ds::rwlock_buggy::run_buggy();
}

/// The strictest form of recycled-vs-fresh: replay every index of a
/// recycling model's stream on brand-new (never-recycled) models and
/// require identical per-execution reports and aggregate.
#[test]
fn recycled_model_stream_equals_fresh_model_replays() {
    let config = || Config::new().with_seed(0xA110C);
    let mut recycling = Model::new(config());
    let mut aggregate = TestReport::default();
    for index in 0..12 {
        // From index 1 on, this model runs on recycled state.
        let recycled_report = recycling.run(racy_program);
        assert_eq!(recycled_report.execution_index, index);
        // A fresh model replaying the same index recycles nothing.
        let mut fresh = Model::new(config());
        let fresh_report = fresh.run_at(index, racy_program);
        assert_eq!(
            recycled_report.races, fresh_report.races,
            "index {index}: races diverged recycled-vs-fresh"
        );
        assert_eq!(
            recycled_report.failure, fresh_report.failure,
            "index {index}: failure diverged recycled-vs-fresh"
        );
        assert_eq!(
            recycled_report.stats, fresh_report.stats,
            "index {index}: behavioral stats diverged recycled-vs-fresh"
        );
        // The provisioning diagnostics *do* see the difference — that
        // is their whole job — without affecting equality above.
        if index > 0 {
            assert_eq!(recycled_report.stats.alloc.recycled_executions, 1);
            assert_eq!(recycled_report.stats.alloc.fresh_executions, 0);
        }
        assert_eq!(fresh_report.stats.alloc.fresh_executions, 1);
        aggregate.absorb(&recycled_report);
    }
    // And the recycling model's aggregate equals the serial reference.
    let serial = Model::new(config()).run_many(12, racy_program);
    assert_eq!(aggregate, serial);
}

/// Canonical byte-identity across worker counts, which permutes the
/// recycled-vs-fresh provisioning of every execution index.
#[test]
fn canonical_json_identical_across_worker_counts_with_recycling() {
    for (name, program) in [
        ("racy", racy_program as fn()),
        ("wide-spill", wide_program as fn()),
    ] {
        let config = Config::new().with_seed(0xBEEF);
        let budget = CampaignBudget::executions(24);
        let reference = Campaign::new(config.clone())
            .with_workers(1)
            .run(&budget, program)
            .canonical_json();
        for workers in [4, 8] {
            let got = Campaign::new(config.clone())
                .with_workers(workers)
                .run(&budget, program)
                .canonical_json();
            assert_eq!(
                got, reference,
                "{name}: canonical JSON diverged at {workers} workers"
            );
        }
    }
}

/// The inline→spill transition of `ClockVector` (>8 threads) is
/// exercised, diagnosed, and behaviorally invisible.
#[test]
fn wide_workload_spills_clock_vectors_deterministically() {
    let config = || Config::new().with_seed(0x51DE);
    let mut recycling = Model::new(config());
    let first = recycling.run(wide_program);
    let second = recycling.run(wide_program);
    // Spills actually happened (11 threads > INLINE_SLOTS = 8)…
    assert!(
        first.stats.alloc.clock_spills > 0,
        "expected spilled clock vectors, got none — workload no longer wide?"
    );
    assert!(second.stats.alloc.clock_spills > 0);
    assert_eq!(second.stats.alloc.recycled_executions, 1);
    // …and the recycled index-1 execution matches a fresh replay.
    let fresh = Model::new(config()).run_at(1, wide_program);
    assert_eq!(second.races, fresh.races);
    assert_eq!(second.stats, fresh.stats);
    assert_eq!(second.failure, fresh.failure);
}

/// The alloc diagnostics stay out of the canonical form unless asked
/// for, and the opt-in form accounts for every execution.
#[test]
fn alloc_stats_only_surface_behind_the_flag() {
    let report = Campaign::new(Config::new().with_seed(9))
        .with_workers(1)
        .run(&CampaignBudget::executions(10), racy_program);
    let canonical = report.canonical_json();
    assert!(
        !canonical.contains("\"alloc\""),
        "default canonical JSON must not carry alloc diagnostics"
    );
    let with_alloc = report.canonical_json_with_alloc_stats();
    assert!(with_alloc.contains("\"alloc\":{\"fresh_executions\":"));
    // One worker: the first execution is fresh, the rest recycled.
    assert!(with_alloc.contains("\"alloc\":{\"fresh_executions\":1,\"recycled_executions\":9,"));
    // Stripping the alloc block recovers the canonical form exactly —
    // the flag adds information, never perturbs it.
    let start = with_alloc
        .find(",\"alloc\":{")
        .expect("alloc block present");
    let end = with_alloc[start..].find('}').expect("block closes") + start + 1;
    let stripped = format!("{}{}", &with_alloc[..start], &with_alloc[end..]);
    assert_eq!(stripped, canonical);
}
