//! Golden-schema test for the canonical `CampaignReport` JSON.
//!
//! A fixed `(seed, target, mix, budget)` campaign must reproduce the
//! checked-in report **byte for byte**: executions are pure functions
//! of `(seed, index)`, the canonical form excludes timing/worker
//! count, and the emitter is deterministic. Any change to the report
//! schema or to the model's execution streams fails loudly here —
//! regenerate the golden file (instructions below) only when the
//! change is intentional, and bump the schema version when the shape
//! changes (this file pins `c11campaign/v4`; see `docs/SCHEMA.md` for
//! the full version history).
//!
//! Regenerate with:
//!
//! ```text
//! cargo test -p c11tester-campaign --test golden -- --ignored regenerate
//! ```
//!
//! which overwrites `tests/golden/rwlock_buggy_mixed.json` with the
//! current canonical output.

use c11tester::{Config, StrategyMix};
use c11tester_campaign::{Campaign, CampaignBudget, CampaignReport};
use c11tester_workloads::ds::rwlock_buggy;

const SEED: u64 = 0xC0FFEE;
const MIX: &str = "random:2,pct2:1,pct3:1";
const EXECUTIONS: u64 = 48;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/rwlock_buggy_mixed.json")
}

fn golden_campaign() -> CampaignReport {
    let config = Config::new()
        .with_seed(SEED)
        .with_mix(StrategyMix::parse(MIX).expect("valid mix"));
    Campaign::new(config)
        .with_workers(4)
        .run(&CampaignBudget::executions(EXECUTIONS), || {
            rwlock_buggy::run_buggy()
        })
}

#[test]
fn canonical_json_matches_the_checked_in_golden_report() {
    let expected = std::fs::read_to_string(golden_path())
        .expect("golden file present (regenerate with the ignored `regenerate` test)");
    let actual = golden_campaign().canonical_json();
    assert_eq!(
        actual,
        expected.trim_end(),
        "canonical campaign JSON diverged from the golden report; \
         if the schema change is intentional, regenerate the golden \
         file and review the diff"
    );
}

#[test]
fn golden_report_pins_the_schema_and_columns() {
    // Belt-and-braces over the raw file, so a regeneration that
    // accidentally drops columns is caught even if both sides agree.
    let golden = std::fs::read_to_string(golden_path()).expect("golden file present");
    for needle in [
        "\"schema\":\"c11campaign/v4\"",
        &format!("\"base_seed\":{SEED}"),
        &format!("\"strategy\":\"{MIX}\""),
        &format!("\"executions\":{EXECUTIONS}"),
        "\"per_strategy\":[{\"strategy\":\"pct2\"",
        "\"crashes\":0",
        "\"crash_records\":[]",
        "\"distinct_races\":[",
        "\"race_detection_rate\":",
        "\"stats\":{",
    ] {
        assert!(golden.contains(needle), "golden report lost `{needle}`");
    }
}

/// Not a test: rewrites the golden file from the current output.
#[test]
#[ignore = "golden-file regeneration helper"]
fn regenerate() {
    let json = golden_campaign().canonical_json();
    std::fs::write(golden_path(), format!("{json}\n")).expect("write golden file");
}
