//! The [`Model`]: drives one or many controlled executions of a test
//! program (paper §3 `Explore` and §7.6 repeated execution).

use crate::config::Config;
use crate::ctx::{self, ModelCtx};
use crate::engine::Engine;
use crate::report::{ExecutionReport, Failure, TestReport};
use c11tester_core::ThreadId;
use c11tester_race::RaceDetector;
use c11tester_runtime::{Runtime, Scheduler};
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// A testing model: repeatedly executes a program under controlled
/// scheduling, exploring reads-from choices and schedules, detecting
/// data races, assertion violations, and deadlocks.
///
/// Tool state persists *across* executions (paper §7.6): the race
/// detector's dedup history, the strategy's seed stream, and aggregate
/// statistics — while the program's state is reconstructed by re-running
/// the closure (our stand-in for the paper's fork snapshots).
///
/// # Examples
///
/// ```
/// use c11tester::{Config, Model};
/// use c11tester::sync::atomic::{AtomicU32, Ordering};
/// use std::sync::Arc;
///
/// let mut model = Model::new(Config::new().with_seed(1));
/// let report = model.run(|| {
///     let x = Arc::new(AtomicU32::new(0));
///     let x2 = Arc::clone(&x);
///     let t = c11tester::thread::spawn(move || {
///         x2.store(1, Ordering::Release);
///     });
///     let _ = x.load(Ordering::Acquire);
///     t.join();
/// });
/// assert!(!report.found_bug());
/// ```
pub struct Model {
    config: Config,
    race: Option<RaceDetector>,
    scheduler: Option<Box<dyn Scheduler>>,
    execution_index: u64,
}

impl std::fmt::Debug for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Model")
            .field("config", &self.config)
            .field("execution_index", &self.execution_index)
            .finish_non_exhaustive()
    }
}

impl Model {
    /// Creates a model with the given configuration.
    pub fn new(config: Config) -> Self {
        Model {
            config,
            race: Some(RaceDetector::new()),
            scheduler: None,
            execution_index: 0,
        }
    }

    /// Creates a model driven by a custom strategy plugin (paper §3:
    /// "C11Tester has a pluggable framework for testing algorithms").
    pub fn with_scheduler(config: Config, scheduler: Box<dyn Scheduler>) -> Self {
        Model {
            config,
            race: Some(RaceDetector::new()),
            scheduler: Some(scheduler),
            execution_index: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Number of executions performed so far.
    pub fn executions(&self) -> u64 {
        self.execution_index
    }

    /// Runs the program once under controlled scheduling.
    pub fn run<F>(&mut self, f: F) -> ExecutionReport
    where
        F: Fn() + Send + Sync,
    {
        let runtime = Runtime::new(self.config.handover);
        let race = self.race.take().expect("race detector present");
        let scheduler = self.scheduler.take();
        let engine = Engine::new(&self.config, self.execution_index, race, scheduler);
        let ctx = Arc::new(ModelCtx {
            engine: Mutex::new(engine),
            runtime: Arc::clone(&runtime),
        });

        // The caller's OS thread doubles as model thread 0.
        let main_slot = runtime.add_slot();
        debug_assert_eq!(main_slot, ThreadId::MAIN.index());
        runtime.bind_current(main_slot);
        ctx::set_current(Arc::clone(&ctx), ThreadId::MAIN);

        let body = catch_unwind(AssertUnwindSafe(&f));
        match body {
            Ok(()) => self.main_finished(&ctx),
            Err(payload) => {
                if payload.downcast_ref::<c11tester_runtime::Aborted>().is_none() {
                    let msg = panic_message_pub(payload);
                    ctx::fail_execution(&ctx, Failure::Panic(msg));
                }
                // Aborted: failure already recorded by whoever poisoned.
            }
        }

        ctx::clear_current();
        runtime.join_all();

        // Disassemble the engine; tool state persists across executions.
        // (Model threads have exited; the lock is free. TLS teardown
        // may still hold `Arc<ModelCtx>` clones briefly, so the engine
        // pieces are moved out rather than unwrapping the Arc.)
        let mut eng = ctx.engine.lock();
        let races = eng.race.take_reports();
        let elided = eng.race.elided_volatile;
        eng.race.elided_volatile = 0;
        let mut race = std::mem::take(&mut eng.race);
        race.begin_execution(); // drop shadow state eagerly
        self.race = Some(race);
        self.scheduler = Some(std::mem::replace(
            &mut eng.scheduler,
            Box::new(c11tester_runtime::RandomScheduler::new(0)),
        ));
        let report = ExecutionReport {
            execution_index: self.execution_index,
            races,
            failure: eng.failure.clone(),
            stats: *eng.exec.stats(),
            elided_volatile_races: elided,
        };
        drop(eng);
        self.execution_index += 1;
        report
    }

    /// Runs the program `iterations` times (paper §7.6), aggregating
    /// detection rates and distinct reports.
    pub fn check<F>(&mut self, iterations: u64, f: F) -> TestReport
    where
        F: Fn() + Send + Sync,
    {
        let mut report = TestReport::default();
        for _ in 0..iterations {
            let exec = self.run(&f);
            report.absorb(&exec);
        }
        report
    }

    /// Main thread finished its program: if other threads remain, hand
    /// the token onward and wait for the execution to complete.
    fn main_finished(&self, ctx: &Arc<ModelCtx>) {
        let tid = ThreadId::MAIN;
        if ctx.runtime.is_poisoned() {
            return;
        }
        enum Next {
            Done,
            Switch(ThreadId),
            Poison,
        }
        let action = {
            let mut eng = ctx.engine.lock();
            eng.exec.sync_event(tid);
            if eng.finish_thread(tid) {
                Next::Done
            } else {
                let enabled = eng.enabled();
                if enabled.is_empty() {
                    eng.fail(Failure::Deadlock);
                    Next::Poison
                } else {
                    let next = eng.scheduler.next_thread(&enabled, tid);
                    Next::Switch(next)
                }
            }
        };
        match action {
            Next::Done => {}
            Next::Poison => ctx.runtime.poison(),
            Next::Switch(next) => {
                ctx.runtime.wake(next.index());
                // Wait for completion (or abort): the last finishing
                // thread (or the poisoner) wakes the driver.
                loop {
                    if ctx.runtime.park(tid.index()).is_err() {
                        return;
                    }
                    let eng = ctx.engine.lock();
                    if eng.completed {
                        return;
                    }
                    // Spurious wake: pass the token to someone runnable.
                    drop(eng);
                }
            }
        }
    }
}

pub(crate) fn panic_message_pub(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_program_completes() {
        let mut model = Model::new(Config::new());
        let report = model.run(|| {});
        assert!(!report.found_bug());
        assert_eq!(report.execution_index, 0);
        let report2 = model.run(|| {});
        assert_eq!(report2.execution_index, 1);
    }

    #[test]
    fn panics_are_reported_as_assertion_violations() {
        let mut model = Model::new(Config::new());
        let report = model.run(|| {
            panic!("invariant violated: queue empty");
        });
        match &report.failure {
            Some(Failure::Panic(msg)) => assert!(msg.contains("invariant violated")),
            other => panic!("expected panic failure, got {other:?}"),
        }
        assert!(report.found_bug());
    }

    #[test]
    fn check_aggregates_runs() {
        let mut model = Model::new(Config::new());
        let report = model.check(5, || {});
        assert_eq!(report.executions, 5);
        assert_eq!(report.executions_with_bug, 0);
        assert_eq!(model.executions(), 5);
    }
}
