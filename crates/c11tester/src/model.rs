//! The [`Model`]: drives one or many controlled executions of a test
//! program (paper §3 `Explore` and §7.6 repeated execution).

use crate::config::Config;
use crate::ctx::{self, ModelCtx};
use crate::engine::Engine;
use crate::report::{ExecutionReport, Failure, TestReport};
use c11tester_core::{ThreadId, TraceKey, TraceSink};
use c11tester_race::RaceDetector;
use c11tester_runtime::{Runtime, Scheduler, ThreadPool};
use c11tester_telemetry::StderrSink;
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// A testing model: repeatedly executes a program under controlled
/// scheduling, exploring reads-from choices and schedules, detecting
/// data races, assertion violations, and deadlocks.
///
/// Tool state persists *across* executions (paper §7.6): the race
/// detector's dedup history, the strategy's seed stream, and aggregate
/// statistics — while the program's state is reconstructed by re-running
/// the closure (our stand-in for the paper's fork snapshots).
///
/// # Execution indexing and determinism
///
/// Every execution has a global **execution index**, and the built-in
/// strategies derive their random stream from `(config.seed, index)`
/// alone — so execution `i` under a given [`Config`] is reproducible
/// regardless of which model instance (or campaign worker) runs it.
/// [`Model::for_shard`] creates a model that walks the index arithmetic
/// progression `shard, shard + stride, shard + 2·stride, …`; a campaign
/// with `N` workers gives worker `w` the shard `(w, N)`, partitioning
/// the same index set the serial model `(0, 1)` walks.
///
/// # Examples
///
/// ```
/// use c11tester::{Config, Model};
/// use c11tester::sync::atomic::{AtomicU32, Ordering};
/// use std::sync::Arc;
///
/// let mut model = Model::new(Config::new().with_seed(1));
/// let report = model.run(|| {
///     let x = Arc::new(AtomicU32::new(0));
///     let x2 = Arc::clone(&x);
///     let t = c11tester::thread::spawn(move || {
///         x2.store(1, Ordering::Release);
///     });
///     let _ = x.load(Ordering::Acquire);
///     t.join();
/// });
/// assert!(!report.found_bug());
/// ```
pub struct Model {
    config: Config,
    race: Option<RaceDetector>,
    /// A custom strategy plugin installed via [`Model::with_scheduler`]
    /// (persisted across executions). Built-in strategies are instead
    /// constructed per execution from `config.strategy_for(index)`, so
    /// a [`crate::StrategyMix`] can vary the scheduler kind per index.
    scheduler: Option<Box<dyn Scheduler>>,
    /// Global index the next `run` call executes.
    execution_index: u64,
    /// Index step between consecutive `run` calls (1 for serial models,
    /// the worker count for campaign shards).
    stride: u64,
    /// Executions performed by this instance.
    runs: u64,
    /// The previous execution's state, recycled into the next run
    /// ([`c11tester_core::Execution::reset`] retains arena, location
    /// table, mo-graph, and scratch capacity instead of reallocating).
    /// Behaviorally invisible; see the recycling determinism contract.
    exec_pool: Option<c11tester_core::Execution>,
    /// Destination for structured schedule traces
    /// ([`Model::set_trace_sink`]). When `None` but tracing is enabled
    /// (the legacy `C11TESTER_TRACE` environment variable), events go
    /// to a [`StderrSink`] — the env var is an alias for stderr JSONL.
    trace_sink: Option<Box<dyn TraceSink>>,
    /// Epoch component of the trace key (0 unless an adaptive campaign
    /// sets it via [`Model::set_trace_epoch`]).
    trace_epoch: u64,
    /// Reusable OS worker threads backing the model threads of every
    /// execution this instance runs (`None` when
    /// [`Config::thread_pool`] is off — spawn-per-execution mode).
    /// Like [`Model::exec_pool`], behaviorally invisible: pooled and
    /// fresh runs produce byte-identical canonical output.
    thread_pool: Option<Arc<ThreadPool>>,
    /// Fresh OS threads spawned across this instance's executions
    /// (spawn-per-execution mode only; pool growth is counted by the
    /// pool itself).
    fresh_spawns: u64,
}

/// Model-thread provisioning counters over a [`Model`]'s lifetime
/// ([`Model::thread_stats`]) — the threading analog of
/// `AllocStats`' fresh/recycled split. Diagnostic only; never part of
/// canonical output.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ThreadSpawnStats {
    /// Model threads provisioned by re-dispatching onto an already-live
    /// pooled worker (always 0 with the pool disabled).
    pub pooled_dispatches: u64,
    /// Model threads provisioned by creating a new OS thread: every
    /// spawn in spawn-per-execution mode, only pool *growth* in pooled
    /// mode — so after warmup this stops increasing.
    pub fresh_spawns: u64,
}

/// The reusable pieces of a disassembled [`Model`]
/// ([`Model::into_parts`]): enough to reconstruct or rewire the model
/// onto a different execution-index shard.
pub struct ModelParts {
    /// The configuration the model ran with.
    pub config: Config,
    /// The custom strategy plugin, if one was installed.
    pub scheduler: Option<Box<dyn Scheduler>>,
    /// The race detector carrying tool state across executions.
    pub race: RaceDetector,
    /// The global index the next execution would have used.
    pub next_execution_index: u64,
    /// The index stride.
    pub stride: u64,
}

impl std::fmt::Debug for ModelParts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelParts")
            .field("config", &self.config)
            .field("next_execution_index", &self.next_execution_index)
            .field("stride", &self.stride)
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Model")
            .field("config", &self.config)
            .field("execution_index", &self.execution_index)
            .field("stride", &self.stride)
            .field("runs", &self.runs)
            .finish_non_exhaustive()
    }
}

impl Model {
    /// Creates a model with the given configuration.
    pub fn new(config: Config) -> Self {
        Model::for_shard(config, 0, 1)
    }

    /// Creates a model that executes the index progression
    /// `shard, shard + stride, shard + 2·stride, …` — the seed-shard
    /// constructor campaigns use to partition one logical execution
    /// stream over `stride` workers. `Model::for_shard(config, 0, 1)`
    /// is the serial model.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0` or `shard >= stride`.
    pub fn for_shard(config: Config, shard: u64, stride: u64) -> Self {
        assert!(
            shard < stride,
            "shard index {shard} out of range for stride {stride}"
        );
        Model::for_shard_from(config, shard, stride)
    }

    /// Creates a model that executes the index progression
    /// `first_index, first_index + stride, …` — [`Model::for_shard`]
    /// with an arbitrary starting index instead of one below `stride`.
    /// Epoch-granular campaigns use this to walk a *range* of the
    /// global execution stream: epoch `e` of length `L` gives worker
    /// `w` of `N` the progression starting at `e·L + w`.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn for_shard_from(config: Config, first_index: u64, stride: u64) -> Self {
        assert!(stride > 0, "shard stride must be positive");
        let thread_pool = config.thread_pool.then(ThreadPool::new);
        Model {
            config,
            race: Some(RaceDetector::new()),
            scheduler: None,
            execution_index: first_index,
            stride,
            runs: 0,
            exec_pool: None,
            trace_sink: None,
            trace_epoch: 0,
            thread_pool,
            fresh_spawns: 0,
        }
    }

    /// Creates a model driven by a custom strategy plugin (paper §3:
    /// "C11Tester has a pluggable framework for testing algorithms").
    pub fn with_scheduler(config: Config, scheduler: Box<dyn Scheduler>) -> Self {
        let thread_pool = config.thread_pool.then(ThreadPool::new);
        Model {
            config,
            race: Some(RaceDetector::new()),
            scheduler: Some(scheduler),
            execution_index: 0,
            stride: 1,
            runs: 0,
            exec_pool: None,
            trace_sink: None,
            trace_epoch: 0,
            thread_pool,
            fresh_spawns: 0,
        }
    }

    /// Disassembles the model into its reusable parts.
    pub fn into_parts(mut self) -> ModelParts {
        ModelParts {
            config: self.config.clone(),
            scheduler: self.scheduler.take(),
            race: self.race.take().expect("race detector present"),
            next_execution_index: self.execution_index,
            stride: self.stride,
        }
    }

    /// Reassembles a model from [`ModelParts`].
    pub fn from_parts(parts: ModelParts) -> Self {
        let thread_pool = parts.config.thread_pool.then(ThreadPool::new);
        Model {
            config: parts.config,
            race: Some(parts.race),
            scheduler: parts.scheduler,
            execution_index: parts.next_execution_index,
            stride: parts.stride,
            runs: 0,
            exec_pool: None,
            trace_sink: None,
            trace_epoch: 0,
            thread_pool,
            fresh_spawns: 0,
        }
    }

    /// Installs a sink for structured schedule traces. Buffering still
    /// requires tracing to be enabled
    /// ([`c11tester_telemetry::set_tracing`] or the `C11TESTER_TRACE`
    /// environment variable); after each execution the committed-event
    /// sequence is recorded keyed by `(seed, epoch, index)`.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace_sink = Some(sink);
    }

    /// Builder form of [`Model::set_trace_sink`].
    pub fn with_trace_sink(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.trace_sink = Some(sink);
        self
    }

    /// Removes and returns the installed trace sink (to inspect an
    /// in-memory sink after running).
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace_sink.take()
    }

    /// Sets the epoch component of the trace key (adaptive campaigns
    /// label executions `(seed, epoch, offset-derived index)`).
    pub fn set_trace_epoch(&mut self, epoch: u64) {
        self.trace_epoch = epoch;
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Number of executions performed by this instance.
    pub fn executions(&self) -> u64 {
        self.runs
    }

    /// The global execution index the next [`Model::run`] will use.
    pub fn next_execution_index(&self) -> u64 {
        self.execution_index
    }

    /// The index stride between consecutive runs.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Model-thread provisioning counters over this instance's
    /// lifetime: pooled re-dispatches vs fresh OS-thread spawns. After
    /// warmup a pooled model's `fresh_spawns` stays constant — the
    /// property campaigns pin via `WorkerMetrics`.
    pub fn thread_stats(&self) -> ThreadSpawnStats {
        match &self.thread_pool {
            Some(pool) => ThreadSpawnStats {
                pooled_dispatches: pool.dispatches_reused(),
                fresh_spawns: pool.workers_spawned() + self.fresh_spawns,
            },
            None => ThreadSpawnStats {
                pooled_dispatches: 0,
                fresh_spawns: self.fresh_spawns,
            },
        }
    }

    /// Runs the program once under controlled scheduling at the next
    /// index of this model's shard progression.
    pub fn run<F>(&mut self, f: F) -> ExecutionReport
    where
        F: Fn() + Send + Sync,
    {
        let index = self.execution_index;
        let report = self.run_at(index, f);
        self.execution_index += self.stride;
        report
    }

    /// Runs the program once at an explicit global execution index,
    /// without advancing the shard progression. With the built-in
    /// strategies this reproduces exactly the execution a campaign (or
    /// any other model over the same [`Config`]) labeled with that
    /// index — the replay entry point for "execution #i raced".
    pub fn run_at<F>(&mut self, execution_index: u64, f: F) -> ExecutionReport
    where
        F: Fn() + Send + Sync,
    {
        let runtime = match &self.thread_pool {
            Some(pool) => Runtime::with_pool(self.config.handover, Arc::clone(pool)),
            None => Runtime::new(self.config.handover),
        };
        let race = self.race.take().expect("race detector present");
        let custom = self.scheduler.is_some();
        let scheduler = self.scheduler.take();
        let strategy = if custom {
            "custom".to_string()
        } else {
            self.config.strategy_for(execution_index).spec()
        };
        let engine = Engine::new(
            &self.config,
            execution_index,
            race,
            scheduler,
            self.exec_pool.take(),
        );
        let ctx = Arc::new(ModelCtx {
            engine: Mutex::new(engine),
            runtime: Arc::clone(&runtime),
        });

        // The caller's OS thread doubles as model thread 0.
        let main_slot = runtime.add_slot();
        debug_assert_eq!(main_slot, ThreadId::MAIN.index());
        runtime.bind_current(main_slot);
        ctx::set_current(Arc::clone(&ctx), ThreadId::MAIN);

        let body = catch_unwind(AssertUnwindSafe(&f));
        match body {
            Ok(()) => self.main_finished(&ctx),
            Err(payload) => {
                if payload
                    .downcast_ref::<c11tester_runtime::Aborted>()
                    .is_none()
                {
                    let msg = panic_message_pub(payload);
                    ctx::fail_execution(&ctx, Failure::Panic(msg));
                }
                // Aborted: failure already recorded by whoever poisoned.
            }
        }

        // Reap model threads before clearing the TLS binding: in fiber
        // mode `join_all` unwinds still-suspended fibers, which read
        // the binding (shared borrows) on their way out.
        let joined = runtime.join_all();
        ctx::clear_current();
        self.fresh_spawns += runtime.fresh_spawn_count();

        // Disassemble the engine; tool state persists across executions.
        // (Model threads have exited; the lock is free. TLS teardown
        // may still hold `Arc<ModelCtx>` clones briefly, so the engine
        // pieces are moved out rather than unwrapping the Arc.)
        let mut eng = ctx.engine.lock();
        if let Err(msg) = joined {
            // A panic escaped a model thread's root catch_unwind (TLS
            // destructors, teardown code): surface it instead of
            // dropping it, unless the execution already recorded its
            // own failure.
            eng.fail(Failure::Infra(msg));
        }
        let races = eng.race.take_reports();
        let elided = eng.race.elided_volatile;
        eng.race.elided_volatile = 0;
        // No begin_execution here: the next Engine::new wipes the
        // detector's (capacity-retaining) shadow tables before use, so
        // an eager wipe would just zero-fill every word twice per
        // execution — nothing reads shadow state in between.
        self.race = Some(std::mem::take(&mut eng.race));
        if custom {
            // Only custom plugins persist across executions; built-in
            // schedulers are rebuilt per index (they are pure functions
            // of (seed, index) via begin_execution, so rebuilding is
            // behavior-identical and lets a mix change the kind).
            self.scheduler = Some(std::mem::replace(
                &mut eng.scheduler,
                Box::new(c11tester_runtime::RandomScheduler::new(0)),
            ));
        }
        eng.exec.finalize_alloc_stats();
        // Structured schedule trace: drain the committed-event buffer
        // (non-empty only while tracing is enabled) to the sink, keyed
        // by the execution's replay coordinates.
        let trace_events = eng.exec.take_trace_events();
        if !trace_events.is_empty() {
            let key = TraceKey {
                seed: self.config.seed,
                epoch: self.trace_epoch,
                index: execution_index,
            };
            match &mut self.trace_sink {
                Some(sink) => sink.record(key, &trace_events),
                // The C11TESTER_TRACE env var without an installed sink
                // aliases to JSONL on stderr.
                None => StderrSink.record(key, &trace_events),
            }
        }
        let report = ExecutionReport {
            execution_index,
            strategy,
            races,
            failure: eng.failure.clone(),
            stats: *eng.exec.stats(),
            elided_volatile_races: elided,
            coverage: eng.exec.take_coverage(),
        };
        // Reclaim the execution state for recycling into the next run
        // (the placeholder left behind is never driven).
        self.exec_pool = Some(std::mem::replace(
            &mut eng.exec,
            c11tester_core::Execution::new(self.config.policy),
        ));
        drop(eng);
        self.runs += 1;
        report
    }

    /// Runs the next `executions` indices of this model's shard
    /// progression, aggregating detection rates and deduplicated
    /// reports (paper §7.6).
    ///
    /// This is the **serial reference path for campaigns**: a
    /// `c11tester-campaign` run over the same [`Config`] and execution
    /// count produces an aggregate equal to this one for any worker
    /// count, because each execution index behaves identically wherever
    /// it runs and [`TestReport`] aggregation is order-independent.
    pub fn run_many<F>(&mut self, executions: u64, f: F) -> TestReport
    where
        F: Fn() + Send + Sync,
    {
        let mut report = TestReport::default();
        for _ in 0..executions {
            let exec = self.run(&f);
            report.absorb(&exec);
        }
        report
    }

    /// Runs the program `iterations` times (paper §7.6), aggregating
    /// detection rates and distinct reports. Alias of
    /// [`Model::run_many`], kept for the paper-facing vocabulary.
    pub fn check<F>(&mut self, iterations: u64, f: F) -> TestReport
    where
        F: Fn() + Send + Sync,
    {
        self.run_many(iterations, f)
    }

    /// Main thread finished its program: if other threads remain, hand
    /// the token onward and wait for the execution to complete.
    fn main_finished(&self, ctx: &Arc<ModelCtx>) {
        let tid = ThreadId::MAIN;
        if ctx.runtime.is_poisoned() {
            return;
        }
        enum Next {
            Done,
            Switch(ThreadId),
            Poison,
        }
        let action = {
            let mut eng = ctx.engine.lock();
            eng.exec.sync_event(tid);
            if eng.finish_thread(tid) {
                Next::Done
            } else {
                match eng.next_runnable(tid) {
                    None => {
                        eng.fail(Failure::Deadlock);
                        Next::Poison
                    }
                    Some(next) => Next::Switch(next),
                }
            }
        };
        match action {
            Next::Done => {}
            Next::Poison => ctx.runtime.poison(),
            Next::Switch(next) => {
                ctx.runtime.wake(next.index());
                // Wait for completion (or abort): the last finishing
                // thread (or the poisoner) wakes the driver.
                loop {
                    if ctx.runtime.park(tid.index()).is_err() {
                        return;
                    }
                    let eng = ctx.engine.lock();
                    if eng.completed {
                        return;
                    }
                    // Spurious wake: pass the token to someone runnable.
                    drop(eng);
                }
            }
        }
    }
}

pub(crate) fn panic_message_pub(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_program_completes() {
        let mut model = Model::new(Config::new());
        let report = model.run(|| {});
        assert!(!report.found_bug());
        assert_eq!(report.execution_index, 0);
        let report2 = model.run(|| {});
        assert_eq!(report2.execution_index, 1);
    }

    #[test]
    fn panics_are_reported_as_assertion_violations() {
        let mut model = Model::new(Config::new());
        let report = model.run(|| {
            panic!("invariant violated: queue empty");
        });
        match &report.failure {
            Some(Failure::Panic(msg)) => assert!(msg.contains("invariant violated")),
            other => panic!("expected panic failure, got {other:?}"),
        }
        assert!(report.found_bug());
    }

    #[test]
    fn check_aggregates_runs() {
        let mut model = Model::new(Config::new());
        let report = model.check(5, || {});
        assert_eq!(report.executions, 5);
        assert_eq!(report.executions_with_bug, 0);
        assert_eq!(model.executions(), 5);
    }

    #[test]
    fn sharded_models_walk_their_index_progression() {
        let mut shard = Model::for_shard(Config::new(), 2, 4);
        assert_eq!(shard.next_execution_index(), 2);
        assert_eq!(shard.stride(), 4);
        let r0 = shard.run(|| {});
        let r1 = shard.run(|| {});
        assert_eq!(r0.execution_index, 2);
        assert_eq!(r1.execution_index, 6);
        assert_eq!(shard.executions(), 2);
        assert_eq!(shard.next_execution_index(), 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_index_must_be_below_stride() {
        let _ = Model::for_shard(Config::new(), 4, 4);
    }

    #[test]
    fn run_at_replays_a_specific_index() {
        // The program's outcome is a pure function of the execution
        // index: replaying index 3 on a fresh model must reproduce what
        // a serial model produced there.
        use crate::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        let program = || {
            let x = Arc::new(AtomicU32::new(0));
            let x2 = Arc::clone(&x);
            let t = crate::thread::spawn(move || {
                x2.store(1, Ordering::Relaxed);
                x2.store(2, Ordering::Relaxed);
            });
            let _ = x.load(Ordering::Relaxed);
            let _ = x.load(Ordering::Relaxed);
            t.join();
        };
        let mut serial = Model::new(Config::new().with_seed(99));
        let serial_reports: Vec<_> = (0..4).map(|_| serial.run(program)).collect();
        let mut replay = Model::new(Config::new().with_seed(99));
        let r = replay.run_at(3, program);
        assert_eq!(r.execution_index, 3);
        assert_eq!(r.stats, serial_reports[3].stats);
        // run_at does not advance the shard progression.
        assert_eq!(replay.next_execution_index(), 0);
    }

    #[test]
    fn into_parts_roundtrip_preserves_progression() {
        let mut m = Model::for_shard(Config::new().with_seed(5), 1, 2);
        let _ = m.run(|| {});
        let parts = m.into_parts();
        assert_eq!(parts.next_execution_index, 3);
        assert_eq!(parts.stride, 2);
        let mut m2 = Model::from_parts(parts);
        let r = m2.run(|| {});
        assert_eq!(r.execution_index, 3);
    }

    #[test]
    fn run_many_aggregate_is_partition_invariant() {
        // Stripe the same 6 indices over 1, 2, and 3 shards; merged
        // aggregates must be identical to the serial run_many report.
        use crate::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        let program = || {
            let x = Arc::new(AtomicU32::new(0));
            let x2 = Arc::clone(&x);
            let t = crate::thread::spawn(move || {
                x2.store(1, Ordering::Relaxed);
            });
            let _ = x.load(Ordering::Relaxed);
            t.join();
        };
        let config = || Config::new().with_seed(1234);
        let mut serial = Model::new(config());
        let reference = serial.run_many(6, program);
        for workers in [2u64, 3] {
            let mut merged = TestReport::default();
            for w in 0..workers {
                let mut shard = Model::for_shard(config(), w, workers);
                let quota = (6 - w).div_ceil(workers);
                let part = shard.run_many(quota, program);
                merged.merge(&part);
            }
            assert_eq!(merged, reference, "partition over {workers} shards");
        }
    }
}
