//! The per-execution engine: memory model + race detector + strategy +
//! thread-status bookkeeping, protected by one mutex (only one model
//! thread runs at a time, so the lock is uncontended by construction).

use crate::config::{Config, Strategy};
use crate::report::Failure;
use c11tester_core::{Execution, MemOrder, ObjId, StoreIdx, ThreadId};
use c11tester_race::RaceDetector;
use c11tester_runtime::{BurstScheduler, PctScheduler, RandomScheduler, Scheduler};

/// Why a thread is not currently runnable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum WaitReason {
    /// Waiting for a thread to finish.
    Join(ThreadId),
    /// Waiting for a mutex to be released.
    Mutex(ObjId),
    /// Waiting on a condition variable.
    Condvar(ObjId),
}

/// Lifecycle state of a model thread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    Runnable,
    Blocked(WaitReason),
    Finished,
}

pub(crate) struct Engine {
    pub exec: Execution,
    pub race: RaceDetector,
    pub scheduler: Box<dyn Scheduler>,
    pub status: Vec<Status>,
    pub live: usize,
    pub completed: bool,
    pub failure: Option<Failure>,
    pub volatile_load_order: MemOrder,
    pub volatile_store_order: MemOrder,
    pub max_events: u64,
    /// Labels count for auto-generated atomic names.
    pub anon_objects: u64,
    /// Reusable buffer of runnable threads for scheduling decisions
    /// (one decision per visible operation — no per-step allocation).
    enabled_buf: Vec<ThreadId>,
    /// Reusable buffer for feasible read candidates (one fill per
    /// load/RMW — taken and returned by the ctx hot path).
    pub cands_buf: Vec<StoreIdx>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("live", &self.live)
            .field("completed", &self.completed)
            .field("failure", &self.failure)
            .field("events", &self.exec.now())
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Builds the engine for one execution. When `recycled` carries the
    /// previous execution's state it is [`Execution::reset`] in place —
    /// retaining arenas, the dense location table, the mo-graph, and
    /// every scratch buffer — instead of being reallocated; behavior is
    /// identical either way (the recycling determinism contract).
    pub(crate) fn new(
        config: &Config,
        execution_index: u64,
        race: RaceDetector,
        scheduler: Option<Box<dyn Scheduler>>,
        recycled: Option<Execution>,
    ) -> Self {
        // Built-in strategies are resolved *per execution index*
        // (Config::strategy_for), so a strategy mix assigns each index
        // its own scheduler kind while staying a pure function of
        // (seed, index).
        let mut scheduler: Box<dyn Scheduler> =
            scheduler.unwrap_or_else(|| match config.strategy_for(execution_index) {
                Strategy::Random => Box::new(RandomScheduler::new(config.seed)),
                Strategy::Burst { mean } => Box::new(BurstScheduler::new(config.seed, mean)),
                Strategy::Pct {
                    depth,
                    expected_ops,
                } => Box::new(PctScheduler::new(config.seed, depth, expected_ops)),
            });
        scheduler.begin_execution(execution_index);
        let mut race = race;
        race.begin_execution();
        let exec = match recycled {
            Some(mut exec) => {
                exec.reset(config.policy, config.prune);
                exec
            }
            None => Execution::with_pruning(config.policy, config.prune),
        };
        Engine {
            exec,
            race,
            scheduler,
            status: vec![Status::Runnable],
            live: 1,
            completed: false,
            failure: None,
            volatile_load_order: config.volatile_load_order,
            volatile_store_order: config.volatile_store_order,
            max_events: config.max_events,
            anon_objects: 0,
            enabled_buf: Vec::new(),
            cands_buf: Vec::new(),
        }
    }

    /// Is the thread currently runnable? (Debug-assert helper for the
    /// scheduling protocol's state-machine invariants.)
    pub(crate) fn is_runnable(&self, t: ThreadId) -> bool {
        matches!(self.status[t.index()], Status::Runnable)
    }

    /// Asks the strategy for the next thread among the currently
    /// runnable ones, or `None` when nothing is runnable (deadlock).
    /// Uses the reusable enabled-set buffer — the per-operation
    /// scheduling decision performs no allocation.
    pub(crate) fn next_runnable(&mut self, current: ThreadId) -> Option<ThreadId> {
        let timer = c11tester_telemetry::phase_start(c11tester_core::Phase::Scheduling);
        self.enabled_buf.clear();
        for (ix, s) in self.status.iter().enumerate() {
            if matches!(s, Status::Runnable) {
                self.enabled_buf.push(ThreadId::from_index(ix));
            }
        }
        if self.enabled_buf.is_empty() {
            return None;
        }
        let next = self.scheduler.next_thread(&self.enabled_buf, current);
        if let Some(timer) = timer {
            timer.stop(self.exec.phase_mut());
        }
        Some(next)
    }

    /// Registers a freshly forked thread as runnable.
    pub(crate) fn register_thread(&mut self, t: ThreadId) {
        debug_assert_eq!(t.index(), self.status.len());
        self.status.push(Status::Runnable);
        self.live += 1;
    }

    /// Marks a thread blocked. Join waits are mirrored into the core
    /// execution so pruning's `CV_min` can credit the parked joiner
    /// with the join target's clock (§7.1).
    pub(crate) fn block(&mut self, t: ThreadId, reason: WaitReason) {
        if let WaitReason::Join(child) = reason {
            self.exec.set_join_waiting(t, Some(child));
        }
        self.status[t.index()] = Status::Blocked(reason);
    }

    /// Re-enables a specific blocked thread.
    pub(crate) fn unblock_one(&mut self, t: ThreadId) {
        debug_assert!(matches!(self.status[t.index()], Status::Blocked(_)));
        if matches!(self.status[t.index()], Status::Blocked(WaitReason::Join(_))) {
            self.exec.set_join_waiting(t, None);
        }
        self.status[t.index()] = Status::Runnable;
    }

    /// Re-enables every thread blocked for a reason matching `pred`.
    pub(crate) fn unblock_where(&mut self, mut pred: impl FnMut(&WaitReason) -> bool) {
        for (ix, s) in self.status.iter_mut().enumerate() {
            if let Status::Blocked(r) = s {
                if pred(r) {
                    if matches!(r, WaitReason::Join(_)) {
                        self.exec.set_join_waiting(ThreadId::from_index(ix), None);
                    }
                    *s = Status::Runnable;
                }
            }
        }
    }

    /// Threads blocked on a condition variable, in thread order.
    pub(crate) fn condvar_waiters(&self, obj: ObjId) -> Vec<ThreadId> {
        self.status
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Status::Blocked(WaitReason::Condvar(o)) if *o == obj))
            .map(|(ix, _)| ThreadId::from_index(ix))
            .collect()
    }

    /// Marks a thread finished; wakes joiners. Returns `true` if this
    /// completed the execution (no live threads remain).
    pub(crate) fn finish_thread(&mut self, t: ThreadId) -> bool {
        self.exec.finish_thread(t);
        self.status[t.index()] = Status::Finished;
        self.live -= 1;
        self.unblock_where(|r| matches!(r, WaitReason::Join(c) if *c == t));
        if self.live == 0 {
            self.completed = true;
            true
        } else {
            false
        }
    }

    /// Is the thread finished?
    pub(crate) fn is_finished(&self, t: ThreadId) -> bool {
        matches!(self.status[t.index()], Status::Finished)
    }

    /// Records a fatal condition and marks the execution complete.
    pub(crate) fn fail(&mut self, failure: Failure) {
        if self.failure.is_none() {
            self.failure = Some(failure);
        }
        self.completed = true;
    }

    /// Checks the event budget; returns `false` when exhausted (caller
    /// must abort). The bound is inclusive: the execution aborts as
    /// soon as the event count *reaches* `max_events` — a budget of
    /// `n` permits at most `n` events (`Config::max_events` documents
    /// "abort after this many model events").
    pub(crate) fn within_budget(&mut self) -> bool {
        let n = self.exec.now().0;
        if n >= self.max_events {
            self.fail(Failure::TooManyEvents(n));
            false
        } else {
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c11tester_core::StoreKind;

    /// An engine whose budget allows exactly `events` more events on
    /// top of the thread-begin events `Execution::new` already emitted.
    fn engine_with_headroom(events: u64) -> Engine {
        let race = RaceDetector::new();
        let probe = Engine::new(&Config::new(), 0, RaceDetector::new(), None, None);
        let base = probe.exec.now().0;
        let config = Config::new().with_max_events(base + events);
        Engine::new(&config, 0, race, None, None)
    }

    #[test]
    fn budget_bound_is_inclusive() {
        let mut eng = engine_with_headroom(3);
        let budget = eng.max_events;
        let obj = eng.exec.new_object();
        let t = c11tester_core::ThreadId::MAIN;
        for _ in 0..2 {
            eng.exec
                .atomic_store(t, obj, MemOrder::Relaxed, 7, StoreKind::Atomic);
            assert!(
                eng.within_budget(),
                "events strictly below the budget must pass"
            );
        }
        // The third store brings the count to exactly `max_events`: the
        // inclusive bound aborts here instead of allowing one extra
        // event past the budget.
        eng.exec
            .atomic_store(t, obj, MemOrder::Relaxed, 7, StoreKind::Atomic);
        assert_eq!(eng.exec.now().0, budget);
        assert!(
            !eng.within_budget(),
            "a budget of n permits at most n events"
        );
        assert_eq!(eng.failure, Some(Failure::TooManyEvents(budget)));
        assert!(eng.completed);
    }

    #[test]
    fn budget_failure_sticks_and_does_not_overwrite() {
        let mut eng = engine_with_headroom(1);
        let budget = eng.max_events;
        let obj = eng.exec.new_object();
        let t = c11tester_core::ThreadId::MAIN;
        eng.exec
            .atomic_store(t, obj, MemOrder::Relaxed, 1, StoreKind::Atomic);
        assert!(!eng.within_budget());
        eng.exec
            .atomic_store(t, obj, MemOrder::Relaxed, 2, StoreKind::Atomic);
        assert!(!eng.within_budget());
        // The recorded failure names the first exceeding count.
        assert_eq!(eng.failure, Some(Failure::TooManyEvents(budget)));
    }
}
