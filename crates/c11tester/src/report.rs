//! Execution and test reports.
//!
//! C11Tester "reports any races or assertion violations that it
//! discovers" (paper §1). An [`ExecutionReport`] covers one execution;
//! a [`TestReport`] aggregates repeated executions (§7.6), counting how
//! many executions exhibited a bug (the *detection rate* of Tables 2
//! and §8.1) while deduplicating the distinct reports.

use c11tester_core::{ExecCoverage, ExecStats};
pub use c11tester_race::{
    AccessKind, AccessShape, BehaviorStats, CoverageMap, DedupEntry, DedupHistory, RaceKey,
    RaceKind, RaceReport, StrategyBucket, StrategyLedger,
};
use std::fmt;

/// A fatal condition that ended an execution early.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Failure {
    /// All live threads were blocked.
    Deadlock,
    /// A model thread panicked (assertion violation in the program
    /// under test). Carries the panic message.
    Panic(String),
    /// The event budget was exhausted (guards against runaway
    /// schedules; configurable via `Config::max_events`).
    TooManyEvents(u64),
    /// The testing infrastructure itself failed for this execution —
    /// a model-thread spawn/dispatch error, or a panic that escaped a
    /// model thread's root `catch_unwind` (e.g. from TLS destructors
    /// during teardown). Not a bug in the program under test, but it
    /// must surface rather than vanish.
    Infra(String),
}

impl Failure {
    /// Stable machine-readable kind name — the single source for every
    /// JSON emitter (campaign reports, the isolation wire protocol).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Failure::Deadlock => "deadlock",
            Failure::Panic(_) => "panic",
            Failure::TooManyEvents(_) => "too-many-events",
            Failure::Infra(_) => "infra",
        }
    }
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Failure::Deadlock => write!(f, "deadlock: all live threads blocked"),
            Failure::Panic(msg) => write!(f, "assertion violation: {msg}"),
            Failure::TooManyEvents(n) => write!(f, "event budget exhausted ({n} events)"),
            Failure::Infra(msg) => write!(f, "infrastructure failure: {msg}"),
        }
    }
}

/// The outcome of a single controlled execution.
#[derive(Clone, Debug)]
pub struct ExecutionReport {
    /// 0-based index of this execution within its [`crate::Model`].
    pub execution_index: u64,
    /// Canonical spec of the strategy that drove this execution
    /// ([`crate::Strategy::spec`]; `"custom"` for plugin schedulers).
    /// Under a [`crate::StrategyMix`] this is the per-index assignment
    /// `config.strategy_for(execution_index)`.
    pub strategy: String,
    /// Data races detected during this execution (deduplicated within
    /// the execution).
    pub races: Vec<RaceReport>,
    /// Fatal condition, if the execution aborted.
    pub failure: Option<Failure>,
    /// Operation counts (Table 3 bookkeeping).
    pub stats: ExecStats,
    /// Races detected but elided because they involve volatile cells.
    pub elided_volatile_races: u64,
    /// Behavior-coverage signature of this execution (disarmed —
    /// `collected == false` — unless coverage collection was enabled).
    /// Diagnostic only, like the alloc/phase blocks of `stats`.
    pub coverage: ExecCoverage,
}

impl ExecutionReport {
    /// Did this execution exhibit a bug (race, assertion violation, or
    /// deadlock)?
    pub fn found_bug(&self) -> bool {
        !self.races.is_empty() || self.failure.is_some()
    }

    /// Did this execution detect at least one data race?
    pub fn found_race(&self) -> bool {
        !self.races.is_empty()
    }
}

impl fmt::Display for ExecutionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "execution #{}: {} race(s), {}",
            self.execution_index,
            self.races.len(),
            match &self.failure {
                None => "completed".to_string(),
                Some(x) => x.to_string(),
            }
        )?;
        for r in &self.races {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

/// Aggregate outcome of repeated executions
/// ([`crate::Model::run_many`] / [`crate::Model::check`], and the
/// serial reference that `c11tester-campaign` reproduces in parallel).
///
/// Aggregation is **order-independent**: absorbing the per-execution
/// reports of any partition of an execution stream (in any order, via
/// [`TestReport::merge`]) yields an identical report, because the race
/// dedup history keys on [`RaceKey`] with lowest-execution-index
/// exemplars, failures are kept sorted by execution index, and every
/// counter is a sum. This is what lets a campaign fan executions over
/// any number of workers and still aggregate byte-identically.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TestReport {
    /// Number of executions performed.
    pub executions: u64,
    /// Executions in which at least one data race was detected.
    pub executions_with_race: u64,
    /// Executions in which any bug (race, assertion, deadlock) showed.
    pub executions_with_bug: u64,
    /// Mergeable dedup history of race reports across all executions
    /// (each reported once, as the paper's fork-snapshot dedup does).
    pub races: DedupHistory,
    /// Per-strategy detection accounting: one bucket per strategy spec
    /// that drove at least one execution. Bucket counters always sum
    /// to the aggregate counters above, and the union of the buckets'
    /// dedup histories equals [`TestReport::races`].
    pub per_strategy: StrategyLedger,
    /// Fatal conditions with the execution index they occurred in,
    /// sorted by execution index.
    pub failures: Vec<(u64, Failure)>,
    /// Operation counts accumulated over all executions.
    pub total_stats: ExecStats,
    /// Volatile-race elisions accumulated over all executions.
    pub elided_volatile_races: u64,
    /// Behavior-coverage map over the collecting executions (empty —
    /// and equality-neutral — unless coverage collection was enabled).
    /// Accumulation follows the same partition-invariant discipline as
    /// [`TestReport::races`], so the map is byte-stable across worker
    /// counts and isolation modes.
    pub coverage: CoverageMap,
}

impl TestReport {
    /// Distinct race reports in deterministic (key) order.
    pub fn distinct_races(&self) -> Vec<&RaceReport> {
        self.races.reports()
    }

    /// Number of distinct race classes observed.
    pub fn distinct_race_count(&self) -> usize {
        self.races.len()
    }

    /// Fraction of executions that detected a race (Table 2's "rate").
    pub fn race_detection_rate(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.executions_with_race as f64 / self.executions as f64
        }
    }

    /// Fraction of executions that found any bug (§8.1's rates).
    pub fn bug_detection_rate(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.executions_with_bug as f64 / self.executions as f64
        }
    }

    /// Lowest execution index that exhibited any bug (race, assertion
    /// violation, or deadlock), if one did — the "executions to first
    /// bug" metric adaptive campaigns compare strategies on. Derived
    /// from the dedup history's lowest-index exemplars and the sorted
    /// failure list, so it is order-independent like every other
    /// aggregate field.
    pub fn first_bug_execution(&self) -> Option<u64> {
        let race = self.races.iter().map(|(_, e)| e.first_execution).min();
        let failure = self.failures.first().map(|(ix, _)| *ix);
        match (race, failure) {
            (Some(r), Some(f)) => Some(r.min(f)),
            (r, f) => r.or(f),
        }
    }

    /// Folds one execution's report into the aggregate.
    pub fn absorb(&mut self, report: &ExecutionReport) {
        self.executions += 1;
        if report.found_race() {
            self.executions_with_race += 1;
        }
        if report.found_bug() {
            self.executions_with_bug += 1;
        }
        for race in &report.races {
            self.races.record(report.execution_index, race);
        }
        self.per_strategy.record(
            &report.strategy,
            report.execution_index,
            &report.races,
            report.found_bug(),
        );
        if let Some(f) = &report.failure {
            let at = self
                .failures
                .partition_point(|(ix, _)| *ix <= report.execution_index);
            self.failures
                .insert(at, (report.execution_index, f.clone()));
        }
        self.total_stats.absorb(&report.stats);
        self.elided_volatile_races += report.elided_volatile_races;
        self.coverage
            .record(report.execution_index, &report.coverage, &report.races);
    }

    /// Folds another aggregate into this one. Commutative and
    /// associative over disjoint execution sets: campaigns use this to
    /// combine per-worker aggregates into a report identical to the
    /// serial one.
    pub fn merge(&mut self, other: &TestReport) {
        self.executions += other.executions;
        self.executions_with_race += other.executions_with_race;
        self.executions_with_bug += other.executions_with_bug;
        self.races.merge(&other.races);
        self.per_strategy.merge(&other.per_strategy);
        // Merge two index-sorted failure lists, preserving the invariant.
        let mut merged = Vec::with_capacity(self.failures.len() + other.failures.len());
        let (mut a, mut b) = (
            self.failures.iter().peekable(),
            other.failures.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => {
                    if x.0 <= y.0 {
                        merged.push(a.next().expect("peeked").clone());
                    } else {
                        merged.push(b.next().expect("peeked").clone());
                    }
                }
                (Some(_), None) => merged.push(a.next().expect("peeked").clone()),
                (None, Some(_)) => merged.push(b.next().expect("peeked").clone()),
                (None, None) => break,
            }
        }
        self.failures = merged;
        self.total_stats.absorb(&other.total_stats);
        self.elided_volatile_races += other.elided_volatile_races;
        self.coverage.merge(&other.coverage);
    }
}

impl fmt::Display for TestReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} executions: {} with races ({:.1}%), {} with bugs ({:.1}%), {} distinct race(s)",
            self.executions,
            self.executions_with_race,
            100.0 * self.race_detection_rate(),
            self.executions_with_bug,
            100.0 * self.bug_detection_rate(),
            self.races.len()
        )?;
        for (_, entry) in self.races.iter() {
            writeln!(
                f,
                "  {} [seen in {} execution(s), first #{}]",
                entry.report, entry.occurrences, entry.first_execution
            )?;
        }
        for (ix, fail) in &self.failures {
            writeln!(f, "  execution #{ix}: {fail}")?;
        }
        // Per-strategy columns are only interesting once strategies mix.
        if self.per_strategy.len() > 1 {
            for (name, b) in self.per_strategy.iter() {
                writeln!(
                    f,
                    "  strategy {name}: {} execution(s), {} with races ({:.1}%), {} with bugs ({:.1}%), {} distinct race(s)",
                    b.executions,
                    b.executions_with_race,
                    100.0 * b.race_detection_rate(),
                    b.executions_with_bug,
                    100.0 * b.bug_detection_rate(),
                    b.races.len(),
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_exec(ix: u64) -> ExecutionReport {
        ExecutionReport {
            execution_index: ix,
            strategy: "random".to_string(),
            races: Vec::new(),
            failure: None,
            stats: ExecStats::default(),
            elided_volatile_races: 0,
            coverage: ExecCoverage::default(),
        }
    }

    #[test]
    fn per_strategy_buckets_sum_to_aggregate() {
        let mut t = TestReport::default();
        for ix in 0..6u64 {
            let mut r = empty_exec(ix);
            if ix % 2 == 1 {
                r.strategy = "pct2".to_string();
            }
            if ix == 3 {
                r.failure = Some(Failure::Deadlock);
            }
            t.absorb(&r);
        }
        assert_eq!(t.per_strategy.len(), 2);
        assert_eq!(t.per_strategy.total_executions(), t.executions);
        let bug_sum: u64 = t
            .per_strategy
            .iter()
            .map(|(_, b)| b.executions_with_bug)
            .sum();
        assert_eq!(bug_sum, t.executions_with_bug);
        assert_eq!(t.per_strategy.get("pct2").expect("bucket").executions, 3);
        // Mixed buckets show up in the Display rendering.
        assert!(t.to_string().contains("strategy pct2"));
    }

    #[test]
    fn rates_compute_over_absorbed_runs() {
        let mut t = TestReport::default();
        t.absorb(&empty_exec(0));
        let mut with_failure = empty_exec(1);
        with_failure.failure = Some(Failure::Deadlock);
        t.absorb(&with_failure);
        assert_eq!(t.executions, 2);
        assert_eq!(t.executions_with_bug, 1);
        assert_eq!(t.executions_with_race, 0);
        assert!((t.bug_detection_rate() - 0.5).abs() < 1e-9);
        assert_eq!(t.race_detection_rate(), 0.0);
        assert_eq!(t.failures.len(), 1);
    }

    #[test]
    fn merge_matches_serial_absorption() {
        use c11tester_core::{ObjId, ThreadId};
        let race = |label: &str| RaceReport {
            label: label.into(),
            obj: ObjId(1),
            offset: 0,
            kind: RaceKind::WriteAfterWrite,
            current_tid: ThreadId::from_index(1),
            current_kind: AccessKind::NonAtomic,
            prior_tid: ThreadId::from_index(0),
            prior_atomic: false,
        };
        let mut reports: Vec<ExecutionReport> = (0..6).map(empty_exec).collect();
        reports[1].races.push(race("x"));
        reports[4].races.push(race("x"));
        reports[4].races.push(race("y"));
        reports[2].failure = Some(Failure::Deadlock);
        reports[5].failure = Some(Failure::Panic("boom".into()));

        // Serial reference: absorb everything in index order.
        let mut serial = TestReport::default();
        for r in &reports {
            serial.absorb(r);
        }
        // Two workers striped over even/odd indices, merged odd-first.
        let mut even = TestReport::default();
        let mut odd = TestReport::default();
        for r in &reports {
            if r.execution_index % 2 == 0 {
                even.absorb(r);
            } else {
                odd.absorb(r);
            }
        }
        let mut merged = TestReport::default();
        merged.merge(&odd);
        merged.merge(&even);
        assert_eq!(merged, serial);
        assert_eq!(merged.failures.len(), 2);
        assert_eq!(merged.failures[0].0, 2, "failures sorted by index");
        assert_eq!(
            merged.distinct_races().len(),
            2,
            "x deduped across executions"
        );
    }

    #[test]
    fn first_bug_execution_is_the_minimum_over_races_and_failures() {
        use c11tester_core::{ObjId, ThreadId};
        let race = RaceReport {
            label: "x".into(),
            obj: ObjId(1),
            offset: 0,
            kind: RaceKind::WriteAfterWrite,
            current_tid: ThreadId::from_index(1),
            current_kind: AccessKind::NonAtomic,
            prior_tid: ThreadId::from_index(0),
            prior_atomic: false,
        };
        let mut t = TestReport::default();
        assert_eq!(t.first_bug_execution(), None);
        let mut deadlocked = empty_exec(7);
        deadlocked.failure = Some(Failure::Deadlock);
        t.absorb(&deadlocked);
        assert_eq!(t.first_bug_execution(), Some(7));
        let mut racy = empty_exec(4);
        racy.races.push(race);
        t.absorb(&racy);
        assert_eq!(t.first_bug_execution(), Some(4));
    }

    #[test]
    fn display_mentions_failures() {
        let mut r = empty_exec(3);
        r.failure = Some(Failure::Panic("boom".into()));
        assert!(r.to_string().contains("assertion violation: boom"));
        assert!(r.found_bug());
        assert!(!r.found_race());
    }
}
