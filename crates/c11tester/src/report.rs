//! Execution and test reports.
//!
//! C11Tester "reports any races or assertion violations that it
//! discovers" (paper §1). An [`ExecutionReport`] covers one execution;
//! a [`TestReport`] aggregates repeated executions (§7.6), counting how
//! many executions exhibited a bug (the *detection rate* of Tables 2
//! and §8.1) while deduplicating the distinct reports.

pub use c11tester_race::{AccessKind, RaceKind, RaceReport};
use c11tester_core::ExecStats;
use std::fmt;

/// A fatal condition that ended an execution early.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Failure {
    /// All live threads were blocked.
    Deadlock,
    /// A model thread panicked (assertion violation in the program
    /// under test). Carries the panic message.
    Panic(String),
    /// The event budget was exhausted (guards against runaway
    /// schedules; configurable via `Config::max_events`).
    TooManyEvents(u64),
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Failure::Deadlock => write!(f, "deadlock: all live threads blocked"),
            Failure::Panic(msg) => write!(f, "assertion violation: {msg}"),
            Failure::TooManyEvents(n) => write!(f, "event budget exhausted ({n} events)"),
        }
    }
}

/// The outcome of a single controlled execution.
#[derive(Clone, Debug)]
pub struct ExecutionReport {
    /// 0-based index of this execution within its [`crate::Model`].
    pub execution_index: u64,
    /// Data races detected during this execution (deduplicated within
    /// the execution).
    pub races: Vec<RaceReport>,
    /// Fatal condition, if the execution aborted.
    pub failure: Option<Failure>,
    /// Operation counts (Table 3 bookkeeping).
    pub stats: ExecStats,
    /// Races detected but elided because they involve volatile cells.
    pub elided_volatile_races: u64,
}

impl ExecutionReport {
    /// Did this execution exhibit a bug (race, assertion violation, or
    /// deadlock)?
    pub fn found_bug(&self) -> bool {
        !self.races.is_empty() || self.failure.is_some()
    }

    /// Did this execution detect at least one data race?
    pub fn found_race(&self) -> bool {
        !self.races.is_empty()
    }
}

impl fmt::Display for ExecutionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "execution #{}: {} race(s), {}",
            self.execution_index,
            self.races.len(),
            match &self.failure {
                None => "completed".to_string(),
                Some(x) => x.to_string(),
            }
        )?;
        for r in &self.races {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

/// Aggregate outcome of repeated executions ([`crate::Model::check`]).
#[derive(Clone, Debug, Default)]
pub struct TestReport {
    /// Number of executions performed.
    pub executions: u64,
    /// Executions in which at least one data race was detected.
    pub executions_with_race: u64,
    /// Executions in which any bug (race, assertion, deadlock) showed.
    pub executions_with_bug: u64,
    /// Distinct race reports across all executions (reported once, as
    /// the paper's fork-snapshot dedup does).
    pub distinct_races: Vec<RaceReport>,
    /// Fatal conditions with the execution index they occurred in.
    pub failures: Vec<(u64, Failure)>,
    /// Operation counts accumulated over all executions.
    pub total_stats: ExecStats,
    /// Volatile-race elisions accumulated over all executions.
    pub elided_volatile_races: u64,
}

impl TestReport {
    /// Fraction of executions that detected a race (Table 2's "rate").
    pub fn race_detection_rate(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.executions_with_race as f64 / self.executions as f64
        }
    }

    /// Fraction of executions that found any bug (§8.1's rates).
    pub fn bug_detection_rate(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.executions_with_bug as f64 / self.executions as f64
        }
    }

    /// Folds one execution's report into the aggregate.
    pub fn absorb(&mut self, report: &ExecutionReport) {
        self.executions += 1;
        if report.found_race() {
            self.executions_with_race += 1;
        }
        if report.found_bug() {
            self.executions_with_bug += 1;
        }
        for race in &report.races {
            if !self
                .distinct_races
                .iter()
                .any(|r| r.label == race.label && r.kind == race.kind)
            {
                self.distinct_races.push(race.clone());
            }
        }
        if let Some(f) = &report.failure {
            self.failures.push((report.execution_index, f.clone()));
        }
        self.total_stats.absorb(&report.stats);
        self.elided_volatile_races += report.elided_volatile_races;
    }
}

impl fmt::Display for TestReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} executions: {} with races ({:.1}%), {} with bugs ({:.1}%), {} distinct race(s)",
            self.executions,
            self.executions_with_race,
            100.0 * self.race_detection_rate(),
            self.executions_with_bug,
            100.0 * self.bug_detection_rate(),
            self.distinct_races.len()
        )?;
        for r in &self.distinct_races {
            writeln!(f, "  {r}")?;
        }
        for (ix, fail) in &self.failures {
            writeln!(f, "  execution #{ix}: {fail}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_exec(ix: u64) -> ExecutionReport {
        ExecutionReport {
            execution_index: ix,
            races: Vec::new(),
            failure: None,
            stats: ExecStats::default(),
            elided_volatile_races: 0,
        }
    }

    #[test]
    fn rates_compute_over_absorbed_runs() {
        let mut t = TestReport::default();
        t.absorb(&empty_exec(0));
        let mut with_failure = empty_exec(1);
        with_failure.failure = Some(Failure::Deadlock);
        t.absorb(&with_failure);
        assert_eq!(t.executions, 2);
        assert_eq!(t.executions_with_bug, 1);
        assert_eq!(t.executions_with_race, 0);
        assert!((t.bug_detection_rate() - 0.5).abs() < 1e-9);
        assert_eq!(t.race_detection_rate(), 0.0);
        assert_eq!(t.failures.len(), 1);
    }

    #[test]
    fn display_mentions_failures() {
        let mut r = empty_exec(3);
        r.failure = Some(Failure::Panic("boom".into()));
        assert!(r.to_string().contains("assertion violation: boom"));
        assert!(r.found_bug());
        assert!(!r.found_race());
    }
}
