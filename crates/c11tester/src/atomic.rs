//! Model atomics mirroring `std::sync::atomic`.
//!
//! Every operation routes into the engine, which computes the legal
//! reads-from set under the active memory-model fragment and lets the
//! testing strategy pick among the behaviors — so a `load(Relaxed)`
//! really can return stale values, exactly as on ARM hardware.
//!
//! Construction is `atomic_init`: a **non-atomic** store (paper §7.2),
//! which can race with concurrent atomic accesses — a real bug class
//! C11Tester detects.

use crate::ctx::{self, RmwDecision};
pub use c11tester_core::MemOrder as Ordering;
use c11tester_core::{ObjId, StoreKind};

/// Issues an atomic thread fence with the given ordering.
///
/// # Panics
///
/// Panics when called outside [`crate::Model::run`].
pub fn fence(order: Ordering) {
    ctx::fence(order);
}

/// Untyped model atomic cell holding up to 64 bits. The typed wrappers
/// below are thin views over this.
#[derive(Debug)]
pub struct RawAtomic {
    obj: ObjId,
}

impl RawAtomic {
    /// Creates and non-atomically initializes a cell.
    pub fn new(label: Option<String>, init: u64) -> Self {
        let obj = ctx::new_object(label, false);
        ctx::atomic_init(obj, init);
        RawAtomic { obj }
    }

    /// Creates a cell registered as a legacy-volatile location.
    pub(crate) fn new_volatile(label: Option<String>, init: u64) -> Self {
        let obj = ctx::new_object(label, true);
        ctx::atomic_init(obj, init);
        RawAtomic { obj }
    }

    /// The underlying model object id.
    pub fn obj(&self) -> ObjId {
        self.obj
    }

    /// Atomic load.
    pub fn load(&self, order: Ordering) -> u64 {
        ctx::atomic_load(self.obj, order, StoreKind::Atomic)
    }

    /// Atomic store.
    pub fn store(&self, value: u64, order: Ordering) {
        ctx::atomic_store(self.obj, order, value, StoreKind::Atomic);
    }

    /// Non-atomic store to an atomic location (memory reuse /
    /// `atomic_init` pattern; may race with concurrent atomics).
    pub fn store_nonatomic(&self, value: u64) {
        ctx::atomic_init(self.obj, value);
    }

    /// Volatile load using the configured volatile ordering.
    pub(crate) fn load_volatile(&self) -> u64 {
        let (load_order, _) = ctx::volatile_orders();
        ctx::atomic_load(self.obj, load_order, StoreKind::Volatile)
    }

    /// Volatile store using the configured volatile ordering.
    pub(crate) fn store_volatile(&self, value: u64) {
        let (_, store_order) = ctx::volatile_orders();
        ctx::atomic_store(self.obj, store_order, value, StoreKind::Volatile);
    }

    /// Generic read-modify-write; `f` maps the read value to the
    /// written value. Returns the value read.
    pub fn rmw(&self, order: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
        ctx::atomic_rmw(self.obj, order, |old| RmwDecision::Write(f(old)))
    }

    /// Compare-exchange; on success writes `new` with `success`
    /// ordering, on failure performs a load with `failure` ordering.
    pub fn compare_exchange(
        &self,
        expected: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        let mut matched = false;
        let old = ctx::atomic_rmw(self.obj, success, |old| {
            if old == expected {
                matched = true;
                RmwDecision::Write(new)
            } else {
                RmwDecision::NoWrite(failure)
            }
        });
        if matched {
            Ok(old)
        } else {
            Err(old)
        }
    }
}

macro_rules! int_atomic {
    ($(#[$doc:meta])* $name:ident, $ty:ty) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name {
            raw: RawAtomic,
        }

        impl $name {
            /// Creates the atomic with a non-atomic initializing store.
            ///
            /// # Panics
            ///
            /// Panics when called outside [`crate::Model::run`].
            pub fn new(value: $ty) -> Self {
                $name { raw: RawAtomic::new(None, value as u64) }
            }

            /// Creates the atomic with a label used in race reports.
            pub fn named(label: impl Into<String>, value: $ty) -> Self {
                $name { raw: RawAtomic::new(Some(label.into()), value as u64) }
            }

            /// Atomic load.
            pub fn load(&self, order: Ordering) -> $ty {
                self.raw.load(order) as $ty
            }

            /// Atomic store.
            pub fn store(&self, value: $ty, order: Ordering) {
                self.raw.store(value as u64, order);
            }

            /// Non-atomic store (mixed-mode access, may race).
            pub fn store_nonatomic(&self, value: $ty) {
                self.raw.store_nonatomic(value as u64);
            }

            /// Atomic swap; returns the previous value.
            pub fn swap(&self, value: $ty, order: Ordering) -> $ty {
                self.raw.rmw(order, |_| value as u64) as $ty
            }

            /// Atomic add (wrapping); returns the previous value.
            pub fn fetch_add(&self, delta: $ty, order: Ordering) -> $ty {
                self.raw
                    .rmw(order, |old| (old as $ty).wrapping_add(delta) as u64)
                    as $ty
            }

            /// Atomic subtract (wrapping); returns the previous value.
            pub fn fetch_sub(&self, delta: $ty, order: Ordering) -> $ty {
                self.raw
                    .rmw(order, |old| (old as $ty).wrapping_sub(delta) as u64)
                    as $ty
            }

            /// Atomic bitwise and; returns the previous value.
            pub fn fetch_and(&self, mask: $ty, order: Ordering) -> $ty {
                self.raw.rmw(order, |old| ((old as $ty) & mask) as u64) as $ty
            }

            /// Atomic bitwise or; returns the previous value.
            pub fn fetch_or(&self, mask: $ty, order: Ordering) -> $ty {
                self.raw.rmw(order, |old| ((old as $ty) | mask) as u64) as $ty
            }

            /// Atomic bitwise xor; returns the previous value.
            pub fn fetch_xor(&self, mask: $ty, order: Ordering) -> $ty {
                self.raw.rmw(order, |old| ((old as $ty) ^ mask) as u64) as $ty
            }

            /// Compare-exchange.
            ///
            /// # Errors
            ///
            /// Returns `Err(actual)` when the value read differs from
            /// `expected` (the read uses `failure` ordering).
            pub fn compare_exchange(
                &self,
                expected: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.raw
                    .compare_exchange(expected as u64, new as u64, success, failure)
                    .map(|v| v as $ty)
                    .map_err(|v| v as $ty)
            }

            /// Weak compare-exchange. The model has no spurious
            /// failures, so this is `compare_exchange`.
            ///
            /// # Errors
            ///
            /// Returns `Err(actual)` when the value read differs.
            pub fn compare_exchange_weak(
                &self,
                expected: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(expected, new, success, failure)
            }
        }
    };
}

int_atomic!(
    /// Model equivalent of `std::sync::atomic::AtomicU8`.
    AtomicU8, u8
);
int_atomic!(
    /// Model equivalent of `std::sync::atomic::AtomicU16`.
    AtomicU16, u16
);
int_atomic!(
    /// Model equivalent of `std::sync::atomic::AtomicU32`.
    AtomicU32, u32
);
int_atomic!(
    /// Model equivalent of `std::sync::atomic::AtomicU64`.
    AtomicU64, u64
);
int_atomic!(
    /// Model equivalent of `std::sync::atomic::AtomicUsize`.
    AtomicUsize, usize
);
int_atomic!(
    /// Model equivalent of `std::sync::atomic::AtomicI32`.
    AtomicI32, i32
);
int_atomic!(
    /// Model equivalent of `std::sync::atomic::AtomicI64`.
    AtomicI64, i64
);

/// Model equivalent of `std::sync::atomic::AtomicBool`.
#[derive(Debug)]
pub struct AtomicBool {
    raw: RawAtomic,
}

impl AtomicBool {
    /// Creates the atomic with a non-atomic initializing store.
    ///
    /// # Panics
    ///
    /// Panics when called outside [`crate::Model::run`].
    pub fn new(value: bool) -> Self {
        AtomicBool {
            raw: RawAtomic::new(None, u64::from(value)),
        }
    }

    /// Creates the atomic with a label used in race reports.
    pub fn named(label: impl Into<String>, value: bool) -> Self {
        AtomicBool {
            raw: RawAtomic::new(Some(label.into()), u64::from(value)),
        }
    }

    /// Atomic load.
    pub fn load(&self, order: Ordering) -> bool {
        self.raw.load(order) != 0
    }

    /// Atomic store.
    pub fn store(&self, value: bool, order: Ordering) {
        self.raw.store(u64::from(value), order);
    }

    /// Atomic swap; returns the previous value.
    pub fn swap(&self, value: bool, order: Ordering) -> bool {
        self.raw.rmw(order, |_| u64::from(value)) != 0
    }

    /// Compare-exchange.
    ///
    /// # Errors
    ///
    /// Returns `Err(actual)` when the value read differs.
    pub fn compare_exchange(
        &self,
        expected: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        self.raw
            .compare_exchange(u64::from(expected), u64::from(new), success, failure)
            .map(|v| v != 0)
            .map_err(|v| v != 0)
    }
}
