//! Model configuration.

use c11tester_core::{MemOrder, Policy, PruneConfig};
use c11tester_runtime::HandoverKind;

/// Which testing strategy drives scheduling and read choices (§3).
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Strategy {
    /// Uniform random choices — the paper's default plugin.
    Random,
    /// OS-scheduler emulation: the current thread runs for a
    /// geometrically distributed burst of visible operations (used for
    /// the tsan11 baseline, which does not control scheduling).
    Burst {
        /// Mean burst length in visible operations.
        mean: u32,
    },
    /// PCT (probabilistic concurrency testing): random thread
    /// priorities with `depth − 1` priority-drop change points.
    Pct {
        /// Bug depth the schedule targets (`d ≥ 1`).
        depth: u32,
        /// Expected visible operations per execution (change-point
        /// placement).
        expected_ops: u64,
    },
}

/// Configuration for a [`crate::Model`].
///
/// The defaults reproduce the C11Tester tool; [`Config::for_policy`]
/// gives each baseline the combination the paper evaluates.
///
/// # Examples
///
/// ```
/// use c11tester::{Config, Policy};
///
/// let config = Config::new()
///     .with_seed(42)
///     .with_policy(Policy::C11Tester);
/// assert_eq!(config.seed, 42);
/// ```
#[derive(Clone, Debug)]
pub struct Config {
    /// Memory-model fragment (C11Tester vs. tsan11-family baselines).
    pub policy: Policy,
    /// Base seed; execution `i` derives its own stream from it.
    pub seed: u64,
    /// Run-token handover strategy (Figure 14 spectrum).
    pub handover: HandoverKind,
    /// Testing strategy plugin.
    pub strategy: Strategy,
    /// Execution-graph pruning (§7.1).
    pub prune: PruneConfig,
    /// Memory order applied to legacy volatile loads (§7.2; the paper's
    /// default treats volatiles as relaxed atomics).
    pub volatile_load_order: MemOrder,
    /// Memory order applied to legacy volatile stores.
    pub volatile_store_order: MemOrder,
    /// Abort an execution after this many model events (runaway guard).
    pub max_events: u64,
}

impl Config {
    /// C11Tester defaults: full memory-model fragment, random strategy,
    /// fast handover, pruning off.
    pub fn new() -> Self {
        Config {
            policy: Policy::C11Tester,
            seed: 0xC11,
            handover: HandoverKind::Park,
            strategy: Strategy::Random,
            prune: PruneConfig::disabled(),
            volatile_load_order: MemOrder::Relaxed,
            volatile_store_order: MemOrder::Relaxed,
            max_events: 50_000_000,
        }
    }

    /// The paper's per-tool configurations:
    ///
    /// * `C11Tester` — full fragment, controlled random scheduling,
    ///   fast (park) handover;
    /// * `Tsan11Rec` — restricted fragment, controlled random
    ///   scheduling, slow (condvar) handover as in its kernel-thread
    ///   scheduler;
    /// * `Tsan11` — restricted fragment, uncontrolled scheduling
    ///   emulated by long bursts.
    pub fn for_policy(policy: Policy) -> Self {
        let base = Config::new();
        match policy {
            Policy::C11Tester => Config { policy, ..base },
            Policy::Tsan11Rec => Config {
                policy,
                handover: HandoverKind::Condvar,
                ..base
            },
            Policy::Tsan11 => Config {
                policy,
                strategy: Strategy::Burst { mean: 400 },
                ..base
            },
        }
    }

    /// Sets the memory-model policy.
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the base random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the handover strategy.
    pub fn with_handover(mut self, handover: HandoverKind) -> Self {
        self.handover = handover;
        self
    }

    /// Sets the testing strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the pruning configuration.
    pub fn with_prune(mut self, prune: PruneConfig) -> Self {
        self.prune = prune;
        self
    }

    /// Sets both volatile access orders (the Silo experiment toggles
    /// this between `Relaxed` and acquire/release, §8.2).
    pub fn with_volatile_orders(mut self, load: MemOrder, store: MemOrder) -> Self {
        self.volatile_load_order = load;
        self.volatile_store_order = store;
        self
    }

    /// Sets the per-execution event budget.
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_policy_configs_match_paper_shape() {
        let c = Config::for_policy(Policy::C11Tester);
        assert_eq!(c.handover, HandoverKind::Park);
        assert_eq!(c.strategy, Strategy::Random);
        let r = Config::for_policy(Policy::Tsan11Rec);
        assert_eq!(r.handover, HandoverKind::Condvar);
        assert_eq!(r.strategy, Strategy::Random);
        let t = Config::for_policy(Policy::Tsan11);
        assert!(matches!(t.strategy, Strategy::Burst { .. }));
    }

    #[test]
    fn builder_chains() {
        let c = Config::new()
            .with_seed(7)
            .with_max_events(123)
            .with_volatile_orders(MemOrder::Acquire, MemOrder::Release);
        assert_eq!(c.seed, 7);
        assert_eq!(c.max_events, 123);
        assert_eq!(c.volatile_load_order, MemOrder::Acquire);
        assert_eq!(c.volatile_store_order, MemOrder::Release);
    }
}
