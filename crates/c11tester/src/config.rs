//! Model configuration.

use c11tester_core::{MemOrder, Policy, PruneConfig};
use c11tester_runtime::HandoverKind;

/// Which testing strategy drives scheduling and read choices (§3).
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Strategy {
    /// Uniform random choices — the paper's default plugin.
    Random,
    /// OS-scheduler emulation: the current thread runs for a
    /// geometrically distributed burst of visible operations (used for
    /// the tsan11 baseline, which does not control scheduling).
    Burst {
        /// Mean burst length in visible operations.
        mean: u32,
    },
    /// PCT (probabilistic concurrency testing): random thread
    /// priorities with `depth − 1` priority-drop change points.
    Pct {
        /// Bug depth the schedule targets (`d ≥ 1`).
        depth: u32,
        /// Expected visible operations per execution (change-point
        /// placement).
        expected_ops: u64,
    },
}

/// Default burst mean for the `burst` spec token (the tsan11 baseline
/// value from [`Config::for_policy`]).
pub const DEFAULT_BURST_MEAN: u32 = 400;

/// Default change-point horizon for `pct<d>` spec tokens.
pub const DEFAULT_PCT_OPS: u64 = 128;

impl Strategy {
    /// The canonical spec token for this strategy — the grammar
    /// [`StrategyMix::parse`] accepts and campaign reports key their
    /// per-strategy columns on:
    ///
    /// * `random`
    /// * `burst` (mean [`DEFAULT_BURST_MEAN`]) or `burst@<mean>`
    /// * `pct<depth>` (horizon [`DEFAULT_PCT_OPS`]) or
    ///   `pct<depth>@<ops>`
    pub fn spec(&self) -> String {
        match *self {
            Strategy::Random => "random".to_string(),
            Strategy::Burst { mean } if mean == DEFAULT_BURST_MEAN => "burst".to_string(),
            Strategy::Burst { mean } => format!("burst@{mean}"),
            Strategy::Pct {
                depth,
                expected_ops,
            } if expected_ops == DEFAULT_PCT_OPS => format!("pct{depth}"),
            Strategy::Pct {
                depth,
                expected_ops,
            } => format!("pct{depth}@{expected_ops}"),
        }
    }

    /// Parses a spec token (the inverse of [`Strategy::spec`]).
    /// Case-insensitive.
    pub fn parse_spec(token: &str) -> Result<Strategy, String> {
        let token = token.trim().to_ascii_lowercase();
        let token = token.as_str();
        if token == "random" {
            return Ok(Strategy::Random);
        }
        if let Some(rest) = token.strip_prefix("burst") {
            if rest.is_empty() {
                return Ok(Strategy::Burst {
                    mean: DEFAULT_BURST_MEAN,
                });
            }
            if let Some(mean) = rest.strip_prefix('@') {
                let mean: u32 = mean
                    .parse()
                    .map_err(|_| format!("bad burst mean in `{token}`"))?;
                if mean == 0 {
                    return Err(format!("burst mean must be positive in `{token}`"));
                }
                return Ok(Strategy::Burst { mean });
            }
            return Err(format!("unknown strategy spec `{token}`"));
        }
        if let Some(rest) = token.strip_prefix("pct") {
            let (depth, ops) = match rest.split_once('@') {
                Some((d, o)) => (
                    d,
                    Some(
                        o.parse::<u64>()
                            .map_err(|_| format!("bad pct horizon in `{token}`"))?,
                    ),
                ),
                None => (rest, None),
            };
            let depth: u32 = depth
                .parse()
                .map_err(|_| format!("bad pct depth in `{token}`"))?;
            if depth == 0 {
                return Err(format!("pct depth must be ≥ 1 in `{token}`"));
            }
            let expected_ops = ops.unwrap_or(DEFAULT_PCT_OPS);
            if expected_ops == 0 {
                return Err(format!("pct horizon must be positive in `{token}`"));
            }
            return Ok(Strategy::Pct {
                depth,
                expected_ops,
            });
        }
        Err(format!(
            "unknown strategy spec `{token}` (expected random, burst[@mean], or pct<depth>[@ops])"
        ))
    }
}

/// A weighted set of strategies for campaign-level schedule
/// diversification (ROADMAP; cf. the PCT line of work): each execution
/// index is deterministically assigned one member strategy from
/// `(seed, index)` alone, so replay-by-index and worker-count
/// independent aggregation both survive mixing.
///
/// The textual grammar is a comma-separated list of
/// `<spec>[:<weight>]` entries (weight defaults to 1), e.g.
/// `random:4,pct2:2,pct3:1,burst:1`.
///
/// ```
/// use c11tester::{Strategy, StrategyMix};
///
/// let mix = StrategyMix::parse("random:2,pct2:1").unwrap();
/// assert_eq!(mix.spec(), "random:2,pct2:1");
/// // The assignment is a pure function of (seed, index):
/// assert_eq!(mix.strategy_at(7, 3), mix.strategy_at(7, 3));
/// assert!(matches!(mix.strategy_at(7, 0), Strategy::Random | Strategy::Pct { .. }));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct StrategyMix {
    entries: Vec<(Strategy, u32)>,
    total_weight: u64,
}

/// Largest weight [`StrategyMix::normalize`] leaves in a mix: adaptive
/// reweighting runs for arbitrarily many epochs, so weights must stay
/// bounded no matter how skewed the detection columns become.
pub const MAX_NORMAL_WEIGHT: u32 = 1024;

impl StrategyMix {
    /// Builds a mix from `(strategy, weight)` entries.
    ///
    /// Rejects empty entry lists, zero weights, and duplicate strategy
    /// specs — each with a precise error naming the offending entry.
    pub fn new(entries: Vec<(Strategy, u32)>) -> Result<Self, String> {
        if entries.is_empty() {
            return Err("a strategy mix needs at least one entry".to_string());
        }
        let mut seen: Vec<String> = Vec::with_capacity(entries.len());
        for (strategy, weight) in &entries {
            let spec = strategy.spec();
            if *weight == 0 {
                return Err(format!("strategy `{spec}` has zero weight"));
            }
            if seen.contains(&spec) {
                return Err(format!("duplicate strategy `{spec}` in mix"));
            }
            seen.push(spec);
        }
        let total_weight: u64 = entries.iter().map(|(_, w)| u64::from(*w)).sum();
        Ok(StrategyMix {
            entries,
            total_weight,
        })
    }

    /// A single-strategy "mix" (weight 1) — handy for uniform APIs.
    pub fn single(strategy: Strategy) -> Self {
        StrategyMix {
            entries: vec![(strategy, 1)],
            total_weight: 1,
        }
    }

    /// Parses the `<spec>[:<weight>],…` grammar.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for part in text.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (spec, weight) = match part.rsplit_once(':') {
                Some((s, w)) => {
                    let weight = w.parse::<u32>().map_err(|_| {
                        if !w.is_empty() && w.bytes().all(|b| b.is_ascii_digit()) {
                            format!("weight overflows u32 in `{part}` (max {})", u32::MAX)
                        } else {
                            format!("bad weight in `{part}` (expected a positive integer)")
                        }
                    })?;
                    (s, weight)
                }
                None => (part, 1),
            };
            if weight == 0 {
                return Err(format!("weight must be positive in `{part}`"));
            }
            entries.push((Strategy::parse_spec(spec)?, weight));
        }
        if entries.is_empty() {
            return Err("a strategy mix needs at least one entry".to_string());
        }
        StrategyMix::new(entries)
    }

    /// The canonical textual form (`spec:weight` for every entry, in
    /// declaration order) — round-trips through [`StrategyMix::parse`].
    pub fn spec(&self) -> String {
        self.entries
            .iter()
            .map(|(s, w)| format!("{}:{w}", s.spec()))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// The weighted entries.
    pub fn entries(&self) -> &[(Strategy, u32)] {
        &self.entries
    }

    /// Total weight across all entries.
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// The canonical bounded form of this mix: weights divided by their
    /// greatest common divisor, then — if the largest weight still
    /// exceeds [`MAX_NORMAL_WEIGHT`] — proportionally rescaled so the
    /// largest equals [`MAX_NORMAL_WEIGHT`] (every entry keeps weight
    /// ≥ 1). Strategy order is preserved; the result is a pure function
    /// of the input weights, which is what lets adaptive reweighters
    /// emit fresh weights every epoch without the totals growing
    /// without bound.
    ///
    /// Note that normalization changes `total_weight`, and
    /// [`StrategyMix::strategy_at`] reduces its hash modulo the total —
    /// so a normalized mix is an equivalent *distribution*, not an
    /// identical per-index assignment.
    pub fn normalize(&self) -> StrategyMix {
        fn gcd(a: u32, b: u32) -> u32 {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
        let g = self
            .entries
            .iter()
            .fold(0u32, |g, (_, w)| gcd(g, *w))
            .max(1);
        let mut weights: Vec<u32> = self.entries.iter().map(|(_, w)| w / g).collect();
        let max = weights.iter().copied().max().unwrap_or(1);
        if max > MAX_NORMAL_WEIGHT {
            for w in &mut weights {
                // Round-to-nearest proportional rescale, floored at 1 so
                // no arm ever drops out of the mix entirely.
                *w = ((u64::from(*w) * u64::from(MAX_NORMAL_WEIGHT) + u64::from(max) / 2)
                    / u64::from(max))
                .max(1) as u32;
            }
        }
        let entries: Vec<(Strategy, u32)> = self
            .entries
            .iter()
            .zip(weights)
            .map(|(&(s, _), w)| (s, w))
            .collect();
        StrategyMix::new(entries).expect("normalize preserves validity")
    }

    /// The strategy assigned to execution `index` under base `seed` — a
    /// pure function of `(seed, index)`, independent of worker count,
    /// shard layout, or which model instance runs the execution.
    /// The hash stream is distinct from every scheduler's own
    /// per-execution stream (different mixing constants), so assignment
    /// does not correlate with in-execution choices.
    pub fn strategy_at(&self, seed: u64, index: u64) -> Strategy {
        // splitmix64 finalizer over a seed/index combination.
        let mut z = seed ^ 0x6A09_E667_F3BC_C909u64 ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let mut slot = z % self.total_weight;
        for (strategy, weight) in &self.entries {
            let w = u64::from(*weight);
            if slot < w {
                return *strategy;
            }
            slot -= w;
        }
        // Unreachable: slot < total_weight = Σ weights.
        self.entries[self.entries.len() - 1].0
    }
}

/// Configuration for a [`crate::Model`].
///
/// The defaults reproduce the C11Tester tool; [`Config::for_policy`]
/// gives each baseline the combination the paper evaluates.
///
/// # Examples
///
/// ```
/// use c11tester::{Config, Policy};
///
/// let config = Config::new()
///     .with_seed(42)
///     .with_policy(Policy::C11Tester);
/// assert_eq!(config.seed, 42);
/// ```
#[derive(Clone, Debug)]
pub struct Config {
    /// Memory-model fragment (C11Tester vs. tsan11-family baselines).
    pub policy: Policy,
    /// Base seed; execution `i` derives its own stream from it.
    pub seed: u64,
    /// Run-token handover strategy (Figure 14 spectrum).
    pub handover: HandoverKind,
    /// Testing strategy plugin (used for every execution unless a
    /// [`Config::mix`] overrides the assignment per index).
    pub strategy: Strategy,
    /// Optional strategy mix: when set, execution `i` runs under
    /// `mix.strategy_at(seed, i)` instead of [`Config::strategy`].
    pub mix: Option<StrategyMix>,
    /// Execution-graph pruning (§7.1).
    pub prune: PruneConfig,
    /// Memory order applied to legacy volatile loads (§7.2; the paper's
    /// default treats volatiles as relaxed atomics).
    pub volatile_load_order: MemOrder,
    /// Memory order applied to legacy volatile stores.
    pub volatile_store_order: MemOrder,
    /// Abort an execution after this many model events (runaway guard).
    pub max_events: u64,
    /// Back model threads with a per-model reusable [`c11tester_runtime::ThreadPool`]
    /// (the default) instead of spawning a fresh OS thread per model
    /// thread per execution. Behaviorally invisible — canonical output
    /// is byte-identical either way — so the opt-out exists only for
    /// A/B measurement of the spawn-per-execution cost.
    pub thread_pool: bool,
}

impl Config {
    /// C11Tester defaults: full memory-model fragment, random strategy,
    /// fiber handover (§7.3; futex park where fibers are unsupported),
    /// pruning off.
    pub fn new() -> Self {
        Config {
            policy: Policy::C11Tester,
            seed: 0xC11,
            handover: HandoverKind::default_fast(),
            strategy: Strategy::Random,
            mix: None,
            prune: PruneConfig::disabled(),
            volatile_load_order: MemOrder::Relaxed,
            volatile_store_order: MemOrder::Relaxed,
            max_events: 50_000_000,
            thread_pool: true,
        }
    }

    /// The paper's per-tool configurations:
    ///
    /// * `C11Tester` — full fragment, controlled random scheduling,
    ///   fast (fiber) handover;
    /// * `Tsan11Rec` — restricted fragment, controlled random
    ///   scheduling, slow (condvar) handover as in its kernel-thread
    ///   scheduler;
    /// * `Tsan11` — restricted fragment, uncontrolled scheduling
    ///   emulated by long bursts.
    pub fn for_policy(policy: Policy) -> Self {
        let base = Config::new();
        match policy {
            Policy::C11Tester => Config { policy, ..base },
            Policy::Tsan11Rec => Config {
                policy,
                handover: HandoverKind::Condvar,
                ..base
            },
            Policy::Tsan11 => Config {
                policy,
                strategy: Strategy::Burst { mean: 400 },
                ..base
            },
        }
    }

    /// Sets the memory-model policy.
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the base random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the handover strategy.
    pub fn with_handover(mut self, handover: HandoverKind) -> Self {
        self.handover = handover;
        self
    }

    /// Sets the testing strategy (and clears any mix).
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self.mix = None;
        self
    }

    /// Sets a strategy mix: execution `i` runs under
    /// `mix.strategy_at(seed, i)`.
    pub fn with_mix(mut self, mix: StrategyMix) -> Self {
        self.mix = Some(mix);
        self
    }

    /// The strategy assigned to execution `index`: the mix assignment
    /// when a mix is set, the fixed [`Config::strategy`] otherwise.
    /// A pure function of `(self.seed, self.strategy, self.mix,
    /// index)` — the contract [`crate::Model::run_at`] replay and
    /// campaign worker-count independence rest on.
    pub fn strategy_for(&self, index: u64) -> Strategy {
        match &self.mix {
            Some(mix) => mix.strategy_at(self.seed, index),
            None => self.strategy,
        }
    }

    /// Canonical textual label of the execution-assignment policy: the
    /// mix spec when mixing, the single strategy's spec otherwise.
    pub fn strategy_label(&self) -> String {
        match &self.mix {
            Some(mix) => mix.spec(),
            None => self.strategy.spec(),
        }
    }

    /// Sets the pruning configuration.
    pub fn with_prune(mut self, prune: PruneConfig) -> Self {
        self.prune = prune;
        self
    }

    /// Prune interval used by [`Config::with_memory_limit`]. A single
    /// constant so the `--memory-limit` CLI flag and the fork-server
    /// worker re-entry reconstruct the exact same configuration.
    pub const MEMORY_LIMIT_PRUNE_INTERVAL: u64 = 64;

    /// First-class §7.1 memory limiting (`--memory-limit`): windowed
    /// pruning plus mo-graph arena compaction, so resident graph state
    /// stays bounded on long executions — even ones whose threads
    /// never synchronize (the paper accepts that discarding old trace
    /// state may narrow producible behaviors). The window and the
    /// compaction trigger are deterministic, so canonical output stays
    /// byte-identical across worker counts.
    pub fn with_memory_limit(mut self) -> Self {
        self.prune = PruneConfig::memory_limited(Self::MEMORY_LIMIT_PRUNE_INTERVAL);
        self
    }

    /// Sets both volatile access orders (the Silo experiment toggles
    /// this between `Relaxed` and acquire/release, §8.2).
    pub fn with_volatile_orders(mut self, load: MemOrder, store: MemOrder) -> Self {
        self.volatile_load_order = load;
        self.volatile_store_order = store;
        self
    }

    /// Sets the per-execution event budget.
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// Enables or disables the reusable model-thread pool
    /// (see [`Config::thread_pool`]). `false` restores the
    /// spawn-per-execution behavior for A/B comparison.
    pub fn with_thread_pool(mut self, thread_pool: bool) -> Self {
        self.thread_pool = thread_pool;
        self
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_policy_configs_match_paper_shape() {
        let c = Config::for_policy(Policy::C11Tester);
        assert_eq!(c.handover, HandoverKind::default_fast());
        assert_eq!(c.strategy, Strategy::Random);
        let r = Config::for_policy(Policy::Tsan11Rec);
        assert_eq!(r.handover, HandoverKind::Condvar);
        assert_eq!(r.strategy, Strategy::Random);
        let t = Config::for_policy(Policy::Tsan11);
        assert!(matches!(t.strategy, Strategy::Burst { .. }));
    }

    #[test]
    fn strategy_spec_round_trips() {
        let strategies = [
            Strategy::Random,
            Strategy::Burst {
                mean: DEFAULT_BURST_MEAN,
            },
            Strategy::Burst { mean: 37 },
            Strategy::Pct {
                depth: 2,
                expected_ops: DEFAULT_PCT_OPS,
            },
            Strategy::Pct {
                depth: 3,
                expected_ops: 64,
            },
        ];
        for s in strategies {
            assert_eq!(Strategy::parse_spec(&s.spec()), Ok(s), "spec {}", s.spec());
        }
        assert_eq!(Strategy::parse_spec("pct2").unwrap().spec(), "pct2");
        assert_eq!(Strategy::parse_spec("burst").unwrap().spec(), "burst");
        // Case-insensitive across all spellings.
        assert_eq!(Strategy::parse_spec("Random").unwrap().spec(), "random");
        assert_eq!(Strategy::parse_spec("Burst@37").unwrap().spec(), "burst@37");
        assert_eq!(Strategy::parse_spec("PCT3@64").unwrap().spec(), "pct3@64");
        assert!(Strategy::parse_spec("pct0").is_err());
        assert!(Strategy::parse_spec("pctx").is_err());
        assert!(Strategy::parse_spec("burst@0").is_err());
        assert!(Strategy::parse_spec("quantum").is_err());
    }

    #[test]
    fn mix_parse_round_trips_and_respects_weights() {
        let mix = StrategyMix::parse("random:4,pct2:2,pct3:1,burst:1").unwrap();
        assert_eq!(mix.spec(), "random:4,pct2:2,pct3:1,burst:1");
        assert_eq!(mix.entries().len(), 4);
        // Default weight is 1.
        let mix = StrategyMix::parse("random,pct2").unwrap();
        assert_eq!(mix.spec(), "random:1,pct2:1");
        assert!(StrategyMix::parse("").is_err());
        assert!(StrategyMix::parse("random:0").is_err());
        assert!(StrategyMix::parse("random:x").is_err());
        assert!(StrategyMix::parse("warp:1").is_err());
    }

    #[test]
    fn mix_rejects_duplicates_zero_and_overflowing_weights_precisely() {
        // Duplicate specs are rejected with the offending spec named —
        // both spelled identically and via equivalent default forms.
        let err = StrategyMix::parse("random:2,pct2:1,random:1").unwrap_err();
        assert!(err.contains("duplicate strategy `random`"), "{err}");
        let err = StrategyMix::parse("pct2,pct2@128").unwrap_err();
        assert!(err.contains("duplicate strategy `pct2`"), "{err}");
        // Overflowing weights get their own message (not a generic
        // parse failure).
        let err = StrategyMix::parse("random:4294967296").unwrap_err();
        assert!(err.contains("overflows u32"), "{err}");
        let err = StrategyMix::parse("random:-3").unwrap_err();
        assert!(err.contains("bad weight"), "{err}");
        // Constructor-level checks mirror the parser.
        let err = StrategyMix::new(vec![(Strategy::Random, 0)]).unwrap_err();
        assert!(err.contains("zero weight"), "{err}");
        let err = StrategyMix::new(vec![(Strategy::Random, 1), (Strategy::Random, 2)]).unwrap_err();
        assert!(err.contains("duplicate strategy"), "{err}");
        assert!(StrategyMix::new(Vec::new()).is_err());
    }

    #[test]
    fn normalize_bounds_weights_and_preserves_ratios() {
        // gcd reduction.
        let mix = StrategyMix::parse("random:4,pct2:2,pct3:2").unwrap();
        assert_eq!(mix.normalize().spec(), "random:2,pct2:1,pct3:1");
        // Already-canonical mixes are untouched.
        let mix = StrategyMix::parse("random:2,pct2:1").unwrap();
        assert_eq!(mix.normalize().spec(), "random:2,pct2:1");
        // Huge weights are rescaled so the max is MAX_NORMAL_WEIGHT and
        // tiny arms survive with weight >= 1.
        let mix = StrategyMix::new(vec![
            (Strategy::Random, 3_000_000),
            (
                Strategy::Pct {
                    depth: 2,
                    expected_ops: DEFAULT_PCT_OPS,
                },
                1,
            ),
        ])
        .unwrap();
        let norm = mix.normalize();
        let weights: Vec<u32> = norm.entries().iter().map(|(_, w)| *w).collect();
        assert_eq!(weights[0], MAX_NORMAL_WEIGHT);
        assert_eq!(weights[1], 1);
        // Normalization is idempotent.
        assert_eq!(norm.normalize().spec(), norm.spec());
        assert!(norm.total_weight() <= u64::from(MAX_NORMAL_WEIGHT) * 2);
    }

    #[test]
    fn mix_assignment_is_pure_and_covers_all_entries() {
        let mix = StrategyMix::parse("random:2,pct2:1,pct3:1").unwrap();
        let assigned: Vec<Strategy> = (0..64).map(|i| mix.strategy_at(9, i)).collect();
        let again: Vec<Strategy> = (0..64).map(|i| mix.strategy_at(9, i)).collect();
        assert_eq!(assigned, again, "pure function of (seed, index)");
        for (strategy, _) in mix.entries() {
            assert!(
                assigned.contains(strategy),
                "64 indices should hit every entry; missing {strategy:?}"
            );
        }
        // A different seed permutes the assignment.
        let other: Vec<Strategy> = (0..64).map(|i| mix.strategy_at(10, i)).collect();
        assert_ne!(assigned, other);
    }

    #[test]
    fn mix_weights_shape_the_empirical_distribution() {
        let mix = StrategyMix::parse("random:3,pct2:1").unwrap();
        let n = 4000u64;
        let randoms = (0..n)
            .filter(|&i| mix.strategy_at(0xC11, i) == Strategy::Random)
            .count() as f64;
        let frac = randoms / n as f64;
        assert!(
            (frac - 0.75).abs() < 0.05,
            "random fraction {frac} should approximate weight 3/4"
        );
    }

    #[test]
    fn config_resolves_strategy_per_index() {
        let single = Config::new().with_seed(5);
        assert_eq!(single.strategy_for(0), Strategy::Random);
        assert_eq!(single.strategy_for(999), Strategy::Random);
        assert_eq!(single.strategy_label(), "random");

        let mix = StrategyMix::parse("random:1,pct2:1").unwrap();
        let mixed = Config::new().with_seed(5).with_mix(mix.clone());
        assert_eq!(mixed.strategy_label(), "random:1,pct2:1");
        for i in 0..32 {
            assert_eq!(mixed.strategy_for(i), mix.strategy_at(5, i));
        }
        // with_strategy clears the mix.
        let cleared = mixed.with_strategy(Strategy::Random);
        assert!(cleared.mix.is_none());
    }

    #[test]
    fn builder_chains() {
        let c = Config::new()
            .with_seed(7)
            .with_max_events(123)
            .with_volatile_orders(MemOrder::Acquire, MemOrder::Release);
        assert_eq!(c.seed, 7);
        assert_eq!(c.max_events, 123);
        assert_eq!(c.volatile_load_order, MemOrder::Acquire);
        assert_eq!(c.volatile_store_order, MemOrder::Release);
    }
}
