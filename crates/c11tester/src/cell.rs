//! Non-atomic shared data under race detection.
//!
//! [`Shared<T>`] is a plain (non-atomic) memory cell: reads and writes
//! are *invisible* operations (no scheduling decision), but every
//! access is checked by the FastTrack shadow memory, so two conflicting
//! unordered accesses produce a data-race report — the model's
//! equivalent of the instrumented "normal memory accesses" of Table 3.
//!
//! Access is safe despite the interior mutability because the runtime
//! guarantees at most one model thread executes at any instant.

use crate::ctx;
use c11tester_core::ObjId;
use std::cell::UnsafeCell;

/// A non-atomic shared memory cell tracked by the race detector.
#[derive(Debug)]
pub struct Shared<T> {
    obj: ObjId,
    cell: UnsafeCell<T>,
}

// Safety: the controlled runtime sequentializes model threads; at most
// one thread executes (and thus touches `cell`) at any instant. Racy
// programs are *detected* via the shadow memory rather than performing
// overlapping accesses.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T: Copy> Shared<T> {
    /// Creates a shared cell. The creating thread's write is recorded.
    ///
    /// # Panics
    ///
    /// Panics when called outside [`crate::Model::run`].
    pub fn new(value: T) -> Self {
        Self::named_impl(None, value)
    }

    /// Creates a labeled shared cell (the label appears in reports).
    pub fn named(label: impl Into<String>, value: T) -> Self {
        Self::named_impl(Some(label.into()), value)
    }

    fn named_impl(label: Option<String>, value: T) -> Self {
        let obj = ctx::new_object(label, false);
        let cell = Shared {
            obj,
            cell: UnsafeCell::new(value),
        };
        ctx::nonatomic_write(obj, 0);
        cell
    }

    /// Non-atomic read.
    pub fn get(&self) -> T {
        ctx::nonatomic_read(self.obj, 0);
        unsafe { *self.cell.get() }
    }

    /// Non-atomic write.
    pub fn set(&self, value: T) {
        ctx::nonatomic_write(self.obj, 0);
        unsafe {
            *self.cell.get() = value;
        }
    }

    /// Read-modify-write convenience (still non-atomic: both the read
    /// and the write are checked).
    pub fn update(&self, f: impl FnOnce(T) -> T) -> T {
        let old = self.get();
        let new = f(old);
        self.set(new);
        new
    }
}

/// A fixed-size array of non-atomic cells, one shadow cell per element.
#[derive(Debug)]
pub struct SharedArray<T> {
    obj: ObjId,
    cells: Vec<UnsafeCell<T>>,
}

// Safety: same argument as `Shared<T>`.
unsafe impl<T: Send> Send for SharedArray<T> {}
unsafe impl<T: Send> Sync for SharedArray<T> {}

impl<T: Copy> SharedArray<T> {
    /// Creates an array of `len` cells initialized to `value`.
    ///
    /// # Panics
    ///
    /// Panics when called outside [`crate::Model::run`].
    pub fn new(len: usize, value: T) -> Self {
        Self::named(format!("array#{len}"), len, value)
    }

    /// Creates a labeled array.
    pub fn named(label: impl Into<String>, len: usize, value: T) -> Self {
        let obj = ctx::new_object(Some(label.into()), false);
        let cells = (0..len).map(|_| UnsafeCell::new(value)).collect();
        let arr = SharedArray { obj, cells };
        for ix in 0..len {
            ctx::nonatomic_write(obj, ix as u32);
        }
        arr
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Non-atomic read of element `ix`.
    ///
    /// # Panics
    ///
    /// Panics if `ix` is out of bounds.
    pub fn get(&self, ix: usize) -> T {
        ctx::nonatomic_read(self.obj, ix as u32);
        unsafe { *self.cells[ix].get() }
    }

    /// Non-atomic write of element `ix`.
    ///
    /// # Panics
    ///
    /// Panics if `ix` is out of bounds.
    pub fn set(&self, ix: usize, value: T) {
        ctx::nonatomic_write(self.obj, ix as u32);
        unsafe {
            *self.cells[ix].get() = value;
        }
    }
}
