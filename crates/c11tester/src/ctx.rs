//! The execution context: thread-local plumbing that routes every model
//! operation of the program under test to the engine, and the
//! scheduling protocol (decision points, blocking, abort).
//!
//! Protocol (paper §3): every *visible operation* — atomic access,
//! fence, thread or synchronization operation — is a scheduling
//! decision point. The announcing thread asks the strategy which thread
//! runs next; if it is not itself, it hands over the run token and
//! parks. When it is next picked, it performs its pending operation and
//! continues. The *write-run* rule skips the decision while a thread
//! performs consecutive relaxed/release plain stores (Fig. 4).

use crate::engine::{Engine, WaitReason};
use crate::report::Failure;
use c11tester_core::{MemOrder, ObjId, StoreKind, ThreadId};
use c11tester_race::AccessKind;
use c11tester_runtime::{Aborted, Runtime};
use c11tester_telemetry::{phase_start, Phase};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::Arc;

/// Shared state of one running execution.
pub(crate) struct ModelCtx {
    pub engine: Mutex<Engine>,
    pub runtime: Arc<Runtime>,
}

impl std::fmt::Debug for ModelCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelCtx").finish_non_exhaustive()
    }
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<ModelCtx>, ThreadId)>> = const { RefCell::new(None) };
}

/// Binds the calling OS thread to a model thread for the duration of
/// the execution.
pub(crate) fn set_current(ctx: Arc<ModelCtx>, tid: ThreadId) {
    install_quiet_panic_hook();
    CURRENT.with(|c| *c.borrow_mut() = Some((ctx, tid)));
}

/// Clears the binding (driver teardown).
pub(crate) fn clear_current() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Guard that clears the model-thread binding when dropped — used by
/// pooled model-thread bodies, which must not leave a stale
/// `Arc<ModelCtx>` in the worker's TLS between executions. Dropping
/// during an `Aborted` unwind is fine: `clear_current` never panics.
pub(crate) struct ClearCurrentOnDrop;

impl Drop for ClearCurrentOnDrop {
    fn drop(&mut self) {
        clear_current();
    }
}

/// Panics inside model threads are *signals* (assertion violations are
/// recorded in the execution report; aborts are control flow), so the
/// default print-a-backtrace hook is suppressed for them. Non-model
/// threads keep the previous hook's behavior.
fn install_quiet_panic_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let in_model = CURRENT.try_with(|c| c.borrow().is_some()).unwrap_or(false);
            if !in_model {
                previous(info);
            }
        }));
    });
}

/// Runs `f` with the current model context.
///
/// # Panics
///
/// Panics when called outside a model execution — model types
/// (`c11tester::sync::atomic::*`, `c11tester::thread`, …) only work
/// inside [`crate::Model::run`].
pub(crate) fn with_ctx<R>(f: impl FnOnce(&Arc<ModelCtx>, ThreadId) -> R) -> R {
    CURRENT.with(|c| {
        let borrow = c.borrow();
        let (ctx, tid) = borrow
            .as_ref()
            .expect("c11tester model operation used outside Model::run");
        // Fiber handover multiplexes every model thread onto the
        // driver's OS thread, so the identity of the current model
        // thread is the currently-running fiber slot, not the
        // OS-thread-local binding (the inverse of the paper's §7.4
        // thread-context borrowing: one context, many model threads).
        let tid = match ctx.runtime.current_fiber_slot() {
            Some(slot) => ThreadId::from_index(slot),
            None => *tid,
        };
        f(ctx, tid)
    })
}

/// Raises the abort payload, unwinding the model thread.
fn abort() -> ! {
    std::panic::panic_any(Aborted)
}

/// Checks for a poisoned execution; unwinds unless already panicking
/// (so `Drop` code running during an abort stays quiet).
pub(crate) fn poison_check(ctx: &ModelCtx) -> bool {
    if ctx.runtime.is_poisoned() {
        if std::thread::panicking() {
            return false;
        }
        abort();
    }
    true
}

/// Classification of the announced operation, for the write-run rule.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum OpClass {
    /// A plain atomic store with the given order.
    Store(MemOrder),
    /// Any other visible operation.
    Other,
}

/// A scheduling decision point before a visible operation.
pub(crate) fn schedule_point(ctx: &Arc<ModelCtx>, tid: ThreadId, class: OpClass) {
    if !poison_check(ctx) {
        return;
    }
    let next = {
        let mut eng = ctx.engine.lock();
        // Write-run rule: consecutive relaxed/release plain stores by
        // the same thread run without interruption.
        if let OpClass::Store(order) = class {
            if matches!(order, MemOrder::Relaxed | MemOrder::Release) && eng.exec.in_store_run(tid)
            {
                return;
            }
        }
        // The announcing thread is running, so it must be Runnable —
        // a Blocked/Finished thread reaching a schedule point is an
        // engine state-machine bug.
        debug_assert!(
            eng.is_runnable(tid),
            "scheduling thread {tid:?} must be runnable"
        );
        eng.next_runnable(tid)
            .expect("schedule point with no runnable thread")
    };
    if next != tid {
        ctx.runtime.wake(next.index());
        park(ctx, tid);
    }
}

/// Parks the current model thread until it is scheduled again.
pub(crate) fn park(ctx: &ModelCtx, tid: ThreadId) {
    if ctx.runtime.park(tid.index()).is_err() {
        if std::thread::panicking() {
            return;
        }
        abort();
    }
}

/// Blocks the current thread for `reason`, hands the token onward, and
/// returns once rescheduled. Detects deadlock.
pub(crate) fn block_and_yield(ctx: &Arc<ModelCtx>, tid: ThreadId, reason: WaitReason) {
    if !poison_check(ctx) {
        return;
    }
    let next = {
        let mut eng = ctx.engine.lock();
        eng.block(tid, reason);
        match eng.next_runnable(tid) {
            Some(next) => Some(next),
            None => {
                eng.fail(Failure::Deadlock);
                None
            }
        }
    };
    match next {
        None => {
            ctx.runtime.poison();
            abort();
        }
        Some(next) => {
            debug_assert_ne!(next, tid, "a blocked thread cannot be chosen");
            ctx.runtime.wake(next.index());
            park(ctx, tid);
            // Rescheduled: our status was set Runnable by the unblocker.
        }
    }
}

/// Marks the current (non-main) thread finished and passes control on.
pub(crate) fn thread_finished(ctx: &Arc<ModelCtx>, tid: ThreadId) {
    if ctx.runtime.is_poisoned() {
        return;
    }
    enum Next {
        WakeDriver,
        Switch(ThreadId),
        Poison,
        Nothing,
    }
    let action = {
        let mut eng = ctx.engine.lock();
        eng.exec.sync_event(tid);
        if eng.finish_thread(tid) {
            Next::WakeDriver
        } else {
            match eng.next_runnable(tid) {
                None => {
                    eng.fail(Failure::Deadlock);
                    Next::Poison
                }
                Some(next) if next == tid => Next::Nothing, // unreachable: tid is Finished
                Some(next) => Next::Switch(next),
            }
        }
    };
    match action {
        Next::WakeDriver => ctx.runtime.wake(ThreadId::MAIN.index()),
        Next::Switch(n) => ctx.runtime.wake(n.index()),
        Next::Poison => ctx.runtime.poison(),
        Next::Nothing => {}
    }
}

/// Records a fatal failure and aborts the whole execution.
pub(crate) fn fail_execution(ctx: &Arc<ModelCtx>, failure: Failure) {
    {
        let mut eng = ctx.engine.lock();
        eng.fail(failure);
    }
    ctx.runtime.poison();
}

// ----------------------------------------------------------------------
// Model operations used by the public atomic / cell / sync types.
// ----------------------------------------------------------------------

/// Allocates a model object and registers it with the race detector.
pub(crate) fn new_object(label: Option<String>, volatile: bool) -> ObjId {
    with_ctx(|ctx, _tid| {
        poison_check(ctx);
        let mut eng = ctx.engine.lock();
        let obj = eng.exec.new_object();
        let label = label.unwrap_or_else(|| {
            eng.anon_objects += 1;
            format!("object#{}", eng.anon_objects)
        });
        eng.race.register(obj, label, volatile);
        obj
    })
}

/// `atomic_init`: a non-atomic initializing store (paper §7.2 — it is
/// implemented as a non-atomic store and may race with concurrent
/// atomic accesses). Not a scheduling point.
pub(crate) fn atomic_init(obj: ObjId, value: u64) {
    with_ctx(|ctx, tid| {
        poison_check(ctx);
        let mut eng = ctx.engine.lock();
        let eng = &mut *eng;
        eng.exec
            .atomic_store(tid, obj, MemOrder::Relaxed, value, StoreKind::NonAtomic);
        let timer = phase_start(Phase::RaceDetect);
        eng.race
            .on_write(obj, 0, tid, eng.exec.thread_cv(tid), AccessKind::NonAtomic);
        if let Some(timer) = timer {
            timer.stop(eng.exec.phase_mut());
        }
    });
}

fn race_kind(kind: StoreKind) -> AccessKind {
    match kind {
        StoreKind::Atomic => AccessKind::Atomic,
        StoreKind::NonAtomic => AccessKind::NonAtomic,
        StoreKind::Volatile => AccessKind::Volatile,
    }
}

fn check_budget(ctx: &Arc<ModelCtx>, eng: &mut Engine) {
    if !eng.within_budget() {
        // The failure is recorded; poisoning makes every thread abort at
        // its next operation.
        ctx.runtime.poison();
    }
}

/// An atomic (or volatile, or mixed-mode non-atomic) store.
pub(crate) fn atomic_store(obj: ObjId, order: MemOrder, value: u64, kind: StoreKind) {
    with_ctx(|ctx, tid| {
        schedule_point(ctx, tid, OpClass::Store(order));
        let mut eng = ctx.engine.lock();
        {
            let eng = &mut *eng;
            eng.exec.atomic_store(tid, obj, order, value, kind);
            let timer = phase_start(Phase::RaceDetect);
            eng.race
                .on_write(obj, 0, tid, eng.exec.thread_cv(tid), race_kind(kind));
            if let Some(timer) = timer {
                timer.stop(eng.exec.phase_mut());
            }
        }
        check_budget(ctx, &mut eng);
    });
}

/// An atomic (or volatile) load; returns the value read.
pub(crate) fn atomic_load(obj: ObjId, order: MemOrder, kind: StoreKind) -> u64 {
    with_ctx(|ctx, tid| {
        schedule_point(ctx, tid, OpClass::Other);
        let mut eng = ctx.engine.lock();
        let value = {
            let eng = &mut *eng;
            // Candidate set computed into the engine's reusable buffer.
            let mut cands = std::mem::take(&mut eng.cands_buf);
            eng.exec
                .feasible_read_candidates_into(tid, obj, order, false, &mut cands);
            assert!(
                !cands.is_empty(),
                "atomic load from an object with no feasible store — was the atomic initialized?"
            );
            let choice = eng.scheduler.choose_read(cands.len());
            let value = eng.exec.commit_load(tid, obj, order, cands[choice]);
            cands.clear();
            eng.cands_buf = cands;
            let timer = phase_start(Phase::RaceDetect);
            eng.race
                .on_read(obj, 0, tid, eng.exec.thread_cv(tid), race_kind(kind));
            if let Some(timer) = timer {
                timer.stop(eng.exec.phase_mut());
            }
            value
        };
        check_budget(ctx, &mut eng);
        value
    })
}

/// Outcome of an RMW decision closure.
pub(crate) enum RmwDecision {
    /// Commit a write of the value.
    Write(u64),
    /// Do not write (failed compare_exchange); perform a load with the
    /// given order instead.
    NoWrite(MemOrder),
}

/// A read-modify-write: reads from an RMW-eligible store, lets `f`
/// decide the written value (or decline, for failed CAS), and returns
/// the value read.
pub(crate) fn atomic_rmw(obj: ObjId, order: MemOrder, f: impl FnOnce(u64) -> RmwDecision) -> u64 {
    with_ctx(|ctx, tid| {
        schedule_point(ctx, tid, OpClass::Other);
        let mut eng = ctx.engine.lock();
        let value = {
            let eng = &mut *eng;
            // tsan11-family baselines strengthen RMWs to acq_rel (see
            // `Policy::strengthens_rmw`).
            let order = eng.exec.policy().effective_rmw_order(order);
            let mut cands = std::mem::take(&mut eng.cands_buf);
            eng.exec
                .feasible_read_candidates_into(tid, obj, order, true, &mut cands);
            assert!(
                !cands.is_empty(),
                "RMW on an object with no feasible store — was the atomic initialized?"
            );
            let choice = eng.scheduler.choose_read(cands.len());
            let cand = cands[choice];
            let old = eng.exec.store_value(cand);
            let value = match f(old) {
                RmwDecision::Write(new) => {
                    let (read, _) = eng.exec.commit_rmw(tid, obj, order, cand, new);
                    let timer = phase_start(Phase::RaceDetect);
                    eng.race
                        .on_write(obj, 0, tid, eng.exec.thread_cv(tid), AccessKind::Atomic);
                    if let Some(timer) = timer {
                        timer.stop(eng.exec.phase_mut());
                    }
                    read
                }
                RmwDecision::NoWrite(fail_order) => {
                    // A failed CAS is just a load with the failure ordering.
                    let cand = if eng.exec.check_read_feasible(tid, obj, fail_order, cand) {
                        cand
                    } else {
                        // Rare: the failure ordering adds constraints that
                        // exclude the candidate; fall back to a legal one.
                        eng.exec
                            .feasible_read_candidates_into(tid, obj, fail_order, false, &mut cands);
                        let ix = eng.scheduler.choose_read(cands.len());
                        cands[ix]
                    };
                    let v = eng.exec.commit_load(tid, obj, fail_order, cand);
                    let timer = phase_start(Phase::RaceDetect);
                    eng.race
                        .on_read(obj, 0, tid, eng.exec.thread_cv(tid), AccessKind::Atomic);
                    if let Some(timer) = timer {
                        timer.stop(eng.exec.phase_mut());
                    }
                    v
                }
            };
            cands.clear();
            eng.cands_buf = cands;
            value
        };
        check_budget(ctx, &mut eng);
        value
    })
}

/// An atomic thread fence.
pub(crate) fn fence(order: MemOrder) {
    with_ctx(|ctx, tid| {
        schedule_point(ctx, tid, OpClass::Other);
        let mut eng = ctx.engine.lock();
        eng.exec.fence(tid, order);
        check_budget(ctx, &mut eng);
    });
}

/// A non-atomic read of cell `(obj, offset)` for the race detector.
pub(crate) fn nonatomic_read(obj: ObjId, offset: u32) {
    with_ctx(|ctx, tid| {
        poison_check(ctx);
        let mut eng = ctx.engine.lock();
        let eng = &mut *eng;
        eng.exec.count_normal_access();
        let timer = phase_start(Phase::RaceDetect);
        eng.race.on_read(
            obj,
            offset,
            tid,
            eng.exec.thread_cv(tid),
            AccessKind::NonAtomic,
        );
        if let Some(timer) = timer {
            timer.stop(eng.exec.phase_mut());
        }
    });
}

/// A non-atomic write of cell `(obj, offset)` for the race detector.
pub(crate) fn nonatomic_write(obj: ObjId, offset: u32) {
    with_ctx(|ctx, tid| {
        poison_check(ctx);
        let mut eng = ctx.engine.lock();
        let eng = &mut *eng;
        eng.exec.count_normal_access();
        let timer = phase_start(Phase::RaceDetect);
        eng.race.on_write(
            obj,
            offset,
            tid,
            eng.exec.thread_cv(tid),
            AccessKind::NonAtomic,
        );
        if let Some(timer) = timer {
            timer.stop(eng.exec.phase_mut());
        }
    });
}

/// Explicit scheduling yield. The strategy is told first
/// ([`c11tester_runtime::Scheduler::perturb`]): PCT demotes the
/// yielding thread's priority (how PCT treats `sched_yield` — without
/// this a spin-wait loop whose owner outranks the lock holder would
/// livelock once the change-point budget is spent), burst schedulers
/// end their quantum, and the random strategy ignores the hint.
pub(crate) fn yield_now() {
    perturb();
}

/// Schedule-perturbation hint (the `sleep` the tsan11 benchmarks use,
/// §8.3): ends the current burst and yields.
pub(crate) fn perturb() {
    with_ctx(|ctx, tid| {
        {
            let mut eng = ctx.engine.lock();
            eng.scheduler.perturb();
        }
        schedule_point(ctx, tid, OpClass::Other);
    });
}

/// Volatile access orders from the active configuration.
pub(crate) fn volatile_orders() -> (MemOrder, MemOrder) {
    with_ctx(|ctx, _| {
        let eng = ctx.engine.lock();
        (eng.volatile_load_order, eng.volatile_store_order)
    })
}
