//! # c11tester
//!
//! A Rust reproduction of **C11Tester** (Luo & Demsky, ASPLOS 2021): a
//! controlled-scheduling tester and data-race detector for programs
//! that use C/C++11-style atomics.
//!
//! Write the program under test against this crate's `std`-shaped API
//! ([`thread`], [`sync::atomic`], [`sync::Mutex`], [`Shared`] data
//! cells), then run it repeatedly under a [`Model`]. Every execution:
//!
//! * sequentializes *visible operations* and lets a pluggable testing
//!   strategy pick which thread runs and which store each atomic load
//!   reads from (paper §3) — so relaxed atomics really exhibit their
//!   ARM-observable weak behaviors, including modification orders that
//!   disagree with execution order (the fragment tsan11/tsan11rec
//!   cannot produce, §2.2);
//! * tracks happens-before with clock vectors and the modification
//!   order with the constraint-based mo-graph (§4);
//! * checks every shared access with a FastTrack-style detector (§7.2)
//!   and reports races, assertion violations, and deadlocks.
//!
//! ```
//! use c11tester::{Config, Model};
//! use c11tester::sync::atomic::{AtomicU32, Ordering};
//! use c11tester::Shared;
//! use std::sync::Arc;
//!
//! // Message passing with a *relaxed* flag: the data race is detected.
//! let mut model = Model::new(Config::new().with_seed(7));
//! let report = model.check(100, || {
//!     let data = Arc::new(Shared::named("data", 0u32));
//!     let flag = Arc::new(AtomicU32::named("flag", 0));
//!     let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
//!     let t = c11tester::thread::spawn(move || {
//!         d2.set(42);
//!         f2.store(1, Ordering::Relaxed); // bug: should be Release
//!     });
//!     if flag.load(Ordering::Relaxed) == 1 {
//!         let _ = data.get(); // races with d2.set(42)
//!     }
//!     t.join();
//! });
//! assert!(report.executions_with_race > 0);
//! ```

#![warn(missing_docs)]

mod atomic;
mod cell;
mod config;
mod ctx;
mod engine;
mod model;
mod mutex;
mod report;
mod rwlock;
pub mod thread;
mod volatile;

pub use cell::{Shared, SharedArray};
pub use config::{
    Config, Strategy, StrategyMix, DEFAULT_BURST_MEAN, DEFAULT_PCT_OPS, MAX_NORMAL_WEIGHT,
};
pub use model::{Model, ModelParts, ThreadSpawnStats};
pub use report::{
    AccessKind, AccessShape, BehaviorStats, CoverageMap, DedupEntry, DedupHistory, ExecutionReport,
    Failure, RaceKey, RaceKind, RaceReport, StrategyBucket, StrategyLedger, TestReport,
};
pub use volatile::{VolatileBool, VolatileU32, VolatileU64, VolatileUsize};

pub use c11tester_core::{
    CaptureSink, ExecCoverage, ExecStats, MemOrder, MoGraphPerfStats, Policy, PruneConfig,
    PruneMode, ThreadId, TraceEvent, TraceKey, TraceKind, TraceSink, FENCE_OBJ,
};
pub use c11tester_runtime::{
    BurstScheduler, HandoverKind, PctScheduler, RandomScheduler, Scheduler, ScriptedScheduler,
};
pub use c11tester_telemetry::{
    coverage_enabled, set_coverage, set_tracing, tracing_enabled, JsonlSink, MemorySink, StderrSink,
};

/// Synchronization primitives (`std::sync` shaped).
pub mod sync {
    pub use crate::mutex::{Condvar, Mutex, MutexGuard};
    pub use crate::rwlock::{RwLock, RwLockReadGuard, RwLockWriteGuard};

    /// Model atomics (`std::sync::atomic` shaped).
    pub mod atomic {
        pub use crate::atomic::{
            fence, AtomicBool, AtomicI32, AtomicI64, AtomicU16, AtomicU32, AtomicU64, AtomicU8,
            AtomicUsize, Ordering, RawAtomic,
        };
    }
}
