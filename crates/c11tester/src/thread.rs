//! Model threads: `spawn`, `JoinHandle`, `yield_now`, `sleep_hint`.
//!
//! Mirrors `std::thread` closely enough that test programs read
//! naturally. Thread creation and join are visible synchronization
//! operations: they are scheduling decision points and establish the
//! *additional-synchronizes-with* happens-before edges of the model.

use crate::ctx::{self, OpClass};
use crate::engine::WaitReason;
use crate::report::Failure;
use c11tester_core::ThreadId;
use c11tester_runtime::Aborted;
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Handle to a spawned model thread; [`JoinHandle::join`] blocks the
/// calling model thread until the child finishes.
#[derive(Debug)]
pub struct JoinHandle<T> {
    child: ThreadId,
    result: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// The child's model thread id.
    pub fn thread_id(&self) -> ThreadId {
        self.child
    }

    /// Waits for the child to finish and returns its value.
    ///
    /// If the child panicked, the whole execution aborts and is
    /// reported as an assertion violation — `join` never observes it.
    pub fn join(self) -> T {
        ctx::with_ctx(|ctx, parent| {
            ctx::schedule_point(ctx, parent, OpClass::Other);
            loop {
                let finished = {
                    let eng = ctx.engine.lock();
                    eng.is_finished(self.child)
                };
                if finished {
                    let mut eng = ctx.engine.lock();
                    eng.exec.join(parent, self.child);
                    break;
                }
                ctx::block_and_yield(ctx, parent, WaitReason::Join(self.child));
            }
        });
        self.result
            .lock()
            .take()
            .expect("joined thread produced no value")
    }
}

/// Spawns a model thread running `f` (a visible operation: everything
/// the parent did so far happens-before the child's first action).
///
/// # Panics
///
/// Panics when called outside [`crate::Model::run`].
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    ctx::with_ctx(|ctx, parent| {
        ctx::schedule_point(ctx, parent, OpClass::Other);
        let child = {
            let mut eng = ctx.engine.lock();
            let child = eng.exec.fork(parent);
            eng.register_thread(child);
            let slot = ctx.runtime.add_slot();
            debug_assert_eq!(slot, child.index());
            child
        };
        let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
        let result2 = Arc::clone(&result);
        let ctx2 = Arc::clone(ctx);
        let fiber_mode = ctx.runtime.is_fiber();
        let dispatched = ctx.runtime.spawn(
            child.index(),
            Box::new(move || {
                // Fibers share the driver's OS thread (and its TLS), so
                // the driver's binding is already in place and thread
                // identity comes from the running fiber slot instead —
                // touching the binding here would clear the driver's
                // context mid-execution. OS-thread workers bind their
                // own TLS, and pooled workers outlive the execution, so
                // the binding must be dropped when the body ends — on
                // the normal paths *and* on the `Aborted` unwind out of
                // `thread_finished` (fresh threads got this for free at
                // OS-thread exit).
                let _unbind = (!fiber_mode).then(|| {
                    ctx::set_current(Arc::clone(&ctx2), child);
                    ctx::ClearCurrentOnDrop
                });
                let outcome = catch_unwind(AssertUnwindSafe(f));
                match outcome {
                    Ok(v) => {
                        *result2.lock() = Some(v);
                        ctx::thread_finished(&ctx2, child);
                    }
                    Err(payload) => {
                        if payload.downcast_ref::<Aborted>().is_none() {
                            let msg = crate::model::panic_message_pub(payload);
                            ctx::fail_execution(&ctx2, Failure::Panic(msg));
                        }
                    }
                }
            }),
        );
        if let Err(msg) = dispatched {
            // No OS thread backs the child the engine just registered,
            // so the schedule must never reach it: record an
            // infrastructure failure and poison this execution (only).
            // The parent aborts at its next schedule point.
            ctx::fail_execution(ctx, Failure::Infra(msg));
        }
        JoinHandle { child, result }
    })
}

/// Yields the processor: a scheduling decision point that also
/// perturbs the strategy — PCT demotes the yielding thread's priority
/// (so spin-wait loops cannot starve the thread they wait on), the
/// burst strategy ends its quantum, and the random strategy treats it
/// as a plain decision point.
pub fn yield_now() {
    ctx::yield_now();
}

/// Schedule-perturbation hint, standing in for the `sleep` calls the
/// tsan11 data-structure benchmarks use to induce schedule variability
/// (§8.3). Equivalent to [`yield_now`].
pub fn sleep_hint() {
    ctx::perturb();
}

/// The current model thread's id.
///
/// # Panics
///
/// Panics when called outside [`crate::Model::run`].
pub fn current_id() -> ThreadId {
    ctx::with_ctx(|_, tid| tid)
}
