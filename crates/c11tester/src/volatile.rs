//! Legacy volatile cells (paper §7.2).
//!
//! "Many applications also contain legacy libraries that use
//! pre-C/C++11 atomic operations such as LLVM intrinsics and volatile
//! accesses. C11Tester supports converting such volatile accesses into
//! atomic accesses (with a user specific memory order)."
//!
//! A [`VolatileU32`] behaves like an atomic whose load/store orders
//! come from [`crate::Config::with_volatile_orders`] (default
//! `Relaxed`, the paper's default that exposed the Silo spinlock bug;
//! acquire/release made the bug disappear, §8.2). Races *involving*
//! volatile cells are detected but elided from reports and counted
//! separately, matching C11Tester's intentional elision.

use crate::atomic::RawAtomic;

macro_rules! volatile_int {
    ($(#[$doc:meta])* $name:ident, $ty:ty) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name {
            raw: RawAtomic,
        }

        impl $name {
            /// Creates the volatile cell.
            ///
            /// # Panics
            ///
            /// Panics when called outside [`crate::Model::run`].
            pub fn new(value: $ty) -> Self {
                $name { raw: RawAtomic::new_volatile(None, value as u64) }
            }

            /// Creates a labeled volatile cell.
            pub fn named(label: impl Into<String>, value: $ty) -> Self {
                $name {
                    raw: RawAtomic::new_volatile(Some(label.into()), value as u64),
                }
            }

            /// Volatile read (converted to an atomic load with the
            /// configured order).
            pub fn read(&self) -> $ty {
                self.raw.load_volatile() as $ty
            }

            /// Volatile write (converted to an atomic store with the
            /// configured order).
            pub fn write(&self, value: $ty) {
                self.raw.store_volatile(value as u64);
            }

            /// gcc `__sync_lock_test_and_set`: an *acquire* RMW writing
            /// 1 regardless of the configured volatile order (the
            /// intrinsic carries its own ordering). Returns `true` if
            /// the previous value was 0 (i.e. the lock was acquired).
            pub fn test_and_set(&self) -> bool {
                self.raw
                    .rmw(crate::atomic::Ordering::Acquire, |_| 1)
                    == 0
            }

            /// gcc `__sync_val_compare_and_swap`: an acq_rel RMW.
            ///
            /// # Errors
            ///
            /// Returns `Err(actual)` when the value read differs from
            /// `expected`.
            pub fn compare_and_swap(&self, expected: $ty, new: $ty) -> Result<$ty, $ty> {
                self.raw
                    .compare_exchange(
                        expected as u64,
                        new as u64,
                        crate::atomic::Ordering::AcqRel,
                        crate::atomic::Ordering::Acquire,
                    )
                    .map(|v| v as $ty)
                    .map_err(|v| v as $ty)
            }

            /// gcc `__sync_fetch_and_add`: an acq_rel RMW.
            pub fn fetch_add(&self, delta: $ty) -> $ty {
                self.raw.rmw(crate::atomic::Ordering::AcqRel, |old| {
                    (old as $ty).wrapping_add(delta) as u64
                }) as $ty
            }
        }
    };
}

volatile_int!(
    /// A `volatile u32` in legacy code.
    VolatileU32, u32
);
volatile_int!(
    /// A `volatile u64` in legacy code.
    VolatileU64, u64
);
volatile_int!(
    /// A `volatile usize` in legacy code.
    VolatileUsize, usize
);

/// A `volatile bool` in legacy code (typical spinlock flag).
#[derive(Debug)]
pub struct VolatileBool {
    raw: RawAtomic,
}

impl VolatileBool {
    /// Creates the volatile cell.
    ///
    /// # Panics
    ///
    /// Panics when called outside [`crate::Model::run`].
    pub fn new(value: bool) -> Self {
        VolatileBool {
            raw: RawAtomic::new_volatile(None, u64::from(value)),
        }
    }

    /// Creates a labeled volatile cell.
    pub fn named(label: impl Into<String>, value: bool) -> Self {
        VolatileBool {
            raw: RawAtomic::new_volatile(Some(label.into()), u64::from(value)),
        }
    }

    /// Volatile read.
    pub fn read(&self) -> bool {
        self.raw.load_volatile() != 0
    }

    /// Volatile write.
    pub fn write(&self, value: bool) {
        self.raw.store_volatile(u64::from(value));
    }
}
