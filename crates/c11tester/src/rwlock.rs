//! Model reader-writer lock.
//!
//! Every acquisition and release is an acq_rel RMW on one lock word, so
//! the operations form a single modification-order chain and each
//! synchronizes with everything before it — pthread `rwlock` semantics.
//! Blocking and wakeup run through the engine's thread-status
//! machinery, like [`crate::sync::Mutex`].

use crate::ctx::{self, OpClass};
use crate::engine::WaitReason;
use c11tester_core::{MemOrder, ObjId};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, Ordering as RealOrdering};

const WRITER: u64 = 1 << 16;

/// A model reader-writer lock protecting `T`.
///
/// # Examples
///
/// ```
/// use c11tester::{Config, Model};
/// use c11tester::sync::RwLock;
/// use std::sync::Arc;
///
/// let mut model = Model::new(Config::new());
/// let report = model.run(|| {
///     let l = Arc::new(RwLock::new(1u32));
///     let l2 = Arc::clone(&l);
///     let t = c11tester::thread::spawn(move || *l2.read());
///     {
///         let r = l.read();
///         assert!(*r >= 1);
///     }
///     t.join();
/// });
/// assert!(!report.found_bug());
/// ```
#[derive(Debug)]
pub struct RwLock<T> {
    obj: ObjId,
    /// Real-word mirror of the lock state (reader count + writer bit),
    /// mutated only under the engine lock.
    state: AtomicU32,
    data: UnsafeCell<T>,
}

// Safety: model threads are sequentialized; guards enforce the usual
// shared-xor-mutable discipline on `data`.
unsafe impl<T: Send> Send for RwLock<T> {}
unsafe impl<T: Send + Sync> Sync for RwLock<T> {}

/// Shared guard.
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    live: bool,
}

/// Exclusive guard.
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    live: bool,
}

impl<T> RwLock<T> {
    /// Creates an unlocked lock.
    ///
    /// # Panics
    ///
    /// Panics when called outside [`crate::Model::run`].
    pub fn new(value: T) -> Self {
        Self::named("rwlock", value)
    }

    /// Creates a labeled lock.
    pub fn named(label: impl Into<String>, value: T) -> Self {
        let obj = ctx::new_object(Some(label.into()), false);
        ctx::atomic_init(obj, 0);
        RwLock {
            obj,
            state: AtomicU32::new(0),
            data: UnsafeCell::new(value),
        }
    }

    /// Commits one acq_rel RMW on the lock word mapping the chain-head
    /// value through `f`.
    fn lock_rmw(&self, f: impl Fn(u64) -> u64) {
        ctx::with_ctx(|ctx, tid| {
            let mut eng = ctx.engine.lock();
            let cands = eng
                .exec
                .feasible_read_candidates(tid, self.obj, MemOrder::AcqRel, true);
            // All ops are RMWs: the chain has exactly one head.
            assert!(!cands.is_empty(), "rwlock protocol violated");
            let choice = eng.scheduler.choose_read(cands.len());
            let old = eng.exec.store_value(cands[choice]);
            eng.exec
                .commit_rmw(tid, self.obj, MemOrder::AcqRel, cands[choice], f(old));
            let obj = self.obj;
            eng.unblock_where(|r| matches!(r, WaitReason::Mutex(o) if *o == obj));
        });
    }

    /// Acquires shared access, blocking while a writer holds the lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        ctx::with_ctx(|ctx, tid| {
            if ctx.runtime.is_poisoned() && std::thread::panicking() {
                return RwLockReadGuard {
                    lock: self,
                    live: false,
                };
            }
            ctx::schedule_point(ctx, tid, OpClass::Other);
            loop {
                let acquired = {
                    let eng = ctx.engine.lock();
                    let s = self.state.load(RealOrdering::Relaxed);
                    if u64::from(s) & WRITER == 0 {
                        self.state.store(s + 1, RealOrdering::Relaxed);
                        true
                    } else {
                        drop(eng);
                        false
                    }
                };
                if acquired {
                    self.lock_rmw(|v| v + 1);
                    return RwLockReadGuard {
                        lock: self,
                        live: true,
                    };
                }
                ctx::block_and_yield(ctx, tid, WaitReason::Mutex(self.obj));
            }
        })
    }

    /// Acquires exclusive access, blocking while readers or a writer
    /// hold the lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        ctx::with_ctx(|ctx, tid| {
            if ctx.runtime.is_poisoned() && std::thread::panicking() {
                return RwLockWriteGuard {
                    lock: self,
                    live: false,
                };
            }
            ctx::schedule_point(ctx, tid, OpClass::Other);
            loop {
                let acquired = {
                    let eng = ctx.engine.lock();
                    if self.state.load(RealOrdering::Relaxed) == 0 {
                        self.state.store(WRITER as u32, RealOrdering::Relaxed);
                        true
                    } else {
                        drop(eng);
                        false
                    }
                };
                if acquired {
                    self.lock_rmw(|v| v + WRITER);
                    return RwLockWriteGuard {
                        lock: self,
                        live: true,
                    };
                }
                ctx::block_and_yield(ctx, tid, WaitReason::Mutex(self.obj));
            }
        })
    }

    fn release(&self, delta_is_writer: bool) {
        ctx::with_ctx(|ctx, tid| {
            if ctx.runtime.is_poisoned() {
                if !std::thread::panicking() {
                    std::panic::panic_any(c11tester_runtime::Aborted);
                }
                return;
            }
            ctx::schedule_point(ctx, tid, OpClass::Other);
            {
                let _eng = ctx.engine.lock();
                if delta_is_writer {
                    self.state.store(0, RealOrdering::Relaxed);
                } else {
                    let s = self.state.load(RealOrdering::Relaxed);
                    self.state.store(s - 1, RealOrdering::Relaxed);
                }
            }
            self.lock_rmw(move |v| if delta_is_writer { v - WRITER } else { v - 1 });
        });
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.live {
            self.lock.release(false);
        }
    }
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.live {
            self.lock.release(true);
        }
    }
}
