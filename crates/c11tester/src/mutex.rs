//! Model `Mutex` and `Condvar`.
//!
//! Lock and unlock are modeled with the atomic machinery itself — an
//! unlock is a release store and a lock is an acquire RMW that reads
//! from it (the paper omits locks from its core language for exactly
//! this reason: "they can be implemented with atomic statements", §6).
//! Blocking, wakeup, and deadlock detection are provided by the
//! engine's thread-status bookkeeping.

use crate::ctx::{self, OpClass};
use crate::engine::WaitReason;
use c11tester_core::{MemOrder, ObjId, StoreKind, ThreadId};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering as RealOrdering};

/// A model mutex protecting `T`.
///
/// # Examples
///
/// ```
/// use c11tester::{Config, Model};
/// use c11tester::sync::Mutex;
/// use std::sync::Arc;
///
/// let mut model = Model::new(Config::new());
/// let report = model.run(|| {
///     let m = Arc::new(Mutex::new(0u32));
///     let m2 = Arc::clone(&m);
///     let t = c11tester::thread::spawn(move || {
///         *m2.lock() += 1;
///     });
///     *m.lock() += 1;
///     t.join();
///     assert_eq!(*m.lock(), 2);
/// });
/// assert!(!report.found_bug());
/// ```
#[derive(Debug)]
pub struct Mutex<T> {
    obj: ObjId,
    held: AtomicBool,
    owner: std::sync::atomic::AtomicU32,
    data: UnsafeCell<T>,
}

// Safety: the controlled runtime sequentializes model threads, and the
// guard discipline gives exclusive access to `data`.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

/// RAII guard; unlocking is a release store at drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    /// False for guards synthesized during an abort unwind: their drop
    /// performs no model operations.
    live: bool,
}

impl<T> Mutex<T> {
    /// Creates a mutex.
    ///
    /// # Panics
    ///
    /// Panics when called outside [`crate::Model::run`].
    pub fn new(value: T) -> Self {
        Self::named("mutex", value)
    }

    /// Creates a labeled mutex.
    pub fn named(label: impl Into<String>, value: T) -> Self {
        let obj = ctx::new_object(Some(label.into()), false);
        // The "unlocked" initial store, non-atomic like atomic_init.
        ctx::atomic_init(obj, 0);
        Mutex {
            obj,
            held: AtomicBool::new(false),
            owner: std::sync::atomic::AtomicU32::new(u32::MAX),
            data: UnsafeCell::new(value),
        }
    }

    fn try_acquire_inner(&self, tid: ThreadId) -> bool {
        ctx::with_ctx(|ctx, _| {
            let mut eng = ctx.engine.lock();
            if self.held.load(RealOrdering::Relaxed) {
                return false;
            }
            self.held.store(true, RealOrdering::Relaxed);
            self.owner.store(tid.as_u32(), RealOrdering::Relaxed);
            // A lock is a successful CAS(0 → 1, acquire): it must read a
            // store of the *unlocked* value. The may-read-from set can
            // also offer stale locked (1) stores — a real weak-memory
            // behavior that would merely make a CAS loop spin again, so
            // the model commits the successful iteration directly.
            let mut cands =
                eng.exec
                    .feasible_read_candidates(tid, self.obj, MemOrder::Acquire, true);
            cands.retain(|&s| eng.exec.store_value(s) == 0);
            assert!(
                !cands.is_empty(),
                "mutex protocol violated: no unlocked store to acquire"
            );
            let choice = eng.scheduler.choose_read(cands.len());
            eng.exec
                .commit_rmw(tid, self.obj, MemOrder::Acquire, cands[choice], 1);
            true
        })
    }

    /// Acquires the mutex, blocking the model thread while it is held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        ctx::with_ctx(|ctx, tid| {
            if ctx.runtime.is_poisoned() && std::thread::panicking() {
                // Abort unwind: hand out a dead guard so Drop code can
                // proceed without touching the model.
                return MutexGuard {
                    mutex: self,
                    live: false,
                };
            }
            ctx::schedule_point(ctx, tid, OpClass::Other);
            loop {
                if self.try_acquire_inner(tid) {
                    return MutexGuard {
                        mutex: self,
                        live: true,
                    };
                }
                ctx::block_and_yield(ctx, tid, WaitReason::Mutex(self.obj));
            }
        })
    }

    /// Attempts to acquire without blocking. A failed attempt is a
    /// relaxed load of the lock word (no synchronization).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        ctx::with_ctx(|ctx, tid| {
            ctx::schedule_point(ctx, tid, OpClass::Other);
            if self.try_acquire_inner(tid) {
                Some(MutexGuard {
                    mutex: self,
                    live: true,
                })
            } else {
                let mut eng = ctx.engine.lock();
                let cands =
                    eng.exec
                        .feasible_read_candidates(tid, self.obj, MemOrder::Relaxed, false);
                if !cands.is_empty() {
                    let choice = eng.scheduler.choose_read(cands.len());
                    eng.exec
                        .commit_load(tid, self.obj, MemOrder::Relaxed, cands[choice]);
                }
                None
            }
        })
    }

    /// Release path shared by guard drop and condvar wait.
    fn unlock_inner(&self, from_wait: bool) {
        ctx::with_ctx(|ctx, tid| {
            if ctx.runtime.is_poisoned() {
                self.held.store(false, RealOrdering::Relaxed);
                if !std::thread::panicking() {
                    std::panic::panic_any(c11tester_runtime::Aborted);
                }
                return;
            }
            if !from_wait {
                ctx::schedule_point(ctx, tid, OpClass::Other);
            }
            let mut eng = ctx.engine.lock();
            debug_assert_eq!(
                self.owner.load(RealOrdering::Relaxed),
                tid.as_u32(),
                "mutex unlocked by a non-owner"
            );
            self.held.store(false, RealOrdering::Relaxed);
            self.owner.store(u32::MAX, RealOrdering::Relaxed);
            eng.exec
                .atomic_store(tid, self.obj, MemOrder::Release, 0, StoreKind::Atomic);
            let obj = self.obj;
            eng.unblock_where(|r| matches!(r, WaitReason::Mutex(o) if *o == obj));
        });
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.live {
            self.mutex.unlock_inner(false);
        }
    }
}

/// A model condition variable.
///
/// Wakeups happen only at `notify_*` (no spurious wakeups); the
/// happens-before relation flows through the associated mutex, as in
/// pthreads. Lost-wakeup bugs therefore surface as model deadlocks.
#[derive(Debug)]
pub struct Condvar {
    obj: ObjId,
}

impl Condvar {
    /// Creates a condition variable.
    ///
    /// # Panics
    ///
    /// Panics when called outside [`crate::Model::run`].
    pub fn new() -> Self {
        Condvar {
            obj: ctx::new_object(Some("condvar".into()), false),
        }
    }

    /// Releases the guard's mutex, blocks until notified, re-acquires.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let mutex = guard.mutex;
        let live = guard.live;
        std::mem::forget(guard);
        if !live {
            return MutexGuard { mutex, live: false };
        }
        ctx::with_ctx(|ctx, tid| {
            ctx::schedule_point(ctx, tid, OpClass::Other);
            // Release the mutex without a second scheduling point: the
            // wait itself is the visible operation.
            mutex.unlock_inner(true);
            {
                let mut eng = ctx.engine.lock();
                eng.exec.sync_event(tid);
            }
            ctx::block_and_yield(ctx, tid, WaitReason::Condvar(self.obj));
        });
        mutex.lock()
    }

    /// Waits until notified *and* `cond` holds (re-checks on wakeup).
    pub fn wait_while<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut cond: impl FnMut(&mut T) -> bool,
    ) -> MutexGuard<'a, T> {
        while cond(&mut guard) {
            guard = self.wait(guard);
        }
        guard
    }

    /// Wakes one waiter (chosen by the testing strategy).
    pub fn notify_one(&self) {
        ctx::with_ctx(|ctx, tid| {
            ctx::schedule_point(ctx, tid, OpClass::Other);
            let mut eng = ctx.engine.lock();
            eng.exec.sync_event(tid);
            let waiters = eng.condvar_waiters(self.obj);
            if !waiters.is_empty() {
                let pick = eng.scheduler.choose_read(waiters.len());
                eng.unblock_one(waiters[pick]);
            }
        });
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        ctx::with_ctx(|ctx, tid| {
            ctx::schedule_point(ctx, tid, OpClass::Other);
            let mut eng = ctx.engine.lock();
            eng.exec.sync_event(tid);
            let obj = self.obj;
            eng.unblock_where(|r| matches!(r, WaitReason::Condvar(o) if *o == obj));
        });
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}
