//! Litmus tests for the memory-model fragment (paper §2, §2.2).
//!
//! Each test runs a small program many times under seeded random
//! exploration and checks the *set* of observed outcomes: weak
//! outcomes the fragment allows must eventually appear, and outcomes
//! it forbids must never appear.

use c11tester::sync::atomic::{AtomicU32, Ordering};
use c11tester::{Config, Model, Policy};
use std::collections::HashSet;
use std::sync::Arc;
use std::sync::Mutex as StdMutex;

/// Runs `f` `iters` times and collects the outcomes it returns.
fn outcomes<T, F>(iters: u64, seed: u64, policy: Policy, f: F) -> HashSet<T>
where
    T: std::hash::Hash + Eq + Send + Clone,
    F: Fn() -> T + Send + Sync,
{
    let mut model = Model::new(Config::for_policy(policy).with_seed(seed));
    let seen = StdMutex::new(HashSet::new());
    for _ in 0..iters {
        let report = model.run(|| {
            let v = f();
            seen.lock().expect("outcome set poisoned").insert(v);
        });
        assert!(
            report.failure.is_none(),
            "litmus execution failed: {:?}",
            report.failure
        );
    }
    seen.into_inner().expect("outcome set poisoned")
}

/// Store buffering with relaxed atomics: all four outcomes, including
/// the weak (0, 0), must be observable.
#[test]
fn store_buffering_relaxed_allows_both_zero() {
    let seen = outcomes(300, 11, Policy::C11Tester, || {
        let x = Arc::new(AtomicU32::new(0));
        let y = Arc::new(AtomicU32::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = c11tester::thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            y2.load(Ordering::Relaxed)
        });
        y.store(1, Ordering::Relaxed);
        let r2 = x.load(Ordering::Relaxed);
        let r1 = t.join();
        (r1, r2)
    });
    assert!(seen.contains(&(0, 0)), "weak SB outcome must be producible");
    assert!(seen.contains(&(1, 1)) || seen.contains(&(0, 1)) || seen.contains(&(1, 0)));
}

/// Store buffering with seq_cst atomics: (0, 0) is forbidden.
#[test]
fn store_buffering_seq_cst_forbids_both_zero() {
    let seen = outcomes(300, 12, Policy::C11Tester, || {
        let x = Arc::new(AtomicU32::new(0));
        let y = Arc::new(AtomicU32::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = c11tester::thread::spawn(move || {
            x2.store(1, Ordering::SeqCst);
            y2.load(Ordering::SeqCst)
        });
        y.store(1, Ordering::SeqCst);
        let r2 = x.load(Ordering::SeqCst);
        let r1 = t.join();
        (r1, r2)
    });
    assert!(
        !seen.contains(&(0, 0)),
        "seq_cst forbids both-zero SB, saw {seen:?}"
    );
    assert!(
        seen.len() >= 2,
        "exploration should vary outcomes: {seen:?}"
    );
}

/// The paper's Figure 2 example: with relaxed orders, the
/// counter-intuitive {r1 = 1 ∧ r2 = 0} is allowed.
#[test]
fn message_passing_relaxed_allows_stale_data() {
    let seen = outcomes(300, 13, Policy::C11Tester, || {
        let x = Arc::new(AtomicU32::new(0));
        let y = Arc::new(AtomicU32::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = c11tester::thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            y2.store(1, Ordering::Relaxed);
        });
        let r1 = y.load(Ordering::Relaxed);
        let r2 = x.load(Ordering::Relaxed);
        t.join();
        (r1, r2)
    });
    assert!(
        seen.contains(&(1, 0)),
        "relaxed MP must allow r1=1, r2=0; saw {seen:?}"
    );
}

/// Figure 2 modified (paper §2.1): release/acquire on `y` forbids
/// {r1 = 1 ∧ r2 = 0}.
#[test]
fn message_passing_release_acquire_forbids_stale_data() {
    let seen = outcomes(300, 14, Policy::C11Tester, || {
        let x = Arc::new(AtomicU32::new(0));
        let y = Arc::new(AtomicU32::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = c11tester::thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            y2.store(1, Ordering::Release);
        });
        let r1 = y.load(Ordering::Acquire);
        let r2 = x.load(Ordering::Relaxed);
        t.join();
        (r1, r2)
    });
    assert!(
        !seen.contains(&(1, 0)),
        "release/acquire forbids r1=1, r2=0; saw {seen:?}"
    );
    assert!(seen.contains(&(1, 1)), "synchronized outcome should appear");
}

/// Load buffering (`r1 = r2 = 1` from reading future stores) is
/// excluded by the `hb ∪ sc ∪ rf` acyclicity restriction (§2.2) —
/// the model reads only from already-executed stores.
#[test]
fn load_buffering_is_forbidden() {
    let seen = outcomes(300, 15, Policy::C11Tester, || {
        let x = Arc::new(AtomicU32::new(0));
        let y = Arc::new(AtomicU32::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = c11tester::thread::spawn(move || {
            let r1 = x2.load(Ordering::Relaxed);
            y2.store(1, Ordering::Relaxed);
            r1
        });
        let r2 = y.load(Ordering::Relaxed);
        x.store(1, Ordering::Relaxed);
        let r1 = t.join();
        (r1, r2)
    });
    assert!(
        !seen.contains(&(1, 1)),
        "out-of-thin-air/load-buffering outcome must be excluded; saw {seen:?}"
    );
}

/// IRIW with seq_cst: the two readers may not disagree on the order of
/// the independent writes.
#[test]
fn iriw_seq_cst_readers_agree() {
    let seen = outcomes(400, 16, Policy::C11Tester, || {
        let x = Arc::new(AtomicU32::new(0));
        let y = Arc::new(AtomicU32::new(0));
        let (xa, ya) = (Arc::clone(&x), Arc::clone(&y));
        let (xb, yb) = (Arc::clone(&x), Arc::clone(&y));
        let (xc, yc) = (Arc::clone(&x), Arc::clone(&y));
        let w1 = c11tester::thread::spawn(move || xa.store(1, Ordering::SeqCst));
        let w2 = c11tester::thread::spawn(move || ya.store(1, Ordering::SeqCst));
        let r1 = c11tester::thread::spawn(move || {
            let a = xb.load(Ordering::SeqCst);
            let b = yb.load(Ordering::SeqCst);
            (a, b)
        });
        let r2 = c11tester::thread::spawn(move || {
            let b = yc.load(Ordering::SeqCst);
            let a = xc.load(Ordering::SeqCst);
            (a, b)
        });
        w1.join();
        w2.join();
        let (a1, b1) = r1.join();
        let (a2, b2) = r2.join();
        (a1, b1, a2, b2)
    });
    // Disagreement: reader 1 sees x then not-yet y (1,0) while reader 2
    // sees y then not-yet x (0,1).
    assert!(
        !seen.contains(&(1, 0, 0, 1)),
        "seq_cst IRIW readers must agree; saw {seen:?}"
    );
}

/// Coherence (CoRR): one thread never observes the same location going
/// backwards.
#[test]
#[allow(clippy::nonminimal_bool)] // the two forbidden outcomes read clearest separately
fn coherence_read_read() {
    let seen = outcomes(300, 17, Policy::C11Tester, || {
        let x = Arc::new(AtomicU32::new(0));
        let x2 = Arc::clone(&x);
        let t = c11tester::thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            x2.store(2, Ordering::Relaxed);
        });
        let a = x.load(Ordering::Relaxed);
        let b = x.load(Ordering::Relaxed);
        t.join();
        (a, b)
    });
    for &(a, b) in &seen {
        assert!(
            !(a == 2 && b < 2) && !(a == 1 && b == 0),
            "coherence violation observed: ({a}, {b})"
        );
    }
    // The weak-but-legal same-value re-reads and progressions appear.
    assert!(seen.len() >= 3, "expected outcome variety, saw {seen:?}");
}

/// RMW atomicity: concurrent fetch_adds never lose increments.
#[test]
fn rmw_atomicity_no_lost_updates() {
    let mut model = Model::new(Config::new().with_seed(18));
    for _ in 0..50 {
        let report = model.run(|| {
            let c = Arc::new(AtomicU32::new(0));
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let c = Arc::clone(&c);
                    c11tester::thread::spawn(move || {
                        for _ in 0..5 {
                            c.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(c.load(Ordering::Relaxed), 20, "lost RMW update");
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
    }
}

/// C++20 release sequences: an RMW continues the release sequence, so
/// an acquire load reading the RMW synchronizes with the head store.
#[test]
fn release_sequence_through_rmw() {
    let seen = outcomes(300, 19, Policy::C11Tester, || {
        let data = Arc::new(AtomicU32::new(0));
        let flag = Arc::new(AtomicU32::new(0));
        let (d1, f1) = (Arc::clone(&data), Arc::clone(&flag));
        let (_d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let producer = c11tester::thread::spawn(move || {
            d1.store(42, Ordering::Relaxed);
            f1.store(1, Ordering::Release);
        });
        let bumper = c11tester::thread::spawn(move || {
            // Relaxed RMW: continues the release sequence.
            f2.fetch_add(1, Ordering::Relaxed);
        });
        let r = flag.load(Ordering::Acquire);
        let d = data.load(Ordering::Relaxed);
        producer.join();
        bumper.join();
        (r, d)
    });
    // Reading 2 means the load read the RMW, which read the release
    // store: synchronization must carry through, so data is 42.
    for &(r, d) in &seen {
        if r == 2 {
            assert_eq!(d, 42, "release sequence broken at RMW: ({r}, {d})");
        }
    }
    assert!(
        seen.iter().any(|&(r, _)| r == 2),
        "RMW-continued outcome should appear: {seen:?}"
    );
}

/// Fence synchronization: release fence + relaxed store / relaxed load
/// + acquire fence establishes happens-before (Fig. 9 fence rules).
#[test]
fn fence_release_acquire_synchronizes() {
    use c11tester::sync::atomic::fence;
    let seen = outcomes(300, 20, Policy::C11Tester, || {
        let data = Arc::new(AtomicU32::new(0));
        let flag = Arc::new(AtomicU32::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = c11tester::thread::spawn(move || {
            d2.store(7, Ordering::Relaxed);
            fence(Ordering::Release);
            f2.store(1, Ordering::Relaxed);
        });
        let r = flag.load(Ordering::Relaxed);
        let d = if r == 1 {
            fence(Ordering::Acquire);
            data.load(Ordering::Relaxed)
        } else {
            u32::MAX
        };
        t.join();
        (r, d)
    });
    for &(r, d) in &seen {
        if r == 1 {
            assert_eq!(d, 7, "fence synchronization failed: flag=1 but data={d}");
        }
    }
    assert!(seen.iter().any(|&(r, _)| r == 1));
}

/// The paper's headline fragment difference (§1.1, §8.1): a load may
/// read a store that is modification-ordered *after* a store it is
/// already aware of, i.e. `mo` may disagree with execution order.
/// C11Tester produces the weak outcome; the tsan11-family policies
/// (which require `hb ∪ sc ∪ rf ∪ mo` acyclic) cannot.
#[test]
fn mo_inversion_separates_policies() {
    let run = |policy: Policy| {
        outcomes(400, 21, policy, || {
            let x = Arc::new(AtomicU32::new(0));
            let ready = Arc::new(AtomicU32::new(0));
            let flag = Arc::new(AtomicU32::new(0));
            let (x1, r1) = (Arc::clone(&x), Arc::clone(&ready));
            let (x2, r2, f2) = (Arc::clone(&x), Arc::clone(&ready), Arc::clone(&flag));
            let t1 = c11tester::thread::spawn(move || {
                x1.store(1, Ordering::Relaxed);
                r1.store(1, Ordering::Relaxed); // no synchronization
            });
            let t2 = c11tester::thread::spawn(move || {
                // Wait (without hb!) until x=1 executed.
                while r2.load(Ordering::Relaxed) == 0 {
                    c11tester::thread::yield_now();
                }
                x2.store(2, Ordering::Relaxed);
                f2.store(1, Ordering::Release);
            });
            // Wait until t2 published, with synchronization.
            while flag.load(Ordering::Acquire) == 0 {
                c11tester::thread::yield_now();
            }
            let r = x.load(Ordering::Relaxed);
            t1.join();
            t2.join();
            r
        })
    };
    let full = run(Policy::C11Tester);
    // The acquire gives hb-knowledge of x=2; reading the stale x=1
    // requires ordering x=2 mo-before x=1, against execution order.
    assert!(
        full.contains(&1),
        "C11Tester fragment must produce the mo-inverted read; saw {full:?}"
    );
    assert!(full.contains(&2));
    let restricted = run(Policy::Tsan11Rec);
    assert!(
        !restricted.contains(&1),
        "tsan11rec fragment must forbid the mo-inverted read; saw {restricted:?}"
    );
    assert_eq!(restricted, HashSet::from([2]));
}

/// Figure 4 write-run de-biasing: with consecutive relaxed stores
/// executed as a run, both 1 and 2 must be commonly readable.
#[test]
fn figure4_write_run_outcomes() {
    let seen = outcomes(200, 22, Policy::C11Tester, || {
        let x = Arc::new(AtomicU32::new(0));
        let x2 = Arc::clone(&x);
        let t = c11tester::thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            x2.store(2, Ordering::Relaxed);
        });
        let r = x.load(Ordering::Relaxed);
        t.join();
        r
    });
    assert!(seen.contains(&0));
    assert!(seen.contains(&1), "store 1 must be readable: {seen:?}");
    assert!(seen.contains(&2), "store 2 must be readable: {seen:?}");
}

/// Seeded determinism: identical models produce identical outcome
/// sequences (the paper's repeatability requirement for debugging).
#[test]
fn executions_replay_deterministically() {
    let trace = |seed: u64| {
        let mut model = Model::new(Config::new().with_seed(seed));
        let log = StdMutex::new(Vec::new());
        for _ in 0..30 {
            model.run(|| {
                let x = Arc::new(AtomicU32::new(0));
                let x2 = Arc::clone(&x);
                let t = c11tester::thread::spawn(move || {
                    x2.store(1, Ordering::Relaxed);
                    x2.store(2, Ordering::Relaxed);
                });
                let r = x.load(Ordering::Relaxed);
                t.join();
                log.lock().expect("log").push(r);
            });
        }
        log.into_inner().expect("log")
    };
    assert_eq!(trace(33), trace(33));
    assert_ne!(trace(33), trace(34), "different seeds should differ");
}
