//! Structured schedule traces: a trace recorded for `(seed, epoch,
//! index)` must match the replayed execution's committed-event
//! sequence exactly — the property that lets a JSONL trace stand in
//! for the interleaving it describes.

use c11tester::sync::atomic::{AtomicU32, Ordering};
use c11tester::{set_tracing, Config, Model, TraceEvent, TraceKey, TraceSink};
use std::sync::{Arc, Mutex};

type Records = Vec<(TraceKey, Vec<TraceEvent>)>;

/// A sink whose records outlive the model that owns it.
#[derive(Clone, Default)]
struct SharedSink(Arc<Mutex<Records>>);

impl SharedSink {
    fn records(&self) -> Records {
        self.0.lock().expect("sink poisoned").clone()
    }
}

impl TraceSink for SharedSink {
    fn record(&mut self, key: TraceKey, events: &[TraceEvent]) {
        self.0
            .lock()
            .expect("sink poisoned")
            .push((key, events.to_vec()));
    }
}

/// Message passing with an acquire/release handshake plus an RMW, so
/// the trace covers stores, loads, and RMWs with rf edges.
fn program() {
    let data = Arc::new(AtomicU32::new(0));
    let flag = Arc::new(AtomicU32::new(0));
    let (d, f) = (data.clone(), flag.clone());
    let t = c11tester::thread::spawn(move || {
        d.store(42, Ordering::Relaxed);
        f.store(1, Ordering::Release);
    });
    if flag.load(Ordering::Acquire) == 1 {
        data.fetch_add(1, Ordering::Relaxed);
    }
    t.join();
}

/// Runs global index `index` with a fresh model and traces it.
fn traced_run(seed: u64, epoch: u64, index: u64) -> (TraceKey, Vec<TraceEvent>) {
    let sink = SharedSink::default();
    let mut model = Model::new(Config::new().with_seed(seed));
    model.set_trace_sink(Box::new(sink.clone()));
    model.set_trace_epoch(epoch);
    model.run_at(index, program);
    let records = sink.records();
    assert_eq!(records.len(), 1, "one traced execution, one record");
    records.into_iter().next().expect("record exists")
}

#[test]
fn trace_is_keyed_by_seed_epoch_index_and_replays_identically() {
    set_tracing(true);
    let (key, events) = traced_run(0xC11, 2, 5);
    assert_eq!(
        key,
        TraceKey {
            seed: 0xC11,
            epoch: 2,
            index: 5
        }
    );
    assert!(!events.is_empty(), "the program commits visible events");
    assert!(
        events.iter().any(|e| e.rf.is_some()),
        "at least one load/RMW records its rf edge"
    );

    // Replaying the same coordinates reproduces the event sequence
    // exactly; a different index yields a different interleaving key.
    let (rekey, replayed) = traced_run(0xC11, 2, 5);
    assert_eq!(rekey, key);
    assert_eq!(replayed, events, "replay must retrace the schedule");
}

#[test]
fn traces_from_distinct_indices_are_independently_replayable() {
    set_tracing(true);
    // Record several executions in one model, then replay each index
    // from scratch and require event-for-event agreement.
    let sink = SharedSink::default();
    let mut model = Model::new(Config::new().with_seed(7));
    model.set_trace_sink(Box::new(sink.clone()));
    for index in 0..4 {
        model.run_at(index, program);
    }
    let batch = sink.records();
    assert_eq!(batch.len(), 4);
    for (key, events) in batch {
        let (rekey, replayed) = traced_run(7, 0, key.index);
        assert_eq!(rekey, key);
        assert_eq!(replayed, events, "index {} must replay", key.index);
    }
}

#[test]
fn jsonl_lines_carry_the_replay_key() {
    set_tracing(true);
    let sink = SharedSink::default();
    let mut model = Model::new(Config::new().with_seed(9));
    model.set_trace_sink(Box::new(sink.clone()));
    model.set_trace_epoch(1);
    model.run_at(3, program);
    let (key, events) = sink.records().into_iter().next().expect("recorded");
    for e in &events {
        let line = c11tester_telemetry::event_jsonl(key, e);
        assert!(line.starts_with("{\"seed\":9,\"epoch\":1,\"index\":3,"));
        assert!(line.ends_with('}'));
    }
}
