//! End-to-end tests for synchronization primitives, blocking, deadlock
//! detection, mixed-mode accesses, volatiles, and pruning under the
//! full stack.

use c11tester::sync::atomic::{AtomicU32, Ordering};
use c11tester::sync::{Condvar, Mutex};
use c11tester::{Config, Failure, Model, PruneConfig, Shared, SharedArray};
use std::sync::Arc;

#[test]
fn mutex_protects_counter() {
    let mut model = Model::new(Config::new().with_seed(41));
    for _ in 0..30 {
        let report = model.run(|| {
            let m = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let m = Arc::clone(&m);
                    c11tester::thread::spawn(move || {
                        for _ in 0..4 {
                            *m.lock() += 1;
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(*m.lock(), 12);
        });
        assert!(!report.found_bug(), "{report}");
    }
}

#[test]
fn mutex_guarded_shared_data_has_no_race() {
    let mut model = Model::new(Config::new().with_seed(42));
    let report = model.check(30, || {
        let m = Arc::new(Mutex::new(()));
        let d = Arc::new(Shared::named("guarded", 0u32));
        let (m2, d2) = (Arc::clone(&m), Arc::clone(&d));
        let t = c11tester::thread::spawn(move || {
            let _g = m2.lock();
            d2.set(d2.get() + 1);
        });
        {
            let _g = m.lock();
            d.set(d.get() + 1);
        }
        t.join();
        assert_eq!(d.get(), 2);
    });
    assert_eq!(report.executions_with_race, 0, "{report}");
    assert_eq!(report.executions_with_bug, 0, "{report}");
}

#[test]
fn unguarded_shared_data_races() {
    let mut model = Model::new(Config::new().with_seed(43));
    let report = model.check(30, || {
        let d = Arc::new(Shared::named("unguarded", 0u32));
        let d2 = Arc::clone(&d);
        let t = c11tester::thread::spawn(move || {
            d2.set(1);
        });
        d.set(2);
        t.join();
    });
    assert!(report.executions_with_race > 0, "{report}");
    assert!(report
        .distinct_races()
        .iter()
        .any(|r| r.label == "unguarded"));
}

#[test]
fn join_establishes_happens_before() {
    let mut model = Model::new(Config::new().with_seed(44));
    let report = model.check(30, || {
        let d = Arc::new(Shared::named("joined", 0u32));
        let d2 = Arc::clone(&d);
        let t = c11tester::thread::spawn(move || {
            d2.set(5);
        });
        t.join();
        assert_eq!(d.get(), 5);
    });
    assert_eq!(report.executions_with_race, 0, "{report}");
    assert_eq!(report.executions_with_bug, 0, "{report}");
}

#[test]
fn self_deadlock_is_reported() {
    let mut model = Model::new(Config::new().with_seed(45));
    let report = model.run(|| {
        let m = Mutex::new(());
        let _g1 = m.lock();
        let _g2 = m.lock(); // blocks forever: deadlock
    });
    assert_eq!(report.failure, Some(Failure::Deadlock), "{report}");
}

#[test]
fn condvar_wakeups_work() {
    let mut model = Model::new(Config::new().with_seed(46));
    for _ in 0..20 {
        let report = model.run(|| {
            let state = Arc::new((Mutex::new(false), Condvar::new()));
            let s2 = Arc::clone(&state);
            let t = c11tester::thread::spawn(move || {
                let (m, cv) = &*s2;
                let mut g = m.lock();
                *g = true;
                drop(g);
                cv.notify_one();
            });
            let (m, cv) = &*state;
            let g = m.lock();
            let g = cv.wait_while(g, |ready| !*ready);
            assert!(*g);
            drop(g);
            t.join();
        });
        assert!(!report.found_bug(), "{report}");
    }
}

#[test]
fn lost_wakeup_is_a_deadlock() {
    let mut model = Model::new(Config::new().with_seed(47));
    let report = model.run(|| {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let g = m.lock();
        let _g = cv.wait(g); // nobody will ever notify
    });
    assert_eq!(report.failure, Some(Failure::Deadlock), "{report}");
}

#[test]
fn try_lock_never_blocks() {
    let mut model = Model::new(Config::new().with_seed(48));
    let report = model.check(20, || {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let t = c11tester::thread::spawn(move || {
            let _g = m2.lock();
            c11tester::thread::yield_now();
        });
        // Whatever the interleaving, try_lock returns (no deadlock).
        if let Some(mut g) = m.try_lock() {
            *g += 1;
        }
        t.join();
    });
    assert_eq!(report.executions_with_bug, 0, "{report}");
}

#[test]
fn atomic_init_races_with_concurrent_atomics() {
    // §7.2 mixed-mode: a non-atomic store to an atomic location (the
    // atomic_init / memory-reuse pattern) races with unordered atomics.
    let mut model = Model::new(Config::new().with_seed(49));
    let report = model.check(40, || {
        let x = Arc::new(AtomicU32::named("reused", 0));
        let x2 = Arc::clone(&x);
        let t = c11tester::thread::spawn(move || {
            x2.store_nonatomic(7); // non-atomic reinitialization
        });
        let _ = x.load(Ordering::Relaxed);
        t.join();
    });
    assert!(
        report.executions_with_race > 0,
        "mixed-mode race must be detected: {report}"
    );
}

#[test]
fn volatile_races_are_elided_from_reports() {
    use c11tester::VolatileU32;
    let mut model = Model::new(Config::new().with_seed(50));
    let report = model.check(40, || {
        let v = Arc::new(VolatileU32::named("legacy_flag", 0));
        let v2 = Arc::clone(&v);
        let t = c11tester::thread::spawn(move || {
            v2.write(1);
        });
        let _ = v.read();
        t.join();
    });
    assert_eq!(
        report.executions_with_race, 0,
        "volatile races must not be reported: {report}"
    );
    assert!(
        report.elided_volatile_races > 0,
        "volatile races must still be counted: {report}"
    );
}

#[test]
fn shared_array_tracks_elements_independently() {
    let mut model = Model::new(Config::new().with_seed(51));
    let report = model.check(20, || {
        let arr = Arc::new(SharedArray::named("disjoint", 2, 0u32));
        let a2 = Arc::clone(&arr);
        let t = c11tester::thread::spawn(move || {
            a2.set(0, 1);
        });
        arr.set(1, 2); // different element: no race
        t.join();
    });
    assert_eq!(report.executions_with_race, 0, "{report}");
}

#[test]
fn event_budget_aborts_runaway_programs() {
    let mut model = Model::new(Config::new().with_seed(52).with_max_events(500));
    let report = model.run(|| {
        let x = AtomicU32::new(0);
        loop {
            if x.load(Ordering::Relaxed) == 1 {
                break; // never happens
            }
        }
    });
    assert!(
        matches!(report.failure, Some(Failure::TooManyEvents(_))),
        "{report}"
    );
}

#[test]
fn pruning_does_not_change_outcomes() {
    // Same seeds, same program: conservative pruning must not alter
    // observed values (it only retires unreadable history).
    let run = |prune: bool| {
        let cfg = if prune {
            Config::new()
                .with_seed(53)
                .with_prune(PruneConfig::conservative(64))
        } else {
            Config::new().with_seed(53)
        };
        let mut model = Model::new(cfg);
        let log = std::sync::Mutex::new(Vec::new());
        for _ in 0..10 {
            model.run(|| {
                let c = Arc::new(AtomicU32::new(0));
                let m = Arc::new(Mutex::new(()));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let (c, m) = (Arc::clone(&c), Arc::clone(&m));
                        c11tester::thread::spawn(move || {
                            for _ in 0..50 {
                                let _g = m.lock();
                                c.fetch_add(1, Ordering::Relaxed);
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join();
                }
                log.lock().expect("log").push(c.load(Ordering::Acquire));
            });
        }
        log.into_inner().expect("log")
    };
    let unpruned = run(false);
    let pruned = run(true);
    assert_eq!(unpruned, pruned);
    assert!(unpruned.iter().all(|&v| v == 100));
}

#[test]
fn stats_count_operation_categories() {
    let mut model = Model::new(Config::new().with_seed(54));
    let report = model.run(|| {
        let x = AtomicU32::new(0);
        x.store(1, Ordering::Release);
        let _ = x.load(Ordering::Acquire);
        x.fetch_add(1, Ordering::AcqRel);
        c11tester::sync::atomic::fence(Ordering::SeqCst);
        let d = Shared::new(0u32);
        d.set(1);
        let _ = d.get();
    });
    let s = &report.stats;
    assert_eq!(s.atomic_loads, 1);
    assert!(s.atomic_stores >= 1);
    assert_eq!(s.rmws, 1);
    assert_eq!(s.fences, 1);
    assert!(s.normal_accesses >= 3, "init + set + get");
    assert!(s.atomic_ops() >= 4);
}

#[test]
fn rwlock_allows_concurrent_readers_and_excludes_writers() {
    use c11tester::sync::RwLock;
    let mut model = Model::new(Config::new().with_seed(55));
    let report = model.check(30, || {
        let l = Arc::new(RwLock::named("rw", 0u64));
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let l = Arc::clone(&l);
                c11tester::thread::spawn(move || {
                    for _ in 0..2 {
                        let mut g = l.write();
                        *g += 1;
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let l = Arc::clone(&l);
                c11tester::thread::spawn(move || {
                    for _ in 0..2 {
                        let g = l.read();
                        assert!(*g <= 4);
                    }
                })
            })
            .collect();
        for w in writers {
            w.join();
        }
        for r in readers {
            r.join();
        }
        assert_eq!(*l.read(), 4);
    });
    assert_eq!(report.executions_with_bug, 0, "{report}");
    assert_eq!(report.executions_with_race, 0, "{report}");
}

#[test]
fn rwlock_guards_shared_data_against_races() {
    use c11tester::sync::RwLock;
    let mut model = Model::new(Config::new().with_seed(56));
    let report = model.check(30, || {
        let l = Arc::new(RwLock::new(()));
        let d = Arc::new(Shared::named("rw.data", 0u32));
        let (l2, d2) = (Arc::clone(&l), Arc::clone(&d));
        let t = c11tester::thread::spawn(move || {
            let _g = l2.write();
            d2.set(1);
        });
        {
            let _g = l.read();
            let _ = d.get();
        }
        t.join();
    });
    assert_eq!(report.executions_with_race, 0, "{report}");
    assert_eq!(report.executions_with_bug, 0, "{report}");
}

#[test]
fn pct_strategy_finds_the_publication_race() {
    use c11tester::Strategy;
    let mut model = Model::new(Config::new().with_seed(57).with_strategy(Strategy::Pct {
        depth: 3,
        expected_ops: 32,
    }));
    let report = model.check(150, || {
        let d = Arc::new(Shared::named("pct.data", 0u32));
        let f = Arc::new(AtomicU32::named("pct.flag", 0));
        let (d2, f2) = (Arc::clone(&d), Arc::clone(&f));
        let t = c11tester::thread::spawn(move || {
            d2.set(9);
            f2.store(1, Ordering::Relaxed);
        });
        if f.load(Ordering::Relaxed) == 1 {
            let _ = d.get();
        }
        t.join();
    });
    assert!(
        report.executions_with_race > 0,
        "PCT should also find the race: {report}"
    );
}
