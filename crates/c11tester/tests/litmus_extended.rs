//! Extended litmus suite: finer points of the supported fragment —
//! C++20 release-sequence semantics (paper §2.2 change 1), fence-based
//! SB, causality chains, and RMW synchronization transitivity.

use c11tester::sync::atomic::{fence, AtomicU32, Ordering};
use c11tester::{Config, Model, Policy, Shared};
use std::collections::HashSet;
use std::sync::Arc;
use std::sync::Mutex as StdMutex;

fn outcomes<T, F>(iters: u64, seed: u64, f: F) -> HashSet<T>
where
    T: std::hash::Hash + Eq + Send + Clone,
    F: Fn() -> T + Send + Sync,
{
    let mut model = Model::new(Config::for_policy(Policy::C11Tester).with_seed(seed));
    let seen = StdMutex::new(HashSet::new());
    for _ in 0..iters {
        let report = model.run(|| {
            let v = f();
            seen.lock().expect("outcomes").insert(v);
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
    }
    seen.into_inner().expect("outcomes")
}

/// C++20 weakened release sequences (paper §2.2 change 1): a *relaxed*
/// store by the same thread that performed the release store is NOT
/// part of the release sequence — an acquire load reading it gets no
/// synchronization. (Under C++11 it would have synchronized.)
#[test]
fn cpp20_same_thread_relaxed_store_breaks_release_sequence() {
    let mut model = Model::new(Config::for_policy(Policy::C11Tester).with_seed(101));
    let report = model.check(200, || {
        let data = Arc::new(Shared::named("rs20.data", 0u32));
        let flag = Arc::new(AtomicU32::named("rs20.flag", 0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = c11tester::thread::spawn(move || {
            d2.set(1);
            f2.store(1, Ordering::Release);
            // Same-thread relaxed store: under C++20 it does NOT
            // continue the release sequence.
            f2.store(2, Ordering::Relaxed);
        });
        if flag.load(Ordering::Acquire) == 2 {
            let _ = data.get(); // no hb: this is a race
        }
        t.join();
    });
    assert!(
        report.executions_with_race > 0,
        "reading the same-thread relaxed store must not synchronize: {report}"
    );
}

/// Control for the C++20 test: reading the release store itself does
/// synchronize.
#[test]
fn reading_the_release_head_synchronizes() {
    let mut model = Model::new(Config::for_policy(Policy::C11Tester).with_seed(102));
    let report = model.check(200, || {
        let data = Arc::new(Shared::named("rs20b.data", 0u32));
        let flag = Arc::new(AtomicU32::named("rs20b.flag", 0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = c11tester::thread::spawn(move || {
            d2.set(1);
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.get(), 1);
        }
        t.join();
    });
    assert_eq!(report.executions_with_race, 0, "{report}");
    assert_eq!(report.executions_with_bug, 0, "{report}");
}

/// WRC (write-to-read causality): T1 writes x; T2 reads x then
/// release-writes y; T3 acquire-reads y then reads x. With the
/// x-propagation through acquire/release, T3 must see x once it saw y.
#[test]
fn wrc_causality_propagates() {
    let seen = outcomes(300, 103, || {
        let x = Arc::new(AtomicU32::new(0));
        let y = Arc::new(AtomicU32::new(0));
        let (x1, x2, y2) = (Arc::clone(&x), Arc::clone(&x), Arc::clone(&y));
        let (x3, y3) = (Arc::clone(&x), Arc::clone(&y));
        let t1 = c11tester::thread::spawn(move || x1.store(1, Ordering::Release));
        let t2 = c11tester::thread::spawn(move || {
            if x2.load(Ordering::Acquire) == 1 {
                y2.store(1, Ordering::Release);
            }
        });
        let t3 = c11tester::thread::spawn(move || {
            let ry = y3.load(Ordering::Acquire);
            let rx = x3.load(Ordering::Relaxed);
            (ry, rx)
        });
        t1.join();
        t2.join();
        t3.join()
    });
    assert!(
        !seen.contains(&(1, 0)),
        "WRC violation: saw y=1 but stale x=0; outcomes {seen:?}"
    );
}

/// SB with seq_cst fences between relaxed accesses: both-zero is
/// forbidden (C++11 §29.3p4-6, implemented via the fence prior-sets).
#[test]
fn sb_with_sc_fences_forbids_both_zero() {
    let seen = outcomes(300, 104, || {
        let x = Arc::new(AtomicU32::new(0));
        let y = Arc::new(AtomicU32::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = c11tester::thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            y2.load(Ordering::Relaxed)
        });
        y.store(1, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let r2 = x.load(Ordering::Relaxed);
        let r1 = t.join();
        (r1, r2)
    });
    assert!(
        !seen.contains(&(0, 0)),
        "sc fences must forbid both-zero SB: {seen:?}"
    );
    // And without strengthening anything else the weak pairs remain.
    assert!(seen.len() >= 2, "{seen:?}");
}

/// Synchronization is transitive through acq_rel RMW chains: the last
/// incrementer's acquire carries the first thread's release.
#[test]
fn acq_rel_rmw_chain_carries_hb() {
    let mut model = Model::new(Config::for_policy(Policy::C11Tester).with_seed(105));
    let report = model.check(150, || {
        let data = Arc::new(Shared::named("chain.data", 0u32));
        let ctr = Arc::new(AtomicU32::named("chain.ctr", 0));
        let (d1, c1) = (Arc::clone(&data), Arc::clone(&ctr));
        let t1 = c11tester::thread::spawn(move || {
            d1.set(77);
            c1.fetch_add(1, Ordering::AcqRel);
        });
        let c2 = Arc::clone(&ctr);
        let t2 = c11tester::thread::spawn(move || {
            c2.fetch_add(1, Ordering::AcqRel);
        });
        // Once both increments are visible, the data write is too.
        if ctr.load(Ordering::Acquire) == 2 {
            assert_eq!(data.get(), 77);
        }
        t1.join();
        t2.join();
    });
    assert_eq!(report.executions_with_race, 0, "{report}");
    assert_eq!(report.executions_with_bug, 0, "{report}");
}

/// Coherence-of-write-read across synchronization: after acquiring a
/// flag, a reader can never see values older than what the flag's
/// release publisher had already overwritten.
#[test]
fn cowr_after_acquire() {
    let seen = outcomes(300, 106, || {
        let x = Arc::new(AtomicU32::new(0));
        let f = Arc::new(AtomicU32::new(0));
        let (x2, f2) = (Arc::clone(&x), Arc::clone(&f));
        let t = c11tester::thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            x2.store(2, Ordering::Relaxed);
            f2.store(1, Ordering::Release);
        });
        let synced = f.load(Ordering::Acquire) == 1;
        let r = x.load(Ordering::Relaxed);
        t.join();
        (synced, r)
    });
    assert!(
        !seen.contains(&(true, 0)) && !seen.contains(&(true, 1)),
        "CoWR after acquire violated: {seen:?}"
    );
    assert!(seen.contains(&(true, 2)), "{seen:?}");
}

/// MP with release/acquire *fences* (C++11 §29.8): relaxed data and
/// flag accesses, but a release fence before the flag store and an
/// acquire fence after the flag load synchronize — the stale read
/// {flag = 1 ∧ data = 0} is forbidden.
#[test]
fn mp_with_release_acquire_fences_forbids_stale_read() {
    let seen = outcomes(300, 108, || {
        let data = Arc::new(AtomicU32::new(0));
        let flag = Arc::new(AtomicU32::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = c11tester::thread::spawn(move || {
            d2.store(1, Ordering::Relaxed);
            fence(Ordering::Release);
            f2.store(1, Ordering::Relaxed);
        });
        let rf = flag.load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        let rd = data.load(Ordering::Relaxed);
        t.join();
        (rf, rd)
    });
    assert!(
        !seen.contains(&(1, 0)),
        "fence pair must forbid the stale read: {seen:?}"
    );
    assert!(seen.contains(&(1, 1)), "{seen:?}");
    assert!(
        seen.contains(&(0, 0)) || seen.contains(&(0, 1)),
        "exploration should also miss the flag sometimes: {seen:?}"
    );
}

/// The race-detector view of the same fence pair: with the fences in
/// place a non-atomic publication is ordered and race-free.
#[test]
fn mp_fence_pair_synchronizes_nonatomic_data() {
    let mut model = Model::new(Config::for_policy(Policy::C11Tester).with_seed(109));
    let report = model.check(200, || {
        let data = Arc::new(Shared::named("fence.mp.data", 0u32));
        let flag = Arc::new(AtomicU32::named("fence.mp.flag", 0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = c11tester::thread::spawn(move || {
            d2.set(1);
            fence(Ordering::Release);
            f2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 {
            fence(Ordering::Acquire);
            assert_eq!(data.get(), 1);
        }
        t.join();
    });
    assert_eq!(report.executions_with_race, 0, "{report}");
    assert_eq!(report.executions_with_bug, 0, "{report}");
}

/// LB (load buffering) with seq_cst fences between each load and the
/// subsequent store: the out-of-thin-air-ish {r1 = 1 ∧ r2 = 1} is
/// forbidden.
#[test]
fn lb_with_sc_fences_forbids_both_one() {
    let seen = outcomes(300, 110, || {
        let x = Arc::new(AtomicU32::new(0));
        let y = Arc::new(AtomicU32::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = c11tester::thread::spawn(move || {
            let r1 = x2.load(Ordering::Relaxed);
            fence(Ordering::SeqCst);
            y2.store(1, Ordering::Relaxed);
            r1
        });
        let r2 = y.load(Ordering::Relaxed);
        fence(Ordering::SeqCst);
        x.store(1, Ordering::Relaxed);
        let r1 = t.join();
        (r1, r2)
    });
    assert!(
        !seen.contains(&(1, 1)),
        "LB with sc fences must forbid both-one: {seen:?}"
    );
    assert!(seen.len() >= 2, "exploration should vary: {seen:?}");
}

/// CoWW + CoRR coherence on one variable: a thread's two relaxed
/// stores are mo-ordered, so a reader that saw the second store can
/// never subsequently read the first.
#[test]
fn coww_same_thread_stores_stay_ordered() {
    let seen = outcomes(300, 111, || {
        let x = Arc::new(AtomicU32::new(0));
        let x2 = Arc::clone(&x);
        let t = c11tester::thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            x2.store(2, Ordering::Relaxed);
        });
        let r1 = x.load(Ordering::Relaxed);
        let r2 = x.load(Ordering::Relaxed);
        t.join();
        (r1, r2)
    });
    assert!(
        !seen.contains(&(2, 1)),
        "CoWW/CoRR violation — read 1 after 2: {seen:?}"
    );
    assert!(seen.contains(&(2, 2)), "{seen:?}");
    assert!(
        seen.contains(&(0, 0)) || seen.contains(&(1, 1)) || seen.contains(&(1, 2)),
        "weak-but-coherent outcomes should appear: {seen:?}"
    );
}

/// CoWR coherence: a thread that stored to `x` can never read a value
/// older than its own store, even with a concurrent writer in flight.
#[test]
fn cowr_own_store_hides_older_values() {
    let seen = outcomes(300, 112, || {
        let x = Arc::new(AtomicU32::new(0));
        let x2 = Arc::clone(&x);
        let t = c11tester::thread::spawn(move || {
            x2.store(2, Ordering::Relaxed);
        });
        x.store(1, Ordering::Relaxed);
        let r = x.load(Ordering::Relaxed);
        t.join();
        r
    });
    assert!(
        !seen.contains(&0),
        "CoWR violation — read the initial value over own store: {seen:?}"
    );
    assert!(seen.contains(&1), "{seen:?}");
    assert!(
        seen.contains(&2),
        "the concurrent store should be readable too: {seen:?}"
    );
}

/// IRIW with acquire-only readers: without seq_cst the two readers may
/// disagree on the order of the independent writes — the outcome
/// {r1 = 1, r2 = 0, r3 = 1, r4 = 0} is *allowed* and must be
/// reachable. (The seq_cst variant in `litmus.rs` forbids it.)
#[test]
fn iriw_acquire_only_readers_may_disagree() {
    let seen = outcomes(600, 113, || {
        let x = Arc::new(AtomicU32::new(0));
        let y = Arc::new(AtomicU32::new(0));
        let (xw, yw) = (Arc::clone(&x), Arc::clone(&y));
        let (xa, ya) = (Arc::clone(&x), Arc::clone(&y));
        let (xb, yb) = (Arc::clone(&x), Arc::clone(&y));
        let w1 = c11tester::thread::spawn(move || xw.store(1, Ordering::Release));
        let w2 = c11tester::thread::spawn(move || yw.store(1, Ordering::Release));
        let ra = c11tester::thread::spawn(move || {
            let r1 = xa.load(Ordering::Acquire);
            let r2 = ya.load(Ordering::Acquire);
            (r1, r2)
        });
        let rb = c11tester::thread::spawn(move || {
            let r3 = yb.load(Ordering::Acquire);
            let r4 = xb.load(Ordering::Acquire);
            (r3, r4)
        });
        w1.join();
        w2.join();
        let (r1, r2) = ra.join();
        let (r3, r4) = rb.join();
        (r1, r2, r3, r4)
    });
    assert!(
        seen.contains(&(1, 0, 1, 0)),
        "acquire-only IRIW must allow disagreeing readers: {} outcomes seen",
        seen.len()
    );
}

/// The write-run rule does not change the set of legal outcomes — only
/// the exploration bias (paper Fig. 4). Cross-check: every outcome seen
/// with the burst scheduler (which interrupts stores) is also seen with
/// the default one.
#[test]
fn write_run_rule_preserves_outcomes() {
    let collect = |policy: Policy, seed: u64| {
        let mut model = Model::new(Config::for_policy(policy).with_seed(seed));
        let seen = StdMutex::new(HashSet::new());
        for _ in 0..300 {
            model.run(|| {
                let x = Arc::new(AtomicU32::new(0));
                let x2 = Arc::clone(&x);
                let t = c11tester::thread::spawn(move || {
                    x2.store(1, Ordering::Relaxed);
                    x2.store(2, Ordering::Relaxed);
                });
                let r = x.load(Ordering::Relaxed);
                t.join();
                seen.lock().expect("set").insert(r);
            });
        }
        seen.into_inner().expect("set")
    };
    let with_rule = collect(Policy::C11Tester, 107);
    assert_eq!(with_rule, HashSet::from([0, 1, 2]));
}
