//! Dedicated PCT-strategy suite (Burckhardt et al.'s probabilistic
//! concurrency testing, exposed through C11Tester's pluggable-strategy
//! framework, paper §3):
//!
//! * executions are deterministic by `(seed, index)` — replayable with
//!   [`Model::run_at`] like every built-in strategy;
//! * depth sensitivity: a depth-2 bug (one mid-thread preemption
//!   required) is invisible to PCT at depth 1 and found at depth ≥ 2;
//! * change-point/priority-set behavior of the scheduler itself: at
//!   most `depth − 1` preemptions per execution, demotion at change
//!   points, and fresh threads drawing high-band priorities.

use c11tester::sync::atomic::{AtomicU32, Ordering};
use c11tester::{Config, Model, PctScheduler, Scheduler, Strategy, ThreadId};
use std::sync::Arc;

fn pct_config(seed: u64, depth: u32, expected_ops: u64) -> Config {
    Config::new().with_seed(seed).with_strategy(Strategy::Pct {
        depth,
        expected_ops,
    })
}

/// A racy publication program (the paper's Figure-2 shape): enough
/// schedule- and reads-from-dependent behavior to distinguish
/// executions, with a data race PCT can detect.
fn racy_program() {
    let data = Arc::new(c11tester::Shared::named("pct.data", 0u32));
    let flag = Arc::new(AtomicU32::named("pct.flag", 0));
    let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
    let th = c11tester::thread::spawn(move || {
        d2.set(42);
        f2.store(1, Ordering::Relaxed); // bug: should be Release
    });
    if flag.load(Ordering::Relaxed) == 1 {
        let _ = data.get();
    }
    th.join();
}

#[test]
fn pct_execution_is_deterministic_by_seed_and_index() {
    let config = || pct_config(0xBEEF, 3, 64);
    // Serial reference: indices 0..4 on one model.
    let mut serial = Model::new(config());
    let reference: Vec<_> = (0..4).map(|_| serial.run(racy_program)).collect();
    // Each index replays identically on a fresh model.
    for (i, expected) in reference.iter().enumerate() {
        let mut fresh = Model::new(config());
        let replayed = fresh.run_at(i as u64, racy_program);
        assert_eq!(replayed.execution_index, expected.execution_index);
        assert_eq!(replayed.stats, expected.stats, "stats at index {i}");
        let keys =
            |r: &c11tester::ExecutionReport| r.races.iter().map(|x| x.key()).collect::<Vec<_>>();
        assert_eq!(keys(&replayed), keys(expected), "race set at index {i}");
        assert_eq!(replayed.strategy, "pct3@64");
    }
    // A different seed steers the stream elsewhere (compare the whole
    // 4-execution stat vector so a single collision can't flake this).
    let mut other = Model::new(pct_config(0xFEED, 3, 64));
    let other_stats: Vec<_> = (0..4).map(|_| other.run(racy_program).stats).collect();
    let ref_stats: Vec<_> = reference.iter().map(|r| r.stats).collect();
    assert_ne!(ref_stats, other_stats, "seed must matter");
}

/// A depth-2 lost-update bug: both threads do a seq_cst load/store
/// increment, so the final count is 1 **only** when one thread is
/// preempted between its load and its store. PCT at depth 1 has zero
/// change points — threads run to completion in priority order and the
/// bug is unreachable; depth ≥ 2 places a change point that can land
/// in the window.
fn lost_update_program() {
    let c = Arc::new(AtomicU32::new(0));
    let c2 = Arc::clone(&c);
    let t = c11tester::thread::spawn(move || {
        let v = c2.load(Ordering::SeqCst);
        c2.store(v + 1, Ordering::SeqCst);
    });
    let v = c.load(Ordering::SeqCst);
    c.store(v + 1, Ordering::SeqCst);
    t.join();
    assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
}

#[test]
fn pct_depth_1_cannot_find_the_depth_2_bug() {
    let mut model = Model::new(pct_config(0x51, 1, 16));
    let report = model.check(300, lost_update_program);
    assert_eq!(
        report.executions_with_bug, 0,
        "depth-1 PCT never preempts mid-thread: {report}"
    );
}

#[test]
fn pct_depth_2_finds_the_depth_2_bug() {
    let mut model = Model::new(pct_config(0x52, 2, 16));
    let report = model.check(300, lost_update_program);
    assert!(
        report.executions_with_bug > 0,
        "depth-2 PCT must hit the load/store window: {report}"
    );
    // And the failure really is the lost-update assertion.
    assert!(report
        .failures
        .iter()
        .any(|(_, f)| f.to_string().contains("lost update")));
}

#[test]
fn pct_depth_3_also_finds_the_depth_2_bug() {
    // PCT's guarantee is monotone in depth: d change points cover
    // depth-(d ≤ d') bugs too.
    let mut model = Model::new(pct_config(0x53, 3, 16));
    let report = model.check(300, lost_update_program);
    assert!(report.executions_with_bug > 0, "{report}");
}

fn t(ix: usize) -> ThreadId {
    ThreadId::from_index(ix)
}

#[test]
fn pct_preempts_at_most_depth_minus_one_times() {
    // Drive the scheduler directly over a fixed enabled set: after the
    // initial priority ordering settles, every switch away from a
    // still-enabled current thread is a change-point preemption, and
    // there are at most depth − 1 of them.
    let enabled = [t(0), t(1), t(2)];
    for depth in 1..=4u32 {
        for seed in 0..8u64 {
            let mut s = PctScheduler::new(seed, depth, 64);
            s.begin_execution(0);
            let mut cur = s.next_thread(&enabled, t(0));
            let mut preemptions = 0;
            for _ in 0..200 {
                let next = s.next_thread(&enabled, cur);
                if next != cur {
                    preemptions += 1;
                    cur = next;
                }
            }
            assert!(
                preemptions < depth,
                "depth-{depth} PCT preempted {preemptions} times (seed {seed}); \
                 the bound is depth − 1"
            );
        }
    }
}

#[test]
fn pct_change_point_demotes_below_fresh_threads() {
    // expected_ops = 1 forces the single change point of depth 2 to
    // fire on the first step, demoting the current thread to the low
    // band. A thread appearing afterwards draws a high-band priority
    // and must win the next scheduling decision.
    let mut s = PctScheduler::new(7, 2, 1);
    s.begin_execution(0);
    // Only t0 enabled: it runs, the change point fires and demotes it.
    assert_eq!(s.next_thread(&[t(0)], t(0)), t(0));
    // A fresh thread outranks the demoted one.
    assert_eq!(s.next_thread(&[t(0), t(1)], t(0)), t(1));
    // And keeps outranking it on subsequent steps (the demotion is
    // sticky, not a one-shot yield).
    assert_eq!(s.next_thread(&[t(0), t(1)], t(1)), t(1));
}

#[test]
fn pct_decision_stream_varies_across_execution_indices() {
    // begin_execution(i) must reseed priorities and change points from
    // (seed, i): across indices the decision sequences differ.
    let enabled = [t(0), t(1), t(2)];
    let sequence = |index: u64| {
        let mut s = PctScheduler::new(0xC11, 3, 32);
        s.begin_execution(index);
        let mut cur = t(0);
        (0..48)
            .map(|_| {
                cur = s.next_thread(&enabled, cur);
                cur.index()
            })
            .collect::<Vec<_>>()
    };
    let sequences: Vec<_> = (0..20).map(sequence).collect();
    let distinct = sequences
        .iter()
        .collect::<std::collections::HashSet<_>>()
        .len();
    assert!(
        distinct >= 2,
        "20 indices produced only {distinct} distinct schedules"
    );
    // While the same index replays identically.
    assert_eq!(sequence(5), sequence(5));
}

#[test]
fn pct_read_choices_replay_with_the_schedule() {
    // choose_read shares the per-(seed, index) stream: a full model
    // execution under PCT replays reads-from choices too. Exercised
    // through outcome equality on a program whose result depends on
    // reads-from resolution.
    let program = || {
        let x = Arc::new(AtomicU32::new(0));
        let x2 = Arc::clone(&x);
        let th = c11tester::thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            x2.store(2, Ordering::Relaxed);
        });
        let _ = x.load(Ordering::Relaxed);
        let _ = x.load(Ordering::Relaxed);
        th.join();
    };
    let config = || pct_config(0x77, 2, 32);
    let mut a = Model::new(config());
    let runs_a: Vec<_> = (0..8).map(|_| a.run(program).stats).collect();
    let mut b = Model::new(config());
    let runs_b: Vec<_> = (0..8).map(|_| b.run(program).stats).collect();
    assert_eq!(runs_a, runs_b);
}
