//! Criterion companion to Table 1: one benchmark per (application ×
//! tool), timing a full model execution of the application simulation.

use c11tester::Policy;
use c11tester_bench::paper_model;
use c11tester_workloads::AppBench;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_apps(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for app in AppBench::all() {
        for policy in [Policy::C11Tester, Policy::Tsan11Rec, Policy::Tsan11] {
            let id = format!("{}/{}", app.name(), policy.name());
            group.bench_function(&id, |b| {
                let mut model = paper_model(policy, 0xBE7C);
                b.iter(|| {
                    let report = model.run(move || app.run_default());
                    criterion::black_box(report.stats.atomic_ops())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_apps);
criterion_main!(benches);
