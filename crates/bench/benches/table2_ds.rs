//! Criterion companion to Table 2 / Figure 16: execution time of each
//! data-structure benchmark under each tool.

use c11tester::Policy;
use c11tester_bench::paper_model;
use c11tester_workloads::DsBench;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_ds(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(20);
    for bench in DsBench::all() {
        for policy in [Policy::C11Tester, Policy::Tsan11Rec, Policy::Tsan11] {
            let id = format!("{}/{}", bench.name(), policy.name());
            group.bench_function(&id, |b| {
                let mut model = paper_model(policy, 0xBE7D);
                b.iter(|| {
                    let report = model.run(move || bench.run());
                    criterion::black_box(report.found_race())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ds);
criterion_main!(benches);
