//! Criterion companion to Figure 14: per-handover cost of each
//! run-token strategy on a two-thread ping-pong (all-core
//! configuration; the single-core column needs process pinning — use
//! the `figure14` binary for that).

use c11tester_runtime::{HandoverKind, Notifier};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

struct PingPong {
    a: Arc<Notifier>,
    b: Arc<Notifier>,
    stop: Arc<AtomicBool>,
    child: Option<std::thread::JoinHandle<()>>,
}

impl PingPong {
    fn new(kind: HandoverKind) -> Self {
        let a = Arc::new(Notifier::new(kind));
        let b = Arc::new(Notifier::new(kind));
        let stop = Arc::new(AtomicBool::new(false));
        let (a2, b2, s2) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&stop));
        let child = std::thread::spawn(move || {
            b2.bind_current();
            loop {
                b2.wait();
                if s2.load(Ordering::Acquire) {
                    return;
                }
                a2.notify();
            }
        });
        a.bind_current();
        PingPong {
            a,
            b,
            stop,
            child: Some(child),
        }
    }

    fn round_trip(&self) {
        self.b.notify();
        self.a.wait();
    }
}

impl Drop for PingPong {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        self.b.notify();
        if let Some(c) = self.child.take() {
            let _ = c.join();
        }
    }
}

fn bench_handover(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure14");
    // Skip pure spinning here: without core pinning its cost is
    // scheduling-dependent noise; the figure14 binary covers it.
    for kind in [
        HandoverKind::Condvar,
        HandoverKind::Park,
        HandoverKind::SpinYield,
        HandoverKind::Channel,
    ] {
        group.bench_function(kind.name(), |b| {
            let pp = PingPong::new(kind);
            b.iter(|| pp.round_trip());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_handover);
criterion_main!(benches);
