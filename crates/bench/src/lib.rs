//! Shared harness utilities for regenerating the paper's tables and
//! figures.
//!
//! Each table/figure has a binary (`cargo run --release -p
//! c11tester-bench --bin table1`, …) that prints the same rows/series
//! the paper reports, and a Criterion bench target for statistically
//! robust timing. Absolute numbers differ from the paper's testbed (our
//! substrate is this workspace's model, not instrumented native code);
//! the *shape* — who wins, by roughly what factor — is the reproduction
//! target (see EXPERIMENTS.md).

use c11tester::{Config, Model, Policy};
use c11tester_campaign::{Campaign, CampaignBudget, CampaignReport};
use std::time::{Duration, Instant};

pub mod statbench;

/// Measurement of repeated model executions.
#[derive(Clone, Copy, Debug)]
pub struct Timing {
    /// Mean wall-clock time per execution.
    pub mean: Duration,
    /// Relative standard deviation (σ/mean).
    pub rsd: f64,
    /// Executions measured.
    pub runs: u32,
}

impl Timing {
    /// Mean time in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.mean.as_secs_f64() * 1e3
    }
}

/// Times `runs` executions of `body` under the paper-faithful
/// configuration for `policy`.
pub fn time_policy_runs<F>(policy: Policy, seed: u64, runs: u32, body: F) -> Timing
where
    F: Fn() + Send + Sync,
{
    let mut model = Model::new(Config::for_policy(policy).with_seed(seed));
    let mut samples = Vec::with_capacity(runs as usize);
    for _ in 0..runs {
        let t0 = Instant::now();
        let _ = model.run(&body);
        samples.push(t0.elapsed());
    }
    summarize(&samples)
}

/// Runs a fixed-budget campaign of `executions` executions of `body`
/// under the paper-faithful configuration for `policy`, using all
/// cores (or `workers`, when given). Detection rates and dedup
/// histories in the returned report are identical to the serial
/// [`Model::run_many`] aggregate over the same seed — campaigns only
/// change wall-clock time.
pub fn campaign_policy_runs<F>(
    policy: Policy,
    seed: u64,
    executions: u64,
    workers: Option<usize>,
    body: F,
) -> CampaignReport
where
    F: Fn() + Send + Sync,
{
    let mut campaign = Campaign::new(Config::for_policy(policy).with_seed(seed));
    if let Some(w) = workers {
        campaign = campaign.with_workers(w);
    }
    campaign.run(&CampaignBudget::executions(executions), body)
}

/// Runs a fixed-budget **strategy-mixed** campaign: execution `i` is
/// deterministically assigned a strategy from `(seed, i)` by `mix`
/// (see [`c11tester::StrategyMix`]), and the report carries
/// per-strategy detection columns alongside the aggregate. The same
/// determinism contract as [`campaign_policy_runs`] applies: the
/// aggregate is identical to the serial [`Model::run_many`] over the
/// same mixed config, for any worker count.
pub fn campaign_mixed_runs<F>(
    policy: Policy,
    seed: u64,
    executions: u64,
    workers: Option<usize>,
    mix: &c11tester::StrategyMix,
    body: F,
) -> CampaignReport
where
    F: Fn() + Send + Sync,
{
    let config = Config::for_policy(policy)
        .with_seed(seed)
        .with_mix(mix.clone());
    let mut campaign = Campaign::new(config);
    if let Some(w) = workers {
        campaign = campaign.with_workers(w);
    }
    campaign.run(&CampaignBudget::executions(executions), body)
}

/// Runs a fixed-budget **adaptive** campaign: the budget is split into
/// `epoch_len`-execution epochs, each epoch runs sharded under the
/// current mix, and `policy` (`fixed`, `ucb1[@c]`, `exp3[@eta]`)
/// reweights the mix between epochs from the per-strategy detection
/// columns. Deterministic and worker-count independent like every
/// fixed-budget campaign (see `c11tester-adaptive`).
#[allow(clippy::too_many_arguments)]
pub fn campaign_adaptive_runs<F>(
    policy: Policy,
    seed: u64,
    executions: u64,
    epoch_len: u64,
    workers: Option<usize>,
    mix: &c11tester::StrategyMix,
    reweighter: &str,
    body: F,
) -> c11tester_adaptive::AdaptiveReport
where
    F: Fn() + Send + Sync,
{
    let config = Config::for_policy(policy)
        .with_seed(seed)
        .with_mix(mix.clone());
    let mut campaign = c11tester_adaptive::AdaptiveCampaign::new(config)
        .with_epoch_len(epoch_len)
        .with_policy(reweighter)
        .expect("valid reweighting policy");
    if let Some(w) = workers {
        campaign = campaign.with_workers(w);
    }
    campaign.run(&CampaignBudget::executions(executions), body)
}

/// Mean wall time per execution of a campaign, as a [`Timing`] (the
/// campaign amortizes over all cores; `rsd` is not observable per
/// execution and reported as 0).
pub fn campaign_timing(report: &CampaignReport) -> Timing {
    let execs = report.aggregate.executions.max(1);
    Timing {
        mean: report.wall_time.div_f64(execs as f64),
        rsd: 0.0,
        runs: u32::try_from(execs).unwrap_or(u32::MAX),
    }
}

/// Summarizes a set of duration samples.
pub fn summarize(samples: &[Duration]) -> Timing {
    let n = samples.len().max(1) as f64;
    let mean = samples.iter().map(Duration::as_secs_f64).sum::<f64>() / n;
    let var = samples
        .iter()
        .map(|d| {
            let x = d.as_secs_f64() - mean;
            x * x
        })
        .sum::<f64>()
        / n;
    let rsd = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
    Timing {
        mean: Duration::from_secs_f64(mean),
        rsd,
        runs: samples.len() as u32,
    }
}

/// Geometric mean of a slice of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let s: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (s / values.len() as f64).exp()
}

/// CPU-affinity syscall bindings, declared directly against the libc
/// the binary links anyway (the `libc` crate is unavailable in the
/// offline build environment).
#[cfg(target_os = "linux")]
mod affinity {
    /// Matches glibc's `cpu_set_t`: a 1024-bit mask.
    #[repr(C)]
    pub struct CpuSet {
        pub bits: [u64; 16],
    }

    extern "C" {
        pub fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const CpuSet) -> i32;
        fn sysconf(name: i32) -> std::ffi::c_long;
    }

    /// `_SC_NPROCESSORS_ONLN` on Linux. `available_parallelism` is no
    /// substitute here: it respects the current affinity mask, which is
    /// exactly what `unpin_all_cores` is trying to widen.
    const SC_NPROCESSORS_ONLN: i32 = 84;

    pub fn online_cpus() -> usize {
        let n = unsafe { sysconf(SC_NPROCESSORS_ONLN) };
        if n < 1 {
            1
        } else {
            n as usize
        }
    }

    pub fn set_mask(cpus: impl Iterator<Item = usize>) -> bool {
        let mut set = CpuSet { bits: [0; 16] };
        for cpu in cpus {
            if cpu < 1024 {
                set.bits[cpu / 64] |= 1u64 << (cpu % 64);
            }
        }
        unsafe { sched_setaffinity(0, std::mem::size_of::<CpuSet>(), &set) == 0 }
    }
}

/// Pins the calling thread (and, by inheritance, the model threads it
/// spawns) to CPU 0, emulating the paper's `taskset` single-core
/// configuration. Returns `false` if unsupported on this platform.
pub fn pin_to_single_core() -> bool {
    #[cfg(target_os = "linux")]
    {
        affinity::set_mask(std::iter::once(0))
    }
    #[cfg(not(target_os = "linux"))]
    {
        false
    }
}

/// Restores the calling thread's affinity to all online CPUs.
pub fn unpin_all_cores() -> bool {
    #[cfg(target_os = "linux")]
    {
        affinity::set_mask(0..affinity::online_cpus())
    }
    #[cfg(not(target_os = "linux"))]
    {
        false
    }
}

/// Number of benchmark repetitions, overridable with `C11_BENCH_RUNS`.
pub fn runs_from_env(default: u32) -> u32 {
    std::env::var("C11_BENCH_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Builds the paper-faithful model for a policy with a given seed.
pub fn paper_model(policy: Policy, seed: u64) -> Model {
    Model::new(Config::for_policy(policy).with_seed(seed))
}

/// Prints a horizontal rule sized for our tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_equal_values_is_the_value() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn summarize_computes_mean_and_rsd() {
        let t = summarize(&[Duration::from_millis(10), Duration::from_millis(20)]);
        assert!((t.mean_ms() - 15.0).abs() < 1e-6);
        assert!(t.rsd > 0.3 && t.rsd < 0.4);
        assert_eq!(t.runs, 2);
    }

    #[test]
    fn pinning_roundtrip_does_not_fail() {
        // On Linux this pins and unpins; elsewhere both return false.
        let pinned = pin_to_single_core();
        let unpinned = unpin_all_cores();
        assert_eq!(pinned, unpinned);
    }
}
