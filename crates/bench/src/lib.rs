//! Shared harness utilities for regenerating the paper's tables and
//! figures.
//!
//! Each table/figure has a binary (`cargo run --release -p
//! c11tester-bench --bin table1`, …) that prints the same rows/series
//! the paper reports, and a Criterion bench target for statistically
//! robust timing. Absolute numbers differ from the paper's testbed (our
//! substrate is this workspace's model, not instrumented native code);
//! the *shape* — who wins, by roughly what factor — is the reproduction
//! target (see EXPERIMENTS.md).

use c11tester::{Config, Model, Policy};
use std::time::{Duration, Instant};

/// Measurement of repeated model executions.
#[derive(Clone, Copy, Debug)]
pub struct Timing {
    /// Mean wall-clock time per execution.
    pub mean: Duration,
    /// Relative standard deviation (σ/mean).
    pub rsd: f64,
    /// Executions measured.
    pub runs: u32,
}

impl Timing {
    /// Mean time in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.mean.as_secs_f64() * 1e3
    }
}

/// Times `runs` executions of `body` under the paper-faithful
/// configuration for `policy`.
pub fn time_policy_runs<F>(policy: Policy, seed: u64, runs: u32, body: F) -> Timing
where
    F: Fn() + Send + Sync,
{
    let mut model = Model::new(Config::for_policy(policy).with_seed(seed));
    let mut samples = Vec::with_capacity(runs as usize);
    for _ in 0..runs {
        let t0 = Instant::now();
        let _ = model.run(&body);
        samples.push(t0.elapsed());
    }
    summarize(&samples)
}

/// Summarizes a set of duration samples.
pub fn summarize(samples: &[Duration]) -> Timing {
    let n = samples.len().max(1) as f64;
    let mean = samples.iter().map(Duration::as_secs_f64).sum::<f64>() / n;
    let var = samples
        .iter()
        .map(|d| {
            let x = d.as_secs_f64() - mean;
            x * x
        })
        .sum::<f64>()
        / n;
    let rsd = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
    Timing {
        mean: Duration::from_secs_f64(mean),
        rsd,
        runs: samples.len() as u32,
    }
}

/// Geometric mean of a slice of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let s: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (s / values.len() as f64).exp()
}

/// Pins the calling thread (and, by inheritance, the model threads it
/// spawns) to CPU 0, emulating the paper's `taskset` single-core
/// configuration. Returns `false` if unsupported on this platform.
pub fn pin_to_single_core() -> bool {
    #[cfg(target_os = "linux")]
    unsafe {
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        libc::CPU_ZERO(&mut set);
        libc::CPU_SET(0, &mut set);
        libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set) == 0
    }
    #[cfg(not(target_os = "linux"))]
    {
        false
    }
}

/// Restores the calling thread's affinity to all online CPUs.
pub fn unpin_all_cores() -> bool {
    #[cfg(target_os = "linux")]
    unsafe {
        let n = libc::sysconf(libc::_SC_NPROCESSORS_ONLN).max(1) as usize;
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        libc::CPU_ZERO(&mut set);
        for cpu in 0..n.min(libc::CPU_SETSIZE as usize) {
            libc::CPU_SET(cpu, &mut set);
        }
        libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set) == 0
    }
    #[cfg(not(target_os = "linux"))]
    {
        false
    }
}

/// Number of benchmark repetitions, overridable with `C11_BENCH_RUNS`.
pub fn runs_from_env(default: u32) -> u32 {
    std::env::var("C11_BENCH_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Builds the paper-faithful model for a policy with a given seed.
pub fn paper_model(policy: Policy, seed: u64) -> Model {
    Model::new(Config::for_policy(policy).with_seed(seed))
}

/// Prints a horizontal rule sized for our tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_equal_values_is_the_value() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn summarize_computes_mean_and_rsd() {
        let t = summarize(&[Duration::from_millis(10), Duration::from_millis(20)]);
        assert!((t.mean_ms() - 15.0).abs() < 1e-6);
        assert!(t.rsd > 0.3 && t.rsd < 0.4);
        assert_eq!(t.runs, 2);
    }

    #[test]
    fn pinning_roundtrip_does_not_fail() {
        // On Linux this pins and unpins; elsewhere both return false.
        let pinned = pin_to_single_core();
        let unpinned = unpin_all_cores();
        assert_eq!(pinned, unpinned);
    }
}
