//! The in-tree statistical benchmark harness behind the `c11bench`
//! binary (the offline replacement for the parked Criterion benches).
//!
//! Method: for each named campaign target, run `warmup` untimed trials
//! followed by `trials` timed trials; each trial is one fixed-budget
//! [`Campaign`] of `executions` executions under a fixed seed. The
//! reported statistic is the **median executions/second over the
//! trials with the interquartile range** — robust against the
//! scheduling noise of shared CI hosts, unlike a mean. Every trial
//! must also produce **byte-identical canonical JSON** (same seed,
//! same budget ⇒ same report), so each bench run doubles as a
//! determinism check of the recycled hot path.
//!
//! Results serialize to the `c11bench/v1` schema written to
//! `BENCH_campaign.json` (see `docs/BENCH.md`); a previous file can be
//! fed back as a baseline to compute per-target speedups.

use c11tester::Config;
use c11tester_campaign::baseline::JsonValue;
use c11tester_campaign::targets::Target;
use c11tester_campaign::wire::esc;
use c11tester_campaign::{Campaign, CampaignBudget};
use std::collections::BTreeMap;
use std::time::Instant;

/// Targets measured when `c11bench` is given no `--targets` list: a
/// litmus-style pair (dekker, barrier), the lock-free data structures,
/// the lock implementations, the §8.1 seeded-bug workloads, one
/// application simulation, and one generated program (the interpreter
/// hot path the fuzzer sweeps).
pub const DEFAULT_BENCH_TARGETS: &[&str] = &[
    "dekker-fences",
    "barrier",
    "ms-queue",
    "mpmc-queue",
    "chase-lev-deque",
    "mcs-lock",
    "linuxrwlocks",
    "seqlock-buggy",
    "rwlock-buggy",
    "silo",
    "gen:5",
];

/// Harness parameters (all fixed and recorded in the output so a run
/// is reproducible from its JSON alone).
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Base seed for every campaign.
    pub seed: u64,
    /// Executions per timed trial.
    pub executions: u64,
    /// Timed trials per target.
    pub trials: u32,
    /// Untimed warmup trials per target.
    pub warmup: u32,
    /// Campaign worker threads.
    pub workers: usize,
    /// Run model threads on the pooled runtime (the default). `false`
    /// spawns a fresh OS thread per model thread per execution — the
    /// pre-pool behavior, kept for A/B measurement.
    pub thread_pool: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            seed: 0xC11,
            executions: 300,
            trials: 7,
            warmup: 2,
            workers: 1,
            thread_pool: true,
        }
    }
}

/// Measurement outcome for one target.
#[derive(Clone, Debug)]
pub struct TargetResult {
    /// Target name (the campaign registry key).
    pub name: String,
    /// Target group (table2 / section8.1 / table1).
    pub group: String,
    /// Executions/second of each timed trial, in run order.
    pub trial_rates: Vec<f64>,
    /// Median executions/second over the trials.
    pub median: f64,
    /// Interquartile range (q3 − q1) of the trial rates.
    pub iqr: f64,
    /// Whether every trial produced byte-identical canonical JSON
    /// (the determinism self-check; must always hold).
    pub deterministic: bool,
    /// Distinct behaviors (rf edges + mo adjacencies + race classes +
    /// interleaving signatures) one trial budget explores on this
    /// target, measured by an extra *untimed* campaign with the
    /// coverage gate armed. Diagnostic column — timed trials run with
    /// coverage off, so medians measure the product configuration.
    pub coverage_behaviors: u64,
    /// Baseline median executions/second, when a baseline file names
    /// this target.
    pub baseline_median: Option<f64>,
}

impl TargetResult {
    /// `median / baseline_median`, when a baseline is present.
    pub fn speedup(&self) -> Option<f64> {
        self.baseline_median
            .filter(|&b| b > 0.0)
            .map(|b| self.median / b)
    }
}

/// Linear-interpolation quantile of an ascending-sorted slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median of an ascending-sorted slice.
pub fn median_sorted(sorted: &[f64]) -> f64 {
    quantile(sorted, 0.5)
}

/// Interquartile range of an ascending-sorted slice.
pub fn iqr_sorted(sorted: &[f64]) -> f64 {
    quantile(sorted, 0.75) - quantile(sorted, 0.25)
}

/// Benchmarks one target under `cfg` (warmups, timed trials,
/// determinism cross-check).
pub fn bench_target(
    target: &Target,
    cfg: &BenchConfig,
    baseline_median: Option<f64>,
) -> TargetResult {
    let campaign = || {
        let config = Config::new()
            .with_seed(cfg.seed)
            .with_thread_pool(cfg.thread_pool);
        Campaign::new(config).with_workers(cfg.workers.max(1))
    };
    let budget = CampaignBudget::executions(cfg.executions);
    let mut canonical: Option<String> = None;
    let mut deterministic = true;
    let mut rates = Vec::with_capacity(cfg.trials as usize);
    for trial in 0..(cfg.warmup + cfg.trials) {
        let t0 = Instant::now();
        let report = campaign().run(&budget, || target.run());
        let secs = t0.elapsed().as_secs_f64();
        let timed = trial >= cfg.warmup;
        if timed && secs > 0.0 {
            rates.push(report.aggregate.executions as f64 / secs);
        }
        // Determinism self-check over *all* trials, warmup included.
        let json = report.canonical_json();
        match &canonical {
            None => canonical = Some(json),
            Some(first) => {
                if *first != json {
                    deterministic = false;
                }
            }
        }
    }
    // Coverage column: one extra untimed campaign with the behavior-
    // coverage gate armed (the gate is a process global — restore it
    // so timed trials elsewhere stay coverage-free).
    let was_coverage = c11tester::coverage_enabled();
    c11tester::set_coverage(true);
    let coverage_behaviors = campaign()
        .run(&budget, || target.run())
        .aggregate
        .coverage
        .distinct_total();
    c11tester::set_coverage(was_coverage);
    let mut sorted = rates.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    TargetResult {
        name: target.name.to_string(),
        group: target.group.to_string(),
        median: median_sorted(&sorted),
        iqr: iqr_sorted(&sorted),
        trial_rates: rates,
        deterministic,
        coverage_behaviors,
        baseline_median,
    }
}

/// Parses a previous `c11bench/v1` JSON file into `name → median`
/// (used as the baseline for speedup columns).
pub fn parse_baseline_medians(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let doc = JsonValue::parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("baseline file has no `schema`")?;
    if schema != "c11bench/v1" {
        return Err(format!("unsupported baseline schema `{schema}`"));
    }
    let targets = doc
        .get("targets")
        .and_then(JsonValue::as_array)
        .ok_or("baseline file has no `targets` array")?;
    let mut out = BTreeMap::new();
    for t in targets {
        let name = t
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or("baseline target without `name`")?;
        let median = t
            .get("median_execs_per_sec")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("baseline target `{name}` without `median_execs_per_sec`"))?;
        out.insert(name.to_string(), median);
    }
    Ok(out)
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_opt_f64(v: Option<f64>) -> String {
    v.map(json_f64).unwrap_or_else(|| "null".to_string())
}

/// Serializes a bench run to the `c11bench/v1` schema (see
/// `docs/BENCH.md`). Deterministic field order; hand-rolled like every
/// other emitter in the workspace (the offline environment has no
/// serde).
pub fn render_json(cfg: &BenchConfig, results: &[TargetResult]) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str("{\"schema\":\"c11bench/v1\"");
    out.push_str(&format!(
        ",\"config\":{{\"seed\":{},\"executions_per_trial\":{},\"trials\":{},\"warmup_trials\":{},\"workers\":{},\"thread_pool\":{}}}",
        cfg.seed, cfg.executions, cfg.trials, cfg.warmup, cfg.workers, cfg.thread_pool,
    ));
    out.push_str(&format!(
        ",\"host\":{{\"available_parallelism\":{}}}",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    out.push_str(",\"targets\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"group\":\"{}\"",
            esc(&r.name),
            esc(&r.group)
        ));
        out.push_str(&format!(",\"median_execs_per_sec\":{}", json_f64(r.median)));
        out.push_str(&format!(",\"iqr_execs_per_sec\":{}", json_f64(r.iqr)));
        out.push_str(&format!(
            ",\"baseline_median_execs_per_sec\":{}",
            json_opt_f64(r.baseline_median)
        ));
        out.push_str(&format!(
            ",\"speedup_vs_baseline\":{}",
            json_opt_f64(r.speedup())
        ));
        out.push_str(&format!(",\"deterministic\":{}", r.deterministic));
        out.push_str(&format!(",\"coverage_behaviors\":{}", r.coverage_behaviors));
        out.push_str(",\"trial_execs_per_sec\":[");
        for (j, rate) in r.trial_rates.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&json_f64(*rate));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Schema/sanity validation used by `c11bench --smoke` (and tests):
/// every target measured, every median positive, every trial vector
/// fully populated, every determinism self-check green. Deliberately
/// free of absolute-time assertions so it cannot flake on slow or
/// single-core CI runners.
pub fn validate(results: &[TargetResult], cfg: &BenchConfig) -> Result<(), String> {
    if results.is_empty() {
        return Err("no targets were measured".into());
    }
    for r in results {
        if r.trial_rates.len() != cfg.trials as usize {
            return Err(format!(
                "target `{}`: {} trials recorded, expected {}",
                r.name,
                r.trial_rates.len(),
                cfg.trials
            ));
        }
        // NaN also fails: a non-finite median is as broken as zero.
        if r.median.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(format!("target `{}`: non-positive median", r.name));
        }
        if r.iqr < 0.0 {
            return Err(format!("target `{}`: negative IQR", r.name));
        }
        if !r.deterministic {
            return Err(format!(
                "target `{}`: canonical JSON differed across trials — the recycled \
                 hot path broke determinism",
                r.name
            ));
        }
        // Every execution contributes at least its interleaving
        // signature, so a zero here means the coverage pass never ran.
        if r.coverage_behaviors == 0 {
            return Err(format!(
                "target `{}`: coverage column is zero — the coverage campaign \
                 collected nothing",
                r.name
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_data() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!((median_sorted(&sorted) - 3.0).abs() < 1e-12);
        assert!((iqr_sorted(&sorted) - 2.0).abs() < 1e-12);
        let two = [10.0, 20.0];
        assert!((median_sorted(&two) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn bench_smoke_roundtrip_and_validation() {
        let cfg = BenchConfig {
            executions: 10,
            trials: 2,
            warmup: 1,
            ..BenchConfig::default()
        };
        let target = c11tester_campaign::targets::find("rwlock-buggy").expect("target");
        let result = bench_target(&target, &cfg, Some(1.0));
        assert_eq!(result.trial_rates.len(), 2);
        assert!(result.deterministic, "canonical JSON must not vary");
        assert!(result.median > 0.0);
        assert!(result.speedup().is_some());
        assert!(
            result.coverage_behaviors > 0,
            "coverage pass collects behaviors"
        );
        assert!(
            !c11tester::coverage_enabled(),
            "bench restores the coverage gate"
        );
        let json = render_json(&cfg, std::slice::from_ref(&result));
        assert!(json.starts_with("{\"schema\":\"c11bench/v1\""));
        assert!(json.contains("\"coverage_behaviors\":"));
        validate(std::slice::from_ref(&result), &cfg).expect("valid");
        // The emitted file parses back as its own baseline.
        let medians = parse_baseline_medians(&json).expect("parse back");
        assert!((medians["rwlock-buggy"] - result.median).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_broken_results() {
        let cfg = BenchConfig {
            trials: 1,
            ..BenchConfig::default()
        };
        let good = TargetResult {
            name: "x".into(),
            group: "g".into(),
            trial_rates: vec![1.0],
            median: 1.0,
            iqr: 0.0,
            deterministic: true,
            coverage_behaviors: 3,
            baseline_median: None,
        };
        assert!(validate(std::slice::from_ref(&good), &cfg).is_ok());
        let mut no_cov = good.clone();
        no_cov.coverage_behaviors = 0;
        assert!(validate(&[no_cov], &cfg).is_err());
        let mut nondet = good.clone();
        nondet.deterministic = false;
        assert!(validate(&[nondet], &cfg).is_err());
        let mut zero = good.clone();
        zero.median = 0.0;
        assert!(validate(&[zero], &cfg).is_err());
        let mut short = good;
        short.trial_rates.clear();
        assert!(validate(&[short], &cfg).is_err());
        assert!(validate(&[], &cfg).is_err());
    }

    #[test]
    fn baseline_parser_rejects_foreign_schemas() {
        assert!(parse_baseline_medians("{\"schema\":\"c11campaign/v4\"}").is_err());
        assert!(parse_baseline_medians("{}").is_err());
        let ok = "{\"schema\":\"c11bench/v1\",\"targets\":[{\"name\":\"a\",\
                  \"median_execs_per_sec\":12.5}]}";
        let m = parse_baseline_medians(ok).expect("parses");
        assert_eq!(m.len(), 1);
        assert!((m["a"] - 12.5).abs() < 1e-12);
    }

    #[test]
    fn default_targets_all_resolve() {
        for name in DEFAULT_BENCH_TARGETS {
            assert!(
                c11tester_campaign::targets::find(name).is_some(),
                "unknown default bench target `{name}`"
            );
        }
    }
}
