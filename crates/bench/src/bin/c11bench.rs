//! `c11bench` — the in-tree statistical benchmark harness.
//!
//! Measures campaign throughput (median ± IQR executions/second over
//! repeated fixed-seed trials) on representative workload targets and
//! writes the `c11bench/v1` report to `BENCH_campaign.json` at the
//! repository root, establishing the performance trajectory future PRs
//! are compared against. Every trial re-runs the identical campaign,
//! so the harness simultaneously verifies the recycling determinism
//! contract (byte-identical canonical JSON per trial).
//!
//! ```text
//! c11bench                               # full run, writes BENCH_campaign.json
//! c11bench --baseline-file old.json      # adds per-target speedup columns
//! c11bench --smoke                       # tiny budget + schema/sanity gate (CI)
//! c11bench --targets ms-queue,silo --trials 9
//! ```

use c11tester_bench::statbench::{
    bench_target, parse_baseline_medians, render_json, validate, BenchConfig, DEFAULT_BENCH_TARGETS,
};
use c11tester_campaign::cli::{parse_u64, usage_error};
use c11tester_campaign::targets;
use std::process::ExitCode;

const USAGE: &str = "\
c11bench — in-tree statistical benchmark harness (median + IQR execs/sec)

USAGE:
    c11bench [OPTIONS]

OPTIONS:
    --targets <a,b,c>       comma-separated target names (see `c11campaign
                            --list`) [default: a representative litmus/ds/
                            locks/app mix]. A `group:<name>` entry expands
                            to every target of that group — e.g.
                            `group:graph` is the coherence-graph scaling
                            suite (mpmc-queue-large, ms-queue-large,
                            silo-large)
    --executions <N>        executions per timed trial [default: 300]
    --trials <N>            timed trials per target [default: 7]
    --warmup <N>            untimed warmup trials per target [default: 2]
    --workers <N>           campaign worker threads [default: 1 — fixed so
                            numbers are comparable across hosts]
    --seed <N>              base seed (decimal or 0x-hex) [default: 0xC11]
    --no-thread-pool        spawn a fresh OS thread per model thread per
                            execution instead of reusing pooled workers —
                            the pre-pool behavior, kept for A/B runs
                            (canonical output is byte-identical either way)
    --out <FILE>            output path [default: BENCH_campaign.json]
    --baseline-file <FILE>  previous c11bench/v1 JSON; adds baseline and
                            speedup columns per target
    --min-speedup <R>       with --baseline-file: fail (exit 4) if any
                            target's median/baseline ratio drops below R
                            (e.g. 0.98 tolerates a 2% regression). Only
                            meaningful comparing runs on the same host —
                            medians are absolute throughput
    --smoke                 quick schema/sanity gate for CI: tiny budget
                            (20 execs × 3 trials), validates the report
                            (positive medians, full trial vectors, the
                            determinism self-check) and exits non-zero on
                            violation. No absolute-time assertions — safe
                            on slow single-core runners.
    --help                  show this help
";

struct Args {
    targets: Option<Vec<String>>,
    cfg: BenchConfig,
    out: String,
    baseline_file: Option<String>,
    min_speedup: Option<f64>,
    smoke: bool,
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        targets: None,
        cfg: BenchConfig::default(),
        out: "BENCH_campaign.json".to_string(),
        baseline_file: None,
        min_speedup: None,
        smoke: false,
    };
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--targets" => {
                args.targets = Some(
                    value()?
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect(),
                )
            }
            "--executions" => args.cfg.executions = parse_u64(&value()?)?.max(1),
            "--trials" => args.cfg.trials = parse_u64(&value()?)?.clamp(1, 1000) as u32,
            "--warmup" => args.cfg.warmup = parse_u64(&value()?)?.min(1000) as u32,
            "--workers" => args.cfg.workers = parse_u64(&value()?)?.max(1) as usize,
            "--seed" => args.cfg.seed = parse_u64(&value()?)?,
            "--no-thread-pool" => args.cfg.thread_pool = false,
            "--out" => args.out = value()?,
            "--baseline-file" => args.baseline_file = Some(value()?),
            "--min-speedup" => {
                let v = value()?;
                let r: f64 = v.parse().map_err(|_| format!("not a ratio: `{v}`"))?;
                if !(r.is_finite() && r > 0.0) {
                    return Err(format!("--min-speedup must be a positive ratio, got `{v}`"));
                }
                args.min_speedup = Some(r);
            }
            "--smoke" => args.smoke = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.smoke {
        // Small fixed budget: the smoke gate checks schema and
        // determinism, not performance.
        args.cfg.executions = args.cfg.executions.min(20);
        args.cfg.trials = args.cfg.trials.min(3);
        args.cfg.warmup = args.cfg.warmup.min(1);
    }
    if args.min_speedup.is_some() && args.baseline_file.is_none() {
        return Err("--min-speedup requires --baseline-file".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            return usage_error(&msg, USAGE);
        }
    };

    let baseline = match args.baseline_file.as_deref() {
        None => None,
        Some(path) => match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!("error: cannot read baseline `{path}`: {e}");
                return ExitCode::from(2);
            }
            Ok(text) => match parse_baseline_medians(&text) {
                Err(msg) => {
                    eprintln!("error: baseline `{path}`: {msg}");
                    return ExitCode::from(2);
                }
                Ok(medians) => Some(medians),
            },
        },
    };

    let names: Vec<String> = match &args.targets {
        Some(list) => list.clone(),
        None => DEFAULT_BENCH_TARGETS
            .iter()
            .map(|s| s.to_string())
            .collect(),
    };
    let mut resolved = Vec::with_capacity(names.len());
    for name in &names {
        if let Some(group) = name.strip_prefix("group:") {
            let members: Vec<_> = targets::all()
                .into_iter()
                .filter(|t| t.group.eq_ignore_ascii_case(group))
                .collect();
            if members.is_empty() {
                eprintln!("error: unknown target group `{group}` (see `c11campaign --list`)");
                return ExitCode::from(2);
            }
            resolved.extend(members);
            continue;
        }
        match targets::find(name) {
            Some(t) => resolved.push(t),
            None => {
                eprintln!("error: unknown target `{name}` (see `c11campaign --list`)");
                return ExitCode::from(2);
            }
        }
    }

    let cfg = &args.cfg;
    eprintln!(
        "c11bench: {} target(s), {} execs/trial, {} trial(s) (+{} warmup), \
         {} worker(s), seed {:#x}",
        resolved.len(),
        cfg.executions,
        cfg.trials,
        cfg.warmup,
        cfg.workers,
        cfg.seed,
    );
    println!(
        "{:<18} {:>14} {:>12} {:>12} {:>9}",
        "TARGET", "MEDIAN exec/s", "IQR", "BASELINE", "SPEEDUP"
    );
    let mut results = Vec::with_capacity(resolved.len());
    for target in &resolved {
        let base = baseline.as_ref().and_then(|m| m.get(target.name)).copied();
        let r = bench_target(target, cfg, base);
        println!(
            "{:<18} {:>14.1} {:>12.1} {:>12} {:>9}",
            r.name,
            r.median,
            r.iqr,
            r.baseline_median
                .map(|b| format!("{b:.1}"))
                .unwrap_or_else(|| "-".to_string()),
            r.speedup()
                .map(|s| format!("{s:.2}x"))
                .unwrap_or_else(|| "-".to_string()),
        );
        results.push(r);
    }

    let json = render_json(cfg, &results);
    if let Err(e) = std::fs::write(&args.out, format!("{json}\n")) {
        eprintln!("error: cannot write `{}`: {e}", args.out);
        return ExitCode::from(2);
    }
    eprintln!("c11bench: wrote {}", args.out);

    if let Err(msg) = validate(&results, cfg) {
        eprintln!("c11bench: VALIDATION FAILED: {msg}");
        return ExitCode::from(3);
    }
    if args.smoke {
        eprintln!("c11bench: smoke validation passed");
    }
    if let Some(floor) = args.min_speedup {
        let mut regressed = false;
        for r in &results {
            match r.speedup() {
                Some(s) if s < floor => {
                    eprintln!(
                        "c11bench: REGRESSION: `{}` at {:.3}x of baseline \
                         (floor {floor:.3}x)",
                        r.name, s
                    );
                    regressed = true;
                }
                Some(_) => {}
                None => {
                    eprintln!(
                        "c11bench: REGRESSION GATE: baseline has no median for \
                         `{}` — cannot assert the floor",
                        r.name
                    );
                    regressed = true;
                }
            }
        }
        if regressed {
            return ExitCode::from(4);
        }
        eprintln!(
            "c11bench: all {} target(s) at or above {floor:.3}x of baseline",
            results.len()
        );
    }
    ExitCode::SUCCESS
}
