//! Campaign scaling harness: wall-clock speedup of parallel exploration
//! campaigns over the serial `Model::run_many` loop, with the
//! determinism contract checked on every row.
//!
//! ```text
//! cargo run --release -p c11tester-bench --bin campaign_speedup \
//!     [-- --target <name>] [--executions N]
//! ```
//!
//! For each worker count (1, 2, 4, …, up to the core count) the
//! harness runs the same fixed budget and reports wall time, speedup
//! over serial, and whether the aggregate (detection counts + dedup
//! race set) is identical to the serial reference — it must be, or the
//! row is marked `MISMATCH`.
//!
//! On a host with ≥ 4 cores the 4-worker row lands at ≥ 2× in
//! release mode (executions are independent and embarrassingly
//! parallel; the only shared state is the report channel). On fewer
//! cores the harness still validates determinism but cannot show the
//! speedup — the core count is printed so the context is explicit.

use c11tester::{Config, Model, StrategyMix};
use c11tester_bench::runs_from_env;
use c11tester_campaign::{targets, Campaign, CampaignBudget};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut target_name = "mpmc-queue".to_string();
    let mut executions = u64::from(runs_from_env(1000));
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--target" => target_name = args.next().expect("--target needs a value"),
            "--executions" => {
                executions = args
                    .next()
                    .expect("--executions needs a value")
                    .parse()
                    .expect("--executions must be a number")
            }
            other => panic!("unknown flag `{other}`"),
        }
    }
    let target = targets::find(&target_name).unwrap_or_else(|| {
        panic!("unknown target `{target_name}` (try c11campaign --list)");
    });
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let seed = 0xCA4_4A16u64;

    println!(
        "campaign speedup on `{}`: {executions} executions, seed {seed:#x}, {cores} core(s)",
        target.name
    );

    // Serial reference: Model::run_many on one thread.
    let t0 = Instant::now();
    let serial =
        Model::new(Config::new().with_seed(seed)).run_many(executions, move || target.run());
    let serial_wall = t0.elapsed();
    println!(
        "{:<12} {:>10} {:>9} {:>12}  aggregate",
        "mode", "wall", "speedup", "exec/s"
    );
    println!(
        "{:<12} {:>10.2?} {:>8.2}x {:>12.0}  reference",
        "serial",
        serial_wall,
        1.0,
        executions as f64 / serial_wall.as_secs_f64().max(1e-12),
    );

    let mut workers = 1usize;
    let mut reached_2x_on_4 = None;
    while workers <= cores.max(4) {
        let campaign = Campaign::new(Config::new().with_seed(seed)).with_workers(workers);
        let report = campaign.run(&CampaignBudget::executions(executions), move || {
            target.run()
        });
        let speedup = serial_wall.as_secs_f64() / report.wall_time.as_secs_f64().max(1e-12);
        let matches = report.aggregate == serial;
        println!(
            "{:<12} {:>10.2?} {:>8.2}x {:>12.0}  {}",
            format!("{workers} worker(s)"),
            report.wall_time,
            speedup,
            report.throughput(),
            if matches { "identical" } else { "MISMATCH" },
        );
        assert!(
            matches,
            "campaign aggregate diverged from serial at {workers} workers"
        );
        if workers == 4 {
            reached_2x_on_4 = Some(speedup >= 2.0);
        }
        workers *= 2;
    }

    match reached_2x_on_4 {
        Some(true) => println!("4-worker campaign achieved >= 2x over serial."),
        Some(false) if cores >= 4 => {
            println!("WARNING: 4-worker campaign below 2x despite {cores} cores.")
        }
        _ => println!(
            "(only {cores} core(s) available: speedup not observable here; \
             determinism verified on every row)"
        ),
    }

    // Mixed-strategy determinism: the same contract must hold when a
    // StrategyMix assigns each execution index its own strategy.
    let mix = StrategyMix::parse("random:2,pct2:1,pct3:1").expect("valid mix");
    let mixed_config = || Config::new().with_seed(seed).with_mix(mix.clone());
    let mixed_execs = executions.min(500);
    let mixed_serial = Model::new(mixed_config()).run_many(mixed_execs, move || target.run());
    let mixed_campaign = Campaign::new(mixed_config())
        .with_workers(4)
        .run(&CampaignBudget::executions(mixed_execs), move || {
            target.run()
        });
    assert_eq!(
        mixed_campaign.aggregate, mixed_serial,
        "mixed-strategy campaign aggregate diverged from serial"
    );
    assert_eq!(
        mixed_campaign.per_strategy().total_executions(),
        mixed_execs,
        "per-strategy columns must tile the mixed budget"
    );
    println!(
        "mixed-strategy check ({}, {mixed_execs} executions): campaign == serial; per-strategy:",
        mix.spec()
    );
    for (name, b) in mixed_campaign.per_strategy().iter() {
        println!(
            "  {name:<10} {:>6} exec(s) {:>6.1}% race rate",
            b.executions,
            100.0 * b.race_detection_rate()
        );
    }
}
