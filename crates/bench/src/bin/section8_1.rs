//! §8.1 "Benchmarks with Injected Bugs": bug detection rates for the
//! broken seqlock and reader-writer lock under all three tools.
//!
//! Paper results: C11Tester detects the bugs in 28.8% (seqlock) and
//! 55.3% (rwlock) of 1,000 runs; tsan11 and tsan11rec detect neither in
//! 10,000 runs.
//!
//! ```text
//! cargo run --release -p c11tester-bench --bin section8_1
//! ```
//! Set `C11_BENCH_RUNS` to change the run count (default 1000).

use c11tester::Policy;
use c11tester_bench::{paper_model, rule, runs_from_env};
use c11tester_workloads::ds::{rwlock_buggy, seqlock};

fn main() {
    let runs = u64::from(runs_from_env(1000));
    println!("Section 8.1: injected-bug detection rates ({runs} runs per cell)");
    rule(66);
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "Benchmark", "C11Tester", "tsan11rec", "tsan11"
    );
    rule(66);

    for (name, body) in [
        ("seqlock (buggy)", seqlock::run_buggy as fn()),
        ("rwlock (buggy)", rwlock_buggy::run_buggy as fn()),
    ] {
        print!("{name:<22}");
        for policy in [Policy::C11Tester, Policy::Tsan11Rec, Policy::Tsan11] {
            let mut model = paper_model(policy, 0x81);
            let report = model.check(runs, body);
            print!(" {:>11.1}%", 100.0 * report.bug_detection_rate());
        }
        println!();
    }
    rule(66);
    println!("(paper: seqlock 28.8% / 0% / 0%; rwlock 55.3% / 0% / 0%)");

    // Controls: the fixed variants must be clean under every tool.
    for (name, body) in [
        ("seqlock (fixed)", seqlock::run_fixed as fn()),
        ("rwlock (fixed)", rwlock_buggy::run_fixed as fn()),
    ] {
        print!("{name:<22}");
        for policy in [Policy::C11Tester, Policy::Tsan11Rec, Policy::Tsan11] {
            let mut model = paper_model(policy, 0x82);
            let report = model.check(runs.min(200), body);
            print!(" {:>11.1}%", 100.0 * report.bug_detection_rate());
        }
        println!();
    }
}
