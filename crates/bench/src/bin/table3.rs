//! Table 3: the number of atomic operations (including synchronization
//! operations) and normal shared-memory accesses executed by C11Tester
//! for each application benchmark.
//!
//! ```text
//! cargo run --release -p c11tester-bench --bin table3
//! ```

use c11tester::Policy;
use c11tester_bench::{paper_model, rule};
use c11tester_workloads::AppBench;

fn fmt_count(n: u64) -> String {
    if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

fn main() {
    println!("Table 3: operations executed per benchmark under C11Tester");
    rule(70);
    println!(
        "{:<12} {:>22} {:>22}",
        "Test", "# normal accesses", "# atomic operations"
    );
    rule(70);
    for app in AppBench::all() {
        let mut model = paper_model(Policy::C11Tester, 0x7AB1E3);
        let report = model.run(move || app.run_default());
        println!(
            "{:<12} {:>22} {:>22}",
            app.name(),
            fmt_count(report.stats.normal_accesses),
            fmt_count(report.stats.atomic_ops())
        );
    }
    rule(70);
    println!("(paper, at production scale: e.g. Silo 63.7M normal / 11.3M atomic;");
    println!(" the simulations preserve the per-app op-mix shape at model scale)");
}
