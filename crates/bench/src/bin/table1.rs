//! Table 1: application-benchmark performance under the three tools in
//! the single-core and all-core configurations — plus Figure 15 (the
//! speedups relative to tsan11 on a single core, with geometric means).
//!
//! The paper reports wall time or throughput per application; here the
//! uniform metric is mean wall time per model execution of each
//! application simulation (lower is better), from which the Figure 15
//! speedups are derived.
//!
//! The single-core configuration pins to CPU 0 and times a serial
//! model, as the paper's `taskset` runs do. The all-core configuration
//! is a **campaign** (`c11tester-campaign`): the repeated-execution
//! workload fans out over every core, which is how the tool actually
//! uses a multicore host — per-execution results are identical to the
//! serial stream by the campaign determinism contract.
//!
//! ```text
//! cargo run --release -p c11tester-bench --bin table1 [-- --figure15]
//! ```
//! Set `C11_BENCH_RUNS` to change the run count (default 10, as in the
//! paper).

use c11tester::Policy;
use c11tester_bench::{
    campaign_policy_runs, campaign_timing, geomean, pin_to_single_core, rule, runs_from_env,
    time_policy_runs, unpin_all_cores,
};
use c11tester_workloads::AppBench;

const POLICIES: [Policy; 3] = [Policy::C11Tester, Policy::Tsan11Rec, Policy::Tsan11];

fn measure_config(single_core: bool, runs: u32) -> Vec<(AppBench, Vec<f64>)> {
    const SEED: u64 = 0x7AB1E1;
    if single_core {
        if !pin_to_single_core() {
            eprintln!("(single-core pinning unavailable; numbers reflect all cores)");
        }
    } else {
        unpin_all_cores();
    }
    let time_cell = |p: Policy, app: AppBench| -> f64 {
        if single_core {
            // Serial model on the pinned core, as the paper's taskset runs.
            time_policy_runs(p, SEED, runs, move || app.run_default()).mean_ms()
        } else {
            // Campaign over all cores: the repeated-execution stream fans out.
            let report =
                campaign_policy_runs(p, SEED, u64::from(runs), None, move || app.run_default());
            campaign_timing(&report).mean.as_secs_f64() * 1e3
        }
    };
    let out = AppBench::all()
        .into_iter()
        .map(|app| {
            let times: Vec<f64> = POLICIES.iter().map(|&p| time_cell(p, app)).collect();
            (app, times)
        })
        .collect();
    unpin_all_cores();
    out
}

fn main() {
    let figure15 = std::env::args().any(|a| a == "--figure15");
    let runs = runs_from_env(10);

    println!("Table 1: application benchmarks, mean wall time per execution (ms, {runs} runs)");
    let mut per_config = Vec::new();
    for (label, single) in [("Single-core", true), ("All-core", false)] {
        println!();
        println!("{label} configuration");
        rule(62);
        println!(
            "{:<10} {:>14} {:>14} {:>14}",
            "Test", "C11Tester", "tsan11rec", "tsan11"
        );
        rule(62);
        let rows = measure_config(single, runs);
        for (app, times) in &rows {
            println!(
                "{:<10} {:>14.3} {:>14.3} {:>14.3}",
                app.name(),
                times[0],
                times[1],
                times[2]
            );
        }
        per_config.push(rows);
    }
    println!();
    println!("(paper shape: C11Tester ≫ tsan11rec; tsan11 fastest overall)");

    if figure15 {
        println!();
        println!("Figure 15: speedup vs tsan11 (single-core), higher is faster");
        rule(62);
        // Baseline: tsan11 in the single-core configuration.
        let baseline: Vec<f64> = per_config[0].iter().map(|(_, t)| t[2]).collect();
        for (cfg_ix, label) in [(0, "(S)"), (1, "(A)")] {
            for (p_ix, policy) in POLICIES.iter().enumerate() {
                let mut speedups = Vec::new();
                for (row_ix, (app, times)) in per_config[cfg_ix].iter().enumerate() {
                    let s = baseline[row_ix] / times[p_ix].max(1e-9);
                    speedups.push(s);
                    println!(
                        "{:<10} {:<14} {:>8.3}x",
                        app.name(),
                        format!("{} {label}", policy.name()),
                        s
                    );
                }
                println!(
                    "{:<10} {:<14} {:>8.3}x  <- geometric mean",
                    "GEOMEAN",
                    format!("{} {label}", policy.name()),
                    geomean(&speedups)
                );
                rule(40);
            }
        }
        println!("(paper geomeans: C11Tester 14.9x/11.1x faster than tsan11rec;");
        println!(" C11Tester 1.6x/3.1x slower than tsan11)");
    }
}
