//! Table 2: data-structure benchmarks — time per execution and race
//! detection rate for each tool — plus Figure 16 (the bar-chart view of
//! the same data).
//!
//! Detection rates are computed by a **campaign** over all cores
//! (`c11tester-campaign`): rates and dedup histories are identical to
//! the serial loop's by the campaign determinism contract, while the
//! rate runs finish `~cores`× faster. Per-execution times are measured
//! on a serial sample so multi-worker scheduling noise cannot leak
//! into them.
//!
//! ```text
//! cargo run --release -p c11tester-bench --bin table2 [-- --figure16] [--strategies]
//! ```
//! Set `C11_BENCH_RUNS` to change the run count (paper: 500).
//!
//! `--strategies` adds a strategy-comparison table: one **mixed**
//! campaign per benchmark (`random:1,pct2:1,pct3:1,burst:1`) whose
//! per-strategy report columns show each scheduling strategy's race
//! detection rate on the same workload — the statistical claim behind
//! C11Tester's pluggable-strategy architecture (§3, §7.6).
//!
//! `--adaptive` adds a fixed-vs-adaptive comparison on the seeded-bug
//! workloads (§8.1): for each buggy benchmark, the bug detection rate
//! and executions-to-first-bug of every fixed single-strategy
//! campaign, of the fixed uniform mix, and of UCB1/EXP3 adaptive
//! campaigns over the same arms at the same seed — the closed loop
//! must reach first-bug no later than the **worst** fixed arm.

use c11tester::{Config, Policy, Strategy, StrategyMix};
use c11tester_bench::{
    campaign_adaptive_runs, campaign_mixed_runs, campaign_policy_runs, paper_model, rule,
    runs_from_env, summarize,
};
use c11tester_campaign::{Campaign, CampaignBudget};
use c11tester_workloads::{ds, DsBench};
use std::time::Instant;

struct Cell {
    time_ms: f64,
    rate: f64,
}

fn measure(bench: DsBench, policy: Policy, runs: u64) -> Cell {
    // Detection rate: campaign over all cores, full run budget.
    let report = campaign_policy_runs(policy, 0x7AB1E2, runs, None, move || bench.run());
    // Timing: serial sample (up to 100 executions of the same stream).
    let mut model = paper_model(policy, 0x7AB1E2);
    let timing_runs = runs.min(100);
    let mut samples = Vec::with_capacity(timing_runs as usize);
    for _ in 0..timing_runs {
        let t0 = Instant::now();
        let _ = model.run(|| bench.run());
        samples.push(t0.elapsed());
    }
    Cell {
        time_ms: summarize(&samples).mean_ms(),
        rate: report.race_detection_rate(),
    }
}

/// Strategy-comparison mode: per-strategy detection rates from one
/// mixed campaign per benchmark.
fn strategy_table(runs: u64) {
    let mix = StrategyMix::parse("random:1,pct2:1,pct3:1,burst:1").expect("valid mix");
    let specs: Vec<String> = mix.entries().iter().map(|(s, _)| s.spec()).collect();
    println!();
    println!(
        "Strategy comparison: race detection rate per scheduling strategy \
         (mixed campaign, {runs} executions per benchmark, mix {})",
        mix.spec()
    );
    rule(78);
    print!("{:<18}", "Test");
    for s in &specs {
        print!(" {:>8} {:>6}", s, "execs");
    }
    println!();
    rule(78);
    for bench in DsBench::all() {
        let report =
            campaign_mixed_runs(Policy::C11Tester, 0x7AB1E2, runs, None, &mix, move || {
                bench.run()
            });
        print!("{:<18}", bench.name());
        for s in &specs {
            match report.per_strategy().get(s) {
                Some(b) => print!(
                    " {:>7.1}% {:>6}",
                    100.0 * b.race_detection_rate(),
                    b.executions
                ),
                None => print!(" {:>8} {:>6}", "-", 0),
            }
        }
        println!();
        // The per-strategy columns must tile the aggregate exactly.
        assert_eq!(
            report.per_strategy().total_executions(),
            report.aggregate.executions,
            "per-strategy columns must sum to the aggregate"
        );
    }
    rule(78);
}

/// One cell of the adaptive comparison: bug rate and first-bug index.
fn fmt_first_bug(first: Option<u64>) -> String {
    match first {
        Some(ix) => format!("#{ix}"),
        None => "never".to_string(),
    }
}

/// Adaptive-comparison mode: fixed single strategies and the fixed
/// uniform mix vs UCB1/EXP3 adaptive campaigns on the §8.1 seeded-bug
/// workloads.
fn adaptive_table(runs: u64) {
    const SEED: u64 = 0x7AB1E2;
    let mix = StrategyMix::parse("random:1,pct2:1,pct3:1,burst:1").expect("valid mix");
    let epoch_len = (runs / 8).max(1);
    let workloads: &[(&str, fn())] = &[
        ("rwlock-buggy", ds::rwlock_buggy::run_buggy),
        ("seqlock-buggy", ds::seqlock::run_buggy),
    ];
    println!();
    println!(
        "Adaptive comparison: bug detection rate / executions-to-first-bug \
         ({runs} executions per campaign, epoch {epoch_len}, arms {})",
        mix.spec()
    );
    rule(100);
    for (name, body) in workloads {
        println!("{name}:");
        let mut worst_fixed = 0u64;
        for (strategy, _) in mix.entries() {
            let config = Config::for_policy(Policy::C11Tester)
                .with_seed(SEED)
                .with_strategy(*strategy);
            let report = Campaign::new(config).run(&CampaignBudget::executions(runs), body);
            let first = report.aggregate.first_bug_execution();
            worst_fixed = worst_fixed.max(first.unwrap_or(u64::MAX));
            println!(
                "  {:<22} {:>6.1}%  first bug {}",
                format!("fixed {}", Strategy::spec(strategy)),
                100.0 * report.bug_detection_rate(),
                fmt_first_bug(first),
            );
        }
        let mixed = campaign_mixed_runs(Policy::C11Tester, SEED, runs, None, &mix, body);
        println!(
            "  {:<22} {:>6.1}%  first bug {}",
            "fixed mix",
            100.0 * mixed.bug_detection_rate(),
            fmt_first_bug(mixed.aggregate.first_bug_execution()),
        );
        for policy in ["ucb1", "exp3"] {
            let report = campaign_adaptive_runs(
                Policy::C11Tester,
                SEED,
                runs,
                epoch_len,
                None,
                &mix,
                policy,
                body,
            );
            let first = report.first_bug_execution();
            let verdict = if first.unwrap_or(u64::MAX) <= worst_fixed {
                "<= worst fixed"
            } else {
                "SLOWER than worst fixed"
            };
            println!(
                "  {:<22} {:>6.1}%  first bug {}  ({} epochs, final mix {}, {})",
                format!("adaptive {policy}"),
                100.0 * report.bug_detection_rate(),
                fmt_first_bug(first),
                report.trace.epochs(),
                report
                    .trace
                    .records
                    .last()
                    .map(|r| r.mix.as_str())
                    .unwrap_or("-"),
                verdict,
            );
        }
    }
    rule(100);
}

fn main() {
    let figure16 = std::env::args().any(|a| a == "--figure16");
    let strategies = std::env::args().any(|a| a == "--strategies");
    let adaptive = std::env::args().any(|a| a == "--adaptive");
    let runs = u64::from(runs_from_env(500));
    let policies = [Policy::C11Tester, Policy::Tsan11Rec, Policy::Tsan11];

    println!("Table 2: data-structure benchmarks ({runs} runs per cell)");
    rule(88);
    println!(
        "{:<18} {:>10} {:>7} {:>10} {:>7} {:>10} {:>7}",
        "Test", "C11T ms", "rate", "t11rec ms", "rate", "t11 ms", "rate"
    );
    rule(88);

    let mut rates = [Vec::new(), Vec::new(), Vec::new()];
    let mut rows = Vec::new();
    for bench in DsBench::all() {
        let cells: Vec<Cell> = policies.iter().map(|&p| measure(bench, p, runs)).collect();
        print!("{:<18}", bench.name());
        for (i, c) in cells.iter().enumerate() {
            print!(" {:>10.2} {:>6.1}%", c.time_ms, 100.0 * c.rate);
            rates[i].push(c.rate);
        }
        println!();
        rows.push((bench, cells));
    }
    rule(88);
    print!("{:<18}", "Average rate");
    for r in &rates {
        let avg = r.iter().sum::<f64>() / r.len().max(1) as f64;
        print!(" {:>10} {:>6.1}%", "", 100.0 * avg);
    }
    println!();
    println!("(paper averages: C11Tester 75.4%, tsan11rec 51.5%, tsan11 22.3%)");

    if strategies {
        strategy_table(runs);
    }

    if adaptive {
        adaptive_table(runs);
    }

    if figure16 {
        println!();
        println!("Figure 16: per-benchmark execution time (bar = time relative to C11Tester)");
        rule(72);
        for (bench, cells) in &rows {
            let base = cells[0].time_ms.max(1e-9);
            for (i, c) in cells.iter().enumerate() {
                let rel = c.time_ms / base;
                let bar = "#".repeat((rel * 8.0).round().min(60.0) as usize);
                println!(
                    "{:<18} {:<10} {:>8.2}ms |{}",
                    bench.name(),
                    policies[i].name(),
                    c.time_ms,
                    bar
                );
            }
        }
    }
}
