//! Figure 14: context-switch (run-token handover) costs for the
//! scheduling strategies of §7.3, in the all-core and single-core
//! configurations.
//!
//! The paper measures pthread condvars, futexes, spinning, spinning
//! with yield, and ucontext/setjmp fibers (± TLS migration) on a
//! 2-thread ping-pong. Rust has no stable fiber equivalent (and needs
//! no TLS migration — see `c11tester-runtime`); the measured spectrum
//! is the [`HandoverKind`] set the runtime actually offers.
//!
//! Expected shape (paper Fig. 14): spinning is fastest with a core per
//! thread but collapses by orders of magnitude on one core; condition
//! variables are the slowest blocking strategy; futex-style wakeups sit
//! in between.
//!
//! ```text
//! cargo run --release -p c11tester-bench --bin figure14
//! ```

use c11tester_bench::{pin_to_single_core, rule, runs_from_env, unpin_all_cores};
use c11tester_runtime::{HandoverKind, Notifier};
use std::sync::Arc;
use std::time::Instant;

/// One ping-pong benchmark: `iters` round trips through a pair of
/// notifiers; returns nanoseconds per one-way handover.
fn ping_pong(kind: HandoverKind, iters: u32) -> f64 {
    let a = Arc::new(Notifier::new(kind));
    let b = Arc::new(Notifier::new(kind));
    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    let child = std::thread::spawn(move || {
        b2.bind_current();
        for _ in 0..iters {
            b2.wait();
            a2.notify();
        }
    });
    a.bind_current();
    let t0 = Instant::now();
    for _ in 0..iters {
        b.notify();
        a.wait();
    }
    let elapsed = t0.elapsed();
    child.join().expect("ping-pong child");
    elapsed.as_nanos() as f64 / f64::from(iters) / 2.0
}

fn main() {
    let iters = runs_from_env(20_000);
    println!("Figure 14: context-switch costs (ns per handover, {iters} round trips)");
    rule(60);
    println!(
        "{:<24} {:>15} {:>15}",
        "Scheduling approach", "all cores", "1 core"
    );
    rule(60);
    for kind in HandoverKind::all() {
        // Pure spinning on one core is pathological (the paper reports
        // 15,976µs per switch); cap its iteration count so the row
        // completes in reasonable time.
        let (all_iters, one_iters) = if kind == HandoverKind::Spin {
            (iters, (iters / 100).max(10))
        } else {
            (iters, iters)
        };
        unpin_all_cores();
        let all = ping_pong(kind, all_iters);
        let pinned = pin_to_single_core();
        let one = ping_pong(kind, one_iters);
        unpin_all_cores();
        println!(
            "{:<24} {:>12.0} ns {:>12.0} ns{}",
            kind.name(),
            all,
            one,
            if pinned { "" } else { "  (unpinned!)" }
        );
    }
    rule(60);
    println!("(paper: condvar 1.95/1.61µs; futex 1.85/1.32µs; spin 0.07µs/16ms;");
    println!(" spin+yield 0.21/0.54µs; swapcontext fibers 0.34µs)");
}
