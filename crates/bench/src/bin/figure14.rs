//! Figure 14: context-switch (run-token handover) costs for the
//! scheduling strategies of §7.3, in the all-core and single-core
//! configurations.
//!
//! The paper measures pthread condvars, futexes, spinning, spinning
//! with yield, and ucontext/setjmp fibers (± TLS migration) on a
//! 2-thread ping-pong. The measured spectrum here is the
//! [`HandoverKind`] set the runtime offers, fibers included (the
//! runtime's own stack-switching implementation; no TLS migration is
//! needed because thread identity is slot-derived — see
//! `c11tester-runtime`).
//!
//! Expected shape (paper Fig. 14): fibers are fastest everywhere;
//! spinning is fast with a core per thread but collapses by orders of
//! magnitude on one core; condition variables are the slowest blocking
//! strategy; futex-style wakeups sit in between.
//!
//! ```text
//! cargo run --release -p c11tester-bench --bin figure14
//! ```

use c11tester::{Config, Model};
use c11tester_bench::{pin_to_single_core, rule, runs_from_env, unpin_all_cores};
use c11tester_runtime::{HandoverKind, Notifier, Runtime};
use std::sync::Arc;
use std::time::Instant;

/// One ping-pong benchmark: `iters` round trips through a pair of
/// notifiers; returns nanoseconds per one-way handover.
fn ping_pong(kind: HandoverKind, iters: u32) -> f64 {
    if kind == HandoverKind::Fiber {
        return fiber_ping_pong(iters);
    }
    let a = Arc::new(Notifier::new(kind));
    let b = Arc::new(Notifier::new(kind));
    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    let child = std::thread::spawn(move || {
        b2.bind_current();
        for _ in 0..iters {
            b2.wait();
            a2.notify();
        }
    });
    a.bind_current();
    let t0 = Instant::now();
    for _ in 0..iters {
        b.notify();
        a.wait();
    }
    let elapsed = t0.elapsed();
    child.join().expect("ping-pong child");
    elapsed.as_nanos() as f64 / f64::from(iters) / 2.0
}

/// Fiber handover has no mailbox — a switch IS the wake+park pair — so
/// its row ping-pongs through the [`Runtime`] between the driver and
/// one fiber. (On targets without the fiber implementation the runtime
/// silently degrades to futex park, making this row ≈ the futex row.)
fn fiber_ping_pong(iters: u32) -> f64 {
    let runtime = Runtime::new(HandoverKind::Fiber);
    let driver = runtime.add_slot();
    runtime.bind_current(driver);
    let fiber = runtime.add_slot();
    let rt2 = Arc::clone(&runtime);
    runtime
        .spawn(
            fiber,
            Box::new(move || {
                // One fewer round than the driver: the final handover
                // back is the body's exit switch.
                for _ in 0..iters - 1 {
                    rt2.wake(driver);
                    rt2.park(fiber).expect("fiber poisoned");
                }
                rt2.wake(driver);
            }),
        )
        .expect("spawn fiber");
    let t0 = Instant::now();
    for _ in 0..iters {
        runtime.wake(fiber);
        runtime.park(driver).expect("driver poisoned");
    }
    let elapsed = t0.elapsed();
    runtime.join_all().expect("fiber ping-pong teardown");
    elapsed.as_nanos() as f64 / f64::from(iters) / 2.0
}

/// Mean nanoseconds per model execution of a 2-thread litmus body,
/// pooled vs spawn-per-execution. The gap between the two columns is
/// the per-execution OS-thread provisioning cost the pool amortizes.
fn model_exec_ns(thread_pool: bool, execs: u32) -> f64 {
    let config = Config::new().with_seed(0xF14).with_thread_pool(thread_pool);
    let mut model = Model::new(config);
    let body = || {
        let flag = Arc::new(c11tester::sync::atomic::AtomicU32::named("flag", 0));
        let f2 = Arc::clone(&flag);
        let t = c11tester::thread::spawn(move || {
            f2.store(1, c11tester::sync::atomic::Ordering::Release);
        });
        let _ = flag.load(c11tester::sync::atomic::Ordering::Acquire);
        t.join();
    };
    for _ in 0..(execs / 10).max(1) {
        let _ = model.run(body); // warmup: grows the pool to steady state
    }
    let t0 = Instant::now();
    for _ in 0..execs {
        let _ = model.run(body);
    }
    t0.elapsed().as_nanos() as f64 / f64::from(execs)
}

fn main() {
    let iters = runs_from_env(20_000);
    println!("Figure 14: context-switch costs (ns per handover, {iters} round trips)");
    rule(60);
    println!(
        "{:<24} {:>15} {:>15}",
        "Scheduling approach", "all cores", "1 core"
    );
    rule(60);
    for kind in HandoverKind::all() {
        // Pure spinning on one core is pathological (the paper reports
        // 15,976µs per switch); cap its iteration count so the row
        // completes in reasonable time.
        let (all_iters, one_iters) = if kind == HandoverKind::Spin {
            (iters, (iters / 100).max(10))
        } else {
            (iters, iters)
        };
        unpin_all_cores();
        let all = ping_pong(kind, all_iters);
        let pinned = pin_to_single_core();
        let one = ping_pong(kind, one_iters);
        unpin_all_cores();
        println!(
            "{:<24} {:>12.0} ns {:>12.0} ns{}",
            kind.name(),
            all,
            one,
            if pinned { "" } else { "  (unpinned!)" }
        );
    }
    rule(60);
    println!("(paper: condvar 1.95/1.61µs; futex 1.85/1.32µs; spin 0.07µs/16ms;");
    println!(" spin+yield 0.21/0.54µs; swapcontext fibers 0.34µs)");

    // Companion measurement: what one whole model execution costs when
    // model threads are re-dispatched onto pooled workers vs spawned
    // fresh each execution. The handover rows above are the per-switch
    // cost; this is the per-execution provisioning cost around them.
    let execs = (iters / 100).max(50);
    println!();
    println!("Thread provisioning: ns per 2-thread model execution ({execs} execs)");
    rule(60);
    println!(
        "{:<24} {:>15} {:>15} {:>8}",
        "Provisioning", "ns/exec", "vs pooled", ""
    );
    rule(60);
    let pooled = model_exec_ns(true, execs);
    let fresh = model_exec_ns(false, execs);
    println!(
        "{:<24} {:>12.0} ns {:>15} {:>8}",
        "pooled dispatch", pooled, "1.00x", ""
    );
    println!(
        "{:<24} {:>12.0} ns {:>14.2}x {:>8}",
        "spawn per execution",
        fresh,
        fresh / pooled.max(1.0),
        ""
    );
    rule(60);
}
