//! Table 4: per-variant results for the 25 JSBench benchmarks — wall
//! time under each tool plus the number of normal and atomic operations
//! executed under C11Tester.
//!
//! ```text
//! cargo run --release -p c11tester-bench --bin table4
//! ```
//! Set `C11_BENCH_RUNS` to change the timing repetitions (default 3).

use c11tester::Policy;
use c11tester_bench::{paper_model, rule, runs_from_env, time_policy_runs};
use c11tester_workloads::apps::jsbench;

fn main() {
    let runs = runs_from_env(3);
    println!("Table 4: individual JSBench benchmarks ({runs} timing runs per cell)");
    rule(96);
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "Benchmark", "C11T ms", "t11rec ms", "t11 ms", "# normal", "# atomic"
    );
    rule(96);
    for v in jsbench::variants() {
        let times: Vec<f64> = [Policy::C11Tester, Policy::Tsan11Rec, Policy::Tsan11]
            .into_iter()
            .map(|p| {
                time_policy_runs(p, 0x7AB1E4, runs, move || {
                    jsbench::run(v);
                })
                .mean_ms()
            })
            .collect();
        let mut model = paper_model(Policy::C11Tester, 0x7AB1E4);
        let report = model.run(move || {
            jsbench::run(v);
        });
        println!(
            "{:<22} {:>12.3} {:>12.3} {:>12.3} {:>14} {:>14}",
            jsbench::name(&v),
            times[0],
            times[1],
            times[2],
            report.stats.normal_accesses,
            report.stats.atomic_ops()
        );
    }
    rule(96);
}
