//! Property tests for the two mergeable cross-execution histories.
//!
//! The campaign determinism contract rests on an algebraic fact: for
//! any partition of the execution stream across workers (or fork
//! server children), folding each slice separately and merging the
//! results must equal a serial fold of the whole stream. This file
//! checks the underlying laws — commutativity, associativity, and
//! partition invariance over *random* splits and merge orders — for
//! both [`CoverageMap`] and [`DedupHistory`], with a hand-rolled
//! xorshift PRNG (the offline tree has no proptest).

use c11tester_core::{ExecCoverage, ObjId, ThreadId};
use c11tester_race::{AccessKind, CoverageMap, DedupHistory, RaceKind, RaceReport};

/// xorshift64* — deterministic, seedable, no dependencies.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform-ish draw in `0..n` (n > 0).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One synthetic execution: its coverage signature plus its races.
#[derive(Clone)]
struct Exec {
    index: u64,
    coverage: ExecCoverage,
    races: Vec<RaceReport>,
}

/// A random but deterministic execution stream. Small key spaces on
/// purpose: collisions across executions are what exercise the
/// min/first-sum/occurrence merge arms.
fn stream(seed: u64, len: u64) -> Vec<Exec> {
    let mut rng = Rng::new(seed);
    let labels = ["flag", "head", "seq.data", "buf[0]"];
    let kinds = [
        RaceKind::WriteAfterWrite,
        RaceKind::WriteAfterRead,
        RaceKind::ReadAfterWrite,
    ];
    (0..len)
        .map(|index| {
            let mut coverage = ExecCoverage::collecting();
            for _ in 0..rng.below(4) {
                coverage.record_rf(rng.below(3), rng.below(3), rng.below(3));
            }
            for _ in 0..rng.below(4) {
                coverage.record_mo(rng.below(3), rng.below(3), rng.below(3));
            }
            for _ in 0..rng.below(6) {
                coverage.record_switch(rng.below(32), rng.below(4));
            }
            let races = (0..rng.below(3))
                .map(|_| RaceReport {
                    label: labels[rng.below(labels.len() as u64) as usize].to_string(),
                    obj: ObjId(rng.below(3)),
                    offset: 0,
                    kind: kinds[rng.below(3) as usize],
                    current_tid: ThreadId::from_index(rng.below(4) as usize),
                    current_kind: if rng.below(2) == 0 {
                        AccessKind::NonAtomic
                    } else {
                        AccessKind::Atomic
                    },
                    prior_tid: ThreadId::from_index(rng.below(4) as usize),
                    prior_atomic: rng.below(2) == 0,
                })
                .collect();
            Exec {
                index,
                coverage,
                races,
            }
        })
        .collect()
}

fn coverage_fold(execs: &[Exec]) -> CoverageMap {
    let mut map = CoverageMap::new();
    for e in execs {
        map.record(e.index, &e.coverage, &e.races);
    }
    map
}

fn dedup_fold(execs: &[Exec]) -> DedupHistory {
    let mut history = DedupHistory::new();
    for e in execs {
        // Dedup within the execution first, as the detector does (one
        // record call per (execution, race class)).
        let mut seen = Vec::new();
        for r in &e.races {
            if !seen.contains(&r.key()) {
                seen.push(r.key());
                history.record(e.index, r);
            }
        }
    }
    history
}

/// Splits `execs` into `parts` random slices (some possibly empty),
/// preserving in-slice index order, then returns the slices in a
/// shuffled merge order.
fn random_partition(execs: &[Exec], parts: usize, rng: &mut Rng) -> Vec<Vec<Exec>> {
    let mut slices: Vec<Vec<Exec>> = vec![Vec::new(); parts];
    for e in execs {
        slices[rng.below(parts as u64) as usize].push(e.clone());
    }
    // Fisher–Yates on the slice order: merge order must not matter.
    for i in (1..slices.len()).rev() {
        let j = rng.below((i + 1) as u64) as usize;
        slices.swap(i, j);
    }
    slices
}

#[test]
fn coverage_merge_is_commutative_and_associative() {
    for seed in 1..=10u64 {
        let execs = stream(seed, 60);
        let (a, b, c) = (
            coverage_fold(&execs[..20]),
            coverage_fold(&execs[20..40]),
            coverage_fold(&execs[40..]),
        );
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "seed {seed}: a+b != b+a");
        let mut ab_c = ab;
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "seed {seed}: (a+b)+c != a+(b+c)");
    }
}

#[test]
fn dedup_merge_is_commutative_and_associative() {
    for seed in 1..=10u64 {
        let execs = stream(seed, 60);
        let (a, b, c) = (
            dedup_fold(&execs[..20]),
            dedup_fold(&execs[20..40]),
            dedup_fold(&execs[40..]),
        );
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "seed {seed}: a+b != b+a");
        let mut ab_c = ab;
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "seed {seed}: (a+b)+c != a+(b+c)");
    }
}

#[test]
fn coverage_fold_is_invariant_under_random_partitions() {
    for seed in 1..=20u64 {
        let execs = stream(seed, 100);
        let serial = coverage_fold(&execs);
        let mut rng = Rng::new(seed ^ 0xDEAD_BEEF);
        for parts in [1usize, 2, 3, 7, 16] {
            let mut merged = CoverageMap::new();
            for slice in random_partition(&execs, parts, &mut rng) {
                merged.merge(&coverage_fold(&slice));
            }
            assert_eq!(
                merged, serial,
                "seed {seed}, {parts} parts: partitioned fold diverged"
            );
        }
    }
}

#[test]
fn dedup_fold_is_invariant_under_random_partitions() {
    for seed in 1..=20u64 {
        let execs = stream(seed, 100);
        let serial = dedup_fold(&execs);
        let mut rng = Rng::new(seed ^ 0xFACE_FEED);
        for parts in [1usize, 2, 3, 7, 16] {
            let mut merged = DedupHistory::new();
            for slice in random_partition(&execs, parts, &mut rng) {
                merged.merge(&dedup_fold(&slice));
            }
            assert_eq!(
                merged, serial,
                "seed {seed}, {parts} parts: partitioned fold diverged"
            );
        }
    }
}

#[test]
fn empty_map_is_the_merge_identity() {
    let execs = stream(42, 30);
    let coverage = coverage_fold(&execs);
    let mut with_empty = coverage.clone();
    with_empty.merge(&CoverageMap::new());
    assert_eq!(with_empty, coverage);
    let mut from_empty = CoverageMap::new();
    from_empty.merge(&coverage);
    assert_eq!(from_empty, coverage);

    let dedup = dedup_fold(&execs);
    let mut with_empty = dedup.clone();
    with_empty.merge(&DedupHistory::new());
    assert_eq!(with_empty, dedup);
    let mut from_empty = DedupHistory::new();
    from_empty.merge(&dedup);
    assert_eq!(from_empty, dedup);
}
