//! Mergeable cross-execution race-deduplication history.
//!
//! The paper reports each race **once** across thousands of repeated
//! executions (§7.6): the tool keeps a hash of reported races and
//! suppresses repeats. With campaign-style parallel exploration the
//! history can no longer live in one detector — every worker sees its
//! own slice of the execution stream and the per-worker histories must
//! be *merged* afterwards. [`DedupHistory`] is that mergeable type:
//!
//! * keyed by [`RaceKey`] (the label + conflict-shape hash the
//!   detector already dedups on, extracted from [`RaceReport`]);
//! * each entry keeps the exemplar report from the **lowest execution
//!   index** that exhibited the race, plus an occurrence count — both
//!   are order-independent under [`DedupHistory::merge`], so any
//!   partition of the execution stream over any number of workers
//!   aggregates to an identical history;
//! * iteration is sorted by key (`BTreeMap`), making downstream
//!   reports byte-stable.

use crate::report::{AccessKind, RaceKind, RaceReport};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};

/// The identity of a race class: what the detector and the model layer
/// deduplicate on. Two reports with equal keys are "the same race"
/// reported from different executions or access pairs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RaceKey {
    /// The racing location's human-readable label.
    pub label: String,
    /// The conflict shape.
    pub kind: RaceKind,
}

impl RaceReport {
    /// The dedup key of this report.
    pub fn key(&self) -> RaceKey {
        RaceKey {
            label: self.label.clone(),
            kind: self.kind,
        }
    }

    /// The access-pair shape of this report — the forensic detail a
    /// [`RaceKey`] deliberately collapses.
    pub fn shape(&self) -> AccessShape {
        AccessShape {
            current_tid: self.current_tid.index() as u64,
            current_kind: self.current_kind,
            prior_tid: self.prior_tid.index() as u64,
            prior_atomic: self.prior_atomic,
        }
    }
}

/// One concrete access-pair shape observed for a race class: which
/// threads collided and how. Several shapes can hide behind one
/// [`RaceKey`] (the dedup identity is `(label, kind)` only); entries
/// record the distinct shapes so forensics output can surface them.
/// Diagnostic — never part of canonical campaign JSON.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct AccessShape {
    /// Thread performing the access that completed the race.
    pub current_tid: u64,
    /// Kind of the current access.
    pub current_kind: AccessKind,
    /// Thread that performed the earlier conflicting access.
    pub prior_tid: u64,
    /// Whether the earlier access was atomic (incl. volatile).
    pub prior_atomic: bool,
}

/// One deduplicated race class with provenance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DedupEntry {
    /// Exemplar report, taken from the lowest execution index that
    /// exhibited this race (deterministic regardless of worker count).
    pub report: RaceReport,
    /// Lowest execution index that exhibited the race.
    pub first_execution: u64,
    /// Number of executions that exhibited the race.
    pub occurrences: u64,
    /// Every distinct access-pair shape observed for this race class
    /// (the exemplar's shape is always a member). Shapes are rebuilt
    /// from each recorded report, so the set is identical however the
    /// execution stream is partitioned. Diagnostic only — excluded
    /// from canonical JSON.
    pub shapes: BTreeSet<AccessShape>,
}

/// An order-independent, mergeable history of deduplicated races.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DedupHistory {
    entries: BTreeMap<RaceKey, DedupEntry>,
}

impl DedupHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        DedupHistory::default()
    }

    /// Records that `report` was observed in execution
    /// `execution_index`. Call at most once per (execution, race class)
    /// — the per-execution dedup inside the detector guarantees this —
    /// so `occurrences` counts *executions*, not access pairs.
    pub fn record(&mut self, execution_index: u64, report: &RaceReport) {
        match self.entries.entry(report.key()) {
            Entry::Vacant(v) => {
                v.insert(DedupEntry {
                    report: report.clone(),
                    first_execution: execution_index,
                    occurrences: 1,
                    shapes: BTreeSet::from([report.shape()]),
                });
            }
            Entry::Occupied(mut o) => {
                let e = o.get_mut();
                e.occurrences += 1;
                e.shapes.insert(report.shape());
                if execution_index < e.first_execution {
                    e.first_execution = execution_index;
                    e.report = report.clone();
                }
            }
        }
    }

    /// Folds another history into this one. Merging is commutative and
    /// associative: any partition of an execution stream aggregates to
    /// the same history.
    pub fn merge(&mut self, other: &DedupHistory) {
        for (key, oe) in &other.entries {
            match self.entries.entry(key.clone()) {
                Entry::Vacant(v) => {
                    v.insert(oe.clone());
                }
                Entry::Occupied(mut cur) => {
                    let e = cur.get_mut();
                    e.occurrences += oe.occurrences;
                    e.shapes.extend(oe.shapes.iter().copied());
                    if oe.first_execution < e.first_execution {
                        e.first_execution = oe.first_execution;
                        e.report = oe.report.clone();
                    }
                }
            }
        }
    }

    /// Number of distinct race classes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no race has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a race class is present.
    pub fn contains(&self, key: &RaceKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Entries in key order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (&RaceKey, &DedupEntry)> {
        self.entries.iter()
    }

    /// The exemplar reports in key order (deterministic).
    pub fn reports(&self) -> Vec<&RaceReport> {
        self.entries.values().map(|e| &e.report).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::AccessKind;
    use c11tester_core::{ObjId, ThreadId};

    fn report(label: &str, kind: RaceKind, tid: usize) -> RaceReport {
        RaceReport {
            label: label.into(),
            obj: ObjId(1),
            offset: 0,
            kind,
            current_tid: ThreadId::from_index(tid),
            current_kind: AccessKind::NonAtomic,
            prior_tid: ThreadId::from_index(0),
            prior_atomic: false,
        }
    }

    #[test]
    fn record_dedups_and_counts_occurrences() {
        let mut h = DedupHistory::new();
        h.record(3, &report("x", RaceKind::WriteAfterWrite, 1));
        h.record(5, &report("x", RaceKind::WriteAfterWrite, 2));
        h.record(5, &report("y", RaceKind::ReadAfterWrite, 2));
        assert_eq!(h.len(), 2);
        let (_, e) = h.iter().next().expect("x entry");
        assert_eq!(e.occurrences, 2);
        assert_eq!(e.first_execution, 3);
        // Exemplar comes from execution 3 (tid 1), not execution 5.
        assert_eq!(e.report.current_tid, ThreadId::from_index(1));
    }

    #[test]
    fn lowest_execution_wins_regardless_of_record_order() {
        let mut a = DedupHistory::new();
        a.record(9, &report("x", RaceKind::WriteAfterWrite, 9));
        a.record(2, &report("x", RaceKind::WriteAfterWrite, 2));
        let (_, e) = a.iter().next().expect("entry");
        assert_eq!(e.first_execution, 2);
        assert_eq!(e.report.current_tid, ThreadId::from_index(2));
    }

    #[test]
    fn merge_is_order_independent() {
        // Partition the same stream of observations two different ways;
        // the merged histories must be identical.
        let observations = [
            (0u64, report("a", RaceKind::WriteAfterWrite, 1)),
            (1, report("b", RaceKind::ReadAfterWrite, 2)),
            (2, report("a", RaceKind::WriteAfterWrite, 3)),
            (3, report("c", RaceKind::WriteAfterRead, 1)),
            (4, report("b", RaceKind::ReadAfterWrite, 0)),
        ];
        let build = |ixs: &[usize]| {
            let mut h = DedupHistory::new();
            for &i in ixs {
                let (ex, r) = &observations[i];
                h.record(*ex, r);
            }
            h
        };
        // Striped over 2 "workers" vs 3 "workers", merged in different orders.
        let mut two = build(&[0, 2, 4]);
        two.merge(&build(&[1, 3]));
        let mut three = build(&[2, 1]);
        three.merge(&build(&[4, 3]));
        three.merge(&build(&[0]));
        assert_eq!(two, three);
        // And equal to the serial history.
        assert_eq!(two, build(&[0, 1, 2, 3, 4]));
    }

    #[test]
    fn reports_are_sorted_by_key() {
        let mut h = DedupHistory::new();
        h.record(0, &report("zeta", RaceKind::WriteAfterWrite, 1));
        h.record(0, &report("alpha", RaceKind::WriteAfterWrite, 1));
        let labels: Vec<&str> = h.reports().iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, ["alpha", "zeta"]);
    }

    #[test]
    fn entries_collect_distinct_access_shapes_without_splitting_keys() {
        let mut h = DedupHistory::new();
        // Same (label, kind) key, three observations, two distinct
        // shapes (tid 1 twice, tid 2 once).
        h.record(0, &report("x", RaceKind::WriteAfterWrite, 1));
        h.record(1, &report("x", RaceKind::WriteAfterWrite, 2));
        h.record(2, &report("x", RaceKind::WriteAfterWrite, 1));
        assert_eq!(h.len(), 1, "shapes must not widen the dedup key");
        let (_, e) = h.iter().next().expect("entry");
        assert_eq!(e.occurrences, 3);
        assert_eq!(e.shapes.len(), 2);
        assert!(e.shapes.contains(&e.report.shape()));
        // Shape union is partition-invariant too.
        let mut a = DedupHistory::new();
        a.record(0, &report("x", RaceKind::WriteAfterWrite, 1));
        a.record(2, &report("x", RaceKind::WriteAfterWrite, 1));
        let mut b = DedupHistory::new();
        b.record(1, &report("x", RaceKind::WriteAfterWrite, 2));
        a.merge(&b);
        assert_eq!(a, h);
    }

    #[test]
    fn key_distinguishes_kind_on_same_label() {
        let mut h = DedupHistory::new();
        h.record(0, &report("x", RaceKind::WriteAfterWrite, 1));
        h.record(0, &report("x", RaceKind::ReadAfterWrite, 1));
        assert_eq!(h.len(), 2);
    }
}
