//! The FastTrack-style race detector (paper §7.2).
//!
//! Conflict rule: two accesses to the same cell race iff they are not
//! ordered by happens-before, at least one is a write, and at least one
//! is non-atomic. (Atomic–atomic pairs never race; volatile accesses
//! are converted to atomics, and races *involving* them on
//! volatile-registered locations are elided from reports — but counted —
//! because legacy code routinely uses volatiles as atomics, §8.2 Silo.)
//!
//! The fast path is one packed shadow word per cell; mixed atomic /
//! non-atomic histories, concurrent reader sets, and clock/tid overflow
//! inflate to an expanded record, mirroring the paper's design.

use crate::dedup::RaceKey;
use crate::report::{AccessKind, RaceKind, RaceReport};
use crate::shadow::{Epoch, PackedShadow, ShadowWord};
use c11tester_core::{ClockVector, ObjId, ThreadId};
use std::collections::HashSet;

/// Expanded access record: full read vectors split by atomicity.
#[derive(Clone, Debug, Default)]
struct Expanded {
    write: Option<Epoch>,
    write_atomic: bool,
    /// Per-thread clocks of the latest non-atomic read.
    reads_nonatomic: ClockVector,
    /// Per-thread clocks of the latest atomic read.
    reads_atomic: ClockVector,
}

/// Location metadata registered by the facade.
#[derive(Clone, Debug)]
struct LocMeta {
    label: String,
    volatile: bool,
}

/// Per-object dense shadow-word table, indexed by cell offset.
///
/// A missing word and the all-zero word both decode to the
/// never-accessed [`ShadowWord::empty`] (its encoding is 0), so the
/// table can grow lazily and be wiped by zero-filling in place —
/// retaining its capacity across executions.
#[derive(Debug, Default, Clone)]
struct ShadowTable {
    words: Vec<u64>,
}

/// The shadow-memory race detector.
///
/// Shadow state is per *cell* `(object, offset)`; scalar objects use
/// offset 0 and arrays one cell per element. Object ids are dense
/// sequential, so shadow words live in a per-object `Vec<u64>` word
/// table (one indexed lookup per check — no hashing), and location
/// metadata in a dense `Vec` keyed the same way. `begin_execution`
/// clears shadow state **in place, retaining capacity** (the detector
/// is the tool state that survives across executions, so its tables
/// are recycled rather than reallocated) but keeps the
/// report-deduplication set, matching the paper's fork-snapshot
/// behavior of reporting each race once across repeated executions
/// (§7.6).
#[derive(Debug, Default)]
pub struct RaceDetector {
    shadow: Vec<ShadowTable>,
    expanded: Vec<Expanded>,
    meta: Vec<Option<LocMeta>>,
    seen: HashSet<RaceKey>,
    reports: Vec<RaceReport>,
    /// Races detected but elided because they involve volatile cells.
    pub elided_volatile: u64,
    /// Total race checks performed (reads + writes).
    pub checks: u64,
}

impl RaceDetector {
    /// Creates an empty detector.
    pub fn new() -> Self {
        RaceDetector::default()
    }

    /// Registers a location's label (for reports) and volatility.
    pub fn register(&mut self, obj: ObjId, label: impl Into<String>, volatile: bool) {
        let ix = obj.0 as usize;
        if self.meta.len() <= ix {
            self.meta.resize_with(ix + 1, || None);
        }
        self.meta[ix] = Some(LocMeta {
            label: label.into(),
            volatile,
        });
    }

    /// Clears shadow state and per-execution deduplication for a new
    /// execution. Accumulated (undrained) reports survive. Cross-
    /// execution report deduplication — the paper's "report data races
    /// only once" fork-snapshot behavior — is performed by the model
    /// layer, which also needs the per-execution detection signal for
    /// the detection-rate experiments.
    pub fn begin_execution(&mut self) {
        for table in &mut self.shadow {
            // Zero-fill in place: the all-zero word is the empty shadow
            // word, and the capacity survives for the next execution.
            table.words.fill(0);
        }
        self.expanded.clear();
        self.seen.clear();
    }

    /// Reads the shadow word of a cell (empty when never touched).
    #[inline]
    fn shadow_word(&self, obj: ObjId, offset: u32) -> u64 {
        self.shadow
            .get(obj.0 as usize)
            .and_then(|t| t.words.get(offset as usize))
            .copied()
            .unwrap_or(0)
    }

    /// Writes the shadow word of a cell, growing the dense tables.
    #[inline]
    fn set_shadow_word(&mut self, obj: ObjId, offset: u32, bits: u64) {
        let oix = obj.0 as usize;
        if self.shadow.len() <= oix {
            self.shadow.resize_with(oix + 1, ShadowTable::default);
        }
        let words = &mut self.shadow[oix].words;
        let cell = offset as usize;
        if words.len() <= cell {
            words.resize(cell + 1, 0);
        }
        words[cell] = bits;
    }

    /// Race reports accumulated so far (deduplicated).
    pub fn reports(&self) -> &[RaceReport] {
        &self.reports
    }

    /// Number of distinct races reported.
    pub fn race_count(&self) -> usize {
        self.reports.len()
    }

    /// Drains accumulated reports (dedup history is kept).
    pub fn take_reports(&mut self) -> Vec<RaceReport> {
        std::mem::take(&mut self.reports)
    }

    fn label_of(&self, obj: ObjId) -> String {
        self.meta
            .get(obj.0 as usize)
            .and_then(|m| m.as_ref())
            .map(|m| m.label.clone())
            .unwrap_or_else(|| format!("{obj:?}"))
    }

    fn is_volatile(&self, obj: ObjId) -> bool {
        self.meta
            .get(obj.0 as usize)
            .and_then(|m| m.as_ref())
            .map(|m| m.volatile)
            .unwrap_or(false)
    }

    #[allow(clippy::too_many_arguments)]
    fn emit(
        &mut self,
        obj: ObjId,
        offset: u32,
        kind: RaceKind,
        current: Epoch,
        current_kind: AccessKind,
        prior_tid: ThreadId,
        prior_atomic: bool,
    ) {
        if self.is_volatile(obj) && current_kind != AccessKind::NonAtomic {
            // Volatile-vs-volatile / volatile-vs-atomic conflicts on a
            // registered volatile location: detected but elided (§8.2) —
            // legacy code routinely implements atomics with volatiles.
            self.elided_volatile += 1;
            return;
        }
        let label = self.label_of(obj);
        if !self.seen.insert(RaceKey {
            label: label.clone(),
            kind,
        }) {
            return;
        }
        if std::env::var_os("C11TESTER_RACE_DEBUG").is_some() {
            eprintln!(
                "RACE DEBUG: {label} kind={kind:?} current={current:?} ({current_kind:?}) prior_tid={prior_tid:?} prior_atomic={prior_atomic}"
            );
        }
        self.reports.push(RaceReport {
            label,
            obj,
            offset,
            kind,
            current_tid: current.tid,
            current_kind,
            prior_tid,
            prior_atomic,
        });
    }

    fn expand(&mut self, packed: PackedShadow) -> u32 {
        let mut exp = Expanded {
            write: (packed.write_clock > 0).then(|| Epoch {
                tid: ThreadId::from_index(packed.write_tid as usize),
                clock: packed.write_clock,
            }),
            write_atomic: packed.write_atomic,
            ..Expanded::default()
        };
        if packed.read_clock > 0 {
            let t = ThreadId::from_index(packed.read_tid as usize);
            if packed.read_atomic {
                exp.reads_atomic.set(t, packed.read_clock);
            } else {
                exp.reads_nonatomic.set(t, packed.read_clock);
            }
        }
        let ix = self.expanded.len() as u32;
        self.expanded.push(exp);
        ix
    }

    /// Processes a read of `(obj, offset)` by `tid` whose current
    /// happens-before clock is `cv`. Returns whether a (new) race was
    /// reported.
    pub fn on_read(
        &mut self,
        obj: ObjId,
        offset: u32,
        tid: ThreadId,
        cv: &ClockVector,
        kind: AccessKind,
    ) -> bool {
        self.checks += 1;
        let epoch = Epoch {
            tid,
            clock: cv.get(tid),
        };
        // Volatile accesses conflict like non-atomic ones (the standard
        // gives them no atomicity); only the *reporting* is elided.
        let atomic = kind == AccessKind::Atomic;
        let bits = self.shadow_word(obj, offset);
        let before = self.reports.len();
        match ShadowWord::decode(bits) {
            ShadowWord::Packed(p) => {
                // Read–write conflict: prior write not hb-ordered, and
                // at least one side non-atomic.
                if p.write_clock > 0 {
                    let wt = ThreadId::from_index(p.write_tid as usize);
                    if wt != tid && p.write_clock > cv.get(wt) && (!atomic || !p.write_atomic) {
                        if std::env::var_os("C11TESTER_RACE_DEBUG").is_some() {
                            eprintln!(
                                "  read-check: wclock={} cv[wt]={} reader cv={cv:?}",
                                p.write_clock,
                                cv.get(wt)
                            );
                        }
                        self.emit(
                            obj,
                            offset,
                            RaceKind::ReadAfterWrite,
                            epoch,
                            kind,
                            wt,
                            p.write_atomic,
                        );
                    }
                }
                // Record the read.
                let rt = ThreadId::from_index(p.read_tid as usize);
                let same_or_ordered = p.read_clock == 0 || rt == tid || p.read_clock <= cv.get(rt);
                if same_or_ordered && ShadowWord::read_epoch_fits(epoch) {
                    let mut np = p;
                    np.read_clock = epoch.clock;
                    np.read_tid = tid.as_u32();
                    np.read_atomic = atomic;
                    self.set_shadow_word(obj, offset, ShadowWord::Packed(np).encode());
                } else {
                    // Concurrent readers or overflow: inflate.
                    let ix = self.expand(p);
                    let exp = &mut self.expanded[ix as usize];
                    if atomic {
                        exp.reads_atomic.set(tid, epoch.clock);
                    } else {
                        exp.reads_nonatomic.set(tid, epoch.clock);
                    }
                    self.set_shadow_word(obj, offset, ShadowWord::Expanded(ix).encode());
                }
            }
            ShadowWord::Expanded(ix) => {
                let (write, write_atomic) = {
                    let exp = &self.expanded[ix as usize];
                    (exp.write, exp.write_atomic)
                };
                if let Some(w) = write {
                    if w.tid != tid && w.clock > cv.get(w.tid) && (!atomic || !write_atomic) {
                        self.emit(
                            obj,
                            offset,
                            RaceKind::ReadAfterWrite,
                            epoch,
                            kind,
                            w.tid,
                            write_atomic,
                        );
                    }
                }
                let exp = &mut self.expanded[ix as usize];
                if atomic {
                    exp.reads_atomic.set(tid, epoch.clock);
                } else {
                    exp.reads_nonatomic.set(tid, epoch.clock);
                }
            }
        }
        self.reports.len() > before
    }

    /// Processes a write of `(obj, offset)` by `tid` whose current
    /// happens-before clock is `cv`. Returns whether a (new) race was
    /// reported.
    pub fn on_write(
        &mut self,
        obj: ObjId,
        offset: u32,
        tid: ThreadId,
        cv: &ClockVector,
        kind: AccessKind,
    ) -> bool {
        self.checks += 1;
        let epoch = Epoch {
            tid,
            clock: cv.get(tid),
        };
        // See on_read: volatile conflicts like non-atomic.
        let atomic = kind == AccessKind::Atomic;
        let bits = self.shadow_word(obj, offset);
        let before = self.reports.len();
        match ShadowWord::decode(bits) {
            ShadowWord::Packed(p) => {
                if p.write_clock > 0 {
                    let wt = ThreadId::from_index(p.write_tid as usize);
                    if wt != tid && p.write_clock > cv.get(wt) && (!atomic || !p.write_atomic) {
                        self.emit(
                            obj,
                            offset,
                            RaceKind::WriteAfterWrite,
                            epoch,
                            kind,
                            wt,
                            p.write_atomic,
                        );
                    }
                }
                if p.read_clock > 0 {
                    let rt = ThreadId::from_index(p.read_tid as usize);
                    if rt != tid && p.read_clock > cv.get(rt) && (!atomic || !p.read_atomic) {
                        self.emit(
                            obj,
                            offset,
                            RaceKind::WriteAfterRead,
                            epoch,
                            kind,
                            rt,
                            p.read_atomic,
                        );
                    }
                }
                if ShadowWord::write_epoch_fits(epoch) {
                    // FastTrack write: record the write epoch, collapse
                    // the read slot.
                    let np = PackedShadow {
                        write_clock: epoch.clock,
                        write_tid: tid.as_u32(),
                        write_atomic: atomic,
                        read_clock: 0,
                        read_tid: 0,
                        read_atomic: false,
                    };
                    self.set_shadow_word(obj, offset, ShadowWord::Packed(np).encode());
                } else {
                    let ix = self.expand(PackedShadow::default());
                    let exp = &mut self.expanded[ix as usize];
                    exp.write = Some(epoch);
                    exp.write_atomic = atomic;
                    self.set_shadow_word(obj, offset, ShadowWord::Expanded(ix).encode());
                }
            }
            ShadowWord::Expanded(ix) => {
                let (write, write_atomic, reads_na, reads_at) = {
                    let exp = &self.expanded[ix as usize];
                    (
                        exp.write,
                        exp.write_atomic,
                        exp.reads_nonatomic.clone(),
                        exp.reads_atomic.clone(),
                    )
                };
                if let Some(w) = write {
                    if w.tid != tid && w.clock > cv.get(w.tid) && (!atomic || !write_atomic) {
                        self.emit(
                            obj,
                            offset,
                            RaceKind::WriteAfterWrite,
                            epoch,
                            kind,
                            w.tid,
                            write_atomic,
                        );
                    }
                }
                for (rt, rc) in reads_na.iter_nonzero() {
                    if rt != tid && rc > cv.get(rt) {
                        self.emit(
                            obj,
                            offset,
                            RaceKind::WriteAfterRead,
                            epoch,
                            kind,
                            rt,
                            false,
                        );
                    }
                }
                if !atomic {
                    for (rt, rc) in reads_at.iter_nonzero() {
                        if rt != tid && rc > cv.get(rt) {
                            self.emit(obj, offset, RaceKind::WriteAfterRead, epoch, kind, rt, true);
                        }
                    }
                }
                let exp = &mut self.expanded[ix as usize];
                exp.write = Some(epoch);
                exp.write_atomic = atomic;
                exp.reads_nonatomic.clear();
                exp.reads_atomic.clear();
            }
        }
        self.reports.len() > before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ix: usize) -> ThreadId {
        ThreadId::from_index(ix)
    }

    fn cv(entries: &[(usize, u64)]) -> ClockVector {
        let mut c = ClockVector::new();
        for &(ix, v) in entries {
            c.set(t(ix), v);
        }
        c
    }

    const X: ObjId = ObjId(1);

    #[test]
    fn unordered_nonatomic_writes_race() {
        let mut d = RaceDetector::new();
        d.register(X, "x", false);
        assert!(!d.on_write(X, 0, t(0), &cv(&[(0, 1)]), AccessKind::NonAtomic));
        // Thread 1 writes without knowing thread 0's write.
        assert!(d.on_write(X, 0, t(1), &cv(&[(1, 2)]), AccessKind::NonAtomic));
        assert_eq!(d.race_count(), 1);
        assert_eq!(d.reports()[0].kind, RaceKind::WriteAfterWrite);
    }

    #[test]
    fn hb_ordered_writes_do_not_race() {
        let mut d = RaceDetector::new();
        d.register(X, "x", false);
        d.on_write(X, 0, t(0), &cv(&[(0, 1)]), AccessKind::NonAtomic);
        // Thread 1's clock covers thread 0's write.
        assert!(!d.on_write(X, 0, t(1), &cv(&[(0, 1), (1, 2)]), AccessKind::NonAtomic));
        assert_eq!(d.race_count(), 0);
    }

    #[test]
    fn read_write_races_detected_both_directions() {
        let mut d = RaceDetector::new();
        d.register(X, "x", false);
        d.on_write(X, 0, t(0), &cv(&[(0, 1)]), AccessKind::NonAtomic);
        // Unordered read races with the write.
        assert!(d.on_read(X, 0, t(1), &cv(&[(1, 2)]), AccessKind::NonAtomic));
        // A later unordered write races with the read (fresh detector to
        // bypass dedup).
        let mut d2 = RaceDetector::new();
        d2.register(X, "x", false);
        d2.on_read(X, 0, t(0), &cv(&[(0, 1)]), AccessKind::NonAtomic);
        assert!(d2.on_write(X, 0, t(1), &cv(&[(1, 2)]), AccessKind::NonAtomic));
        assert_eq!(d2.reports()[0].kind, RaceKind::WriteAfterRead);
    }

    #[test]
    fn atomic_atomic_never_races() {
        let mut d = RaceDetector::new();
        d.register(X, "x", false);
        d.on_write(X, 0, t(0), &cv(&[(0, 1)]), AccessKind::Atomic);
        assert!(!d.on_write(X, 0, t(1), &cv(&[(1, 2)]), AccessKind::Atomic));
        assert!(!d.on_read(X, 0, t(2), &cv(&[(2, 3)]), AccessKind::Atomic));
        assert_eq!(d.race_count(), 0);
    }

    #[test]
    fn mixed_atomic_nonatomic_races() {
        // atomic_init-style: non-atomic store racing a later atomic load.
        let mut d = RaceDetector::new();
        d.register(X, "x", false);
        d.on_write(X, 0, t(0), &cv(&[(0, 1)]), AccessKind::NonAtomic);
        assert!(d.on_read(X, 0, t(1), &cv(&[(1, 2)]), AccessKind::Atomic));
        // And an atomic read racing a later non-atomic write.
        let mut d2 = RaceDetector::new();
        d2.register(X, "x", false);
        d2.on_read(X, 0, t(0), &cv(&[(0, 1)]), AccessKind::Atomic);
        assert!(d2.on_write(X, 0, t(1), &cv(&[(1, 2)]), AccessKind::NonAtomic));
    }

    #[test]
    fn volatile_races_are_elided_but_counted() {
        let mut d = RaceDetector::new();
        d.register(X, "spinlock", true);
        d.on_write(X, 0, t(0), &cv(&[(0, 1)]), AccessKind::Volatile);
        assert!(!d.on_write(X, 0, t(1), &cv(&[(1, 2)]), AccessKind::Volatile));
        assert_eq!(d.race_count(), 0);
        assert_eq!(d.elided_volatile, 1);
        // A plain non-atomic access on a volatile cell still reports.
        assert!(d.on_write(X, 0, t(2), &cv(&[(2, 3)]), AccessKind::NonAtomic));
    }

    #[test]
    fn duplicate_races_are_reported_once_per_execution() {
        let mut d = RaceDetector::new();
        d.register(X, "x", false);
        d.on_write(X, 0, t(0), &cv(&[(0, 1)]), AccessKind::NonAtomic);
        assert!(d.on_write(X, 0, t(1), &cv(&[(1, 2)]), AccessKind::NonAtomic));
        // Same race shape again within the same execution: deduplicated.
        d.on_write(X, 0, t(0), &cv(&[(0, 3)]), AccessKind::NonAtomic);
        assert!(!d.on_write(X, 0, t(1), &cv(&[(1, 4)]), AccessKind::NonAtomic));
        assert_eq!(d.race_count(), 1);
        // A new execution re-arms detection (the model layer dedups
        // across executions for reporting).
        d.begin_execution();
        d.on_write(X, 0, t(0), &cv(&[(0, 5)]), AccessKind::NonAtomic);
        assert!(d.on_write(X, 0, t(1), &cv(&[(1, 6)]), AccessKind::NonAtomic));
        assert_eq!(d.race_count(), 2);
    }

    #[test]
    fn concurrent_readers_inflate_and_still_catch_racing_write() {
        let mut d = RaceDetector::new();
        d.register(X, "x", false);
        // Two genuinely concurrent readers.
        d.on_read(X, 0, t(0), &cv(&[(0, 1)]), AccessKind::NonAtomic);
        d.on_read(X, 0, t(1), &cv(&[(1, 2)]), AccessKind::NonAtomic);
        // Writer ordered after reader 0 but not reader 1: still a race.
        assert!(d.on_write(X, 0, t(2), &cv(&[(0, 1), (2, 3)]), AccessKind::NonAtomic));
        let r = &d.reports()[0];
        assert_eq!(r.prior_tid, t(1));
    }

    #[test]
    fn clock_overflow_inflates() {
        let mut d = RaceDetector::new();
        d.register(X, "x", false);
        let big = crate::shadow::MAX_WRITE_CLOCK + 10;
        d.on_write(X, 0, t(0), &cv(&[(0, big)]), AccessKind::NonAtomic);
        // Still detects a racing write afterwards.
        assert!(d.on_write(X, 0, t(1), &cv(&[(1, 2)]), AccessKind::NonAtomic));
    }

    #[test]
    fn begin_execution_wipes_dense_tables_in_place() {
        let mut d = RaceDetector::new();
        d.register(X, "x", false);
        // Touch a high offset so the word table has real extent, and
        // force an expanded record via concurrent readers.
        d.on_read(X, 7, t(0), &cv(&[(0, 1)]), AccessKind::NonAtomic);
        d.on_read(X, 7, t(1), &cv(&[(1, 2)]), AccessKind::NonAtomic);
        d.begin_execution();
        // A fresh execution must see never-accessed cells: a single
        // write cannot race against wiped state...
        assert!(!d.on_write(X, 7, t(2), &cv(&[(2, 1)]), AccessKind::NonAtomic));
        assert_eq!(d.race_count(), 0);
        // ...and the metadata (labels) survives the wipe.
        d.on_write(X, 7, t(3), &cv(&[(3, 1)]), AccessKind::NonAtomic);
        assert_eq!(d.reports()[0].label, "x");
    }

    #[test]
    fn unregistered_objects_fall_back_to_debug_labels() {
        let mut d = RaceDetector::new();
        // ObjId(5) never registered: dense meta table must not panic
        // and the report label falls back to the Debug rendering.
        let o = ObjId(5);
        d.on_write(o, 0, t(0), &cv(&[(0, 1)]), AccessKind::NonAtomic);
        assert!(d.on_write(o, 0, t(1), &cv(&[(1, 2)]), AccessKind::NonAtomic));
        assert_eq!(d.reports()[0].label, "obj5");
    }

    #[test]
    fn distinct_offsets_are_independent() {
        let mut d = RaceDetector::new();
        d.register(X, "arr", false);
        d.on_write(X, 0, t(0), &cv(&[(0, 1)]), AccessKind::NonAtomic);
        assert!(!d.on_write(X, 1, t(1), &cv(&[(1, 2)]), AccessKind::NonAtomic));
        assert_eq!(d.race_count(), 0);
    }
}
