//! Race report types.

use c11tester_core::{ObjId, ThreadId};
use std::fmt;

/// How an access participated in the model.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccessKind {
    /// A plain, non-atomic access.
    NonAtomic,
    /// A C/C++11 atomic access.
    Atomic,
    /// A legacy volatile access converted to an atomic access (§7.2).
    Volatile,
}

/// The conflict shape of a detected race.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RaceKind {
    /// Current write conflicts with a prior write.
    WriteAfterWrite,
    /// Current write conflicts with a prior read.
    WriteAfterRead,
    /// Current read conflicts with a prior write.
    ReadAfterWrite,
}

impl fmt::Display for RaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RaceKind::WriteAfterWrite => "write-write",
            RaceKind::WriteAfterRead => "write-read",
            RaceKind::ReadAfterWrite => "read-write",
        };
        f.write_str(s)
    }
}

/// A deduplicated data-race report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceReport {
    /// Human-readable location label (registered by the test program).
    pub label: String,
    /// The racing object.
    pub obj: ObjId,
    /// Cell offset within the object (array element, 0 for scalars).
    pub offset: u32,
    /// Conflict shape.
    pub kind: RaceKind,
    /// Thread performing the access that completed the race.
    pub current_tid: ThreadId,
    /// Kind of the current access.
    pub current_kind: AccessKind,
    /// Thread that performed the earlier conflicting access.
    pub prior_tid: ThreadId,
    /// Whether the earlier access was atomic (incl. volatile).
    pub prior_atomic: bool,
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "data race ({kind}) on `{label}`[{off}]: {cur:?} ({ck:?}) vs {prev:?} ({pk})",
            kind = self.kind,
            label = self.label,
            off = self.offset,
            cur = self.current_tid,
            ck = self.current_kind,
            prev = self.prior_tid,
            pk = if self.prior_atomic {
                "atomic"
            } else {
                "non-atomic"
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_display_is_informative() {
        let r = RaceReport {
            label: "seqlock.data".into(),
            obj: ObjId(3),
            offset: 0,
            kind: RaceKind::WriteAfterRead,
            current_tid: ThreadId::from_index(1),
            current_kind: AccessKind::NonAtomic,
            prior_tid: ThreadId::from_index(2),
            prior_atomic: false,
        };
        let s = r.to_string();
        assert!(s.contains("seqlock.data"));
        assert!(s.contains("write-read"));
        assert!(s.contains("T1"));
        assert!(s.contains("T2"));
    }
}
