//! Per-strategy detection accounting for strategy-mixed campaigns.
//!
//! The paper's evaluation (§7.6, Tables 1–2) shows detection rates
//! depend on *which* controlled-scheduling strategy drives each
//! execution. When a campaign mixes strategies over one execution
//! stream, the aggregate alone hides that signal — the
//! [`StrategyLedger`] keeps one [`StrategyBucket`] per strategy so
//! reports can show per-strategy executions, race counts, and
//! detection rates alongside the aggregate.
//!
//! Like [`DedupHistory`], the ledger is **order-independent and
//! mergeable**: buckets key on the strategy's canonical spec string in
//! a `BTreeMap`, every counter is a sum, and each bucket's dedup
//! history merges commutatively — so any partition of the execution
//! stream over any number of campaign workers aggregates to an
//! identical ledger.

use crate::dedup::DedupHistory;
use crate::report::RaceReport;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

/// Detection counters for one strategy's slice of an execution stream.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StrategyBucket {
    /// Executions assigned to this strategy.
    pub executions: u64,
    /// Of those, executions that detected at least one data race.
    pub executions_with_race: u64,
    /// Of those, executions that found any bug (race, assertion
    /// violation, or deadlock).
    pub executions_with_bug: u64,
    /// Deduplicated races found by this strategy's executions.
    pub races: DedupHistory,
}

impl StrategyBucket {
    /// Fraction of this strategy's executions that detected a race.
    pub fn race_detection_rate(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.executions_with_race as f64 / self.executions as f64
        }
    }

    /// Fraction of this strategy's executions that found any bug.
    pub fn bug_detection_rate(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.executions_with_bug as f64 / self.executions as f64
        }
    }

    fn merge(&mut self, other: &StrategyBucket) {
        self.executions += other.executions;
        self.executions_with_race += other.executions_with_race;
        self.executions_with_bug += other.executions_with_bug;
        self.races.merge(&other.races);
    }
}

/// An order-independent, mergeable map from strategy spec to its
/// detection counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StrategyLedger {
    buckets: BTreeMap<String, StrategyBucket>,
}

impl StrategyLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        StrategyLedger::default()
    }

    /// Records one execution that ran under `strategy`: which races it
    /// exhibited (deduplicated within the execution already) and
    /// whether it found any bug.
    pub fn record(
        &mut self,
        strategy: &str,
        execution_index: u64,
        races: &[RaceReport],
        found_bug: bool,
    ) {
        let bucket = self.buckets.entry(strategy.to_string()).or_default();
        bucket.executions += 1;
        if !races.is_empty() {
            bucket.executions_with_race += 1;
        }
        if found_bug {
            bucket.executions_with_bug += 1;
        }
        for race in races {
            bucket.races.record(execution_index, race);
        }
    }

    /// Folds another ledger into this one. Commutative and associative
    /// over disjoint execution sets.
    pub fn merge(&mut self, other: &StrategyLedger) {
        for (name, ob) in &other.buckets {
            match self.buckets.entry(name.clone()) {
                Entry::Vacant(v) => {
                    v.insert(ob.clone());
                }
                Entry::Occupied(mut cur) => cur.get_mut().merge(ob),
            }
        }
    }

    /// Number of distinct strategies recorded.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether no execution has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// The bucket for a strategy spec, if any execution ran under it.
    pub fn get(&self, strategy: &str) -> Option<&StrategyBucket> {
        self.buckets.get(strategy)
    }

    /// Buckets in strategy-spec order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &StrategyBucket)> {
        self.buckets.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Total executions across all buckets (must equal the aggregate's
    /// execution count — the sum-to-aggregate invariant).
    pub fn total_executions(&self) -> u64 {
        self.buckets.values().map(|b| b.executions).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{AccessKind, RaceKind};
    use c11tester_core::{ObjId, ThreadId};

    fn race(label: &str) -> RaceReport {
        RaceReport {
            label: label.into(),
            obj: ObjId(1),
            offset: 0,
            kind: RaceKind::WriteAfterWrite,
            current_tid: ThreadId::from_index(1),
            current_kind: AccessKind::NonAtomic,
            prior_tid: ThreadId::from_index(0),
            prior_atomic: false,
        }
    }

    #[test]
    fn record_buckets_by_strategy_and_counts() {
        let mut l = StrategyLedger::new();
        l.record("random", 0, &[race("x")], true);
        l.record("random", 1, &[], false);
        l.record("pct2", 2, &[race("x"), race("y")], true);
        assert_eq!(l.len(), 2);
        let r = l.get("random").expect("random bucket");
        assert_eq!(r.executions, 2);
        assert_eq!(r.executions_with_race, 1);
        assert_eq!(r.executions_with_bug, 1);
        assert_eq!(r.races.len(), 1);
        assert!((r.race_detection_rate() - 0.5).abs() < 1e-9);
        let p = l.get("pct2").expect("pct2 bucket");
        assert_eq!(p.executions, 1);
        assert_eq!(p.races.len(), 2);
        assert_eq!(l.total_executions(), 3);
    }

    #[test]
    fn bug_without_race_counts_only_bug() {
        let mut l = StrategyLedger::new();
        l.record("burst", 5, &[], true); // e.g. a deadlock
        let b = l.get("burst").expect("bucket");
        assert_eq!(b.executions_with_race, 0);
        assert_eq!(b.executions_with_bug, 1);
        assert_eq!(b.race_detection_rate(), 0.0);
        assert_eq!(b.bug_detection_rate(), 1.0);
    }

    #[test]
    fn merge_is_order_independent() {
        let observations: Vec<(&str, u64, Vec<RaceReport>, bool)> = vec![
            ("random", 0, vec![race("a")], true),
            ("pct2", 1, vec![], false),
            ("random", 2, vec![race("a"), race("b")], true),
            ("pct3", 3, vec![], true),
            ("pct2", 4, vec![race("b")], true),
        ];
        let build = |ixs: &[usize]| {
            let mut l = StrategyLedger::new();
            for &i in ixs {
                let (s, ex, races, bug) = &observations[i];
                l.record(s, *ex, races, *bug);
            }
            l
        };
        let mut two = build(&[0, 2, 4]);
        two.merge(&build(&[1, 3]));
        let mut three = build(&[3, 1]);
        three.merge(&build(&[4, 0]));
        three.merge(&build(&[2]));
        assert_eq!(two, three);
        assert_eq!(two, build(&[0, 1, 2, 3, 4]));
    }

    #[test]
    fn iteration_is_sorted_by_strategy() {
        let mut l = StrategyLedger::new();
        l.record("random", 0, &[], false);
        l.record("burst", 1, &[], false);
        l.record("pct2", 2, &[], false);
        let names: Vec<&str> = l.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["burst", "pct2", "random"]);
    }
}
