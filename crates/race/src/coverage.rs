//! Mergeable cross-execution behavior-coverage maps.
//!
//! A campaign's throughput numbers say how *fast* the checker ran;
//! a [`CoverageMap`] says *what* it explored. Each execution that ran
//! with coverage collection enabled contributes its
//! [`ExecCoverage`] signature (distinct rf edges, mo adjacencies, and
//! a coarse interleaving hash, captured at the core commit points)
//! plus its race keys; the map accumulates them under the same
//! discipline as [`crate::DedupHistory`]:
//!
//! * `BTreeMap`-backed, so iteration (and any JSON emitted from it)
//!   is byte-stable;
//! * each behavior keeps the **lowest execution index** that first
//!   exhibited it plus an occurrence count (executions, not events);
//! * [`CoverageMap::merge`] is commutative and associative, so any
//!   partition of the execution stream over any number of workers —
//!   or fork-server children — aggregates to an identical map.
//!
//! Coverage is diagnostic only: it never enters default canonical
//! campaign JSON and collection defaults off (see
//! `c11tester_telemetry::set_coverage`).

use crate::dedup::RaceKey;
use crate::report::RaceReport;
use c11tester_core::ExecCoverage;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

/// Provenance of one distinct behavior: when it was first seen and in
/// how many executions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BehaviorStats {
    /// Lowest execution index that exhibited the behavior.
    pub first_execution: u64,
    /// Number of collecting executions that exhibited it.
    pub occurrences: u64,
}

fn fold<K: Ord + Clone>(map: &mut BTreeMap<K, BehaviorStats>, key: &K, execution_index: u64) {
    match map.entry(key.clone()) {
        Entry::Vacant(v) => {
            v.insert(BehaviorStats {
                first_execution: execution_index,
                occurrences: 1,
            });
        }
        Entry::Occupied(mut o) => {
            let s = o.get_mut();
            s.occurrences += 1;
            s.first_execution = s.first_execution.min(execution_index);
        }
    }
}

fn merge_into<K: Ord + Clone>(
    map: &mut BTreeMap<K, BehaviorStats>,
    other: &BTreeMap<K, BehaviorStats>,
) {
    for (key, os) in other {
        match map.entry(key.clone()) {
            Entry::Vacant(v) => {
                v.insert(*os);
            }
            Entry::Occupied(mut cur) => {
                let s = cur.get_mut();
                s.occurrences += os.occurrences;
                s.first_execution = s.first_execution.min(os.first_execution);
            }
        }
    }
}

/// An order-independent, mergeable map of the distinct behaviors a set
/// of executions exhibited.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CoverageMap {
    /// Distinct reads-from edges `(obj, store thread, load thread)`.
    rf_edges: BTreeMap<(u64, u64, u64), BehaviorStats>,
    /// Distinct mo adjacencies `(obj, from thread, to thread)`.
    mo_edges: BTreeMap<(u64, u64, u64), BehaviorStats>,
    /// Distinct race classes observed.
    races: BTreeMap<RaceKey, BehaviorStats>,
    /// Distinct coarse interleaving signatures.
    interleavings: BTreeMap<u64, BehaviorStats>,
    /// Executions that contributed a signature (`collected == true`).
    collected_executions: u64,
}

impl CoverageMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        CoverageMap::default()
    }

    /// Folds one execution's signature and race reports into the map.
    /// No-op when the signature was not collected — an execution run
    /// with coverage disabled contributes nothing (not even to
    /// [`CoverageMap::collected_executions`]).
    pub fn record(&mut self, execution_index: u64, sig: &ExecCoverage, races: &[RaceReport]) {
        if !sig.collected {
            return;
        }
        self.collected_executions += 1;
        for edge in &sig.rf_edges {
            fold(&mut self.rf_edges, edge, execution_index);
        }
        for edge in &sig.mo_edges {
            fold(&mut self.mo_edges, edge, execution_index);
        }
        fold(
            &mut self.interleavings,
            &sig.interleaving_hash,
            execution_index,
        );
        for race in races {
            fold(&mut self.races, &race.key(), execution_index);
        }
    }

    /// Folds another map into this one. Commutative and associative:
    /// any partition of the execution stream aggregates identically.
    pub fn merge(&mut self, other: &CoverageMap) {
        self.collected_executions += other.collected_executions;
        merge_into(&mut self.rf_edges, &other.rf_edges);
        merge_into(&mut self.mo_edges, &other.mo_edges);
        merge_into(&mut self.races, &other.races);
        merge_into(&mut self.interleavings, &other.interleavings);
    }

    /// Executions that contributed a collected signature.
    pub fn collected_executions(&self) -> u64 {
        self.collected_executions
    }

    /// Number of distinct reads-from edges.
    pub fn distinct_rf_edges(&self) -> u64 {
        self.rf_edges.len() as u64
    }

    /// Number of distinct mo adjacencies.
    pub fn distinct_mo_edges(&self) -> u64 {
        self.mo_edges.len() as u64
    }

    /// Number of distinct race classes.
    pub fn distinct_races(&self) -> u64 {
        self.races.len() as u64
    }

    /// Number of distinct interleaving signatures.
    pub fn distinct_interleavings(&self) -> u64 {
        self.interleavings.len() as u64
    }

    /// Total distinct behaviors across all four dimensions.
    pub fn distinct_total(&self) -> u64 {
        self.distinct_rf_edges()
            + self.distinct_mo_edges()
            + self.distinct_races()
            + self.distinct_interleavings()
    }

    /// Whether the map holds no behavior at all.
    pub fn is_empty(&self) -> bool {
        self.collected_executions == 0
            && self.rf_edges.is_empty()
            && self.mo_edges.is_empty()
            && self.races.is_empty()
            && self.interleavings.is_empty()
    }

    /// Reads-from edges in key order: `((obj, store thread, load
    /// thread), stats)`.
    pub fn rf_edges(&self) -> impl Iterator<Item = (&(u64, u64, u64), &BehaviorStats)> {
        self.rf_edges.iter()
    }

    /// Mo adjacencies in key order: `((obj, from thread, to thread),
    /// stats)`.
    pub fn mo_edges(&self) -> impl Iterator<Item = (&(u64, u64, u64), &BehaviorStats)> {
        self.mo_edges.iter()
    }

    /// Race classes in key order.
    pub fn races(&self) -> impl Iterator<Item = (&RaceKey, &BehaviorStats)> {
        self.races.iter()
    }

    /// Interleaving signatures in key order.
    pub fn interleavings(&self) -> impl Iterator<Item = (&u64, &BehaviorStats)> {
        self.interleavings.iter()
    }

    /// Calls `f` with the first-discovery execution index of every
    /// behavior present here but absent from `baseline` — the
    /// new-behavior delta a cumulative map enables (reweighting
    /// policies attribute each discovery to the strategy that drove
    /// that index).
    pub fn for_each_new(&self, baseline: &CoverageMap, mut f: impl FnMut(u64)) {
        for (k, s) in &self.rf_edges {
            if !baseline.rf_edges.contains_key(k) {
                f(s.first_execution);
            }
        }
        for (k, s) in &self.mo_edges {
            if !baseline.mo_edges.contains_key(k) {
                f(s.first_execution);
            }
        }
        for (k, s) in &self.races {
            if !baseline.races.contains_key(k) {
                f(s.first_execution);
            }
        }
        for (k, s) in &self.interleavings {
            if !baseline.interleavings.contains_key(k) {
                f(s.first_execution);
            }
        }
    }

    /// Number of behaviors present here but absent from `baseline`.
    pub fn count_new(&self, baseline: &CoverageMap) -> u64 {
        let mut n = 0;
        self.for_each_new(baseline, |_| n += 1);
        n
    }

    // -----------------------------------------------------------------
    // Entry-level absorption, for wire decoders that reconstruct a map
    // from a lossless serialized form. Each call merges one behavior
    // with the usual min-first / sum-occurrences rule.
    // -----------------------------------------------------------------

    /// Merges one reads-from-edge behavior.
    pub fn absorb_rf_edge(&mut self, key: (u64, u64, u64), stats: BehaviorStats) {
        merge_one(&mut self.rf_edges, key, stats);
    }

    /// Merges one mo-adjacency behavior.
    pub fn absorb_mo_edge(&mut self, key: (u64, u64, u64), stats: BehaviorStats) {
        merge_one(&mut self.mo_edges, key, stats);
    }

    /// Merges one race-class behavior.
    pub fn absorb_race(&mut self, key: RaceKey, stats: BehaviorStats) {
        merge_one(&mut self.races, key, stats);
    }

    /// Merges one interleaving-signature behavior.
    pub fn absorb_interleaving(&mut self, hash: u64, stats: BehaviorStats) {
        merge_one(&mut self.interleavings, hash, stats);
    }

    /// Adds to the collected-execution counter (wire decoding).
    pub fn add_collected_executions(&mut self, n: u64) {
        self.collected_executions += n;
    }
}

fn merge_one<K: Ord>(map: &mut BTreeMap<K, BehaviorStats>, key: K, stats: BehaviorStats) {
    match map.entry(key) {
        Entry::Vacant(v) => {
            v.insert(stats);
        }
        Entry::Occupied(mut cur) => {
            let s = cur.get_mut();
            s.occurrences += stats.occurrences;
            s.first_execution = s.first_execution.min(stats.first_execution);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{AccessKind, RaceKind};
    use c11tester_core::{ObjId, ThreadId};

    fn sig(rf: &[(u64, u64, u64)], mo: &[(u64, u64, u64)], hash: u64) -> ExecCoverage {
        let mut s = ExecCoverage::collecting();
        for &(o, f, t) in rf {
            s.record_rf(o, f, t);
        }
        for &(o, f, t) in mo {
            s.record_mo(o, f, t);
        }
        s.interleaving_hash = hash;
        s
    }

    fn race(label: &str) -> RaceReport {
        RaceReport {
            label: label.into(),
            obj: ObjId(1),
            offset: 0,
            kind: RaceKind::WriteAfterWrite,
            current_tid: ThreadId::from_index(1),
            current_kind: AccessKind::NonAtomic,
            prior_tid: ThreadId::from_index(0),
            prior_atomic: false,
        }
    }

    #[test]
    fn record_counts_distinct_behaviors_with_provenance() {
        let mut m = CoverageMap::new();
        m.record(4, &sig(&[(0, 0, 1)], &[(0, 0, 1)], 7), &[race("x")]);
        m.record(2, &sig(&[(0, 0, 1), (1, 1, 0)], &[], 7), &[]);
        assert_eq!(m.collected_executions(), 2);
        assert_eq!(m.distinct_rf_edges(), 2);
        assert_eq!(m.distinct_mo_edges(), 1);
        assert_eq!(m.distinct_races(), 1);
        assert_eq!(m.distinct_interleavings(), 1);
        assert_eq!(m.distinct_total(), 5);
        let (_, s) = m.rf_edges().next().expect("rf edge");
        assert_eq!(s.first_execution, 2, "lowest index wins");
        assert_eq!(s.occurrences, 2);
    }

    #[test]
    fn uncollected_signatures_contribute_nothing() {
        let mut m = CoverageMap::new();
        m.record(0, &ExecCoverage::default(), &[race("x")]);
        assert!(m.is_empty());
        assert_eq!(m.distinct_total(), 0);
    }

    #[test]
    fn new_behavior_delta_vs_baseline() {
        let mut base = CoverageMap::new();
        base.record(0, &sig(&[(0, 0, 1)], &[], 7), &[]);
        let mut next = base.clone();
        next.record(
            5,
            &sig(&[(0, 0, 1), (0, 1, 0)], &[(0, 0, 1)], 9),
            &[race("x")],
        );
        // New vs base: rf (0,1,0), mo (0,0,1), race x, interleaving 9.
        assert_eq!(next.count_new(&base), 4);
        let mut firsts = Vec::new();
        next.for_each_new(&base, |ix| firsts.push(ix));
        assert_eq!(firsts, [5, 5, 5, 5]);
        assert_eq!(base.count_new(&next), 0);
    }
}
