//! # c11tester-race
//!
//! FastTrack-style data-race detection for **c11tester-rs** (paper
//! §7.2): a 64-bit packed shadow word per memory cell with expanded
//! records for mixed or concurrent access histories, supporting the
//! full mixed atomic/non-atomic/volatile access matrix the paper's
//! evaluation depends on (atomic_init races, legacy volatile
//! spinlocks, memory reuse).
//!
//! The detector is driven by the `c11tester` facade, which feeds it
//! every shared-memory access together with the accessing thread's
//! happens-before clock from `c11tester-core`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coverage;
pub mod dedup;
pub mod detect;
pub mod ledger;
pub mod report;
pub mod shadow;

pub use coverage::{BehaviorStats, CoverageMap};
pub use dedup::{AccessShape, DedupEntry, DedupHistory, RaceKey};
pub use detect::RaceDetector;
pub use ledger::{StrategyBucket, StrategyLedger};
pub use report::{AccessKind, RaceKind, RaceReport};
pub use shadow::{Epoch, PackedShadow, ShadowWord};
