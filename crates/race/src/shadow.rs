//! Packed shadow words (paper §7.2).
//!
//! "C11Tester uses a FastTrack-like approach to race detection. It
//! maintains a 64-bit shadow word for each byte of memory. The shadow
//! word either contains 25-bit read and write clocks and 6-bit read and
//! write thread identifiers or a reference to an expanded access
//! record. We use one bit in the shadow word to record whether the last
//! store to the address was from a non-atomic or an atomic store."
//!
//! Our packing keeps the same budget and adds a read-atomicity bit
//! (needed because, unlike tsan's, our model atomics are logical cells
//! and atomic reads must be visible to later non-atomic writes):
//!
//! ```text
//! bit 63      : tag — 1 means bits 0..32 index an expanded record
//! bit 62      : last write was atomic (incl. volatile-as-atomic)
//! bit 61      : last read was atomic
//! bits 55..61 : write thread id   (6 bits)
//! bits 31..55 : write clock       (24 bits)
//! bits 25..31 : read thread id    (6 bits)
//! bits  0..25 : read clock        (25 bits)
//! ```
//!
//! Clock or thread-id overflow, and concurrent-reader sets, fall back
//! to expanded records exactly as in the paper.

use c11tester_core::ThreadId;

/// Maximum clock storable in the packed write slot.
pub const MAX_WRITE_CLOCK: u64 = (1 << 24) - 1;
/// Maximum clock storable in the packed read slot.
pub const MAX_READ_CLOCK: u64 = (1 << 25) - 1;
/// Maximum thread id storable in a packed slot.
pub const MAX_TID: u32 = (1 << 6) - 1;

const TAG_BIT: u64 = 1 << 63;
const W_ATOMIC_BIT: u64 = 1 << 62;
const R_ATOMIC_BIT: u64 = 1 << 61;
const W_TID_SHIFT: u32 = 55;
const W_CLOCK_SHIFT: u32 = 31;
const R_TID_SHIFT: u32 = 25;

/// One access epoch: thread + that thread's clock at access time.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Epoch {
    /// Accessing thread.
    pub tid: ThreadId,
    /// The thread's clock (its own clock-vector slot) at the access.
    pub clock: u64,
}

impl Epoch {
    /// An epoch that fits in a packed slot?
    fn fits(self, max_clock: u64) -> bool {
        self.clock <= max_clock && self.tid.as_u32() <= MAX_TID
    }
}

/// Decoded view of a packed shadow word.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub struct PackedShadow {
    /// Last write epoch (`clock == 0` means "never written").
    pub write_clock: u64,
    /// Writer thread id.
    pub write_tid: u32,
    /// Whether the last write was atomic.
    pub write_atomic: bool,
    /// Last read epoch (`clock == 0` means "no recorded read").
    pub read_clock: u64,
    /// Reader thread id.
    pub read_tid: u32,
    /// Whether the recorded read was atomic.
    pub read_atomic: bool,
}

/// A shadow word: either a packed epoch pair or an expanded-record
/// index.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ShadowWord {
    /// The common inline representation.
    Packed(PackedShadow),
    /// Index into the detector's expanded-record arena.
    Expanded(u32),
}

impl ShadowWord {
    /// A fresh, never-accessed shadow word.
    pub fn empty() -> Self {
        ShadowWord::Packed(PackedShadow::default())
    }

    /// Encodes into the 64-bit representation.
    pub fn encode(self) -> u64 {
        match self {
            ShadowWord::Expanded(ix) => TAG_BIT | u64::from(ix),
            ShadowWord::Packed(p) => {
                debug_assert!(p.write_clock <= MAX_WRITE_CLOCK);
                debug_assert!(p.read_clock <= MAX_READ_CLOCK);
                debug_assert!(p.write_tid <= MAX_TID && p.read_tid <= MAX_TID);
                let mut w = 0u64;
                if p.write_atomic {
                    w |= W_ATOMIC_BIT;
                }
                if p.read_atomic {
                    w |= R_ATOMIC_BIT;
                }
                w |= u64::from(p.write_tid) << W_TID_SHIFT;
                w |= p.write_clock << W_CLOCK_SHIFT;
                w |= u64::from(p.read_tid) << R_TID_SHIFT;
                w |= p.read_clock;
                w
            }
        }
    }

    /// Decodes from the 64-bit representation.
    pub fn decode(bits: u64) -> Self {
        if bits & TAG_BIT != 0 {
            ShadowWord::Expanded((bits & 0xFFFF_FFFF) as u32)
        } else {
            ShadowWord::Packed(PackedShadow {
                write_atomic: bits & W_ATOMIC_BIT != 0,
                read_atomic: bits & R_ATOMIC_BIT != 0,
                write_tid: ((bits >> W_TID_SHIFT) & u64::from(MAX_TID)) as u32,
                write_clock: (bits >> W_CLOCK_SHIFT) & MAX_WRITE_CLOCK,
                read_tid: ((bits >> R_TID_SHIFT) & u64::from(MAX_TID)) as u32,
                read_clock: bits & MAX_READ_CLOCK,
            })
        }
    }

    /// Whether an epoch can be recorded in the packed write slot.
    pub fn write_epoch_fits(e: Epoch) -> bool {
        e.fits(MAX_WRITE_CLOCK)
    }

    /// Whether an epoch can be recorded in the packed read slot.
    pub fn read_epoch_fits(e: Epoch) -> bool {
        e.fits(MAX_READ_CLOCK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_roundtrip() {
        let w = ShadowWord::empty();
        assert_eq!(ShadowWord::decode(w.encode()), w);
        match w {
            ShadowWord::Packed(p) => {
                assert_eq!(p.write_clock, 0);
                assert_eq!(p.read_clock, 0);
            }
            ShadowWord::Expanded(_) => panic!("empty must be packed"),
        }
    }

    #[test]
    fn packed_roundtrip_all_fields() {
        let p = PackedShadow {
            write_clock: 0xABCDE,
            write_tid: 63,
            write_atomic: true,
            read_clock: 0x1FF_FFFF,
            read_tid: 17,
            read_atomic: false,
        };
        let w = ShadowWord::Packed(p);
        assert_eq!(ShadowWord::decode(w.encode()), w);
    }

    #[test]
    fn expanded_roundtrip() {
        let w = ShadowWord::Expanded(123_456);
        assert_eq!(ShadowWord::decode(w.encode()), w);
    }

    #[test]
    fn max_values_roundtrip() {
        let p = PackedShadow {
            write_clock: MAX_WRITE_CLOCK,
            write_tid: MAX_TID,
            write_atomic: true,
            read_clock: MAX_READ_CLOCK,
            read_tid: MAX_TID,
            read_atomic: true,
        };
        let w = ShadowWord::Packed(p);
        assert_eq!(ShadowWord::decode(w.encode()), w);
    }

    #[test]
    fn fit_checks() {
        let ok = Epoch {
            tid: ThreadId::from_index(5),
            clock: 1000,
        };
        assert!(ShadowWord::write_epoch_fits(ok));
        assert!(ShadowWord::read_epoch_fits(ok));
        let big_clock = Epoch {
            tid: ThreadId::from_index(5),
            clock: MAX_WRITE_CLOCK + 1,
        };
        assert!(!ShadowWord::write_epoch_fits(big_clock));
        assert!(ShadowWord::read_epoch_fits(big_clock));
        let big_tid = Epoch {
            tid: ThreadId::from_index(64),
            clock: 1,
        };
        assert!(!ShadowWord::write_epoch_fits(big_tid));
        assert!(!ShadowWord::read_epoch_fits(big_tid));
    }

    #[test]
    fn tag_bit_distinguishes_representations() {
        let packed = ShadowWord::Packed(PackedShadow {
            write_clock: MAX_WRITE_CLOCK,
            write_tid: MAX_TID,
            write_atomic: true,
            read_clock: MAX_READ_CLOCK,
            read_tid: MAX_TID,
            read_atomic: true,
        })
        .encode();
        assert_eq!(packed & TAG_BIT, 0, "packed encoding must not set tag");
        let exp = ShadowWord::Expanded(u32::MAX).encode();
        assert_ne!(exp & TAG_BIT, 0);
    }
}
