//! Identifiers, memory orders, and event records (paper §6.2, Figure 10).
//!
//! Every *visible operation* in an execution — atomic load, store, RMW,
//! fence, or synchronization operation — is assigned a globally unique,
//! monotonically increasing [`SeqNum`]. Sequence numbers double as the
//! epochs stored in clock vectors, exactly as in the paper.

use std::fmt;

/// Identifier of a model thread. Thread 0 is the main thread.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(u32);

impl ThreadId {
    /// The main (initial) thread of every execution.
    pub const MAIN: ThreadId = ThreadId(0);

    /// Creates a thread id from a raw index.
    pub fn from_index(ix: usize) -> Self {
        ThreadId(ix as u32)
    }

    /// Index of this thread into per-thread tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw numeric id.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Global sequence number of an event. `SeqNum(0)` is reserved for
/// "no event"; real events start at 1.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SeqNum(pub u64);

impl SeqNum {
    /// The "no event" sentinel.
    pub const NONE: SeqNum = SeqNum(0);

    /// Whether this is a real event.
    pub fn is_real(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Debug for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Identifier of an atomic object (a memory location in the paper's
/// terminology). Allocated by [`crate::Execution::new_object`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u64);

impl fmt::Debug for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// C/C++11 memory orders, minus `consume` which — like the paper, all
/// compilers, and all prior tools — we strengthen to `acquire`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum MemOrder {
    /// `memory_order_relaxed`.
    Relaxed,
    /// `memory_order_acquire`.
    Acquire,
    /// `memory_order_release`.
    Release,
    /// `memory_order_acq_rel`.
    AcqRel,
    /// `memory_order_seq_cst`.
    SeqCst,
}

impl MemOrder {
    /// True for acquire, acq_rel, and seq_cst (paper §2 "acquire" category).
    pub fn is_acquire(self) -> bool {
        matches!(
            self,
            MemOrder::Acquire | MemOrder::AcqRel | MemOrder::SeqCst
        )
    }

    /// True for release, acq_rel, and seq_cst (paper §2 "release" category).
    pub fn is_release(self) -> bool {
        matches!(
            self,
            MemOrder::Release | MemOrder::AcqRel | MemOrder::SeqCst
        )
    }

    /// True only for seq_cst.
    pub fn is_seq_cst(self) -> bool {
        matches!(self, MemOrder::SeqCst)
    }
}

/// How a store entered the execution (paper §7.2, mixed access modes).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum StoreKind {
    /// A C/C++11 atomic store (or the store half of an RMW).
    Atomic,
    /// A non-atomic store to a location that atomics also access, e.g.
    /// `atomic_init` or memory reuse. Participates in modification order
    /// but never synchronizes.
    NonAtomic,
    /// A legacy `volatile` access converted to an atomic access with a
    /// user-configured memory order. Races on these are elided from
    /// reports (paper §8.2, Silo).
    Volatile,
}

/// Index of a store record in [`crate::Execution`]'s store arena.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct StoreIdx(pub u32);

impl StoreIdx {
    /// Index into the store arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a load record in [`crate::Execution`]'s load arena.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct LoadIdx(pub u32);

impl LoadIdx {
    /// Index into the load arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a fence record in [`crate::Execution`]'s fence arena.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct FenceIdx(pub u32);

impl FenceIdx {
    /// Index into the fence arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A reference to an access in a per-location history list
/// (`loads_stores(t, a)` in the paper's helper functions).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum AccessRef {
    /// A store or RMW.
    Store(StoreIdx),
    /// An atomic load.
    Load(LoadIdx),
}

use crate::clock::ClockVector;
use crate::mograph::NodeId;

/// A store or the store half of an RMW (`StoreElem` / `RMWElem`, Fig. 10).
#[derive(Clone, Debug)]
pub struct StoreRecord {
    /// Thread that performed the store.
    pub tid: ThreadId,
    /// Global sequence number of the store event.
    pub seq: SeqNum,
    /// Location written.
    pub obj: ObjId,
    /// Memory order of the store.
    pub order: MemOrder,
    /// Value written (all model atomics are at most 64 bits wide).
    pub value: u64,
    /// The reads-from clock vector `RF_s` (Fig. 9): the happens-before
    /// knowledge transferred to any acquire operation that reads from a
    /// release sequence this store belongs to.
    pub rf_cv: ClockVector,
    /// The storing thread's full happens-before clock at the time of the
    /// store (used for historical `hb` queries such as the seq_cst filter
    /// in `BuildMayReadFrom` and for pruning).
    pub hb_cv: ClockVector,
    /// Lazily created mo-graph node.
    pub node: Option<NodeId>,
    /// Whether this store is the write half of an RMW.
    pub is_rmw: bool,
    /// Sequence number of the RMW that read from this store, if any.
    /// At most one RMW may read from any given store (RMW atomicity).
    pub rmw_read_by: Option<SeqNum>,
    /// Provenance of the store (atomic / non-atomic / volatile).
    pub kind: StoreKind,
    /// Whether the store has been pruned from the execution graph (§7.1).
    pub pruned: bool,
}

impl StoreRecord {
    /// True if the store has seq_cst ordering.
    pub fn is_seq_cst(&self) -> bool {
        self.order.is_seq_cst()
    }
}

/// An atomic load (`LoadElem`, Fig. 10).
#[derive(Clone, Debug)]
pub struct LoadRecord {
    /// Thread that performed the load.
    pub tid: ThreadId,
    /// Global sequence number of the load event.
    pub seq: SeqNum,
    /// Location read.
    pub obj: ObjId,
    /// Memory order of the load.
    pub order: MemOrder,
    /// The store this load read from.
    pub rf: StoreIdx,
    /// Whether the load has been pruned (§7.1).
    pub pruned: bool,
}

/// A fence (`FenceElem`, Fig. 10). Only seq_cst fences need to be
/// remembered in history lists; acquire/release fences act instantly on
/// the per-thread fence clock vectors.
#[derive(Clone, Debug)]
pub struct FenceRecord {
    /// Thread that performed the fence.
    pub tid: ThreadId,
    /// Global sequence number of the fence event.
    pub seq: SeqNum,
    /// Memory order of the fence.
    pub order: MemOrder,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memorder_categories() {
        assert!(MemOrder::SeqCst.is_acquire());
        assert!(MemOrder::SeqCst.is_release());
        assert!(MemOrder::SeqCst.is_seq_cst());
        assert!(MemOrder::AcqRel.is_acquire());
        assert!(MemOrder::AcqRel.is_release());
        assert!(!MemOrder::AcqRel.is_seq_cst());
        assert!(MemOrder::Acquire.is_acquire());
        assert!(!MemOrder::Acquire.is_release());
        assert!(!MemOrder::Release.is_acquire());
        assert!(MemOrder::Release.is_release());
        assert!(!MemOrder::Relaxed.is_acquire());
        assert!(!MemOrder::Relaxed.is_release());
    }

    #[test]
    fn thread_id_roundtrip() {
        let t = ThreadId::from_index(7);
        assert_eq!(t.index(), 7);
        assert_eq!(t.as_u32(), 7);
        assert_eq!(format!("{t}"), "T7");
        assert_eq!(ThreadId::MAIN.index(), 0);
    }

    #[test]
    fn seqnum_sentinel() {
        assert!(!SeqNum::NONE.is_real());
        assert!(SeqNum(1).is_real());
        assert!(SeqNum(1) < SeqNum(2));
    }
}
