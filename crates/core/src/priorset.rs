//! `ReadPriorSet` / `WritePriorSet` (paper Fig. 13) and the
//! rollback-free feasibility check of §4.3.
//!
//! A *prior set* is the set of stores that must become
//! modification-ordered **before** a given store. For a new store `S`
//! the edges always point at the brand-new node, so no cycle can arise
//! (§4.3, "Atomic Store"). For a load `L` that wants to read from
//! candidate `X0`, the edges point at `X0`, so a cycle arises exactly
//! when some prior-set member is already reachable *from* `X0` — which
//! Theorem 1 reduces to clock-vector comparisons.
//!
//! Lines 6–8 of `ReadPriorSet` implement statements 5, 4, and 6 of
//! C++11 §29.3 (seq_cst fence constraints); line 9 implements
//! write-read and read-read coherence.

use crate::event::{AccessRef, FenceIdx, MemOrder, ObjId, SeqNum, StoreIdx, ThreadId};
use crate::exec::Execution;
use crate::location::PerThreadLoc;

impl Execution {
    /// `last_sc_fence(t)`.
    fn last_sc_fence(&self, t: usize) -> Option<FenceIdx> {
        self.threads.get(t)?.sc_fences.last().copied()
    }

    fn fence_seq(&self, f: FenceIdx) -> SeqNum {
        self.fences[f.index()].seq
    }

    fn store_seq(&self, s: StoreIdx) -> SeqNum {
        self.stores[s.index()].seq
    }

    fn access_seq(&self, a: AccessRef) -> SeqNum {
        match a {
            AccessRef::Store(s) => self.stores[s.index()].seq,
            AccessRef::Load(l) => self.loads[l.index()].seq,
        }
    }

    /// `get_write(A)`: a store maps to itself, a load to the store it
    /// read from.
    fn get_write(&self, a: AccessRef) -> StoreIdx {
        match a {
            AccessRef::Store(s) => s,
            AccessRef::Load(l) => self.loads[l.index()].rf,
        }
    }

    /// `last({F ∈ sc_fences(u) | F sc→ bound})`: the SC order coincides
    /// with execution order, so this is a partition by sequence number.
    fn last_sc_fence_before(&self, u: usize, bound: SeqNum) -> Option<FenceIdx> {
        let fences = &self.threads.get(u)?.sc_fences;
        let pos = fences.partition_point(|&f| self.fences[f.index()].seq < bound);
        if pos > 0 {
            Some(fences[pos - 1])
        } else {
            None
        }
    }

    /// Last store in `list` with sequence number strictly below `bound`.
    fn last_store_before(&self, list: &[StoreIdx], bound: SeqNum) -> Option<StoreIdx> {
        let pos = list.partition_point(|&s| self.store_seq(s) < bound);
        if pos > 0 {
            Some(list[pos - 1])
        } else {
            None
        }
    }

    /// Last access in `list` with sequence number ≤ `bound` (used for
    /// the `X hb→ ·` term, where the bound is a clock-vector slot).
    fn last_access_at_or_before(&self, list: &[AccessRef], bound: u64) -> Option<AccessRef> {
        let pos = list.partition_point(|&a| self.access_seq(a).0 <= bound);
        if pos > 0 {
            Some(list[pos - 1])
        } else {
            None
        }
    }

    /// Computes `last({S1, S2, S3, S4})` for one thread `u` and maps it
    /// through `get_write`. Shared by both prior-set procedures.
    ///
    /// * `u` — the thread whose history is inspected;
    /// * `h` — `u`'s history at the location;
    /// * `sc_gate` — `F_t`-based store bound, active only when the
    ///   operation itself is seq_cst (S1);
    /// * `f_op` — the operating thread's last sc fence (for S2);
    /// * `f_b` — last sc fence of `u` sc-before `f_op` (for S3);
    /// * `hb_bound` — the operating thread's clock slot for `u` (S4).
    #[allow(clippy::too_many_arguments)]
    fn prior_for_thread(
        &self,
        h: &PerThreadLoc,
        is_sc_op: bool,
        f_t: Option<FenceIdx>,
        f_op: Option<FenceIdx>,
        f_b: Option<FenceIdx>,
        hb_bound: u64,
    ) -> Option<StoreIdx> {
        let mut best: Option<(SeqNum, AccessRef)> = None;
        let consider_store =
            |this: &Self, s: Option<StoreIdx>, best: &mut Option<(SeqNum, AccessRef)>| {
                if let Some(s) = s {
                    let seq = this.store_seq(s);
                    if best.is_none_or(|(b, _)| seq > b) {
                        *best = Some((seq, AccessRef::Store(s)));
                    }
                }
            };
        // S1: last store sb-before u's own last sc fence (only when the
        // operation is seq_cst). C++11 §29.3p4.
        if is_sc_op {
            if let Some(ft) = f_t {
                let s1 = self.last_store_before(&h.stores, self.fence_seq(ft));
                consider_store(self, s1, &mut best);
            }
        }
        // S2: last seq_cst store sc-before the operating thread's last
        // sc fence. §29.3p5.
        if let Some(fl) = f_op {
            let s2 = self.last_store_before(&h.sc_stores, self.fence_seq(fl));
            consider_store(self, s2, &mut best);
        }
        // S3: last store sb-before u's last sc fence that is itself
        // sc-before the operating thread's last sc fence. §29.3p6.
        if let Some(fb) = f_b {
            let s3 = self.last_store_before(&h.stores, self.fence_seq(fb));
            consider_store(self, s3, &mut best);
        }
        // S4: last access that happens-before the operation — the
        // write-read / read-read coherence term.
        if let Some(a) = self.last_access_at_or_before(&h.accesses, hb_bound) {
            let seq = self.access_seq(a);
            if best.is_none_or(|(b, _)| seq > b) {
                best = Some((seq, a));
            }
        }
        best.map(|(_, a)| self.get_write(a))
    }

    /// `WritePriorSet(S)` (Fig. 13): stores that must be mo-before a
    /// prospective store by `t` at `obj`. Computed *before* the store is
    /// inserted into any history list. Fills `priorset` (cleared first)
    /// instead of allocating — the hot path threads
    /// [`Execution::pset_buf`] through here.
    pub(crate) fn write_prior_set_into(
        &self,
        t: ThreadId,
        obj: ObjId,
        order: MemOrder,
        priorset: &mut Vec<StoreIdx>,
    ) {
        priorset.clear();
        let Some(loc) = self.loc(obj) else {
            return;
        };
        let f_s = self.last_sc_fence(t.index());
        let is_sc_store = order.is_seq_cst();
        if is_sc_store {
            // Seq-cst / MO consistency (Fig. 5): the previous sc store at
            // this location precedes S in mo.
            if let Some(last_sc) = loc.last_sc_store {
                priorset.push(last_sc);
            }
        }
        let f_s_seq = f_s.map(|f| self.fence_seq(f));
        for (uix, h) in loc.threads() {
            let f_t = self.last_sc_fence(uix);
            let f_b = f_s_seq.and_then(|b| self.last_sc_fence_before(uix, b));
            let hb_bound = self.threads[t.index()].cv.get(ThreadId::from_index(uix));
            if let Some(a) = self.prior_for_thread(h, is_sc_store, f_t, f_s, f_b, hb_bound) {
                if !priorset.contains(&a) {
                    priorset.push(a);
                }
            }
        }
    }

    /// The candidate-independent half of `ReadPriorSet`: computes the
    /// per-thread `last({S1, S2, S3, S4})` bests (mapped through
    /// `get_write`) for a load by `t` at `obj`. The result depends only
    /// on `(t, obj, order)` — never on the read-from candidate — so
    /// [`Execution::feasible_read_candidates_into`] hoists it out of
    /// the per-candidate loop. Bests are pushed in history order,
    /// duplicates included; [`Execution::read_prior_set_from_bests`]
    /// applies the per-candidate filtering.
    pub(crate) fn read_prior_bests_into(
        &self,
        t: ThreadId,
        obj: ObjId,
        order: MemOrder,
        bests: &mut Vec<StoreIdx>,
    ) {
        bests.clear();
        let is_sc_load = order.is_seq_cst();
        let f_l = self.last_sc_fence(t.index());
        let f_l_seq = f_l.map(|f| self.fence_seq(f));
        if let Some(loc) = self.loc(obj) {
            for (uix, h) in loc.threads() {
                let f_t = self.last_sc_fence(uix);
                let f_b = f_l_seq.and_then(|b| self.last_sc_fence_before(uix, b));
                let hb_bound = self.threads[t.index()].cv.get(ThreadId::from_index(uix));
                if let Some(a) = self.prior_for_thread(h, is_sc_load, f_t, f_l, f_b, hb_bound) {
                    bests.push(a);
                }
            }
        }
    }

    /// The candidate-dependent half of `ReadPriorSet` plus the §4.3
    /// feasibility verdict: assembles `cand`'s prior set from hoisted
    /// `bests` and returns `false` — with `priorset` emptied — when any
    /// member is already reachable from `cand` in the mo-graph (a cycle
    /// would form, so the candidate must be discarded).
    pub(crate) fn read_prior_set_from_bests(
        &mut self,
        bests: &[StoreIdx],
        cand: StoreIdx,
        priorset: &mut Vec<StoreIdx>,
    ) -> bool {
        priorset.clear();
        for &a in bests {
            if a != cand && !priorset.contains(&a) {
                priorset.push(a);
            }
        }
        // Feasibility: would any new edge `e → cand` close a cycle?
        // `AddEdge` redirects an edge whose source feeds an RMW past the
        // RMW chain (RMW atomicity), so the edge that will actually be
        // inserted starts at the chain end — reachability must be
        // checked from the candidate to *that* node. Theorem 1 lets us
        // answer with clock-vector comparisons.
        let n_cand = self.node_of(cand);
        for i in 0..priorset.len() {
            let e = priorset[i];
            let n_e = self.node_of(e);
            let n_end = self.graph.chain_end(n_e, n_cand);
            if n_end == n_cand {
                // The chain runs straight into the candidate: the only
                // edge added is the existing rmw-immediacy edge.
                continue;
            }
            if self.graph.reaches(n_cand, n_end) {
                priorset.clear();
                return false;
            }
        }
        true
    }

    /// `ReadPriorSet(L, S)` (Fig. 13): the stores that would gain mo
    /// edges into candidate `cand` if a load by `t` read from it, plus
    /// the §4.3 feasibility verdict. Fills `priorset` (cleared first)
    /// and returns `false` — with `priorset` emptied — when any member
    /// is already reachable from `cand` in the mo-graph. Single-shot
    /// composition of the two halves above.
    pub(crate) fn read_prior_set_into(
        &mut self,
        t: ThreadId,
        obj: ObjId,
        order: MemOrder,
        cand: StoreIdx,
        priorset: &mut Vec<StoreIdx>,
    ) -> bool {
        let mut bests = std::mem::take(&mut self.bests_buf);
        self.read_prior_bests_into(t, obj, order, &mut bests);
        let ok = self.read_prior_set_from_bests(&bests, cand, priorset);
        bests.clear();
        self.bests_buf = bests;
        ok
    }

    /// Additional feasibility for RMWs (§4.3 "Atomic RMWs"): the RMW's
    /// *store half* adds edges `e → rmw` (seq_cst/MO consistency,
    /// seq_cst fence constraints, coherence), while RMW atomicity
    /// migrates every mo-successor of `cand` onto the new RMW node. A
    /// candidate is therefore infeasible when any such `e` is already
    /// reachable *from* `cand`: the edge `e → rmw` would close a cycle
    /// through the migrated successors (e.g. an SC RMW reading a store
    /// that is modification-ordered before the last SC store).
    pub(crate) fn check_rmw_store_feasible(
        &mut self,
        t: ThreadId,
        obj: ObjId,
        order: MemOrder,
        cand: StoreIdx,
    ) -> bool {
        let mut wpset = std::mem::take(&mut self.pset_buf);
        self.rmw_write_prior_set_into(t, obj, order, &mut wpset);
        let feasible = self.rmw_store_feasible_from_wpset(&wpset, cand);
        wpset.clear();
        self.pset_buf = wpset;
        feasible
    }

    /// The candidate-independent half of the RMW store-half check: the
    /// write prior set the RMW's own store will add edges from. The
    /// set is computed with pre-acquire clocks — the post-acquire
    /// additions flow through the candidate's release sequence and are
    /// provably mo-≤ the candidate, so they cannot close a cycle.
    /// Depends only on `(t, obj, order)`, so
    /// [`Execution::feasible_read_candidates_into`] hoists it.
    pub(crate) fn rmw_write_prior_set_into(
        &self,
        t: ThreadId,
        obj: ObjId,
        order: MemOrder,
        wpset: &mut Vec<StoreIdx>,
    ) {
        self.write_prior_set_into(t, obj, order, wpset);
        // Restricted policies additionally chain the new store after the
        // execution-order-latest store; an RMW reading anything older is
        // inconsistent with a total execution-order mo (real tsan
        // executes RMWs in place on the latest value).
        if self.policy().restricts_mo() {
            if let Some(prev) = self.loc(obj).and_then(|l| l.last_store_exec) {
                if !wpset.contains(&prev) {
                    wpset.push(prev);
                }
            }
        }
    }

    /// The candidate-dependent half: is reading `cand` consistent with
    /// the hoisted write prior set, i.e. is no member already
    /// reachable *from* `cand`?
    pub(crate) fn rmw_store_feasible_from_wpset(
        &mut self,
        wpset: &[StoreIdx],
        cand: StoreIdx,
    ) -> bool {
        let n_cand = self.node_of(cand);
        for &e in wpset {
            if e == cand {
                continue;
            }
            let n_e = self.node_of(e);
            let n_end = self.graph.chain_end(n_e, n_cand);
            if n_end != n_cand && self.graph.reaches(n_cand, n_end) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use crate::event::{MemOrder, StoreKind};
    use crate::exec::Execution;
    use crate::policy::Policy;
    use crate::ThreadId;

    /// Write-write coherence: two stores by one thread are mo-ordered,
    /// so a third thread that saw the second can never read the first.
    #[test]
    fn coww_then_cowr_rejects_stale_read() {
        let mut e = Execution::new(Policy::C11Tester);
        let main = ThreadId::MAIN;
        let x = e.new_object();
        let s1 = e.atomic_store(main, x, MemOrder::Relaxed, 1, StoreKind::Atomic);
        let s2 = e.atomic_store(main, x, MemOrder::Release, 2, StoreKind::Atomic);
        let t1 = e.fork(main); // t1 knows both stores via asw
        assert!(e.check_read_feasible(t1, x, MemOrder::Relaxed, s2));
        assert!(
            !e.check_read_feasible(t1, x, MemOrder::Relaxed, s1),
            "reading s1 would order s2 mo-before s1, a cycle with CoWW"
        );
        // And the pre-filtered candidate API agrees.
        let feas = e.feasible_read_candidates(t1, x, MemOrder::Relaxed, false);
        assert_eq!(feas, vec![s2]);
    }

    /// Read-read coherence: once a thread reads the newer store, it can
    /// no longer read the older one.
    #[test]
    fn corr_rejects_backwards_read() {
        let mut e = Execution::new(Policy::C11Tester);
        let main = ThreadId::MAIN;
        let x = e.new_object();
        let t1 = e.fork(main);
        let t2 = e.fork(main);
        let s1 = e.atomic_store(t1, x, MemOrder::Relaxed, 1, StoreKind::Atomic);
        let s2 = e.atomic_store(t1, x, MemOrder::Relaxed, 2, StoreKind::Atomic);
        // t2 has no hb knowledge of either store: both feasible.
        assert!(e.check_read_feasible(t2, x, MemOrder::Relaxed, s1));
        assert!(e.check_read_feasible(t2, x, MemOrder::Relaxed, s2));
        let v = e.commit_load(t2, x, MemOrder::Relaxed, s2);
        assert_eq!(v, 2);
        // After reading s2, reading s1 would violate CoRR.
        assert!(!e.check_read_feasible(t2, x, MemOrder::Relaxed, s1));
    }

    /// The restricted tsan11 policy chains mo in execution order, so a
    /// cross-thread mo "inversion" read is rejected there but allowed
    /// under the full C11Tester fragment.
    #[test]
    fn policy_difference_on_mo_inversion() {
        // T1 stores x=1; T2 stores x=2 later in execution order;
        // T1 (having seen nothing of T2) then reads x.
        // C11Tester: may read 1 or 2. tsan11: may also read 1 — but if a
        // third thread already read 2 then 1... the simplest visible
        // difference: T1 reading its own store 1 *after* T2's store is
        // fine in both; the divergence shows once mo would have to
        // invert execution order. Here: T3 reads 2 then T1's 1 is
        // forbidden under tsan11 (2 is mo-after 1 by exec order; CoRR
        // would need 1 mo-after 2 under C11Tester it's feasible).
        for policy in [Policy::C11Tester, Policy::Tsan11] {
            let mut e = Execution::new(policy);
            let main = ThreadId::MAIN;
            let x = e.new_object();
            let t1 = e.fork(main);
            let t2 = e.fork(main);
            let t3 = e.fork(main);
            let s1 = e.atomic_store(t1, x, MemOrder::Relaxed, 1, StoreKind::Atomic);
            let s2 = e.atomic_store(t2, x, MemOrder::Relaxed, 2, StoreKind::Atomic);
            // t3 reads 2 first...
            assert!(e.check_read_feasible(t3, x, MemOrder::Relaxed, s2));
            e.commit_load(t3, x, MemOrder::Relaxed, s2);
            // ...then tries to read 1. Under C11Tester, mo(s2) → mo(s1)
            // is still satisfiable (nothing orders them); under tsan11
            // the execution-order chain already fixed s1 mo→ s2.
            let feasible = e.check_read_feasible(t3, x, MemOrder::Relaxed, s1);
            match policy {
                Policy::C11Tester => assert!(feasible, "full fragment allows mo inversion"),
                _ => assert!(!feasible, "restricted fragment forbids mo inversion"),
            }
        }
    }

    /// Seq_cst fences order writes across threads (§29.3p5): a store
    /// sb-before an sc fence is mo-before a store sb-after another sc
    /// fence that follows it in SC order.
    #[test]
    fn sc_fences_constrain_mo() {
        let mut e = Execution::new(Policy::C11Tester);
        let main = ThreadId::MAIN;
        let x = e.new_object();
        let t1 = e.fork(main);
        let t2 = e.fork(main);
        let s1 = e.atomic_store(t1, x, MemOrder::Relaxed, 1, StoreKind::Atomic);
        e.fence(t1, MemOrder::SeqCst);
        e.fence(t2, MemOrder::SeqCst);
        let _s2 = e.atomic_store(t2, x, MemOrder::Relaxed, 2, StoreKind::Atomic);
        // WritePriorSet for s2 must have included s1 (S3 rule), so
        // s1 mo→ s2 and a reader that saw s2 cannot read s1.
        let n1 = e.node_of(s1);
        let t3 = e.fork(main);
        let cands = e.feasible_read_candidates(t3, x, MemOrder::Relaxed, false);
        // Reading s1 remains feasible for t3 (no CoWR yet)...
        assert!(cands.contains(&s1));
        // ...but the mo edge exists:
        let s2_node = {
            let stores = e.stores_at(x);
            let s2 = stores
                .iter()
                .copied()
                .find(|&s| e.store_value(s) == 2)
                .expect("store of 2 exists");
            e.node_of(s2)
        };
        assert!(
            e.mograph().reaches(n1, s2_node),
            "sc fences force s1 mo→ s2"
        );
    }
}
