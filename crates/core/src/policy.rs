//! Memory-model fragments ("policies") — C11Tester vs. the tsan11 family.
//!
//! The paper's comparison hinges on one restriction (§1.1, §2.2): tsan11
//! and tsan11rec require `hb ∪ sc ∪ rf ∪ mo` to be acyclic, which forces
//! the modification order of every location to embed in the order the
//! tool executed the stores. C11Tester only requires `hb ∪ sc ∪ rf`
//! acyclic and keeps `mo` constraint-based, admitting executions (e.g.
//! ARM-observable ones) the tsan11 family cannot produce — and therefore
//! bugs they cannot find.
//!
//! We realize the restriction *inside the same engine*: under the
//! restricted policies, every new store receives an mo edge from the
//! previous store (in execution order) to the same location. That makes
//! `mo` total and execution-consistent, and the ordinary feasibility
//! check then rejects exactly the weak reads tsan11 forbids.

use std::fmt;

/// Which fragment of the C/C++ memory model the engine enforces.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum Policy {
    /// The paper's fragment: `hb ∪ sc ∪ rf` acyclic, constraint-based
    /// modification order (§2.2).
    #[default]
    C11Tester,
    /// tsan11's fragment: additionally `mo` embeds in execution order
    /// (`hb ∪ sc ∪ rf ∪ mo` acyclic). Combined with an uncontrolled,
    /// bursty scheduler by the harness layer.
    Tsan11,
    /// tsan11rec's fragment: same restricted memory model as tsan11,
    /// combined with controlled scheduling by the harness layer.
    Tsan11Rec,
}

impl Policy {
    /// True if the policy forces `mo` to embed in execution order.
    pub fn restricts_mo(self) -> bool {
        matches!(self, Policy::Tsan11 | Policy::Tsan11Rec)
    }

    /// True if the policy conservatively strengthens every atomic RMW
    /// to acq_rel, as the ThreadSanitizer family does for its location
    /// sync clocks. This coarser synchronization is a key reason the
    /// tsan11 tools miss the paper's §8.1 injected bugs: a buggy
    /// *relaxed* CAS/fetch_add still synchronizes under their model, so
    /// the downstream data race never materializes.
    pub fn strengthens_rmw(self) -> bool {
        matches!(self, Policy::Tsan11 | Policy::Tsan11Rec)
    }

    /// The effective order of an RMW under this policy.
    pub fn effective_rmw_order(self, order: crate::MemOrder) -> crate::MemOrder {
        use crate::MemOrder;
        if self.strengthens_rmw() && !matches!(order, MemOrder::SeqCst) {
            MemOrder::AcqRel
        } else {
            order
        }
    }

    /// True if the harness should sequentialize scheduling decisions at
    /// every visible operation (C11Tester and tsan11rec control the
    /// schedule; tsan11 leaves it to the OS, which the harness emulates
    /// with long random bursts).
    pub fn controls_schedule(self) -> bool {
        !matches!(self, Policy::Tsan11)
    }

    /// Short human-readable name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Policy::C11Tester => "C11Tester",
            Policy::Tsan11 => "tsan11",
            Policy::Tsan11Rec => "tsan11rec",
        }
    }

    /// All policies, in the order the paper's tables list them.
    pub fn all() -> [Policy; 3] {
        [Policy::C11Tester, Policy::Tsan11Rec, Policy::Tsan11]
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restriction_flags() {
        assert!(!Policy::C11Tester.restricts_mo());
        assert!(Policy::Tsan11.restricts_mo());
        assert!(Policy::Tsan11Rec.restricts_mo());
        assert!(Policy::C11Tester.controls_schedule());
        assert!(Policy::Tsan11Rec.controls_schedule());
        assert!(!Policy::Tsan11.controls_schedule());
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Policy::C11Tester.to_string(), "C11Tester");
        assert_eq!(Policy::Tsan11.to_string(), "tsan11");
        assert_eq!(Policy::Tsan11Rec.to_string(), "tsan11rec");
        assert_eq!(Policy::default(), Policy::C11Tester);
    }
}
