//! Per-location access histories (`ALocs` / `ALocInfo` of Fig. 10).
//!
//! C11Tester keeps, for each atomic location, a *per-thread* list of the
//! atomic accesses performed there (paper §4.1: "C11Tester maintains a
//! per-thread list of atomic memory accesses to each memory location").
//! All lists are sorted by sequence number because events are appended
//! as they execute, which lets the `last(...)` helper functions of
//! Fig. 12/13 run as binary searches.

use crate::event::{AccessRef, StoreIdx};

/// History of one thread's accesses to one location.
#[derive(Clone, Debug, Default)]
pub struct PerThreadLoc {
    /// `stores(t, a)`: stores and RMWs by this thread, in seq order.
    pub stores: Vec<StoreIdx>,
    /// `loads_stores(t, a)`: loads, stores, and RMWs, in seq order.
    pub accesses: Vec<AccessRef>,
    /// `sc_stores(t, a)`: the seq_cst subset of `stores`, in seq order.
    pub sc_stores: Vec<StoreIdx>,
}

impl PerThreadLoc {
    /// True if the thread never touched the location.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Empties the history lists without releasing their storage
    /// (execution-state recycling).
    fn reset(&mut self) {
        self.stores.clear();
        self.accesses.clear();
        self.sc_stores.clear();
    }
}

/// History of all accesses to one atomic location.
#[derive(Clone, Debug, Default)]
pub struct LocationState {
    /// Per-thread histories, indexed by `ThreadId::index()`.
    pub per_thread: Vec<PerThreadLoc>,
    /// `last_sc_store(a, ·)`: the most recent seq_cst store at this
    /// location (the SC order coincides with execution order because
    /// visible operations are sequentialized).
    pub last_sc_store: Option<StoreIdx>,
    /// The most recent store in *execution* order regardless of thread —
    /// used by the restricted tsan11/tsan11rec policies (which require
    /// `mo` to embed in execution order) and by mixed-mode handling.
    pub last_store_exec: Option<StoreIdx>,
    /// Whether the last write to this location was a non-atomic store
    /// (paper §7.2 — the shadow-word bit that triggers special handling
    /// when a subsequent atomic access arrives).
    pub last_write_nonatomic: bool,
    /// Count of pruned store records formerly at this location.
    pub pruned_stores: u64,
}

impl LocationState {
    /// Mutable access to thread `ix`'s history, growing the table.
    pub fn thread_mut(&mut self, ix: usize) -> &mut PerThreadLoc {
        if self.per_thread.len() <= ix {
            self.per_thread.resize_with(ix + 1, PerThreadLoc::default);
        }
        &mut self.per_thread[ix]
    }

    /// Shared access to thread `ix`'s history, if it exists.
    pub fn thread(&self, ix: usize) -> Option<&PerThreadLoc> {
        self.per_thread.get(ix)
    }

    /// Iterates over `(thread index, history)` pairs that have activity.
    pub fn threads(&self) -> impl Iterator<Item = (usize, &PerThreadLoc)> {
        self.per_thread
            .iter()
            .enumerate()
            .filter(|(_, h)| !h.is_empty())
    }

    /// Total number of live store records across all threads.
    pub fn store_count(&self) -> usize {
        self.per_thread.iter().map(|h| h.stores.len()).sum()
    }

    /// Resets the location to its never-accessed state while retaining
    /// every history list's capacity (execution-state recycling). A
    /// reset location is indistinguishable from a fresh
    /// `LocationState::default()` through the public API: the emptied
    /// per-thread slots are skipped by [`LocationState::threads`].
    pub fn reset(&mut self) {
        for h in &mut self.per_thread {
            h.reset();
        }
        self.last_sc_store = None;
        self.last_store_exec = None;
        self.last_write_nonatomic = false;
        self.pruned_stores = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LoadIdx;

    #[test]
    fn thread_table_grows_on_demand() {
        let mut loc = LocationState::default();
        loc.thread_mut(3).stores.push(StoreIdx(0));
        assert_eq!(loc.per_thread.len(), 4);
        assert!(loc.thread(0).is_some());
        assert!(loc.thread(0).expect("slot 0 exists").is_empty());
        assert!(loc.thread(9).is_none());
        assert_eq!(loc.store_count(), 1);
    }

    #[test]
    fn threads_iter_skips_idle_threads() {
        let mut loc = LocationState::default();
        loc.thread_mut(2).accesses.push(AccessRef::Load(LoadIdx(0)));
        let active: Vec<usize> = loc.threads().map(|(ix, _)| ix).collect();
        assert_eq!(active, vec![2]);
    }
}
