//! # c11tester-core
//!
//! The memory-model engine of **c11tester-rs**, a Rust reproduction of
//! *C11Tester: A Race Detector for C/C++ Atomics* (Luo & Demsky,
//! ASPLOS 2021).
//!
//! This crate is the paper's primary contribution in library form: an
//! operational model of (a fragment of) the C/C++11 memory model that
//!
//! * keeps the **modification order constraint-based** — decisions about
//!   `mo` are only ever *implied* by program-visible choices such as
//!   which store a load reads from (§4);
//! * answers mo-graph reachability queries with **clock vectors**
//!   instead of graph traversals (§4.2, Theorem 1), scaling to millions
//!   of stores;
//! * never needs **rollback**: before an `rf` edge is established, the
//!   prior-set check (§4.3, Fig. 13) proves the implied edges keep the
//!   graph acyclic;
//! * supports the **larger fragment** `hb ∪ sc ∪ rf` acyclic (out-of-
//!   thin-air excluded, `mo` free to disagree with execution order),
//!   plus the restricted tsan11/tsan11rec fragments for baseline
//!   comparison ([`Policy`]);
//! * **prunes** the execution graph conservatively or aggressively so
//!   memory stays bounded on long runs (§7.1).
//!
//! The crate is deliberately runtime-agnostic: it is a deterministic
//! state machine driven one visible operation at a time. Thread control
//! lives in `c11tester-runtime`, race detection in `c11tester-race`,
//! and the user-facing API in `c11tester`.
//!
//! ## Example
//!
//! Drive the message-passing litmus test by hand and observe that an
//! acquire load that reads the release store synchronizes:
//!
//! ```
//! use c11tester_core::{Execution, MemOrder, Policy, StoreKind, ThreadId};
//!
//! let mut e = Execution::new(Policy::C11Tester);
//! let main = ThreadId::MAIN;
//! let (data, flag) = (e.new_object(), e.new_object());
//! e.atomic_store(main, data, MemOrder::Relaxed, 0, StoreKind::Atomic);
//! e.atomic_store(main, flag, MemOrder::Relaxed, 0, StoreKind::Atomic);
//! let producer = e.fork(main);
//! let consumer = e.fork(main);
//! let s_data = e.atomic_store(producer, data, MemOrder::Relaxed, 42, StoreKind::Atomic);
//! let s_flag = e.atomic_store(producer, flag, MemOrder::Release, 1, StoreKind::Atomic);
//! // The consumer's acquire load reads the release store...
//! assert!(e.check_read_feasible(consumer, flag, MemOrder::Acquire, s_flag));
//! assert_eq!(e.commit_load(consumer, flag, MemOrder::Acquire, s_flag), 1);
//! // ...so the stale data value is no longer readable:
//! let feasible = e.feasible_read_candidates(consumer, data, MemOrder::Relaxed, false);
//! assert_eq!(feasible, vec![s_data]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod clock;
pub mod event;
pub mod exec;
pub mod location;
pub mod mograph;
pub mod policy;
pub mod priorset;
pub mod prune;
pub mod readfrom;
pub mod stats;

pub use clock::{ClockVector, INLINE_SLOTS};
pub use event::{
    AccessRef, FenceIdx, LoadIdx, LoadRecord, MemOrder, ObjId, SeqNum, StoreIdx, StoreKind,
    StoreRecord, ThreadId,
};
pub use exec::{Execution, ThreadState};
pub use mograph::{MoGraph, MoGraphPerfStats, MoGraphStats, NodeId};
pub use policy::Policy;
pub use prune::{PruneConfig, PruneMode};
pub use stats::{AllocStats, ExecStats};

// Re-exported so the layers above can record phases and consume trace
// events and coverage signatures without naming the telemetry crate
// directly.
pub use c11tester_telemetry::{
    coverage_enabled, set_coverage, CaptureSink, ExecCoverage, Phase, PhaseProfile, TraceEvent,
    TraceKey, TraceKind, TraceSink, FENCE_OBJ,
};
