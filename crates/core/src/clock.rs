//! Clock vectors (paper §4.2 and §6.1).
//!
//! The same data structure serves two distinct purposes in C11Tester,
//! and the paper is explicit that these must not be conflated:
//!
//! * **Happens-before clock vectors** (`C_t`, `F^rel_t`, `F^acq_t`,
//!   `RF_s` of Fig. 9) track the happens-before relation.
//! * **Mo-graph clock vectors** (§4.2) encode *reachability between
//!   nodes of the modification-order graph* — a completely different
//!   partial order. Theorem 1 proves `CV_A ≤ CV_B ⇔ B reachable from A`
//!   for same-location nodes.
//!
//! A slot holds the sequence number of an event; slot `t` of a thread
//! clock is always that thread's most recent event. Missing slots read
//! as 0, so vectors of different lengths compare correctly.

use crate::event::{SeqNum, ThreadId};
use std::fmt;

/// A vector of per-thread event sequence numbers.
///
/// Supports the three operators the paper defines: union (`∪`, pointwise
/// max), comparison (`≤`, pointwise), and — for the conservative pruning
/// mode of §7.1 — intersection (`∩`, pointwise min).
#[derive(Clone, PartialEq, Eq, Default)]
pub struct ClockVector {
    slots: Vec<u64>,
}

impl ClockVector {
    /// Creates an empty (all-zero) clock vector.
    pub fn new() -> Self {
        ClockVector { slots: Vec::new() }
    }

    /// Creates the initial mo-graph clock vector `⊥CV_A` for a store by
    /// `tid` with sequence number `seq`: all slots zero except the
    /// storer's own, which holds `seq` (paper §4.2).
    pub fn bottom_for(tid: ThreadId, seq: SeqNum) -> Self {
        let mut cv = ClockVector::new();
        cv.set(tid, seq.0);
        cv
    }

    /// Reads slot `t` (0 if the vector is shorter than `t`).
    pub fn get(&self, t: ThreadId) -> u64 {
        self.slots.get(t.index()).copied().unwrap_or(0)
    }

    /// Sets slot `t`, growing the vector as needed.
    pub fn set(&mut self, t: ThreadId, v: u64) {
        let ix = t.index();
        if self.slots.len() <= ix {
            self.slots.resize(ix + 1, 0);
        }
        self.slots[ix] = v;
    }

    /// Pointwise-max merge (`∪`). Returns `true` iff `self` changed —
    /// the `Merge` procedure of Fig. 6 needs exactly this signal to
    /// drive its propagation worklist.
    pub fn union_with(&mut self, other: &ClockVector) -> bool {
        let mut changed = false;
        if self.slots.len() < other.slots.len() {
            self.slots.resize(other.slots.len(), 0);
        }
        for (ix, &o) in other.slots.iter().enumerate() {
            if o > self.slots[ix] {
                self.slots[ix] = o;
                changed = true;
            }
        }
        changed
    }

    /// Pointwise `≤` comparison. Slots missing on either side read as 0.
    pub fn leq(&self, other: &ClockVector) -> bool {
        for (ix, &s) in self.slots.iter().enumerate() {
            if s > other.slots.get(ix).copied().unwrap_or(0) {
                return false;
            }
        }
        true
    }

    /// Pointwise-min intersection (`∩`), used to compute `CV_min` for
    /// the conservative pruning mode (§7.1). Slots missing on either
    /// side read as 0, so the result only keeps entries known to both.
    pub fn intersect(&self, other: &ClockVector) -> ClockVector {
        let n = self.slots.len().min(other.slots.len());
        let slots = (0..n)
            .map(|ix| self.slots[ix].min(other.slots[ix]))
            .collect();
        ClockVector { slots }
    }

    /// True if every slot is zero.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|&s| s == 0)
    }

    /// Number of slots physically present.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Releases the backing storage (used when pruning tombstones a
    /// record but keeps the arena slot).
    pub fn clear(&mut self) {
        self.slots = Vec::new();
    }

    /// Iterates over `(thread, seq)` pairs with non-zero entries.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (ThreadId, u64)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0)
            .map(|(ix, &v)| (ThreadId::from_index(ix), v))
    }
}

impl fmt::Debug for ClockVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CV{{")?;
        let mut first = true;
        for (t, v) in self.iter_nonzero() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{t}:{v}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ix: usize) -> ThreadId {
        ThreadId::from_index(ix)
    }

    #[test]
    fn empty_is_bottom() {
        let cv = ClockVector::new();
        assert!(cv.is_empty());
        assert_eq!(cv.get(t(5)), 0);
        assert!(cv.leq(&ClockVector::new()));
    }

    #[test]
    fn bottom_for_sets_own_slot() {
        let cv = ClockVector::bottom_for(t(2), SeqNum(9));
        assert_eq!(cv.get(t(2)), 9);
        assert_eq!(cv.get(t(0)), 0);
        assert_eq!(cv.get(t(3)), 0);
        assert!(!cv.is_empty());
    }

    #[test]
    fn union_is_pointwise_max_and_reports_change() {
        let mut a = ClockVector::new();
        a.set(t(0), 3);
        a.set(t(1), 7);
        let mut b = ClockVector::new();
        b.set(t(0), 5);
        b.set(t(2), 1);
        assert!(a.union_with(&b));
        assert_eq!(a.get(t(0)), 5);
        assert_eq!(a.get(t(1)), 7);
        assert_eq!(a.get(t(2)), 1);
        // Merging something already dominated reports no change.
        assert!(!a.union_with(&b));
    }

    #[test]
    fn leq_handles_length_mismatch() {
        let mut short = ClockVector::new();
        short.set(t(0), 2);
        let mut long = ClockVector::new();
        long.set(t(0), 2);
        long.set(t(3), 4);
        assert!(short.leq(&long));
        assert!(!long.leq(&short));
        // A trailing zero slot doesn't break comparison.
        let mut long_zero = ClockVector::new();
        long_zero.set(t(0), 2);
        long_zero.set(t(3), 0);
        assert!(long_zero.leq(&short));
    }

    #[test]
    fn intersect_is_pointwise_min() {
        let mut a = ClockVector::new();
        a.set(t(0), 3);
        a.set(t(1), 7);
        let mut b = ClockVector::new();
        b.set(t(0), 5);
        b.set(t(1), 2);
        b.set(t(2), 9);
        let m = a.intersect(&b);
        assert_eq!(m.get(t(0)), 3);
        assert_eq!(m.get(t(1)), 2);
        // t(2) only known to one side -> 0.
        assert_eq!(m.get(t(2)), 0);
    }

    #[test]
    fn union_is_commutative_and_idempotent() {
        let mut a = ClockVector::new();
        a.set(t(0), 1);
        a.set(t(4), 8);
        let mut b = ClockVector::new();
        b.set(t(1), 3);
        b.set(t(4), 2);
        let mut ab = a.clone();
        ab.union_with(&b);
        let mut ba = b.clone();
        ba.union_with(&a);
        assert_eq!(ab, ba);
        let mut abb = ab.clone();
        assert!(!abb.union_with(&b));
        assert_eq!(abb, ab);
    }

    #[test]
    fn clear_releases_storage() {
        let mut a = ClockVector::new();
        a.set(t(9), 5);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
    }

    #[test]
    fn debug_format_lists_nonzero_slots() {
        let mut a = ClockVector::new();
        a.set(t(1), 4);
        assert_eq!(format!("{a:?}"), "CV{T1:4}");
        assert_eq!(format!("{:?}", ClockVector::new()), "CV{}");
    }
}
