//! Clock vectors (paper §4.2 and §6.1).
//!
//! The same data structure serves two distinct purposes in C11Tester,
//! and the paper is explicit that these must not be conflated:
//!
//! * **Happens-before clock vectors** (`C_t`, `F^rel_t`, `F^acq_t`,
//!   `RF_s` of Fig. 9) track the happens-before relation.
//! * **Mo-graph clock vectors** (§4.2) encode *reachability between
//!   nodes of the modification-order graph* — a completely different
//!   partial order. Theorem 1 proves `CV_A ≤ CV_B ⇔ B reachable from A`
//!   for same-location nodes.
//!
//! A slot holds the sequence number of an event; slot `t` of a thread
//! clock is always that thread's most recent event. Missing slots read
//! as 0, so vectors of different lengths compare correctly.
//!
//! # Storage
//!
//! Clock vectors are the single hottest allocation site of the model:
//! three live per thread, one per store record (×2: `RF_s` and the
//! hb snapshot), and one per mo-graph node — and stores clone them on
//! every commit. Executions with at most [`INLINE_SLOTS`] threads (the
//! overwhelmingly common case; the paper's benchmarks run 2–6) therefore
//! keep their slots in a fixed inline array and never touch the heap.
//! The 9th thread *spills* the vector to a heap `Vec` transparently; all
//! operators work on the logical slice either way, so the spill is
//! invisible to every caller — and to the determinism contract.

use crate::event::{SeqNum, ThreadId};
use std::fmt;

/// Number of slots stored inline before a clock vector spills to the
/// heap. Executions with at most this many threads never allocate for
/// clock maintenance.
pub const INLINE_SLOTS: usize = 8;

/// Backing storage: a fixed inline array or a spilled heap vector.
///
/// The physical length lives outside (in [`ClockVector::len`]) so the
/// inline variant needs no tag bookkeeping beyond the enum discriminant.
#[derive(Clone)]
enum Slots {
    /// Slots `0..len` live in the array; the tail is zero.
    Inline([u64; INLINE_SLOTS]),
    /// Spilled: slots `0..len` live on the heap (`heap.len() >= len`).
    /// A spilled vector stays spilled even if logically short again, so
    /// recycled storage keeps its capacity.
    Heap(Vec<u64>),
}

/// A vector of per-thread event sequence numbers.
///
/// Supports the three operators the paper defines: union (`∪`, pointwise
/// max), comparison (`≤`, pointwise), and — for the conservative pruning
/// mode of §7.1 — intersection (`∩`, pointwise min).
#[derive(Clone)]
pub struct ClockVector {
    /// Physical slot count (trailing zeros up to `len` are significant
    /// for equality, mirroring the previous `Vec<u64>` semantics).
    len: u32,
    slots: Slots,
}

impl Default for ClockVector {
    fn default() -> Self {
        ClockVector::new()
    }
}

impl PartialEq for ClockVector {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for ClockVector {}

impl ClockVector {
    /// Creates an empty (all-zero) clock vector.
    pub fn new() -> Self {
        ClockVector {
            len: 0,
            slots: Slots::Inline([0; INLINE_SLOTS]),
        }
    }

    /// Creates the initial mo-graph clock vector `⊥CV_A` for a store by
    /// `tid` with sequence number `seq`: all slots zero except the
    /// storer's own, which holds `seq` (paper §4.2).
    pub fn bottom_for(tid: ThreadId, seq: SeqNum) -> Self {
        let mut cv = ClockVector::new();
        cv.set(tid, seq.0);
        cv
    }

    /// The logical slots as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u64] {
        match &self.slots {
            Slots::Inline(a) => &a[..self.len as usize],
            Slots::Heap(v) => &v[..self.len as usize],
        }
    }

    #[inline]
    fn as_mut_slice(&mut self) -> &mut [u64] {
        match &mut self.slots {
            Slots::Inline(a) => &mut a[..self.len as usize],
            Slots::Heap(v) => &mut v[..self.len as usize],
        }
    }

    /// Grows the physical length to `n` slots (zero-filling the newly
    /// exposed slots), spilling to the heap past [`INLINE_SLOTS`].
    fn grow(&mut self, n: usize) {
        debug_assert!(n > self.len as usize);
        match &mut self.slots {
            Slots::Inline(a) if n <= INLINE_SLOTS => {
                // The tail of the inline array is kept zero by `clear`,
                // so exposing more slots needs no writes.
                debug_assert!(a[self.len as usize..n].iter().all(|&x| x == 0));
            }
            Slots::Inline(a) => {
                // Spill: move the inline prefix to the heap.
                let mut v = Vec::with_capacity(n.max(2 * INLINE_SLOTS));
                v.extend_from_slice(&a[..self.len as usize]);
                v.resize(n, 0);
                self.slots = Slots::Heap(v);
            }
            Slots::Heap(v) => {
                // `clear` keeps stale capacity; re-zero only the slots
                // being exposed.
                if v.len() < n {
                    v.resize(n, 0);
                } else {
                    v[self.len as usize..n].fill(0);
                }
            }
        }
        self.len = n as u32;
    }

    /// Whether the vector has spilled to heap storage (diagnostics for
    /// the allocation counters; never affects behavior).
    pub fn is_spilled(&self) -> bool {
        matches!(self.slots, Slots::Heap(_))
    }

    /// Reads slot `t` (0 if the vector is shorter than `t`).
    #[inline]
    pub fn get(&self, t: ThreadId) -> u64 {
        self.as_slice().get(t.index()).copied().unwrap_or(0)
    }

    /// Sets slot `t`, growing the vector as needed.
    #[inline]
    pub fn set(&mut self, t: ThreadId, v: u64) {
        let ix = t.index();
        if self.len as usize <= ix {
            self.grow(ix + 1);
        }
        self.as_mut_slice()[ix] = v;
    }

    /// Pointwise-max merge (`∪`). Returns `true` iff `self` changed —
    /// the `Merge` procedure of Fig. 6 needs exactly this signal to
    /// drive its propagation worklist.
    pub fn union_with(&mut self, other: &ClockVector) -> bool {
        let olen = other.len as usize;
        if (self.len as usize) < olen {
            self.grow(olen);
        }
        let dst = self.as_mut_slice();
        let src = other.as_slice();
        let mut changed = false;
        // Equal-length word loop over the shared prefix; `dst` is at
        // least as long as `src` after the grow above.
        for (d, &o) in dst[..olen].iter_mut().zip(src) {
            if o > *d {
                *d = o;
                changed = true;
            }
        }
        changed
    }

    /// Pointwise `≤` comparison. Slots missing on either side read as 0.
    #[inline]
    pub fn leq(&self, other: &ClockVector) -> bool {
        let a = self.as_slice();
        let b = other.as_slice();
        let shared = a.len().min(b.len());
        // Early exit on the first dominating slot; any slot of `self`
        // past `other`'s length must be zero.
        a[..shared].iter().zip(&b[..shared]).all(|(&s, &o)| s <= o)
            && a[shared..].iter().all(|&s| s == 0)
    }

    /// Pointwise-min intersection (`∩`), used to compute `CV_min` for
    /// the conservative pruning mode (§7.1). Slots missing on either
    /// side read as 0, so the result only keeps entries known to both.
    pub fn intersect(&self, other: &ClockVector) -> ClockVector {
        let a = self.as_slice();
        let b = other.as_slice();
        let n = a.len().min(b.len());
        let mut out = ClockVector::new();
        if n > 0 {
            out.grow(n);
            for (ix, d) in out.as_mut_slice().iter_mut().enumerate() {
                *d = a[ix].min(b[ix]);
            }
        }
        out
    }

    /// True if every slot is zero.
    pub fn is_empty(&self) -> bool {
        self.as_slice().iter().all(|&s| s == 0)
    }

    /// Number of slots physically present.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Zeroes the vector **without releasing its backing storage** — a
    /// spilled vector keeps its heap capacity, an inline one just
    /// re-zeroes the array. Used by pruning tombstones and by
    /// execution-state recycling, both of which re-populate the same
    /// storage moments later.
    pub fn clear(&mut self) {
        match &mut self.slots {
            Slots::Inline(a) => a[..self.len as usize].fill(0),
            Slots::Heap(v) => v[..self.len as usize].fill(0),
        }
        self.len = 0;
    }

    /// Zeroes the vector **and releases any spilled heap storage**,
    /// returning to the inline representation. This is the §7.1
    /// pruning primitive — tombstoned records must genuinely give
    /// their memory back (the whole point of memory limiting) — in
    /// contrast to [`ClockVector::clear`], which retains capacity for
    /// the recycling paths that repopulate the same storage.
    pub fn release(&mut self) {
        self.len = 0;
        self.slots = Slots::Inline([0; INLINE_SLOTS]);
    }

    /// Iterates over `(thread, seq)` pairs with non-zero entries.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (ThreadId, u64)> + '_ {
        self.as_slice()
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0)
            .map(|(ix, &v)| (ThreadId::from_index(ix), v))
    }
}

impl fmt::Debug for ClockVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CV{{")?;
        let mut first = true;
        for (t, v) in self.iter_nonzero() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{t}:{v}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ix: usize) -> ThreadId {
        ThreadId::from_index(ix)
    }

    #[test]
    fn empty_is_bottom() {
        let cv = ClockVector::new();
        assert!(cv.is_empty());
        assert_eq!(cv.get(t(5)), 0);
        assert!(cv.leq(&ClockVector::new()));
    }

    #[test]
    fn bottom_for_sets_own_slot() {
        let cv = ClockVector::bottom_for(t(2), SeqNum(9));
        assert_eq!(cv.get(t(2)), 9);
        assert_eq!(cv.get(t(0)), 0);
        assert_eq!(cv.get(t(3)), 0);
        assert!(!cv.is_empty());
    }

    #[test]
    fn union_is_pointwise_max_and_reports_change() {
        let mut a = ClockVector::new();
        a.set(t(0), 3);
        a.set(t(1), 7);
        let mut b = ClockVector::new();
        b.set(t(0), 5);
        b.set(t(2), 1);
        assert!(a.union_with(&b));
        assert_eq!(a.get(t(0)), 5);
        assert_eq!(a.get(t(1)), 7);
        assert_eq!(a.get(t(2)), 1);
        // Merging something already dominated reports no change.
        assert!(!a.union_with(&b));
    }

    #[test]
    fn leq_handles_length_mismatch() {
        let mut short = ClockVector::new();
        short.set(t(0), 2);
        let mut long = ClockVector::new();
        long.set(t(0), 2);
        long.set(t(3), 4);
        assert!(short.leq(&long));
        assert!(!long.leq(&short));
        // A trailing zero slot doesn't break comparison.
        let mut long_zero = ClockVector::new();
        long_zero.set(t(0), 2);
        long_zero.set(t(3), 0);
        assert!(long_zero.leq(&short));
    }

    #[test]
    fn intersect_is_pointwise_min() {
        let mut a = ClockVector::new();
        a.set(t(0), 3);
        a.set(t(1), 7);
        let mut b = ClockVector::new();
        b.set(t(0), 5);
        b.set(t(1), 2);
        b.set(t(2), 9);
        let m = a.intersect(&b);
        assert_eq!(m.get(t(0)), 3);
        assert_eq!(m.get(t(1)), 2);
        // t(2) only known to one side -> 0.
        assert_eq!(m.get(t(2)), 0);
    }

    #[test]
    fn union_is_commutative_and_idempotent() {
        let mut a = ClockVector::new();
        a.set(t(0), 1);
        a.set(t(4), 8);
        let mut b = ClockVector::new();
        b.set(t(1), 3);
        b.set(t(4), 2);
        let mut ab = a.clone();
        ab.union_with(&b);
        let mut ba = b.clone();
        ba.union_with(&a);
        assert_eq!(ab, ba);
        let mut abb = ab.clone();
        assert!(!abb.union_with(&b));
        assert_eq!(abb, ab);
    }

    #[test]
    fn clear_zeroes_but_retains_storage() {
        let mut a = ClockVector::new();
        a.set(t(9), 5);
        assert!(a.is_spilled());
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
        // The spilled storage survives the clear (capacity retention);
        // re-populating must see zeroed slots, not stale ones.
        assert!(a.is_spilled());
        a.set(t(9), 7);
        assert_eq!(a.get(t(9)), 7);
        assert_eq!(a.get(t(3)), 0);
    }

    #[test]
    fn release_returns_to_inline_and_frees_spill() {
        let mut a = ClockVector::new();
        a.set(t(20), 9);
        assert!(a.is_spilled());
        a.release();
        assert!(!a.is_spilled(), "release must drop the heap block");
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
        a.set(t(1), 2);
        assert_eq!(a.get(t(1)), 2);
        assert_eq!(a.get(t(20)), 0);
    }

    #[test]
    fn inline_clear_allows_regrowth_with_zero_tail() {
        let mut a = ClockVector::new();
        a.set(t(5), 11);
        assert!(!a.is_spilled());
        a.clear();
        a.set(t(2), 3);
        // Slots between 2 and 5 (stale territory) must read zero.
        assert_eq!(a.get(t(3)), 0);
        assert_eq!(a.get(t(4)), 0);
        assert_eq!(a.get(t(5)), 0);
        assert_eq!(a.get(t(2)), 3);
    }

    #[test]
    fn spill_transition_preserves_contents() {
        let mut a = ClockVector::new();
        for ix in 0..INLINE_SLOTS {
            a.set(t(ix), (ix + 1) as u64);
        }
        assert!(!a.is_spilled());
        let before = a.clone();
        // The 9th slot forces the spill; everything must be preserved.
        a.set(t(INLINE_SLOTS), 99);
        assert!(a.is_spilled());
        for ix in 0..INLINE_SLOTS {
            assert_eq!(a.get(t(ix)), (ix + 1) as u64);
        }
        assert_eq!(a.get(t(INLINE_SLOTS)), 99);
        assert!(before.leq(&a));
        assert!(!a.leq(&before));
    }

    #[test]
    fn inline_and_spilled_compare_equal_by_contents() {
        // Equality is over logical slots, not representation: a vector
        // that spilled and shrank back compares equal to an inline one
        // with the same physical slots.
        let mut spilled = ClockVector::new();
        spilled.set(t(9), 1);
        spilled.clear();
        spilled.set(t(1), 4);
        let mut inline = ClockVector::new();
        inline.set(t(1), 4);
        assert_eq!(spilled, inline);
        assert_eq!(inline, spilled);
    }

    #[test]
    fn union_across_representations() {
        let mut small = ClockVector::new();
        small.set(t(0), 10);
        let mut big = ClockVector::new();
        big.set(t(11), 3);
        // Inline ∪ spilled forces the receiver to spill.
        assert!(small.union_with(&big));
        assert!(small.is_spilled());
        assert_eq!(small.get(t(0)), 10);
        assert_eq!(small.get(t(11)), 3);
        // Spilled ∪ inline works in place.
        let mut tiny = ClockVector::new();
        tiny.set(t(0), 20);
        assert!(small.union_with(&tiny));
        assert_eq!(small.get(t(0)), 20);
    }

    #[test]
    fn debug_format_lists_nonzero_slots() {
        let mut a = ClockVector::new();
        a.set(t(1), 4);
        assert_eq!(format!("{a:?}"), "CV{T1:4}");
        assert_eq!(format!("{:?}", ClockVector::new()), "CV{}");
    }
}
