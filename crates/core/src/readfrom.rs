//! `BuildMayReadFrom` (paper Fig. 12).
//!
//! The may-read-from set is an over-approximation of the stores a load
//! may read, considering only the happens-before relation:
//!
//! ```text
//! may-read-from(Y) = { X ∈ stores(Y) | ¬(Y hb→ X) ∧
//!                      (∄ Z ∈ stores(Y). X hb→ Z hb→ Y) }
//! ```
//!
//! Per thread `u`, that is: every store not yet known to the loader
//! (`seq > C_t[u]`), plus the *latest* store the loader already knows
//! (any earlier one is hidden behind it by write-read coherence).
//! Seq_cst loads additionally filter through the last seq_cst store
//! (C++11 §29.3p3), and RMWs may not read a store another RMW already
//! consumed (RMW atomicity).

use crate::event::{MemOrder, ObjId, StoreIdx, ThreadId};
use crate::exec::Execution;

impl Execution {
    /// Builds the may-read-from set for a prospective load by `t` at
    /// `obj` with the given order (`BuildMayReadFrom`, Fig. 12).
    ///
    /// The result still needs the §4.3 feasibility filter — use
    /// [`Execution::check_read_feasible`] on a picked candidate or
    /// [`Execution::feasible_read_candidates`] for the filtered set.
    pub fn read_candidates(
        &self,
        t: ThreadId,
        obj: ObjId,
        order: MemOrder,
        for_rmw: bool,
    ) -> Vec<StoreIdx> {
        let mut ret = Vec::new();
        self.read_candidates_into(t, obj, order, for_rmw, &mut ret);
        ret
    }

    /// [`Execution::read_candidates`] into a caller-provided buffer
    /// (cleared first) — the allocation-free hot path; the engine
    /// threads one reusable buffer through every load.
    pub fn read_candidates_into(
        &self,
        t: ThreadId,
        obj: ObjId,
        order: MemOrder,
        for_rmw: bool,
        ret: &mut Vec<StoreIdx>,
    ) {
        ret.clear();
        let Some(loc) = self.loc(obj) else {
            return;
        };
        let ct = &self.threads[t.index()].cv;
        for (uix, h) in loc.threads() {
            let bound = ct.get(ThreadId::from_index(uix));
            // Stores are in seq order: split into "already known to the
            // loader" (hb-before) and "unseen".
            let pos = h
                .stores
                .partition_point(|&s| self.stores[s.index()].seq.0 <= bound);
            if pos > 0 {
                // The newest hb-known store per thread stays readable.
                ret.push(h.stores[pos - 1]);
            }
            ret.extend_from_slice(&h.stores[pos..]);
        }
        if order.is_seq_cst() {
            ret.retain(|&x| self.sc_read_allowed(obj, order, x));
        }
        if for_rmw {
            ret.retain(|&x| self.stores[x.index()].rmw_read_by.is_none());
        }
    }

    /// Fig. 12 lines 9–11 as a single-candidate predicate: may a load
    /// with `order` read from `cand` given the current last seq_cst
    /// store at `obj` (C++11 §29.3p3)? Non-seq_cst orders are
    /// unconstrained.
    ///
    /// This is both the filter [`Execution::read_candidates_into`]
    /// applies to the whole candidate set and part of
    /// [`Execution::check_read_feasible`] — the latter matters for
    /// failed compare-exchanges, whose candidate was selected under
    /// the *success* ordering and must be re-vetted under the failure
    /// ordering.
    pub(crate) fn sc_read_allowed(&self, obj: ObjId, order: MemOrder, cand: StoreIdx) -> bool {
        if !order.is_seq_cst() {
            return true;
        }
        let Some(anchor) = self.loc(obj).and_then(|l| l.last_sc_store) else {
            return true;
        };
        if cand == anchor {
            return true;
        }
        let aref = &self.stores[anchor.index()];
        let xr = &self.stores[cand.index()];
        // X sc→ anchor: both seq_cst, X earlier in the SC order
        // (= execution order under sequentialized visible ops).
        let sc_before = xr.is_seq_cst() && xr.seq < aref.seq;
        // X hb→ anchor, answered with the anchor's recorded
        // happens-before clock.
        let hb_before = xr.seq.0 <= aref.hb_cv.get(xr.tid);
        !(sc_before || hb_before)
    }
}

#[cfg(test)]
mod tests {
    use crate::event::{MemOrder, StoreKind};
    use crate::exec::Execution;
    use crate::policy::Policy;

    /// Two unsynchronized threads: a reader must see both the initial
    /// value and the other thread's store as candidates.
    #[test]
    fn unseen_stores_are_candidates() {
        let mut e = Execution::new(Policy::C11Tester);
        let main = crate::ThreadId::MAIN;
        let x = e.new_object();
        e.atomic_store(main, x, MemOrder::Relaxed, 0, StoreKind::Atomic);
        let t1 = e.fork(main);
        let s1 = e.atomic_store(t1, x, MemOrder::Relaxed, 1, StoreKind::Atomic);
        let t2 = e.fork(main);
        let cands = e.read_candidates(t2, x, MemOrder::Relaxed, false);
        // t2 knows the init store (forked after it) but not t1's store.
        assert_eq!(cands.len(), 2);
        assert!(cands.contains(&s1));
    }

    /// Write-read coherence hides stale same-thread stores: only the
    /// latest hb-known store per thread is a candidate.
    #[test]
    fn hb_known_stores_collapse_to_latest() {
        let mut e = Execution::new(Policy::C11Tester);
        let main = crate::ThreadId::MAIN;
        let x = e.new_object();
        e.atomic_store(main, x, MemOrder::Relaxed, 1, StoreKind::Atomic);
        e.atomic_store(main, x, MemOrder::Relaxed, 2, StoreKind::Atomic);
        let s3 = e.atomic_store(main, x, MemOrder::Relaxed, 3, StoreKind::Atomic);
        let cands = e.read_candidates(main, x, MemOrder::Relaxed, false);
        assert_eq!(cands, vec![s3]);
    }

    /// Figure 4 of the paper: after threadA's two stores run as a write
    /// run, threadB's load must see {init, 1, 2} — three candidates.
    #[test]
    fn figure4_three_candidates() {
        let mut e = Execution::new(Policy::C11Tester);
        let main = crate::ThreadId::MAIN;
        let x = e.new_object();
        e.atomic_store(main, x, MemOrder::Relaxed, 0, StoreKind::Atomic);
        let ta = e.fork(main);
        let tb = e.fork(main);
        e.atomic_store(ta, x, MemOrder::Relaxed, 1, StoreKind::Atomic);
        e.atomic_store(ta, x, MemOrder::Relaxed, 2, StoreKind::Atomic);
        let cands = e.read_candidates(tb, x, MemOrder::Relaxed, false);
        assert_eq!(cands.len(), 3);
    }

    /// An RMW may not read a store another RMW consumed.
    #[test]
    fn rmw_candidates_exclude_consumed_stores() {
        let mut e = Execution::new(Policy::C11Tester);
        let main = crate::ThreadId::MAIN;
        let x = e.new_object();
        let init = e.atomic_store(main, x, MemOrder::Relaxed, 0, StoreKind::Atomic);
        let t1 = e.fork(main);
        let t2 = e.fork(main);
        let cands1 = e.feasible_read_candidates(t1, x, MemOrder::AcqRel, true);
        assert_eq!(cands1, vec![init]);
        let (_, s_rmw) = e.commit_rmw(t1, x, MemOrder::AcqRel, init, 1);
        let cands2 = e.feasible_read_candidates(t2, x, MemOrder::AcqRel, true);
        assert_eq!(
            cands2,
            vec![s_rmw],
            "init store was consumed by the first RMW"
        );
    }

    /// Seq_cst loads cannot read stores that precede the last seq_cst
    /// store in the SC order or happen-before it (Fig. 12 lines 9–11).
    #[test]
    fn sc_load_filters_through_last_sc_store() {
        let mut e = Execution::new(Policy::C11Tester);
        let main = crate::ThreadId::MAIN;
        let x = e.new_object();
        let t1 = e.fork(main);
        let t2 = e.fork(main);
        let s_old = e.atomic_store(t1, x, MemOrder::SeqCst, 1, StoreKind::Atomic);
        let s_new = e.atomic_store(t1, x, MemOrder::SeqCst, 2, StoreKind::Atomic);
        let cands = e.read_candidates(t2, x, MemOrder::SeqCst, false);
        assert!(!cands.contains(&s_old), "sc-before the last sc store");
        assert!(cands.contains(&s_new));
        // A relaxed load is *not* filtered.
        let cands_rlx = e.read_candidates(t2, x, MemOrder::Relaxed, false);
        assert!(cands_rlx.contains(&s_old));
        assert!(cands_rlx.contains(&s_new));
    }
}
