//! The operational-semantics driver (paper §6, Figures 9–11).
//!
//! [`Execution`] is a pure state machine: the runtime layer feeds it one
//! visible operation at a time (the tool sequentializes visible
//! operations, so there is no internal locking here), and read-from
//! choices are delegated to the caller so that pluggable testing
//! strategies (paper §3) can pick among the legal behaviors.
//!
//! A load proceeds in three steps, mirroring Fig. 11's `[ATOMIC LOAD]`:
//!
//! 1. [`Execution::read_candidates`] builds the may-read-from set
//!    (Fig. 12) — an over-approximation considering only `hb`;
//! 2. [`Execution::check_read_feasible`] runs the rollback-free §4.3
//!    check (`ReadPriorSet` + Theorem 1 clock-vector reachability);
//! 3. [`Execution::commit_load`] establishes the `rf` edge, adds the
//!    implied mo-graph edges, and applies the Fig. 9 clock rules.

use crate::clock::ClockVector;
use crate::event::{
    AccessRef, FenceIdx, FenceRecord, LoadIdx, LoadRecord, MemOrder, ObjId, SeqNum, StoreIdx,
    StoreKind, StoreRecord, ThreadId,
};
use crate::location::LocationState;
use crate::mograph::{MoGraph, NodeId};
use crate::policy::Policy;
use crate::prune::PruneConfig;
use crate::stats::{AllocStats, ExecStats};
use c11tester_telemetry::{phase_start, ExecCoverage, Phase, PhaseProfile, TraceEvent, TraceKind};

/// Per-thread model state (`ThrState` of Fig. 10).
#[derive(Clone, Debug)]
pub struct ThreadState {
    /// `C_t`: the thread's happens-before clock vector.
    pub cv: ClockVector,
    /// `F^rel_t`: release-fence clock vector (Fig. 9).
    pub fence_rel: ClockVector,
    /// `F^acq_t`: acquire-fence clock vector (Fig. 9).
    pub fence_acq: ClockVector,
    /// seq_cst fences performed by this thread (`sc_fences(t)`).
    pub sc_fences: Vec<FenceIdx>,
    /// False once the thread's program has finished.
    pub alive: bool,
    /// True while the thread's most recent visible operation was a plain
    /// relaxed/release atomic store — the state the scheduler's
    /// *write-run* rule (paper §3, Fig. 4) keys on.
    pub in_store_run: bool,
    /// The thread this one is blocked joining, if any. Pruning's
    /// `CV_min` (§7.1) may credit a blocked joiner with the join
    /// target's *current* clock: clocks grow monotonically and the
    /// joiner resumes with the target's final clock folded in, so the
    /// union is a sound lower bound on the joiner's clock at its next
    /// visible operation. Without this, a main thread parked in `join`
    /// for the whole execution pins `CV_min` at zero and long-running
    /// workloads never prune anything.
    pub waiting_on: Option<ThreadId>,
}

impl ThreadState {
    fn new() -> Self {
        ThreadState {
            cv: ClockVector::new(),
            fence_rel: ClockVector::new(),
            fence_acq: ClockVector::new(),
            sc_fences: Vec::new(),
            alive: true,
            in_store_run: false,
            waiting_on: None,
        }
    }

    /// Rewinds the thread to its initial state while retaining the
    /// clock vectors' (spilled) storage and the fence list's capacity
    /// (execution-state recycling).
    fn reset(&mut self) {
        self.cv.clear();
        self.fence_rel.clear();
        self.fence_acq.clear();
        self.sc_fences.clear();
        self.alive = true;
        self.in_store_run = false;
        self.waiting_on = None;
    }
}

/// One program execution under the model: event arenas, per-location
/// histories, per-thread clocks, and the mo-graph.
///
/// # Allocation discipline
///
/// Every container here is either capacity-retaining across
/// [`Execution::reset`] (arenas, the dense location table, the
/// mo-graph, scratch buffers) or allocation-free in the common case
/// (clock vectors stay inline up to [`crate::clock::INLINE_SLOTS`]
/// threads). A model that recycles its `Execution` between runs —
/// [`Execution::reset`] instead of `Execution::new` — therefore does
/// no steady-state heap allocation on the per-operation hot path.
/// Recycling is **behaviorally invisible**: a reset execution produces
/// the same events, reports, and (behavioral) statistics as a fresh
/// one — only the [`crate::AllocStats`] diagnostics differ.
#[derive(Clone, Debug)]
pub struct Execution {
    policy: Policy,
    pub(crate) seq: u64,
    pub(crate) threads: Vec<ThreadState>,
    pub(crate) stores: Vec<StoreRecord>,
    pub(crate) loads: Vec<LoadRecord>,
    pub(crate) fences: Vec<FenceRecord>,
    /// Per-location histories, indexed **densely** by `ObjId` (object
    /// ids are sequential, so a `Vec` arena replaces the former
    /// hash map: O(1) access with no hashing, deterministic iteration
    /// order for pruning, and capacity retention across resets).
    pub(crate) locations: Vec<LocationState>,
    pub(crate) graph: MoGraph,
    pub(crate) free_stores: Vec<StoreIdx>,
    pub(crate) free_loads: Vec<LoadIdx>,
    next_obj: u64,
    pub(crate) stats: ExecStats,
    pub(crate) prune_cfg: PruneConfig,
    /// Reusable scratch for prior-set computation (taken/returned
    /// around each use; never observed non-empty outside a commit).
    pub(crate) pset_buf: Vec<StoreIdx>,
    /// Reusable scratch for the hoisted per-thread prior-set bests of
    /// [`Execution::feasible_read_candidates_into`].
    pub(crate) bests_buf: Vec<StoreIdx>,
    /// Reusable scratch for the hoisted RMW write prior set.
    pub(crate) wbests_buf: Vec<StoreIdx>,
    /// Committed-event buffer for structured schedule traces. Empty
    /// (and allocation-free) unless tracing is enabled; drained by the
    /// model layer into a `TraceSink` after each execution.
    pub(crate) trace_buf: Vec<TraceEvent>,
    /// Behavior-coverage signature of this execution. Disarmed
    /// (`collected == false`, no recording) unless coverage collection
    /// was enabled when the execution started — the global gate is
    /// sampled once per execution, so the hot path pays one boolean
    /// test per commit point. Drained by the model layer.
    pub(crate) coverage: ExecCoverage,
    /// Thread of the most recently committed event, for detecting the
    /// preemption points the interleaving signature hashes.
    last_event_tid: ThreadId,
}

impl Execution {
    /// Creates a fresh execution with a single live main thread.
    pub fn new(policy: Policy) -> Self {
        Execution::with_pruning(policy, PruneConfig::disabled())
    }

    /// Creates a fresh execution with the given pruning configuration
    /// (§7.1).
    pub fn with_pruning(policy: Policy, prune_cfg: PruneConfig) -> Self {
        // The main thread gets a *thread-begin* event (sequence 1) so
        // that its clock slot is non-zero from the start — the race
        // detector's epochs reserve clock 0 for "no access".
        let mut main = ThreadState::new();
        main.cv.set(ThreadId::MAIN, 1);
        let stats = ExecStats {
            alloc: AllocStats {
                fresh_executions: 1,
                ..AllocStats::default()
            },
            ..ExecStats::default()
        };
        Execution {
            policy,
            seq: 1,
            threads: vec![main],
            stores: Vec::new(),
            loads: Vec::new(),
            fences: Vec::new(),
            locations: Vec::new(),
            graph: MoGraph::new(),
            free_stores: Vec::new(),
            free_loads: Vec::new(),
            next_obj: 0,
            stats,
            prune_cfg,
            pset_buf: Vec::new(),
            bests_buf: Vec::new(),
            wbests_buf: Vec::new(),
            trace_buf: Vec::new(),
            coverage: if c11tester_telemetry::coverage_enabled() {
                ExecCoverage::collecting()
            } else {
                ExecCoverage::default()
            },
            last_event_tid: ThreadId::MAIN,
        }
    }

    /// Rewinds this execution to the state `Execution::with_pruning`
    /// would create, **retaining every container's capacity**: the
    /// store/load/fence arenas, the dense location table (and each
    /// location's per-thread history lists), the mo-graph node arena,
    /// and all scratch buffers survive for the next execution.
    ///
    /// The determinism contract: a reset execution is observationally
    /// identical to a fresh one — same feasible sets, same events, same
    /// reports, same behavioral statistics. Only the
    /// [`crate::AllocStats`] diagnostics record that recycling
    /// happened.
    pub fn reset(&mut self, policy: Policy, prune_cfg: PruneConfig) {
        self.policy = policy;
        self.prune_cfg = prune_cfg;
        self.seq = 1;
        // Per-thread state: keep slot 0, drop the rest (child threads
        // are re-forked next run; their states are small and the clock
        // vectors inline for ≤ INLINE_SLOTS threads).
        self.threads.truncate(1);
        self.threads[0].reset();
        self.threads[0].cv.set(ThreadId::MAIN, 1);
        self.stores.clear();
        self.loads.clear();
        self.fences.clear();
        for loc in &mut self.locations {
            loc.reset();
        }
        self.graph.reset();
        self.free_stores.clear();
        self.free_loads.clear();
        self.next_obj = 0;
        self.trace_buf.clear();
        self.coverage.reset(c11tester_telemetry::coverage_enabled());
        self.last_event_tid = ThreadId::MAIN;
        self.stats = ExecStats {
            alloc: AllocStats {
                recycled_executions: 1,
                ..AllocStats::default()
            },
            ..ExecStats::default()
        };
    }

    /// Shared access to a location's history, if the location exists
    /// (dense `ObjId`-indexed lookup).
    #[inline]
    pub(crate) fn loc(&self, obj: ObjId) -> Option<&LocationState> {
        self.locations.get(obj.0 as usize)
    }

    /// Mutable access to a location's history, growing the dense table.
    #[inline]
    pub(crate) fn loc_mut(&mut self, obj: ObjId) -> &mut LocationState {
        let ix = obj.0 as usize;
        if self.locations.len() <= ix {
            self.locations.resize_with(ix + 1, LocationState::default);
        }
        &mut self.locations[ix]
    }

    /// Snapshots the allocation diagnostics that are only observable at
    /// the end of an execution (currently: how many live clock vectors
    /// sit in spilled heap storage). Call once, after the program under
    /// test finished and before reading [`Execution::stats`].
    pub fn finalize_alloc_stats(&mut self) {
        let mut spills = 0u64;
        for t in &self.threads {
            spills += u64::from(t.cv.is_spilled())
                + u64::from(t.fence_rel.is_spilled())
                + u64::from(t.fence_acq.is_spilled());
        }
        for s in &self.stores {
            spills += u64::from(s.rf_cv.is_spilled()) + u64::from(s.hb_cv.is_spilled());
        }
        spills += self.graph.spilled_nodes();
        self.stats.alloc.clock_spills = spills;
        // Snapshot the incremental-order / memory-limiting diagnostics
        // (like `alloc`, excluded from behavioral equality).
        self.stats.mograph_perf = self.graph.perf_stats();
    }

    /// The memory-model policy in force.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Allocates a fresh atomic-object identifier.
    pub fn new_object(&mut self) -> ObjId {
        let id = ObjId(self.next_obj);
        self.next_obj += 1;
        id
    }

    /// Current global sequence number (the number of events so far).
    pub fn now(&self) -> SeqNum {
        SeqNum(self.seq)
    }

    /// Statistics gathered so far.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Number of threads ever created.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// The thread's happens-before clock vector `C_t`.
    pub fn thread_cv(&self, t: ThreadId) -> &ClockVector {
        &self.threads[t.index()].cv
    }

    /// Whether the thread's last visible operation was a relaxed/release
    /// plain store (write-run rule input for the scheduler).
    pub fn in_store_run(&self, t: ThreadId) -> bool {
        self.threads[t.index()].in_store_run
    }

    /// Whether the thread is still live.
    pub fn is_alive(&self, t: ThreadId) -> bool {
        self.threads[t.index()].alive
    }

    /// Value written by a store record.
    pub fn store_value(&self, s: StoreIdx) -> u64 {
        self.stores[s.index()].value
    }

    /// Shared access to a store record.
    pub fn store(&self, s: StoreIdx) -> &StoreRecord {
        &self.stores[s.index()]
    }

    /// Shared access to a load record.
    pub fn load(&self, l: LoadIdx) -> &LoadRecord {
        &self.loads[l.index()]
    }

    /// The modification-order constraint graph.
    pub fn mograph(&self) -> &MoGraph {
        &self.graph
    }

    /// Approximate heap footprint of the execution graph in bytes
    /// (stores/loads arenas, histories, and the mo-graph). Drives the
    /// §7.1 memory-limiting experiments.
    pub fn approx_bytes(&self) -> usize {
        let mut total = self.stores.capacity() * std::mem::size_of::<StoreRecord>()
            + self.loads.capacity() * std::mem::size_of::<LoadRecord>()
            + self.fences.capacity() * std::mem::size_of::<FenceRecord>();
        for s in &self.stores {
            total += (s.rf_cv.len() + s.hb_cv.len()) * 8;
        }
        for loc in &self.locations {
            for h in &loc.per_thread {
                total += h.stores.capacity() * 4
                    + h.accesses.capacity() * 8
                    + h.sc_stores.capacity() * 4;
            }
        }
        total + self.graph.approx_bytes()
    }

    // ------------------------------------------------------------------
    // Event bookkeeping
    // ------------------------------------------------------------------

    /// Whether committed events should be buffered for a trace sink:
    /// either programmatically enabled
    /// ([`c11tester_telemetry::set_tracing`]) or requested via the
    /// legacy `C11TESTER_TRACE` environment variable (an alias for the
    /// stderr sink at the model layer).
    pub fn trace_enabled() -> bool {
        // Checked on every committed event: cache the environment
        // lookup (env scans take a process-wide lock and are far more
        // expensive than the hot path they would gate).
        static TRACE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *TRACE.get_or_init(|| std::env::var_os("C11TESTER_TRACE").is_some())
            || c11tester_telemetry::tracing_enabled()
    }

    /// Drains the committed-event trace buffer (empty unless
    /// [`Execution::trace_enabled`] held during the execution). The
    /// model layer calls this once per execution and hands the events
    /// to the active `TraceSink`, keyed by `(seed, epoch, index)`.
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.trace_buf)
    }

    /// Drains the behavior-coverage signature (disarmed — `collected ==
    /// false` — unless coverage collection was enabled when this
    /// execution started). The model layer calls this once per
    /// execution; the next [`Execution::reset`] re-arms against the
    /// global gate.
    pub fn take_coverage(&mut self) -> ExecCoverage {
        std::mem::take(&mut self.coverage)
    }

    /// Mutable access to the per-execution phase profile, for timing
    /// phases that live outside this crate (scheduling in the engine,
    /// race detection in the facade).
    pub fn phase_mut(&mut self) -> &mut PhaseProfile {
        &mut self.stats.phase
    }

    fn order_name(order: MemOrder) -> &'static str {
        match order {
            MemOrder::Relaxed => "Relaxed",
            MemOrder::Acquire => "Acquire",
            MemOrder::Release => "Release",
            MemOrder::AcqRel => "AcqRel",
            MemOrder::SeqCst => "SeqCst",
        }
    }

    fn access_name(kind: StoreKind) -> &'static str {
        // Same vocabulary as the campaign wire module's access kinds.
        match kind {
            StoreKind::Atomic => "atomic",
            StoreKind::NonAtomic => "non-atomic",
            StoreKind::Volatile => "volatile",
        }
    }

    /// Assigns the next global sequence number to an event of thread `t`
    /// and advances the thread's own clock slot.
    fn next_event(&mut self, t: ThreadId) -> SeqNum {
        self.seq += 1;
        if self.coverage.collected && t != self.last_event_tid {
            self.coverage.record_switch(self.seq, t.index() as u64);
        }
        self.last_event_tid = t;
        self.threads[t.index()].cv.set(t, self.seq);
        SeqNum(self.seq)
    }

    /// Grows the thread table to cover `t`.
    fn ensure_thread(&mut self, t: ThreadId) {
        while self.threads.len() <= t.index() {
            self.threads.push(ThreadState::new());
        }
    }

    /// Epoch bump after a *release-style* publication (release store or
    /// fence, fork): the thread's own clock slot moves past the value
    /// just published, so that non-atomic accesses performed *after*
    /// the publication carry a later epoch than what an acquirer
    /// learns. Without this, the race detector would treat post-release
    /// accesses as ordered before the matching acquire.
    ///
    /// The bumped value sits strictly between two real event sequence
    /// numbers of this thread, so happens-before queries over real
    /// events are unaffected.
    fn release_bump(&mut self, t: ThreadId) {
        let cur = self.threads[t.index()].cv.get(t);
        self.threads[t.index()].cv.set(t, cur + 1);
    }

    /// Mo-graph node of a store, created on demand (`GetNode`, Fig. 7).
    /// Public for tests and tools that want to inspect modification-
    /// order constraints.
    pub fn node_of(&mut self, s: StoreIdx) -> NodeId {
        if let Some(n) = self.stores[s.index()].node {
            return n;
        }
        let (tid, seq, obj) = {
            let r = &self.stores[s.index()];
            (r.tid, r.seq, r.obj)
        };
        let n = self.graph.add_node(tid, seq, obj);
        self.stores[s.index()].node = Some(n);
        n
    }

    /// `AddEdges` (Fig. 7): adds an mo edge from every member of `set`
    /// to `s`.
    pub(crate) fn add_edges(&mut self, set: &[StoreIdx], s: StoreIdx) {
        if set.is_empty() {
            return;
        }
        let timer = phase_start(Phase::MoGraph);
        let ns = self.node_of(s);
        for &e in set {
            if e == s {
                continue;
            }
            let ne = self.node_of(e);
            self.graph.add_edge(ne, ns);
            if self.coverage.collected {
                let to = &self.stores[s.index()];
                self.coverage.record_mo(
                    to.obj.0,
                    self.stores[e.index()].tid.index() as u64,
                    to.tid.index() as u64,
                );
            }
        }
        self.stats.mograph = self.graph.stats();
        if let Some(timer) = timer {
            timer.stop(&mut self.stats.phase);
        }
    }

    /// §7.1 memory limiting: compacts the mo-graph arena, physically
    /// evicting pruned tombstones, and rewrites every store's retained
    /// [`NodeId`] through the remap so Theorem-1 queries keep working
    /// on the surviving nodes. Called by the pruning pass under
    /// [`PruneConfig::limits_memory`]; behaviorally invisible (node
    /// identity is internal to the graph).
    pub(crate) fn compact_graph(&mut self) {
        let Execution { graph, stores, .. } = self;
        let remap = graph.compact();
        for s in stores.iter_mut() {
            if let Some(n) = s.node {
                s.node = remap[n.index()];
                debug_assert!(
                    s.pruned || s.node.is_some(),
                    "compaction evicted the node of a live store"
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Threads (fork / join: the asw edges of the model)
    // ------------------------------------------------------------------

    /// Forks a new thread from `parent`, returning its id. Everything
    /// the parent did so far happens-before everything the child does
    /// (the *additional-synchronizes-with* edge).
    pub fn fork(&mut self, parent: ThreadId) -> ThreadId {
        self.next_event(parent);
        self.stats.sync_ops += 1;
        let child = ThreadId::from_index(self.threads.len());
        let parent_cv = self.threads[parent.index()].cv.clone();
        self.ensure_thread(child);
        // Thread-begin event: the child's own clock slot must be
        // non-zero before its first visible operation (see `new`).
        self.seq += 1;
        let mut child_cv = parent_cv;
        child_cv.set(child, self.seq);
        self.threads[child.index()].cv = child_cv;
        self.threads[parent.index()].in_store_run = false;
        // Fork publishes the parent's clock to the child.
        self.release_bump(parent);
        child
    }

    /// Marks a thread's program as finished.
    pub fn finish_thread(&mut self, t: ThreadId) {
        self.threads[t.index()].alive = false;
        self.threads[t.index()].in_store_run = false;
        self.threads[t.index()].waiting_on = None;
    }

    /// Records (or clears) that `t` is blocked joining `child`. The
    /// runtime calls this when it blocks a joiner and again when the
    /// join target finishes; pruning's `CV_min` (§7.1) uses it to
    /// credit the parked joiner with the target's current clock.
    pub fn set_join_waiting(&mut self, t: ThreadId, child: Option<ThreadId>) {
        self.threads[t.index()].waiting_on = child;
    }

    /// Joins `child` into `parent`: the child's entire execution
    /// happens-before everything the parent does afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the child has not finished; the runtime must block the
    /// parent until then.
    pub fn join(&mut self, parent: ThreadId, child: ThreadId) {
        assert!(
            !self.threads[child.index()].alive,
            "join({child:?}) before the thread finished; runtime must block first"
        );
        self.next_event(parent);
        self.stats.sync_ops += 1;
        let child_cv = self.threads[child.index()].cv.clone();
        self.threads[parent.index()].cv.union_with(&child_cv);
        self.threads[parent.index()].in_store_run = false;
    }

    // ------------------------------------------------------------------
    // Atomic store ([ATOMIC STORE], Fig. 11; [RELEASE/RELAXED STORE], Fig. 9)
    // ------------------------------------------------------------------

    /// Commits an atomic store of `value` to `obj`.
    pub fn atomic_store(
        &mut self,
        t: ThreadId,
        obj: ObjId,
        order: MemOrder,
        value: u64,
        kind: StoreKind,
    ) -> StoreIdx {
        let idx = self.store_inner(t, obj, order, value, kind, false, None);
        if Self::trace_enabled() {
            self.trace_buf.push(TraceEvent {
                kind: TraceKind::Store,
                thread: t.index() as u64,
                seq: self.stores[idx.index()].seq.0,
                obj: obj.0,
                order: Self::order_name(order),
                access: Self::access_name(kind),
                value,
                rf: None,
                old: None,
            });
        }
        match kind {
            StoreKind::Atomic => self.stats.atomic_stores += 1,
            // atomic_init-style initializing stores are plain memory
            // accesses (paper §7.2) — Table 3 counts them as normal.
            StoreKind::NonAtomic => self.stats.normal_accesses += 1,
            StoreKind::Volatile => self.stats.volatile_accesses += 1,
        }
        let run =
            kind != StoreKind::NonAtomic && matches!(order, MemOrder::Relaxed | MemOrder::Release);
        self.threads[t.index()].in_store_run = run;
        self.maybe_prune();
        idx
    }

    /// Shared store path for plain stores and RMW store halves.
    /// `rmw_src` carries the store an RMW read from so the reads-from
    /// clock `RF_s` can absorb the release sequence (Fig. 9 RMW rules),
    /// and — following Fig. 11's ordering — `AddRMWEdge` runs right
    /// after the node exists, *before* the write-prior-set edges, so
    /// that edge migration and clock-vector propagation interleave
    /// correctly.
    #[allow(clippy::too_many_arguments)]
    fn store_inner(
        &mut self,
        t: ThreadId,
        obj: ObjId,
        order: MemOrder,
        value: u64,
        kind: StoreKind,
        is_rmw: bool,
        rmw_src: Option<StoreIdx>,
    ) -> StoreIdx {
        let seq = self.next_event(t);
        // Prior set computed before the store enters any history list
        // (into the reusable scratch buffer — no per-store allocation).
        let mut pset = std::mem::take(&mut self.pset_buf);
        self.write_prior_set_into(t, obj, order, &mut pset);

        let thread = &self.threads[t.index()];
        let mut rf_cv = if kind == StoreKind::NonAtomic {
            // Non-atomic stores never synchronize: empty release clock.
            ClockVector::new()
        } else if order.is_release() {
            thread.cv.clone()
        } else {
            thread.fence_rel.clone()
        };
        if let Some(src) = rmw_src {
            // RMWs continue every release sequence of the store they read
            // from (C++20 rule): RF_rmw ∪= RF_src.
            let src_rf = self.stores[src.index()].rf_cv.clone();
            rf_cv.union_with(&src_rf);
        }
        let hb_cv = self.threads[t.index()].cv.clone();

        let record = StoreRecord {
            tid: t,
            seq,
            obj,
            order,
            value,
            rf_cv,
            hb_cv,
            node: None,
            is_rmw,
            rmw_read_by: None,
            kind,
            pruned: false,
        };
        let idx = self.alloc_store(record);

        // RMW atomicity first (Fig. 11 [ATOMIC RMW]): order the RMW
        // immediately after the store it read from.
        if let Some(src) = rmw_src {
            self.stores[src.index()].rmw_read_by = Some(seq);
            let nfrom = self.node_of(src);
            let nrmw = self.node_of(idx);
            self.graph.add_rmw_edge(nfrom, nrmw);
            self.stats.mograph = self.graph.stats();
        }

        // Restricted policies (tsan11 family): mo embeds in execution
        // order, realized as a chain edge from the previous store.
        if self.policy.restricts_mo() {
            let prev = self.loc(obj).and_then(|loc| loc.last_store_exec);
            if let Some(prev) = prev {
                let np = self.node_of(prev);
                let nn = self.node_of(idx);
                self.graph.add_edge(np, nn);
                self.stats.mograph = self.graph.stats();
            }
        }

        self.add_edges(&pset, idx);
        pset.clear();
        self.pset_buf = pset;

        let is_sc = order.is_seq_cst() && kind != StoreKind::NonAtomic;
        let loc = self.loc_mut(obj);
        let h = loc.thread_mut(t.index());
        h.stores.push(idx);
        h.accesses.push(AccessRef::Store(idx));
        if is_sc {
            h.sc_stores.push(idx);
            loc.last_sc_store = Some(idx);
        }
        loc.last_store_exec = Some(idx);
        loc.last_write_nonatomic = kind == StoreKind::NonAtomic;
        if order.is_release() && kind != StoreKind::NonAtomic {
            // The store published this thread's clock (directly or via
            // a release sequence); later non-atomic accesses must carry
            // a later epoch.
            self.release_bump(t);
        }
        idx
    }

    /// Allocates a store record, reusing a pruned arena slot if any.
    fn alloc_store(&mut self, record: StoreRecord) -> StoreIdx {
        if let Some(idx) = self.free_stores.pop() {
            self.stores[idx.index()] = record;
            idx
        } else {
            let idx = StoreIdx(self.stores.len() as u32);
            self.stores.push(record);
            idx
        }
    }

    /// Allocates a load record, reusing a pruned arena slot if any.
    fn alloc_load(&mut self, record: LoadRecord) -> LoadIdx {
        if let Some(idx) = self.free_loads.pop() {
            self.loads[idx.index()] = record;
            idx
        } else {
            let idx = LoadIdx(self.loads.len() as u32);
            self.loads.push(record);
            idx
        }
    }

    // ------------------------------------------------------------------
    // Atomic load ([ATOMIC LOAD], Fig. 11; [ACQUIRE/RELAXED LOAD], Fig. 9)
    // ------------------------------------------------------------------

    /// Step 2 of a load: is reading from `cand` feasible, i.e. does the
    /// implied set of mo edges keep the mo-graph acyclic (§4.3)? Also
    /// re-applies the seq_cst read filter (Fig. 12 lines 9–11) so the
    /// check is complete for candidates that were *not* produced by
    /// [`Execution::read_candidates_into`] with the same order — the
    /// failed-compare-exchange path, where the candidate was chosen
    /// under the success ordering.
    pub fn check_read_feasible(
        &mut self,
        t: ThreadId,
        obj: ObjId,
        order: MemOrder,
        cand: StoreIdx,
    ) -> bool {
        if !self.sc_read_allowed(obj, order, cand) {
            self.stats.candidates_rejected += 1;
            return false;
        }
        let mut pset = std::mem::take(&mut self.pset_buf);
        let ok = self.read_prior_set_into(t, obj, order, cand, &mut pset);
        pset.clear();
        self.pset_buf = pset;
        if !ok {
            self.stats.candidates_rejected += 1;
        }
        ok
    }

    /// Step 2 for RMWs: read feasibility plus the store-half check
    /// (§4.3 — the RMW's own write adds edges that must not cycle
    /// through the migrated successors of `cand`).
    pub fn check_rmw_feasible(
        &mut self,
        t: ThreadId,
        obj: ObjId,
        order: MemOrder,
        cand: StoreIdx,
    ) -> bool {
        if !self.sc_read_allowed(obj, order, cand) {
            self.stats.candidates_rejected += 1;
            return false;
        }
        let mut pset = std::mem::take(&mut self.pset_buf);
        let ok = self.read_prior_set_into(t, obj, order, cand, &mut pset);
        pset.clear();
        self.pset_buf = pset;
        if !ok || !self.check_rmw_store_feasible(t, obj, order, cand) {
            self.stats.candidates_rejected += 1;
            return false;
        }
        true
    }

    /// Convenience: may-read-from filtered through the feasibility
    /// check. The scheduler can pick uniformly from the result — this
    /// yields the same distribution as the paper's retry loop.
    pub fn feasible_read_candidates(
        &mut self,
        t: ThreadId,
        obj: ObjId,
        order: MemOrder,
        for_rmw: bool,
    ) -> Vec<StoreIdx> {
        let mut cands = Vec::new();
        self.feasible_read_candidates_into(t, obj, order, for_rmw, &mut cands);
        cands
    }

    /// [`Execution::feasible_read_candidates`] into a caller-provided
    /// buffer (cleared first) — the allocation-free hot path.
    ///
    /// The candidate-independent halves of the §4.3 check — the
    /// per-thread `last({S1..S4})` bests of `ReadPriorSet` and, for
    /// RMWs, the write prior set — depend only on `(t, obj, order)`,
    /// so they are hoisted out of the per-candidate loop: the former
    /// O(candidates × threads) history scan becomes O(threads)
    /// followed by O(|priorset|) clock work per candidate. Verdicts,
    /// rejection counts, and mo-graph node creation order are
    /// identical to running the unhoisted checks per candidate.
    pub fn feasible_read_candidates_into(
        &mut self,
        t: ThreadId,
        obj: ObjId,
        order: MemOrder,
        for_rmw: bool,
        cands: &mut Vec<StoreIdx>,
    ) {
        let timer = phase_start(Phase::ReadFrom);
        self.read_candidates_into(t, obj, order, for_rmw, cands);
        if !cands.is_empty() {
            let mut bests = std::mem::take(&mut self.bests_buf);
            self.read_prior_bests_into(t, obj, order, &mut bests);
            let mut wbests = std::mem::take(&mut self.wbests_buf);
            if for_rmw {
                self.rmw_write_prior_set_into(t, obj, order, &mut wbests);
            }
            let mut pset = std::mem::take(&mut self.pset_buf);
            cands.retain(|&c| {
                let ok = self.sc_read_allowed(obj, order, c)
                    && self.read_prior_set_from_bests(&bests, c, &mut pset)
                    && (!for_rmw || self.rmw_store_feasible_from_wpset(&wbests, c));
                if !ok {
                    self.stats.candidates_rejected += 1;
                }
                ok
            });
            pset.clear();
            self.pset_buf = pset;
            bests.clear();
            self.bests_buf = bests;
            wbests.clear();
            self.wbests_buf = wbests;
        }
        if let Some(timer) = timer {
            timer.stop(&mut self.stats.phase);
        }
    }

    /// Step 3 of a load: commits the `rf` edge to `cand` and returns the
    /// value read.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `cand` is infeasible — callers must check
    /// first (the engine never rolls back, §4.3).
    pub fn commit_load(&mut self, t: ThreadId, obj: ObjId, order: MemOrder, cand: StoreIdx) -> u64 {
        let seq = self.next_event(t);
        let mut pset = std::mem::take(&mut self.pset_buf);
        let ok = self.read_prior_set_into(t, obj, order, cand, &mut pset);
        debug_assert!(ok, "commit_load of an infeasible candidate");
        let _ = ok;
        self.add_edges(&pset, cand);
        pset.clear();
        self.pset_buf = pset;
        self.apply_load_clocks(t, order, cand);

        let record = LoadRecord {
            tid: t,
            seq,
            obj,
            order,
            rf: cand,
            pruned: false,
        };
        let lidx = self.alloc_load(record);
        if self.coverage.collected {
            self.coverage.record_rf(
                obj.0,
                self.stores[cand.index()].tid.index() as u64,
                t.index() as u64,
            );
        }
        if Self::trace_enabled() {
            self.trace_buf.push(TraceEvent {
                kind: TraceKind::Load,
                thread: t.index() as u64,
                seq: self.loads[lidx.index()].seq.0,
                obj: obj.0,
                order: Self::order_name(order),
                access: "atomic",
                value: self.stores[cand.index()].value,
                rf: Some(self.stores[cand.index()].seq.0),
                old: None,
            });
        }
        self.loc_mut(obj)
            .thread_mut(t.index())
            .accesses
            .push(AccessRef::Load(lidx));
        self.stats.atomic_loads += 1;
        self.threads[t.index()].in_store_run = false;
        self.maybe_prune();
        self.stores[cand.index()].value
    }

    /// Fig. 9 `[ACQUIRE LOAD]` / `[RELAXED LOAD]`.
    fn apply_load_clocks(&mut self, t: ThreadId, order: MemOrder, src: StoreIdx) {
        let src_rf = self.stores[src.index()].rf_cv.clone();
        let thread = &mut self.threads[t.index()];
        if order.is_acquire() {
            thread.cv.union_with(&src_rf);
        } else {
            thread.fence_acq.union_with(&src_rf);
        }
    }

    // ------------------------------------------------------------------
    // Atomic RMW ([ATOMIC RMW], Fig. 11)
    // ------------------------------------------------------------------

    /// Commits an RMW that read `cand` (previously validated with
    /// [`Execution::check_read_feasible`] over the RMW candidate set)
    /// and wrote `new_value`. Returns the value read and the new store.
    ///
    /// The RMW is a single event: its load half applies the Fig. 9 load
    /// rules, `AddRMWEdge` orders it immediately after `cand` in the
    /// mo-graph, and its store half applies the store rules with the
    /// release sequence continuation.
    pub fn commit_rmw(
        &mut self,
        t: ThreadId,
        obj: ObjId,
        order: MemOrder,
        cand: StoreIdx,
        new_value: u64,
    ) -> (u64, StoreIdx) {
        debug_assert!(
            self.stores[cand.index()].rmw_read_by.is_none(),
            "RMW atomicity violated: candidate already consumed"
        );
        // Load half: prior-set edges into the store read from + clocks.
        {
            debug_assert!(
                self.check_rmw_store_feasible(t, obj, order, cand),
                "commit_rmw: store half would close a cycle"
            );
            let mut pset = std::mem::take(&mut self.pset_buf);
            let ok = self.read_prior_set_into(t, obj, order, cand, &mut pset);
            debug_assert!(ok, "commit_rmw of an infeasible candidate");
            let _ = ok;
            self.add_edges(&pset, cand);
            pset.clear();
            self.pset_buf = pset;
        }
        self.apply_load_clocks(t, order, cand);
        let old = self.stores[cand.index()].value;
        if self.coverage.collected {
            self.coverage.record_rf(
                obj.0,
                self.stores[cand.index()].tid.index() as u64,
                t.index() as u64,
            );
        }

        // Store half (assigns the event's sequence number; installs the
        // rmw edge before the write-prior-set edges, per Fig. 11).
        let idx = self.store_inner(
            t,
            obj,
            order,
            new_value,
            StoreKind::Atomic,
            true,
            Some(cand),
        );
        if Self::trace_enabled() {
            self.trace_buf.push(TraceEvent {
                kind: TraceKind::Rmw,
                thread: t.index() as u64,
                seq: self.stores[idx.index()].seq.0,
                obj: obj.0,
                order: Self::order_name(order),
                access: "atomic",
                value: new_value,
                rf: Some(self.stores[cand.index()].seq.0),
                old: Some(old),
            });
        }

        self.stats.rmws += 1;
        self.threads[t.index()].in_store_run = false;
        self.maybe_prune();
        (old, idx)
    }

    // ------------------------------------------------------------------
    // Fences ([ATOMIC FENCE], Fig. 11; fence rules, Fig. 9)
    // ------------------------------------------------------------------

    /// Executes a fence with the given order. Relaxed fences are no-ops.
    pub fn fence(&mut self, t: ThreadId, order: MemOrder) {
        if matches!(order, MemOrder::Relaxed) {
            return;
        }
        let seq = self.next_event(t);
        if Self::trace_enabled() {
            self.trace_buf.push(TraceEvent {
                kind: TraceKind::Fence,
                thread: t.index() as u64,
                seq: seq.0,
                obj: c11tester_telemetry::FENCE_OBJ,
                order: Self::order_name(order),
                access: "fence",
                value: 0,
                rf: None,
                old: None,
            });
        }
        if order.is_acquire() {
            let acq = self.threads[t.index()].fence_acq.clone();
            self.threads[t.index()].cv.union_with(&acq);
        }
        if order.is_release() {
            let cv = self.threads[t.index()].cv.clone();
            self.threads[t.index()].fence_rel = cv;
        }
        if order.is_seq_cst() {
            let fidx = FenceIdx(self.fences.len() as u32);
            self.fences.push(FenceRecord { tid: t, seq, order });
            self.threads[t.index()].sc_fences.push(fidx);
        }
        if order.is_release() {
            self.release_bump(t);
        }
        self.stats.fences += 1;
        self.threads[t.index()].in_store_run = false;
        self.maybe_prune();
    }

    /// Records a synchronization-only event (used by the facade for
    /// operations like condvar notify that are scheduling-visible but
    /// have no memory-model effect of their own).
    pub fn sync_event(&mut self, t: ThreadId) {
        self.next_event(t);
        self.stats.sync_ops += 1;
        self.threads[t.index()].in_store_run = false;
    }

    /// Counts a non-atomic shared-memory access (Table 3 bookkeeping;
    /// the race detector handles the semantics).
    pub fn count_normal_access(&mut self) {
        self.stats.normal_accesses += 1;
    }

    // ------------------------------------------------------------------
    // Queries used by tests and the race layer
    // ------------------------------------------------------------------

    /// Does event `(t1, s1)` happen-before the *current* point of `t2`?
    pub fn hb_before_now(&self, t1: ThreadId, s1: SeqNum, t2: ThreadId) -> bool {
        s1.0 <= self.threads[t2.index()].cv.get(t1)
    }

    /// Live (non-pruned) stores at a location, in no particular order.
    pub fn stores_at(&self, obj: ObjId) -> Vec<StoreIdx> {
        match self.loc(obj) {
            None => Vec::new(),
            Some(loc) => loc
                .threads()
                .flat_map(|(_, h)| h.stores.iter().copied())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a fixed little program and returns everything observable.
    fn drive(e: &mut Execution) -> (Vec<u64>, ExecStats, u64) {
        let main = ThreadId::MAIN;
        let x = e.new_object();
        let y = e.new_object();
        e.atomic_store(main, x, MemOrder::Relaxed, 0, StoreKind::Atomic);
        e.atomic_store(main, y, MemOrder::Relaxed, 0, StoreKind::Atomic);
        let t1 = e.fork(main);
        let s1 = e.atomic_store(t1, x, MemOrder::Release, 1, StoreKind::Atomic);
        e.fence(t1, MemOrder::SeqCst);
        let (old, _) = e.commit_rmw(t1, y, MemOrder::AcqRel, e.stores_at(y)[0], 7);
        assert_eq!(old, 0);
        e.finish_thread(t1);
        e.join(main, t1);
        let v = e.commit_load(main, x, MemOrder::Acquire, s1);
        assert_eq!(v, 1);
        let feasible: Vec<u64> = e
            .feasible_read_candidates(main, y, MemOrder::Acquire, false)
            .into_iter()
            .map(|s| e.store_value(s))
            .collect();
        (feasible, *e.stats(), e.now().0)
    }

    /// The determinism contract of recycling: a reset execution is
    /// observationally identical to a fresh one.
    #[test]
    fn reset_execution_is_observationally_fresh() {
        let mut fresh = Execution::new(Policy::C11Tester);
        let reference = drive(&mut fresh);

        let mut recycled = Execution::new(Policy::C11Tester);
        let _ = drive(&mut recycled);
        recycled.reset(Policy::C11Tester, PruneConfig::disabled());
        assert_eq!(recycled.now().0, 1);
        assert_eq!(recycled.thread_count(), 1);
        assert!(recycled.mograph().is_empty());
        let replay = drive(&mut recycled);

        assert_eq!(replay, reference);
        // Provisioning diagnostics do record the difference.
        assert_eq!(recycled.stats().alloc.recycled_executions, 1);
        assert_eq!(recycled.stats().alloc.fresh_executions, 0);
        assert_eq!(fresh.stats().alloc.fresh_executions, 1);
    }

    /// Reset also rewinds object-id allocation and location state.
    #[test]
    fn reset_reuses_object_ids_with_clean_histories() {
        let mut e = Execution::new(Policy::C11Tester);
        let main = ThreadId::MAIN;
        let x = e.new_object();
        e.atomic_store(main, x, MemOrder::Relaxed, 5, StoreKind::Atomic);
        assert_eq!(e.stores_at(x).len(), 1);
        e.reset(Policy::C11Tester, PruneConfig::disabled());
        let x2 = e.new_object();
        assert_eq!(x2, x, "object ids restart from zero");
        assert!(e.stores_at(x2).is_empty(), "no stale history");
        assert!(
            e.read_candidates(main, x2, MemOrder::Relaxed, false)
                .is_empty(),
            "no stale read candidates"
        );
    }
}
