//! The modification-order graph (paper §4, Figures 5–7).
//!
//! Nodes represent stores (or the store halves of RMWs). Two edge kinds
//! exist:
//!
//! * an **mo edge** `A → B` encodes the constraint `A mo→ B`;
//! * an **rmw edge** `A ⇒ R` encodes that RMW `R` read from `A` and must
//!   be *immediately* modification-ordered after `A`.
//!
//! The set of constraints is satisfiable iff the graph is acyclic, and
//! C11Tester's central performance trick (§4.2) is to answer
//! reachability queries — the only queries the rollback-free feasibility
//! check of §4.3 needs — with per-node clock vectors instead of graph
//! traversals. Theorem 1: for two same-location nodes in an acyclic
//! graph, `CV_A ≤ CV_B ⇔ B is reachable from A`.

use crate::clock::ClockVector;
use crate::event::{ObjId, SeqNum, ThreadId};
use std::collections::VecDeque;

/// Index of a node in the [`MoGraph`] arena.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single store node in the mo-graph.
#[derive(Clone, Debug)]
pub struct Node {
    /// Mo-graph clock vector of this node (not a happens-before clock!).
    pub cv: ClockVector,
    /// Outgoing mo edges.
    pub edges: Vec<NodeId>,
    /// Outgoing rmw edge, if an RMW read from this store.
    pub rmw: Option<NodeId>,
    /// Thread that performed the store.
    pub tid: ThreadId,
    /// Sequence number of the store.
    pub seq: SeqNum,
    /// Location the store wrote.
    pub obj: ObjId,
    /// Tombstone flag set by pruning (§7.1): edges and clock storage are
    /// released but the arena slot survives so indices stay valid.
    pub pruned: bool,
}

/// Statistics about graph maintenance, surfaced in
/// [`crate::stats::ExecStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MoGraphStats {
    /// Edges actually inserted (after the redundancy check of `AddEdge`).
    pub edges_added: u64,
    /// Edges skipped because the clock-vector test proved them redundant.
    pub edges_redundant: u64,
    /// Clock-vector merges performed during propagation.
    pub merges: u64,
    /// rmw edges installed.
    pub rmw_edges: u64,
}

/// The modification-order constraint graph.
///
/// The node arena is **recyclable**: [`MoGraph::reset`] rewinds the
/// live count to zero without dropping the `Node`s, so a recycled
/// execution re-populates the same slots — retaining each node's
/// edge-list and (spilled) clock-vector capacity — instead of
/// reallocating per execution. Propagation uses a reusable scratch
/// worklist rather than cloning edge lists per visited node.
#[derive(Clone, Debug, Default)]
pub struct MoGraph {
    nodes: Vec<Node>,
    /// Number of live nodes; `nodes[live..]` are retired slots kept for
    /// recycling and must never be read.
    live: usize,
    stats: MoGraphStats,
    /// Reusable BFS worklist for clock-vector propagation.
    scratch: VecDeque<NodeId>,
    /// Reusable buffer for the edges migrated by `add_rmw_edge`.
    scratch_edges: Vec<NodeId>,
}

impl MoGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        MoGraph::default()
    }

    /// Rewinds the graph to empty for a recycled execution, retaining
    /// the node arena (and each node's edge/clock storage) for reuse.
    pub fn reset(&mut self) {
        self.live = 0;
        self.stats = MoGraphStats::default();
    }

    /// Adds a node for a store by `tid` with sequence number `seq` at
    /// location `obj`; its clock vector starts at `⊥CV` (own slot only).
    /// Reuses a retired arena slot when one is available.
    pub fn add_node(&mut self, tid: ThreadId, seq: SeqNum, obj: ObjId) -> NodeId {
        let id = NodeId(self.live as u32);
        if self.live < self.nodes.len() {
            // Recycled slot: re-initialize in place, keeping capacity.
            let n = &mut self.nodes[self.live];
            n.cv.clear();
            n.cv.set(tid, seq.0);
            n.edges.clear();
            n.rmw = None;
            n.tid = tid;
            n.seq = seq;
            n.obj = obj;
            n.pruned = false;
        } else {
            self.nodes.push(Node {
                cv: ClockVector::bottom_for(tid, seq),
                edges: Vec::new(),
                rmw: None,
                tid,
                seq,
                obj,
                pruned: false,
            });
        }
        self.live += 1;
        id
    }

    /// Immutable access to a node.
    pub fn node(&self, id: NodeId) -> &Node {
        debug_assert!(id.index() < self.live, "access to a retired node slot");
        &self.nodes[id.index()]
    }

    /// Number of live nodes (including pruned tombstones of the current
    /// execution, excluding retired slots of recycled ones).
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The live nodes as a slice.
    fn live_nodes(&self) -> &[Node] {
        &self.nodes[..self.live]
    }

    /// Number of live nodes whose clock vector spilled to the heap
    /// (allocation diagnostics).
    pub fn spilled_nodes(&self) -> u64 {
        self.live_nodes()
            .iter()
            .filter(|n| n.cv.is_spilled())
            .count() as u64
    }

    /// Graph-maintenance statistics.
    pub fn stats(&self) -> MoGraphStats {
        self.stats
    }

    /// `Merge` (Fig. 6): folds `src`'s clock vector into `dst`'s,
    /// reporting whether `dst` changed.
    fn merge(&mut self, dst: NodeId, src: NodeId) -> bool {
        if dst == src {
            return false;
        }
        let (d, s) = (dst.index(), src.index());
        // Split the borrow: indices are distinct.
        let (lo, hi) = if d < s { (d, s) } else { (s, d) };
        let (head, tail) = self.nodes.split_at_mut(hi);
        let (dst_node, src_node) = if d < s {
            (&mut head[lo], &tail[0])
        } else {
            (&mut tail[0], &head[lo])
        };
        if src_node.cv.leq(&dst_node.cv) {
            return false;
        }
        dst_node.cv.union_with(&src_node.cv);
        self.stats.merges += 1;
        true
    }

    /// `AddEdge` (Fig. 6): records the constraint `from mo→ to`, skipping
    /// redundant edges via the clock-vector test, redirecting through rmw
    /// chains, and propagating clock-vector changes breadth-first.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the edge closes a cycle — callers must
    /// run the §4.3 feasibility check first; the whole point of the
    /// design is that the graph never needs rollback.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        let mut from = from;
        if from == to {
            return;
        }
        {
            let fnode = &self.nodes[from.index()];
            let tnode = &self.nodes[to.index()];
            let must_add = fnode.rmw == Some(to) || fnode.tid == tnode.tid;
            if fnode.cv.leq(&tnode.cv) && !must_add {
                self.stats.edges_redundant += 1;
                return;
            }
        }
        // RMWs are ordered immediately after the store they read from:
        // follow the rmw chain so the edge lands after the chain's end.
        while let Some(next) = self.nodes[from.index()].rmw {
            if next == to {
                break;
            }
            from = next;
        }
        if from == to {
            return;
        }
        #[cfg(debug_assertions)]
        if self.reaches_slow(to, from) {
            eprintln!("=== mo-graph dump at cycle ===");
            for (ix, n) in self.live_nodes().iter().enumerate() {
                eprintln!(
                    "  node {ix}: {:?} {:?} {:?} cv={:?} edges={:?} rmw={:?}",
                    n.tid, n.seq, n.obj, n.cv, n.edges, n.rmw
                );
            }
            panic!(
                "mo-graph cycle: adding {from:?}{:?} -> {to:?}{:?} while the reverse path exists",
                (self.nodes[from.index()].tid, self.nodes[from.index()].seq),
                (self.nodes[to.index()].tid, self.nodes[to.index()].seq),
            );
        }
        if !self.nodes[from.index()].edges.contains(&to) {
            self.nodes[from.index()].edges.push(to);
            self.stats.edges_added += 1;
        }
        if self.merge(to, from) {
            self.propagate(to);
        }
    }

    /// Breadth-first clock-vector propagation from `start` over mo and
    /// rmw edges. Uses the reusable scratch worklist; `merge` never
    /// mutates edge lists, so nodes are walked by index without cloning
    /// their edges.
    fn propagate(&mut self, start: NodeId) {
        let mut queue = std::mem::take(&mut self.scratch);
        debug_assert!(queue.is_empty());
        queue.push_back(start);
        while let Some(node) = queue.pop_front() {
            let edge_count = self.nodes[node.index()].edges.len();
            for i in 0..edge_count {
                let dst = self.nodes[node.index()].edges[i];
                if self.merge(dst, node) {
                    queue.push_back(dst);
                }
            }
            if let Some(r) = self.nodes[node.index()].rmw {
                if self.merge(r, node) {
                    queue.push_back(r);
                }
            }
        }
        self.scratch = queue;
    }

    /// `AddRMWEdge` (Fig. 6): `rmw` read from `from`; installs the rmw
    /// edge, migrates `from`'s outgoing mo edges onto `rmw` (everything
    /// previously ordered after `from` is now ordered after `rmw`), and
    /// finally adds the ordinary mo edge with propagation.
    ///
    /// Propagation runs unconditionally from the RMW node: the migrated
    /// edges are new paths out of `rmw`, so their targets must absorb
    /// its clock vector even when `from`'s clock was already merged in
    /// by an earlier edge.
    pub fn add_rmw_edge(&mut self, from: NodeId, rmw: NodeId) {
        debug_assert!(
            self.nodes[from.index()].rmw.is_none(),
            "store {from:?} already feeds an RMW; at most one RMW may read from a store"
        );
        self.nodes[from.index()].rmw = Some(rmw);
        self.stats.rmw_edges += 1;
        let mut migrated = std::mem::take(&mut self.scratch_edges);
        debug_assert!(migrated.is_empty());
        migrated.extend(
            self.nodes[from.index()]
                .edges
                .iter()
                .copied()
                .filter(|&dst| dst != rmw),
        );
        for dst in &migrated {
            if !self.nodes[rmw.index()].edges.contains(dst) {
                self.nodes[rmw.index()].edges.push(*dst);
            }
        }
        migrated.clear();
        self.scratch_edges = migrated;
        self.nodes[from.index()].edges.clear();
        self.add_edge(from, rmw);
        // Forced propagation over the migrated edges.
        self.propagate(rmw);
    }

    /// Follows `start`'s rmw chain to its end, exactly as `AddEdge`
    /// does before inserting an edge (an edge from a store that feeds
    /// an RMW is redirected past the RMW to preserve immediacy). Stops
    /// early if the chain hits `stop`.
    pub fn chain_end(&self, start: NodeId, stop: NodeId) -> NodeId {
        let mut n = start;
        while let Some(next) = self.nodes[n.index()].rmw {
            if next == stop {
                break;
            }
            n = next;
        }
        n
    }

    /// Theorem 1 reachability: is `b` reachable from `a`?
    ///
    /// Only meaningful when both nodes write the same location (the
    /// paper's precondition for comparing mo-graph clock vectors).
    /// `a == b` answers `false` (we care about non-trivial paths).
    pub fn reaches(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return false;
        }
        let an = &self.nodes[a.index()];
        let bn = &self.nodes[b.index()];
        debug_assert_eq!(
            an.obj, bn.obj,
            "CV reachability compares same-location nodes"
        );
        an.cv.leq(&bn.cv)
    }

    /// Graph-traversal reachability oracle (the expensive check that
    /// clock vectors replace). Used by tests and debug assertions to
    /// validate Theorem 1.
    pub fn reaches_slow(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return false;
        }
        let mut seen = vec![false; self.live];
        let mut stack = vec![a];
        seen[a.index()] = true;
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n.index()];
            let succs = node.edges.iter().chain(node.rmw.iter());
            for &s in succs {
                if s == b {
                    return true;
                }
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        false
    }

    /// True if the graph currently contains a cycle (traversal-based;
    /// test/debug use only).
    pub fn has_cycle_slow(&self) -> bool {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut mark = vec![Mark::White; self.live];
        for start in 0..self.live {
            if mark[start] != Mark::White {
                continue;
            }
            // Iterative DFS with an explicit stack of (node, next-child).
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            mark[start] = Mark::Grey;
            while let Some(&(n, child)) = stack.last() {
                let node = &self.nodes[n];
                let succs: Vec<NodeId> = node.edges.iter().copied().chain(node.rmw).collect();
                if child < succs.len() {
                    stack.last_mut().expect("stack non-empty").1 += 1;
                    let s = succs[child].index();
                    match mark[s] {
                        Mark::Grey => return true,
                        Mark::White => {
                            mark[s] = Mark::Grey;
                            stack.push((s, 0));
                        }
                        Mark::Black => {}
                    }
                } else {
                    mark[n] = Mark::Black;
                    stack.pop();
                }
            }
        }
        false
    }

    /// Tombstones a node during pruning: **releases** its clock-vector
    /// heap storage and edge list. Pruned mo-graph nodes are not
    /// recycled within an execution, so retaining capacity here would
    /// defeat the §7.1 memory limiting the pass exists for (unlike
    /// [`MoGraph::reset`], whose retired slots are reused and keep
    /// their storage). The caller is responsible for ensuring no live
    /// node still needs reachability answers involving this node.
    pub fn prune_node(&mut self, id: NodeId) {
        let n = &mut self.nodes[id.index()];
        n.pruned = true;
        n.cv.release();
        n.edges = Vec::new();
        n.rmw = None;
    }

    /// Drops edges that point at pruned nodes (housekeeping after a
    /// pruning pass so traversal oracles stay meaningful).
    pub fn drop_edges_to_pruned(&mut self) {
        let pruned: Vec<bool> = self.live_nodes().iter().map(|n| n.pruned).collect();
        for n in &mut self.nodes[..self.live] {
            n.edges.retain(|e| !pruned[e.index()]);
            if let Some(r) = n.rmw {
                if pruned[r.index()] {
                    n.rmw = None;
                }
            }
        }
    }

    /// Approximate heap footprint of the graph in bytes (for the
    /// memory-limiting experiments of §7.1).
    pub fn approx_bytes(&self) -> usize {
        let mut total = self.nodes.capacity() * std::mem::size_of::<Node>();
        for n in self.live_nodes() {
            total += n.cv.len() * 8 + n.edges.capacity() * std::mem::size_of::<NodeId>();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ix: usize) -> ThreadId {
        ThreadId::from_index(ix)
    }

    fn graph() -> MoGraph {
        MoGraph::new()
    }

    const OBJ: ObjId = ObjId(1);

    #[test]
    fn single_edge_reachability() {
        let mut g = graph();
        let a = g.add_node(t(0), SeqNum(1), OBJ);
        let b = g.add_node(t(1), SeqNum(2), OBJ);
        g.add_edge(a, b);
        assert!(g.reaches(a, b));
        assert!(!g.reaches(b, a));
        assert!(g.reaches_slow(a, b));
        assert!(!g.reaches_slow(b, a));
    }

    #[test]
    fn transitive_reachability_via_cv() {
        let mut g = graph();
        let a = g.add_node(t(0), SeqNum(1), OBJ);
        let b = g.add_node(t(1), SeqNum(2), OBJ);
        let c = g.add_node(t(2), SeqNum(3), OBJ);
        g.add_edge(a, b);
        g.add_edge(b, c);
        assert!(g.reaches(a, c));
        assert!(!g.reaches(c, a));
    }

    #[test]
    fn propagation_updates_downstream_cvs() {
        // Build c -> d first, then a -> b -> c; d's CV must absorb a's.
        let mut g = graph();
        let a = g.add_node(t(0), SeqNum(1), OBJ);
        let b = g.add_node(t(1), SeqNum(2), OBJ);
        let c = g.add_node(t(2), SeqNum(3), OBJ);
        let d = g.add_node(t(3), SeqNum(4), OBJ);
        g.add_edge(c, d);
        g.add_edge(b, c);
        g.add_edge(a, b);
        assert!(g.reaches(a, d));
        assert!(g.reaches_slow(a, d));
        assert_eq!(g.node(d).cv.get(t(0)), 1);
        assert_eq!(g.node(d).cv.get(t(1)), 2);
        assert_eq!(g.node(d).cv.get(t(2)), 3);
    }

    #[test]
    fn redundant_edge_is_skipped() {
        let mut g = graph();
        let a = g.add_node(t(0), SeqNum(1), OBJ);
        let b = g.add_node(t(1), SeqNum(2), OBJ);
        let c = g.add_node(t(2), SeqNum(3), OBJ);
        g.add_edge(a, b);
        g.add_edge(b, c);
        let before = g.stats().edges_added;
        g.add_edge(a, c); // already implied
        assert_eq!(g.stats().edges_added, before);
        assert_eq!(g.stats().edges_redundant, 1);
        assert!(g.reaches(a, c));
    }

    #[test]
    fn same_thread_edge_is_forced_despite_cv() {
        // Same-thread nodes start with comparable bottom CVs, which would
        // make the redundancy test misfire without the mustAddEdge guard.
        let mut g = graph();
        let a = g.add_node(t(0), SeqNum(1), OBJ);
        let b = g.add_node(t(0), SeqNum(5), OBJ);
        assert!(g.node(a).cv.leq(&g.node(b).cv));
        g.add_edge(a, b);
        assert!(g.reaches_slow(a, b), "edge must be physically present");
        assert_eq!(g.stats().edges_added, 1);
    }

    #[test]
    fn rmw_edge_migrates_outgoing_edges() {
        // a --mo--> c; then RMW r reads from a: a's edge to c must move to
        // r, so the final order is a, r, c.
        let mut g = graph();
        let a = g.add_node(t(0), SeqNum(1), OBJ);
        let c = g.add_node(t(1), SeqNum(2), OBJ);
        g.add_edge(a, c);
        let r = g.add_node(t(2), SeqNum(3), OBJ);
        g.add_rmw_edge(a, r);
        assert!(g.reaches(a, r));
        assert!(g.reaches(r, c));
        assert!(g.reaches(a, c));
        assert!(!g.reaches_slow(c, r));
        // a's only outgoing mo edge is now to the RMW (the migrated edge
        // to c lives on r).
        assert_eq!(g.node(a).edges, vec![r]);
        assert_eq!(g.node(a).rmw, Some(r));
        assert!(g.node(r).edges.contains(&c));
    }

    #[test]
    fn add_edge_respects_rmw_chain() {
        // r is an RMW after a. A later edge x -> a must be redirected to
        // land after the chain end (x -> a stays as incoming edge is fine;
        // the *outgoing* redirect case: adding a -> y must become r -> y).
        let mut g = graph();
        let a = g.add_node(t(0), SeqNum(1), OBJ);
        let r = g.add_node(t(1), SeqNum(2), OBJ);
        g.add_rmw_edge(a, r);
        let y = g.add_node(t(2), SeqNum(3), OBJ);
        g.add_edge(a, y); // must follow the rmw chain and become r -> y
        assert!(g.reaches(r, y));
        assert!(g.reaches_slow(r, y));
        // a's direct outgoing edges still only name the RMW.
        assert_eq!(g.node(a).edges, vec![r]);
    }

    #[test]
    fn cv_reachability_matches_dfs_on_random_dags() {
        // Theorem 1 assumes the invariant the execution layer maintains:
        // same-thread same-location stores are mo-ordered in program
        // order (CoWW). We materialize those chains first, then throw
        // random forward cross edges at the graph in random insertion
        // order, and require the CV test to agree exactly with DFS.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut g = graph();
            let n = 12usize;
            let nthreads = 4usize;
            let ids: Vec<NodeId> = (0..n)
                .map(|i| g.add_node(t(i % nthreads), SeqNum((i + 1) as u64), OBJ))
                .collect();
            for th in 0..nthreads {
                let own: Vec<usize> = (0..n).filter(|i| i % nthreads == th).collect();
                for w in own.windows(2) {
                    g.add_edge(ids[w[0]], ids[w[1]]);
                }
            }
            let mut edges: Vec<(usize, usize)> = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.gen_bool(0.25) {
                        edges.push((i, j));
                    }
                }
            }
            for k in (1..edges.len()).rev() {
                let j = rng.gen_range(0..=k);
                edges.swap(k, j);
            }
            for (i, j) in edges {
                g.add_edge(ids[i], ids[j]);
            }
            assert!(!g.has_cycle_slow());
            for i in 0..n {
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let fast = g.reaches(ids[i], ids[j]);
                    let slow = g.reaches_slow(ids[i], ids[j]);
                    assert_eq!(
                        fast, slow,
                        "seed {seed}: CV test and DFS disagree on {i}->{j}"
                    );
                }
            }
        }
    }

    #[test]
    fn prune_releases_node_storage() {
        let mut g = graph();
        let a = g.add_node(t(0), SeqNum(1), OBJ);
        let b = g.add_node(t(1), SeqNum(2), OBJ);
        g.add_edge(a, b);
        g.prune_node(a);
        g.drop_edges_to_pruned();
        assert!(g.node(a).pruned);
        assert!(g.node(a).edges.is_empty());
        assert!(g.node(a).cv.is_empty());
        assert!(!g.node(b).pruned);
    }

    #[test]
    fn reset_recycles_node_slots() {
        let mut g = graph();
        let a = g.add_node(t(0), SeqNum(1), OBJ);
        let b = g.add_node(t(1), SeqNum(2), OBJ);
        g.add_edge(a, b);
        let r = g.add_node(t(2), SeqNum(3), OBJ);
        g.add_rmw_edge(a, r);
        g.reset();
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
        assert_eq!(g.stats(), MoGraphStats::default());
        // Recycled slots must behave exactly like fresh nodes: no stale
        // edges, rmw pointers, clocks, or tombstones.
        let a2 = g.add_node(t(3), SeqNum(10), OBJ);
        let b2 = g.add_node(t(4), SeqNum(11), OBJ);
        assert_eq!(a2, a, "slot ids restart from zero");
        assert!(!g.node(a2).pruned);
        assert!(g.node(a2).edges.is_empty());
        assert_eq!(g.node(a2).rmw, None);
        assert_eq!(g.node(a2).cv.get(t(3)), 10);
        assert_eq!(g.node(a2).cv.get(t(0)), 0, "no stale clock slots");
        assert!(!g.reaches(a2, b2));
        g.add_edge(a2, b2);
        assert!(g.reaches(a2, b2));
        assert!(g.reaches_slow(a2, b2));
        assert_eq!(g.stats().edges_added, 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "mo-graph cycle")]
    fn debug_build_catches_cycles() {
        let mut g = graph();
        let a = g.add_node(t(0), SeqNum(1), OBJ);
        let b = g.add_node(t(1), SeqNum(2), OBJ);
        g.add_edge(a, b);
        g.add_edge(b, a);
    }
}
