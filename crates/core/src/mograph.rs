//! The modification-order graph (paper §4, Figures 5–7).
//!
//! Nodes represent stores (or the store halves of RMWs). Two edge kinds
//! exist:
//!
//! * an **mo edge** `A → B` encodes the constraint `A mo→ B`;
//! * an **rmw edge** `A ⇒ R` encodes that RMW `R` read from `A` and must
//!   be *immediately* modification-ordered after `A`.
//!
//! The set of constraints is satisfiable iff the graph is acyclic, and
//! C11Tester's central performance trick (§4.2) is to answer
//! reachability queries — the only queries the rollback-free feasibility
//! check of §4.3 needs — with per-node clock vectors instead of graph
//! traversals. Theorem 1: for two same-location nodes in an acyclic
//! graph, `CV_A ≤ CV_B ⇔ B is reachable from A`.
//!
//! # Incremental topological order
//!
//! On top of the clock vectors the graph maintains an **incremental
//! topological order** (Pearce–Kelly / Marchetti-Spaccamela-style): each
//! live node carries an order index, and every edge points from a lower
//! index to a higher one. Order-respecting insertions — the vast
//! majority, since stores mostly arrive in modification order — cost
//! O(1) extra. A violating insertion triggers a *bounded local reorder*
//! of only the affected index range (`shift_region`).
//!
//! The order index powers two fast paths:
//!
//! * [`MoGraph::reaches`] answers negative queries with one integer
//!   compare (`B` reachable from `A` requires `ord(A) < ord(B)`),
//!   skipping the clock-vector comparison entirely;
//! * `AddEdge`'s redundancy test short-circuits the same way.
//!
//! Both gates are exact for the queries the engine issues (same-location
//! live nodes under the CoWW invariant), so the canonical maintenance
//! counters — and therefore the canonical campaign reports — are
//! bit-identical to the traversal-free baseline.
//!
//! The order additionally enables **tombstone compaction** (§7.1 memory
//! limiting): [`MoGraph::compact`] physically evicts pruned nodes from
//! the arena, compacts survivors to the prefix while preserving their
//! relative topological positions, and returns a remap table so the
//! execution layer can rewrite its retained [`NodeId`]s.

use crate::clock::ClockVector;
use crate::event::{ObjId, SeqNum, ThreadId};
use std::cell::Cell;
use std::collections::VecDeque;

/// Index of a node in the [`MoGraph`] arena.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single store node in the mo-graph.
#[derive(Clone, Debug)]
pub struct Node {
    /// Mo-graph clock vector of this node (not a happens-before clock!).
    pub cv: ClockVector,
    /// Outgoing mo edges.
    pub edges: Vec<NodeId>,
    /// Outgoing rmw edge, if an RMW read from this store.
    pub rmw: Option<NodeId>,
    /// Thread that performed the store.
    pub tid: ThreadId,
    /// Sequence number of the store.
    pub seq: SeqNum,
    /// Location the store wrote.
    pub obj: ObjId,
    /// Tombstone flag set by pruning (§7.1): edges and clock storage are
    /// released but the arena slot survives so indices stay valid.
    pub pruned: bool,
}

/// Statistics about graph maintenance, surfaced in
/// [`crate::stats::ExecStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MoGraphStats {
    /// Edges actually inserted (after the redundancy check of `AddEdge`).
    pub edges_added: u64,
    /// Edges skipped because the clock-vector test proved them redundant.
    pub edges_redundant: u64,
    /// Clock-vector merges performed during propagation.
    pub merges: u64,
    /// rmw edges installed.
    pub rmw_edges: u64,
}

/// Diagnostic counters for the incremental-topological-order machinery
/// and §7.1 memory limiting. **Never canonical**: like allocation and
/// phase diagnostics these vary with build/host details and are
/// excluded from execution-equality checks and canonical reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MoGraphPerfStats {
    /// Edge insertions that violated the maintained order and triggered
    /// a bounded local reorder.
    pub order_reorders: u64,
    /// Total nodes touched (re-indexed region sizes) across reorders.
    pub reorder_nodes: u64,
    /// Reachability queries answered negatively by the order-index
    /// compare alone, skipping the clock-vector comparison.
    pub reach_fast_negative: u64,
    /// Reachability queries that fell through to the clock-vector test.
    pub reach_cv_checks: u64,
    /// Tombstone compaction passes run ([`MoGraph::compact`]).
    pub compactions: u64,
    /// Pruned nodes physically evicted from the arena by compaction.
    pub compacted_nodes: u64,
    /// High-water mark of arena-resident nodes (`len()`); under
    /// `--memory-limit` compaction this stays bounded instead of
    /// growing with execution length.
    pub peak_live_nodes: u64,
}

impl MoGraphPerfStats {
    /// The telemetry-crate mirror of these counters, for the
    /// `c11metrics/v1` diagnostic report (telemetry sits below this
    /// crate, so the conversion lives here).
    pub fn to_metrics(&self) -> c11tester_telemetry::GraphMetrics {
        c11tester_telemetry::GraphMetrics {
            order_reorders: self.order_reorders,
            reorder_nodes: self.reorder_nodes,
            reach_fast_negative: self.reach_fast_negative,
            reach_cv_checks: self.reach_cv_checks,
            compactions: self.compactions,
            compacted_nodes: self.compacted_nodes,
            peak_live_nodes: self.peak_live_nodes,
        }
    }

    /// Folds another sample into this one: counters sum, the high-water
    /// mark takes the max.
    pub fn absorb(&mut self, other: &MoGraphPerfStats) {
        self.order_reorders += other.order_reorders;
        self.reorder_nodes += other.reorder_nodes;
        self.reach_fast_negative += other.reach_fast_negative;
        self.reach_cv_checks += other.reach_cv_checks;
        self.compactions += other.compactions;
        self.compacted_nodes += other.compacted_nodes;
        self.peak_live_nodes = self.peak_live_nodes.max(other.peak_live_nodes);
    }
}

/// The modification-order constraint graph.
///
/// The node arena is **recyclable**: [`MoGraph::reset`] rewinds the
/// live count to zero without dropping the `Node`s, so a recycled
/// execution re-populates the same slots — retaining each node's
/// edge-list and (spilled) clock-vector capacity — instead of
/// reallocating per execution. Propagation uses a reusable scratch
/// worklist rather than cloning edge lists per visited node.
///
/// Invariant: `order` is a topological order of the live nodes —
/// `order[p]` is the node at position `p`, `ord[n]` its inverse — and
/// every mo/rmw edge `u → v` satisfies `ord[u] < ord[v]`.
#[derive(Clone, Debug, Default)]
pub struct MoGraph {
    nodes: Vec<Node>,
    /// Number of live nodes; `nodes[live..]` are retired slots kept for
    /// recycling and must never be read.
    live: usize,
    stats: MoGraphStats,
    /// Topological position of each node (indexed by node index;
    /// entries at or above `live` are stale).
    ord: Vec<u32>,
    /// Node at each topological position; always `live` entries.
    order: Vec<NodeId>,
    /// Live nodes currently tombstoned by pruning (compaction resets
    /// this when it evicts them).
    pruned_count: usize,
    perf: MoGraphPerfStats,
    /// Reachability-query counters; `Cell` because [`MoGraph::reaches`]
    /// takes `&self` on the hot path.
    reach_fast: Cell<u64>,
    reach_cv: Cell<u64>,
    /// Reusable BFS worklist for clock-vector propagation.
    scratch: VecDeque<NodeId>,
    /// Reusable buffer for the edges migrated by `add_rmw_edge`.
    scratch_edges: Vec<NodeId>,
    /// Reusable DFS stack for order repair.
    dfs: Vec<NodeId>,
    /// Reusable node markers (all false between operations), sized with
    /// the arena.
    in_f: Vec<bool>,
    /// Reusable staging buffer for the reorder partition.
    reorder_tmp: Vec<NodeId>,
    /// Remap table built by the latest [`MoGraph::compact`].
    remap: Vec<Option<NodeId>>,
}

impl MoGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        MoGraph::default()
    }

    /// Rewinds the graph to empty for a recycled execution, retaining
    /// the node arena (and each node's edge/clock storage) for reuse.
    pub fn reset(&mut self) {
        self.live = 0;
        self.stats = MoGraphStats::default();
        self.order.clear();
        self.pruned_count = 0;
        self.perf = MoGraphPerfStats::default();
        self.reach_fast.set(0);
        self.reach_cv.set(0);
    }

    /// Adds a node for a store by `tid` with sequence number `seq` at
    /// location `obj`; its clock vector starts at `⊥CV` (own slot only).
    /// Reuses a retired arena slot when one is available. A fresh node
    /// has no edges, so appending it at the end of the topological
    /// order keeps the order valid.
    pub fn add_node(&mut self, tid: ThreadId, seq: SeqNum, obj: ObjId) -> NodeId {
        let id = NodeId(self.live as u32);
        debug_assert_eq!(self.order.len(), self.live);
        let pos = self.live as u32;
        if self.live < self.nodes.len() {
            // Recycled slot: re-initialize in place, keeping capacity.
            let n = &mut self.nodes[self.live];
            n.cv.clear();
            n.cv.set(tid, seq.0);
            n.edges.clear();
            n.rmw = None;
            n.tid = tid;
            n.seq = seq;
            n.obj = obj;
            n.pruned = false;
            self.ord[self.live] = pos;
        } else {
            self.nodes.push(Node {
                cv: ClockVector::bottom_for(tid, seq),
                edges: Vec::new(),
                rmw: None,
                tid,
                seq,
                obj,
                pruned: false,
            });
            self.ord.push(pos);
            self.in_f.push(false);
        }
        self.order.push(id);
        self.live += 1;
        self.perf.peak_live_nodes = self.perf.peak_live_nodes.max(self.live as u64);
        id
    }

    /// Immutable access to a node.
    pub fn node(&self, id: NodeId) -> &Node {
        debug_assert!(id.index() < self.live, "access to a retired node slot");
        &self.nodes[id.index()]
    }

    /// Number of live nodes (including pruned tombstones of the current
    /// execution, excluding retired slots of recycled ones).
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The live nodes as a slice.
    fn live_nodes(&self) -> &[Node] {
        &self.nodes[..self.live]
    }

    /// Number of live nodes whose clock vector spilled to the heap
    /// (allocation diagnostics).
    pub fn spilled_nodes(&self) -> u64 {
        self.live_nodes()
            .iter()
            .filter(|n| n.cv.is_spilled())
            .count() as u64
    }

    /// Graph-maintenance statistics.
    pub fn stats(&self) -> MoGraphStats {
        self.stats
    }

    /// Diagnostic incremental-order / memory-limiting counters.
    pub fn perf_stats(&self) -> MoGraphPerfStats {
        let mut p = self.perf;
        p.reach_fast_negative = self.reach_fast.get();
        p.reach_cv_checks = self.reach_cv.get();
        p
    }

    /// Topological position of a live node (test/diagnostic accessor;
    /// the invariant is `ord(u) < ord(v)` for every edge `u → v`).
    pub fn order_index(&self, id: NodeId) -> u32 {
        debug_assert!(id.index() < self.live, "order of a retired node slot");
        self.ord[id.index()]
    }

    /// `Merge` (Fig. 6): folds `src`'s clock vector into `dst`'s,
    /// reporting whether `dst` changed.
    fn merge(&mut self, dst: NodeId, src: NodeId) -> bool {
        if dst == src {
            return false;
        }
        let (d, s) = (dst.index(), src.index());
        // Split the borrow: indices are distinct.
        let (lo, hi) = if d < s { (d, s) } else { (s, d) };
        let (head, tail) = self.nodes.split_at_mut(hi);
        let (dst_node, src_node) = if d < s {
            (&mut head[lo], &tail[0])
        } else {
            (&mut tail[0], &head[lo])
        };
        if src_node.cv.leq(&dst_node.cv) {
            return false;
        }
        dst_node.cv.union_with(&src_node.cv);
        self.stats.merges += 1;
        true
    }

    /// `AddEdge` (Fig. 6): records the constraint `from mo→ to`, skipping
    /// redundant edges via the order-index/clock-vector test, redirecting
    /// through rmw chains, repairing the topological order when the new
    /// edge violates it, and propagating clock-vector changes
    /// breadth-first.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the edge closes a cycle — callers must
    /// run the §4.3 feasibility check first; the whole point of the
    /// design is that the graph never needs rollback.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        let mut from = from;
        if from == to {
            return;
        }
        {
            let fnode = &self.nodes[from.index()];
            let tnode = &self.nodes[to.index()];
            let must_add = fnode.rmw == Some(to) || fnode.tid == tnode.tid;
            // Order gate first: redundancy (`from` already reaches `to`)
            // requires ord(from) < ord(to), so most non-redundant edges
            // skip the clock comparison. Exact: for the same-location
            // live nodes the engine passes here, CV-≤ implies
            // reachability implies the order relation.
            if !must_add && self.ord[from.index()] < self.ord[to.index()] && fnode.cv.leq(&tnode.cv)
            {
                self.stats.edges_redundant += 1;
                return;
            }
        }
        // RMWs are ordered immediately after the store they read from:
        // follow the rmw chain so the edge lands after the chain's end.
        while let Some(next) = self.nodes[from.index()].rmw {
            if next == to {
                break;
            }
            from = next;
        }
        if from == to {
            return;
        }
        #[cfg(debug_assertions)]
        if self.reaches_slow(to, from) {
            eprintln!("=== mo-graph dump at cycle ===");
            for (ix, n) in self.live_nodes().iter().enumerate() {
                eprintln!(
                    "  node {ix}: {:?} {:?} {:?} cv={:?} edges={:?} rmw={:?}",
                    n.tid, n.seq, n.obj, n.cv, n.edges, n.rmw
                );
            }
            panic!(
                "mo-graph cycle: adding {from:?}{:?} -> {to:?}{:?} while the reverse path exists",
                (self.nodes[from.index()].tid, self.nodes[from.index()].seq),
                (self.nodes[to.index()].tid, self.nodes[to.index()].seq),
            );
        }
        if !self.nodes[from.index()].edges.contains(&to) {
            self.nodes[from.index()].edges.push(to);
            self.stats.edges_added += 1;
            // An edge already present respects the order by the
            // invariant; only a newly inserted one can violate it.
            if self.ord[from.index()] > self.ord[to.index()] {
                self.restore_order(from, to);
            }
        }
        if self.merge(to, from) {
            self.propagate(to);
        }
    }

    /// Repairs the topological order after inserting the violating edge
    /// `from → to` (`ord(from) > ord(to)`): seeds the affected region
    /// at `to` and shifts everything `to` reaches past `from`.
    fn restore_order(&mut self, from: NodeId, to: NodeId) {
        let lo = self.ord[to.index()] as usize;
        let hi = self.ord[from.index()] as usize;
        debug_assert!(self.dfs.is_empty());
        self.in_f[to.index()] = true;
        self.dfs.push(to);
        self.shift_region(lo, hi);
        debug_assert!(
            self.ord[from.index()] < self.ord[to.index()],
            "reorder failed to restore the edge {from:?} -> {to:?}"
        );
    }

    /// Bounded local reorder (the MNR/Pearce–Kelly "shift" step): given
    /// seed nodes already pushed on `self.dfs` (and marked in
    /// `self.in_f`) whose positions lie in `[lo, hi]`, computes the set
    /// `F` of nodes forward-reachable from the seeds within positions
    /// `≤ hi`, then stable-partitions the position range `[lo, hi]`
    /// into non-`F` nodes followed by `F` nodes. Positions outside the
    /// range are untouched.
    ///
    /// This restores the order invariant provided no seed reaches a
    /// node that must precede it (i.e. the graph is acyclic and every
    /// violating edge's *source* is outside `F`): `F` is closed under
    /// in-range successors, and both blocks preserve relative order.
    fn shift_region(&mut self, lo: usize, hi: usize) {
        let mut stack = std::mem::take(&mut self.dfs);
        while let Some(n) = stack.pop() {
            let edge_count = self.nodes[n.index()].edges.len();
            for i in 0..edge_count {
                let s = self.nodes[n.index()].edges[i];
                if (self.ord[s.index()] as usize) <= hi && !self.in_f[s.index()] {
                    self.in_f[s.index()] = true;
                    stack.push(s);
                }
            }
            if let Some(r) = self.nodes[n.index()].rmw {
                if (self.ord[r.index()] as usize) <= hi && !self.in_f[r.index()] {
                    self.in_f[r.index()] = true;
                    stack.push(r);
                }
            }
        }
        self.dfs = stack;
        let mut tmp = std::mem::take(&mut self.reorder_tmp);
        debug_assert!(tmp.is_empty());
        for p in lo..=hi {
            let n = self.order[p];
            if !self.in_f[n.index()] {
                tmp.push(n);
            }
        }
        for p in lo..=hi {
            let n = self.order[p];
            if self.in_f[n.index()] {
                tmp.push(n);
                self.in_f[n.index()] = false;
            }
        }
        debug_assert_eq!(tmp.len(), hi - lo + 1);
        for (off, &n) in tmp.iter().enumerate() {
            let p = lo + off;
            self.order[p] = n;
            self.ord[n.index()] = p as u32;
        }
        tmp.clear();
        self.reorder_tmp = tmp;
        self.perf.order_reorders += 1;
        self.perf.reorder_nodes += (hi - lo + 1) as u64;
    }

    /// Breadth-first clock-vector propagation from `start` over mo and
    /// rmw edges. Uses the reusable scratch worklist; `merge` never
    /// mutates edge lists, so nodes are walked by index without cloning
    /// their edges.
    fn propagate(&mut self, start: NodeId) {
        let mut queue = std::mem::take(&mut self.scratch);
        debug_assert!(queue.is_empty());
        queue.push_back(start);
        while let Some(node) = queue.pop_front() {
            let edge_count = self.nodes[node.index()].edges.len();
            for i in 0..edge_count {
                let dst = self.nodes[node.index()].edges[i];
                if self.merge(dst, node) {
                    queue.push_back(dst);
                }
            }
            if let Some(r) = self.nodes[node.index()].rmw {
                if self.merge(r, node) {
                    queue.push_back(r);
                }
            }
        }
        self.scratch = queue;
    }

    /// `AddRMWEdge` (Fig. 6): `rmw` read from `from`; installs the rmw
    /// edge, migrates `from`'s outgoing mo edges onto `rmw` (everything
    /// previously ordered after `from` is now ordered after `rmw`), and
    /// finally adds the ordinary mo edge with propagation.
    ///
    /// Migration deduplicates against `rmw`'s existing targets with a
    /// marker sweep — O(d) over the degree instead of the quadratic
    /// per-edge `contains` scan — and repairs the topological order for
    /// all migrated targets in **one** batched shift (seeded at every
    /// migrated target ordered before `rmw`) rather than one reorder
    /// per edge.
    ///
    /// Propagation runs unconditionally from the RMW node: the migrated
    /// edges are new paths out of `rmw`, so their targets must absorb
    /// its clock vector even when `from`'s clock was already merged in
    /// by an earlier edge.
    pub fn add_rmw_edge(&mut self, from: NodeId, rmw: NodeId) {
        debug_assert!(
            self.nodes[from.index()].rmw.is_none(),
            "store {from:?} already feeds an RMW; at most one RMW may read from a store"
        );
        self.nodes[from.index()].rmw = Some(rmw);
        self.stats.rmw_edges += 1;
        // The rmw pointer is itself an edge; repair its order first
        // (rare — callers create the RMW node right before this call,
        // so it normally sits at the end of the order already).
        if self.ord[from.index()] > self.ord[rmw.index()] {
            self.restore_order(from, rmw);
        }
        let mut migrated = std::mem::take(&mut self.scratch_edges);
        debug_assert!(migrated.is_empty());
        migrated.extend(
            self.nodes[from.index()]
                .edges
                .iter()
                .copied()
                .filter(|&dst| dst != rmw),
        );
        self.nodes[from.index()].edges.clear();
        // O(d) dedup: mark rmw's existing targets, append unmarked
        // migrated ones, then unmark everything.
        for i in 0..self.nodes[rmw.index()].edges.len() {
            let e = self.nodes[rmw.index()].edges[i];
            self.in_f[e.index()] = true;
        }
        for &dst in &migrated {
            if !self.in_f[dst.index()] {
                self.in_f[dst.index()] = true;
                self.nodes[rmw.index()].edges.push(dst);
            }
        }
        for i in 0..self.nodes[rmw.index()].edges.len() {
            let e = self.nodes[rmw.index()].edges[i];
            self.in_f[e.index()] = false;
        }
        // Batched order repair: every migrated target ordered before
        // `rmw` seeds one shift over the smallest covering region.
        let hi = self.ord[rmw.index()] as usize;
        let mut lo = hi;
        debug_assert!(self.dfs.is_empty());
        for &dst in &migrated {
            let p = self.ord[dst.index()] as usize;
            if p < hi && !self.in_f[dst.index()] {
                self.in_f[dst.index()] = true;
                self.dfs.push(dst);
                lo = lo.min(p);
            }
        }
        migrated.clear();
        self.scratch_edges = migrated;
        if !self.dfs.is_empty() {
            self.shift_region(lo, hi);
        }
        self.add_edge(from, rmw);
        // Forced propagation over the migrated edges.
        self.propagate(rmw);
    }

    /// Follows `start`'s rmw chain to its end, exactly as `AddEdge`
    /// does before inserting an edge (an edge from a store that feeds
    /// an RMW is redirected past the RMW to preserve immediacy). Stops
    /// early if the chain hits `stop`.
    pub fn chain_end(&self, start: NodeId, stop: NodeId) -> NodeId {
        let mut n = start;
        while let Some(next) = self.nodes[n.index()].rmw {
            if next == stop {
                break;
            }
            n = next;
        }
        n
    }

    /// Theorem 1 reachability: is `b` reachable from `a`?
    ///
    /// Only meaningful when both nodes write the same location (the
    /// paper's precondition for comparing mo-graph clock vectors).
    /// `a == b` answers `false` (we care about non-trivial paths).
    ///
    /// Gated on the topological order: reachability requires
    /// `ord(a) < ord(b)`, so most negative queries resolve with one
    /// integer compare and never touch the clock vectors.
    pub fn reaches(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return false;
        }
        let an = &self.nodes[a.index()];
        let bn = &self.nodes[b.index()];
        debug_assert_eq!(
            an.obj, bn.obj,
            "CV reachability compares same-location nodes"
        );
        if self.ord[a.index()] >= self.ord[b.index()] {
            self.reach_fast.set(self.reach_fast.get() + 1);
            // Exactness of the gate for live nodes: CV-≤ implies
            // reachability implies the order relation. (Pruned nodes
            // have released — vacuously comparable — clocks; the
            // engine never queries them.)
            debug_assert!(
                an.pruned || bn.pruned || !an.cv.leq(&bn.cv),
                "order gate disagrees with Theorem 1 for {a:?} -> {b:?}"
            );
            return false;
        }
        self.reach_cv.set(self.reach_cv.get() + 1);
        an.cv.leq(&bn.cv)
    }

    /// Graph-traversal reachability oracle (the expensive check that
    /// clock vectors replace). Used by tests and debug assertions to
    /// validate Theorem 1.
    pub fn reaches_slow(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return false;
        }
        let mut seen = vec![false; self.live];
        let mut stack = vec![a];
        seen[a.index()] = true;
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n.index()];
            let succs = node.edges.iter().chain(node.rmw.iter());
            for &s in succs {
                if s == b {
                    return true;
                }
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        false
    }

    /// True if the graph currently contains a cycle (traversal-based;
    /// test/debug use only).
    pub fn has_cycle_slow(&self) -> bool {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut mark = vec![Mark::White; self.live];
        for start in 0..self.live {
            if mark[start] != Mark::White {
                continue;
            }
            // Iterative DFS with an explicit stack of (node, next-child).
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            mark[start] = Mark::Grey;
            while let Some(&(n, child)) = stack.last() {
                let node = &self.nodes[n];
                let succs: Vec<NodeId> = node.edges.iter().copied().chain(node.rmw).collect();
                if child < succs.len() {
                    stack.last_mut().expect("stack non-empty").1 += 1;
                    let s = succs[child].index();
                    match mark[s] {
                        Mark::Grey => return true,
                        Mark::White => {
                            mark[s] = Mark::Grey;
                            stack.push((s, 0));
                        }
                        Mark::Black => {}
                    }
                } else {
                    mark[n] = Mark::Black;
                    stack.pop();
                }
            }
        }
        false
    }

    /// Validates the order invariant by traversal (test/debug use
    /// only): every mo/rmw edge goes forward in the maintained order,
    /// and `order`/`ord` are mutually inverse over the live nodes.
    pub fn order_is_valid_slow(&self) -> bool {
        if self.order.len() != self.live {
            return false;
        }
        for (p, &n) in self.order.iter().enumerate() {
            if n.index() >= self.live || self.ord[n.index()] as usize != p {
                return false;
            }
        }
        for (ix, node) in self.live_nodes().iter().enumerate() {
            let succs = node.edges.iter().chain(node.rmw.iter());
            for &s in succs {
                if self.ord[ix] >= self.ord[s.index()] {
                    return false;
                }
            }
        }
        true
    }

    /// Tombstones a node during pruning: **releases** its clock-vector
    /// heap storage and edge list. Pruned mo-graph nodes are not
    /// recycled within an execution, so retaining capacity here would
    /// defeat the §7.1 memory limiting the pass exists for (unlike
    /// [`MoGraph::reset`], whose retired slots are reused and keep
    /// their storage). The caller is responsible for ensuring no live
    /// node still needs reachability answers involving this node.
    pub fn prune_node(&mut self, id: NodeId) {
        let n = &mut self.nodes[id.index()];
        if !n.pruned {
            self.pruned_count += 1;
        }
        n.pruned = true;
        n.cv.release();
        n.edges = Vec::new();
        n.rmw = None;
    }

    /// Number of live nodes currently tombstoned by pruning.
    pub fn pruned_len(&self) -> usize {
        self.pruned_count
    }

    /// Drops edges that point at pruned nodes (housekeeping after a
    /// pruning pass so traversal oracles stay meaningful).
    pub fn drop_edges_to_pruned(&mut self) {
        let pruned: Vec<bool> = self.live_nodes().iter().map(|n| n.pruned).collect();
        for n in &mut self.nodes[..self.live] {
            n.edges.retain(|e| !pruned[e.index()]);
            if let Some(r) = n.rmw {
                if pruned[r.index()] {
                    n.rmw = None;
                }
            }
        }
    }

    /// §7.1 memory limiting: physically evicts pruned tombstones from
    /// the arena. Survivors are compacted to the arena prefix in arena
    /// order (edge removal never reorders, so their relative
    /// topological positions survive the move), vacated slots become
    /// retired slots available for recycling, and the maintained
    /// topological order is rebuilt over the survivors.
    ///
    /// Returns the remap table — `remap[old_index]` is the survivor's
    /// new id, or `None` for an evicted tombstone. **The caller must
    /// rewrite every retained [`NodeId`] through it**; stale ids point
    /// at the wrong (or a retired) slot afterwards.
    pub fn compact(&mut self) -> &[Option<NodeId>] {
        let old_live = self.live;
        self.remap.clear();
        self.remap.resize(old_live, None);
        let mut w = 0usize;
        for i in 0..old_live {
            if self.nodes[i].pruned {
                continue;
            }
            self.remap[i] = Some(NodeId(w as u32));
            if w != i {
                self.nodes.swap(w, i);
            }
            w += 1;
        }
        // Rewrite survivor edges through the remap. Edges to pruned
        // nodes should already be gone (`drop_edges_to_pruned`), but
        // dropping any straggler here keeps the pass self-contained.
        for n in &mut self.nodes[..w] {
            n.edges.retain_mut(|e| match self.remap[e.index()] {
                Some(new) => {
                    *e = new;
                    true
                }
                None => false,
            });
            if let Some(r) = n.rmw {
                n.rmw = self.remap[r.index()];
            }
        }
        // Rebuild the topological order over the survivors, preserving
        // their relative positions.
        let mut tmp = std::mem::take(&mut self.reorder_tmp);
        debug_assert!(tmp.is_empty());
        tmp.extend(self.order.iter().filter_map(|&n| self.remap[n.index()]));
        debug_assert_eq!(tmp.len(), w);
        self.order.clear();
        self.order.extend_from_slice(&tmp);
        for (p, &n) in tmp.iter().enumerate() {
            self.ord[n.index()] = p as u32;
        }
        tmp.clear();
        self.reorder_tmp = tmp;
        self.perf.compactions += 1;
        self.perf.compacted_nodes += (old_live - w) as u64;
        self.live = w;
        self.pruned_count = 0;
        &self.remap
    }

    /// Approximate heap footprint of the graph in bytes (for the
    /// memory-limiting experiments of §7.1).
    pub fn approx_bytes(&self) -> usize {
        let mut total = self.nodes.capacity() * std::mem::size_of::<Node>();
        for n in self.live_nodes() {
            total += n.cv.len() * 8 + n.edges.capacity() * std::mem::size_of::<NodeId>();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ix: usize) -> ThreadId {
        ThreadId::from_index(ix)
    }

    fn graph() -> MoGraph {
        MoGraph::new()
    }

    const OBJ: ObjId = ObjId(1);

    #[test]
    fn single_edge_reachability() {
        let mut g = graph();
        let a = g.add_node(t(0), SeqNum(1), OBJ);
        let b = g.add_node(t(1), SeqNum(2), OBJ);
        g.add_edge(a, b);
        assert!(g.reaches(a, b));
        assert!(!g.reaches(b, a));
        assert!(g.reaches_slow(a, b));
        assert!(!g.reaches_slow(b, a));
        assert!(g.order_is_valid_slow());
    }

    #[test]
    fn transitive_reachability_via_cv() {
        let mut g = graph();
        let a = g.add_node(t(0), SeqNum(1), OBJ);
        let b = g.add_node(t(1), SeqNum(2), OBJ);
        let c = g.add_node(t(2), SeqNum(3), OBJ);
        g.add_edge(a, b);
        g.add_edge(b, c);
        assert!(g.reaches(a, c));
        assert!(!g.reaches(c, a));
    }

    #[test]
    fn propagation_updates_downstream_cvs() {
        // Build c -> d first, then a -> b -> c; d's CV must absorb a's.
        let mut g = graph();
        let a = g.add_node(t(0), SeqNum(1), OBJ);
        let b = g.add_node(t(1), SeqNum(2), OBJ);
        let c = g.add_node(t(2), SeqNum(3), OBJ);
        let d = g.add_node(t(3), SeqNum(4), OBJ);
        g.add_edge(c, d);
        g.add_edge(b, c);
        g.add_edge(a, b);
        assert!(g.reaches(a, d));
        assert!(g.reaches_slow(a, d));
        assert_eq!(g.node(d).cv.get(t(0)), 1);
        assert_eq!(g.node(d).cv.get(t(1)), 2);
        assert_eq!(g.node(d).cv.get(t(2)), 3);
        assert!(g.order_is_valid_slow());
    }

    #[test]
    fn redundant_edge_is_skipped() {
        let mut g = graph();
        let a = g.add_node(t(0), SeqNum(1), OBJ);
        let b = g.add_node(t(1), SeqNum(2), OBJ);
        let c = g.add_node(t(2), SeqNum(3), OBJ);
        g.add_edge(a, b);
        g.add_edge(b, c);
        let before = g.stats().edges_added;
        g.add_edge(a, c); // already implied
        assert_eq!(g.stats().edges_added, before);
        assert_eq!(g.stats().edges_redundant, 1);
        assert!(g.reaches(a, c));
    }

    #[test]
    fn same_thread_edge_is_forced_despite_cv() {
        // Same-thread nodes start with comparable bottom CVs, which would
        // make the redundancy test misfire without the mustAddEdge guard.
        let mut g = graph();
        let a = g.add_node(t(0), SeqNum(1), OBJ);
        let b = g.add_node(t(0), SeqNum(5), OBJ);
        assert!(g.node(a).cv.leq(&g.node(b).cv));
        g.add_edge(a, b);
        assert!(g.reaches_slow(a, b), "edge must be physically present");
        assert_eq!(g.stats().edges_added, 1);
    }

    #[test]
    fn rmw_edge_migrates_outgoing_edges() {
        // a --mo--> c; then RMW r reads from a: a's edge to c must move to
        // r, so the final order is a, r, c.
        let mut g = graph();
        let a = g.add_node(t(0), SeqNum(1), OBJ);
        let c = g.add_node(t(1), SeqNum(2), OBJ);
        g.add_edge(a, c);
        let r = g.add_node(t(2), SeqNum(3), OBJ);
        g.add_rmw_edge(a, r);
        assert!(g.reaches(a, r));
        assert!(g.reaches(r, c));
        assert!(g.reaches(a, c));
        assert!(!g.reaches_slow(c, r));
        // a's only outgoing mo edge is now to the RMW (the migrated edge
        // to c lives on r).
        assert_eq!(g.node(a).edges, vec![r]);
        assert_eq!(g.node(a).rmw, Some(r));
        assert!(g.node(r).edges.contains(&c));
        assert!(g.order_is_valid_slow(), "batched migration repairs order");
    }

    #[test]
    fn add_edge_respects_rmw_chain() {
        // r is an RMW after a. A later edge x -> a must be redirected to
        // land after the chain end (x -> a stays as incoming edge is fine;
        // the *outgoing* redirect case: adding a -> y must become r -> y).
        let mut g = graph();
        let a = g.add_node(t(0), SeqNum(1), OBJ);
        let r = g.add_node(t(1), SeqNum(2), OBJ);
        g.add_rmw_edge(a, r);
        let y = g.add_node(t(2), SeqNum(3), OBJ);
        g.add_edge(a, y); // must follow the rmw chain and become r -> y
        assert!(g.reaches(r, y));
        assert!(g.reaches_slow(r, y));
        // a's direct outgoing edges still only name the RMW.
        assert_eq!(g.node(a).edges, vec![r]);
    }

    #[test]
    fn violating_insertion_triggers_bounded_reorder() {
        // b, c, a created in that order (so a sits last in the order),
        // then a -> b forces b (and its reachable set) past a.
        let mut g = graph();
        let b = g.add_node(t(0), SeqNum(1), OBJ);
        let c = g.add_node(t(1), SeqNum(2), OBJ);
        let a = g.add_node(t(2), SeqNum(3), OBJ);
        g.add_edge(b, c);
        assert_eq!(g.perf_stats().order_reorders, 0);
        g.add_edge(a, b); // ord(a)=2 > ord(b)=0: violating
        let p = g.perf_stats();
        assert_eq!(p.order_reorders, 1);
        assert_eq!(p.reorder_nodes, 3, "region [ord(b), ord(a)] spans 3 nodes");
        assert!(g.order_is_valid_slow());
        assert!(g.order_index(a) < g.order_index(b));
        assert!(g.order_index(b) < g.order_index(c));
        assert!(g.reaches(a, c));
        // Order-respecting insertions stay reorder-free.
        let d = g.add_node(t(3), SeqNum(4), OBJ);
        g.add_edge(c, d);
        assert_eq!(g.perf_stats().order_reorders, 1);
    }

    #[test]
    fn reaches_counts_fast_negative_queries() {
        let mut g = graph();
        let a = g.add_node(t(0), SeqNum(1), OBJ);
        let b = g.add_node(t(1), SeqNum(2), OBJ);
        g.add_edge(a, b);
        let before = g.perf_stats();
        assert!(!g.reaches(b, a), "order gate: ord(b) > ord(a)");
        assert!(g.reaches(a, b));
        let after = g.perf_stats();
        assert_eq!(after.reach_fast_negative, before.reach_fast_negative + 1);
        assert_eq!(after.reach_cv_checks, before.reach_cv_checks + 1);
    }

    #[test]
    fn cv_reachability_matches_dfs_on_random_dags() {
        // Theorem 1 assumes the invariant the execution layer maintains:
        // same-thread same-location stores are mo-ordered in program
        // order (CoWW). We materialize those chains first, then throw
        // random forward cross edges at the graph in random insertion
        // order, and require the CV test to agree exactly with DFS.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut g = graph();
            let n = 12usize;
            let nthreads = 4usize;
            let ids: Vec<NodeId> = (0..n)
                .map(|i| g.add_node(t(i % nthreads), SeqNum((i + 1) as u64), OBJ))
                .collect();
            for th in 0..nthreads {
                let own: Vec<usize> = (0..n).filter(|i| i % nthreads == th).collect();
                for w in own.windows(2) {
                    g.add_edge(ids[w[0]], ids[w[1]]);
                }
            }
            let mut edges: Vec<(usize, usize)> = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.gen_bool(0.25) {
                        edges.push((i, j));
                    }
                }
            }
            for k in (1..edges.len()).rev() {
                let j = rng.gen_range(0..=k);
                edges.swap(k, j);
            }
            for (i, j) in edges {
                g.add_edge(ids[i], ids[j]);
            }
            assert!(!g.has_cycle_slow());
            assert!(g.order_is_valid_slow(), "seed {seed}: order invariant");
            for i in 0..n {
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let fast = g.reaches(ids[i], ids[j]);
                    let slow = g.reaches_slow(ids[i], ids[j]);
                    assert_eq!(
                        fast, slow,
                        "seed {seed}: CV test and DFS disagree on {i}->{j}"
                    );
                }
            }
        }
    }

    #[test]
    fn prune_releases_node_storage() {
        let mut g = graph();
        let a = g.add_node(t(0), SeqNum(1), OBJ);
        let b = g.add_node(t(1), SeqNum(2), OBJ);
        g.add_edge(a, b);
        g.prune_node(a);
        g.drop_edges_to_pruned();
        assert!(g.node(a).pruned);
        assert!(g.node(a).edges.is_empty());
        assert!(g.node(a).cv.is_empty());
        assert!(!g.node(b).pruned);
        assert_eq!(g.pruned_len(), 1);
    }

    #[test]
    fn compact_evicts_tombstones_and_remaps_survivors() {
        let mut g = graph();
        let a = g.add_node(t(0), SeqNum(1), OBJ);
        let b = g.add_node(t(1), SeqNum(2), OBJ);
        let c = g.add_node(t(2), SeqNum(3), OBJ);
        let d = g.add_node(t(3), SeqNum(4), OBJ);
        g.add_edge(a, b);
        g.add_edge(b, c);
        g.add_edge(c, d);
        g.prune_node(a);
        g.prune_node(c);
        g.drop_edges_to_pruned();
        let remap: Vec<Option<NodeId>> = g.compact().to_vec();
        assert_eq!(remap.len(), 4);
        assert_eq!(remap[a.index()], None);
        assert_eq!(remap[c.index()], None);
        let (b2, d2) = (remap[b.index()].unwrap(), remap[d.index()].unwrap());
        assert_eq!(g.len(), 2);
        assert_eq!(g.pruned_len(), 0);
        assert!(g.order_is_valid_slow());
        // Survivor identity and *direct* edges survive the move (the
        // b -> c and c -> d edges died with c before compaction).
        assert_eq!(g.node(b2).seq, SeqNum(2));
        assert_eq!(g.node(d2).seq, SeqNum(4));
        assert!(g.node(b2).edges.is_empty());
        assert!(g.reaches(b2, d2), "clock vectors still witness b mo→ d");
        let p = g.perf_stats();
        assert_eq!(p.compactions, 1);
        assert_eq!(p.compacted_nodes, 2);
        // The vacated slots recycle like any retired slot.
        let e = g.add_node(t(0), SeqNum(9), OBJ);
        assert_eq!(e, NodeId(2));
        assert!(!g.node(e).pruned);
        assert!(g.node(e).edges.is_empty());
        g.add_edge(d2, e);
        assert!(g.reaches(d2, e));
        assert!(g.order_is_valid_slow());
    }

    #[test]
    fn compact_preserves_rmw_chains() {
        let mut g = graph();
        let a = g.add_node(t(0), SeqNum(1), OBJ);
        let r = g.add_node(t(1), SeqNum(2), OBJ);
        g.add_rmw_edge(a, r);
        let x = g.add_node(t(2), SeqNum(3), OBJ);
        g.add_edge(x, a); // lands after the chain: x -> a stays incoming
        g.prune_node(x);
        g.drop_edges_to_pruned();
        let remap: Vec<Option<NodeId>> = g.compact().to_vec();
        let (a2, r2) = (remap[a.index()].unwrap(), remap[r.index()].unwrap());
        assert_eq!(g.node(a2).rmw, Some(r2), "rmw pointer remapped");
        assert_eq!(g.chain_end(a2, NodeId(u32::MAX)), r2);
        assert!(g.reaches(a2, r2));
        assert!(g.order_is_valid_slow());
    }

    #[test]
    fn peak_live_nodes_tracks_arena_high_water() {
        let mut g = graph();
        for i in 0..5 {
            g.add_node(t(0), SeqNum(i + 1), OBJ);
        }
        assert_eq!(g.perf_stats().peak_live_nodes, 5);
        for i in 0..4 {
            g.prune_node(NodeId(i));
        }
        g.drop_edges_to_pruned();
        g.compact();
        assert_eq!(g.len(), 1);
        assert_eq!(g.perf_stats().peak_live_nodes, 5, "high-water sticks");
        g.add_node(t(1), SeqNum(9), OBJ);
        assert_eq!(
            g.perf_stats().peak_live_nodes,
            5,
            "bounded under compaction"
        );
    }

    #[test]
    fn reset_recycles_node_slots() {
        let mut g = graph();
        let a = g.add_node(t(0), SeqNum(1), OBJ);
        let b = g.add_node(t(1), SeqNum(2), OBJ);
        g.add_edge(a, b);
        let r = g.add_node(t(2), SeqNum(3), OBJ);
        g.add_rmw_edge(a, r);
        g.reset();
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
        assert_eq!(g.stats(), MoGraphStats::default());
        assert_eq!(g.perf_stats(), MoGraphPerfStats::default());
        // Recycled slots must behave exactly like fresh nodes: no stale
        // edges, rmw pointers, clocks, or tombstones.
        let a2 = g.add_node(t(3), SeqNum(10), OBJ);
        let b2 = g.add_node(t(4), SeqNum(11), OBJ);
        assert_eq!(a2, a, "slot ids restart from zero");
        assert!(!g.node(a2).pruned);
        assert!(g.node(a2).edges.is_empty());
        assert_eq!(g.node(a2).rmw, None);
        assert_eq!(g.node(a2).cv.get(t(3)), 10);
        assert_eq!(g.node(a2).cv.get(t(0)), 0, "no stale clock slots");
        assert!(!g.reaches(a2, b2));
        g.add_edge(a2, b2);
        assert!(g.reaches(a2, b2));
        assert!(g.reaches_slow(a2, b2));
        assert_eq!(g.stats().edges_added, 1);
        assert!(g.order_is_valid_slow());
    }

    #[test]
    fn perf_stats_absorb_sums_counts_and_maxes_peak() {
        let mut a = MoGraphPerfStats {
            order_reorders: 1,
            reorder_nodes: 10,
            reach_fast_negative: 100,
            reach_cv_checks: 7,
            compactions: 1,
            compacted_nodes: 4,
            peak_live_nodes: 50,
        };
        let b = MoGraphPerfStats {
            order_reorders: 2,
            reorder_nodes: 5,
            reach_fast_negative: 1,
            reach_cv_checks: 3,
            compactions: 0,
            compacted_nodes: 0,
            peak_live_nodes: 80,
        };
        a.absorb(&b);
        assert_eq!(a.order_reorders, 3);
        assert_eq!(a.reorder_nodes, 15);
        assert_eq!(a.reach_fast_negative, 101);
        assert_eq!(a.reach_cv_checks, 10);
        assert_eq!(a.compactions, 1);
        assert_eq!(a.compacted_nodes, 4);
        assert_eq!(a.peak_live_nodes, 80);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "mo-graph cycle")]
    fn debug_build_catches_cycles() {
        let mut g = graph();
        let a = g.add_node(t(0), SeqNum(1), OBJ);
        let b = g.add_node(t(1), SeqNum(2), OBJ);
        g.add_edge(a, b);
        g.add_edge(b, a);
    }
}
