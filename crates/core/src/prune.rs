//! Execution-graph pruning (paper §7.1, "Pruning the Execution Graph").
//!
//! Long executions accumulate stores, loads, and mo-graph nodes without
//! bound. Naively discarding old records is unsound: an old store can be
//! modification-ordered *after* a newer one, and dropping only the old
//! one could let a thread read both in an order the model forbids.
//!
//! * **Conservative mode** computes `CV_min = ⋂_t C_t` over live
//!   threads. A store `S` with `S.seq ≤ CV_min[S.tid]` happens-before
//!   every live thread's current point, so new loads must read `S` or
//!   something mo-after it; everything *strictly mo-before* such an `S`
//!   can never be read again and is retired. This mode never changes the
//!   set of producible executions.
//! * **Aggressive mode** additionally anchors on the newest store older
//!   than a trace window and retires everything mo-before it — possibly
//!   including still-readable stores, trading behavioral coverage for
//!   bounded memory (exactly the paper's trade-off).
//!
//! Both modes also retire seq_cst fences that happen-before `CV_min`
//! (their constraints are subsumed by happens-before from then on).
//!
//! Retired records are tombstoned and their arena slots recycled via
//! free lists, so memory use is genuinely bounded rather than merely
//! deferred.

use crate::clock::ClockVector;
use crate::event::{AccessRef, StoreIdx, ThreadId};
use crate::exec::Execution;
use std::collections::HashSet;

/// Which pruning mode is active (§7.1).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum PruneMode {
    /// Never prune (suitable for short executions; keeps full traces).
    #[default]
    Disabled,
    /// Retire only provably unreadable records.
    Conservative,
    /// Retire everything mo-before the newest store outside a trace
    /// window, possibly narrowing the set of producible executions.
    Aggressive,
}

/// Pruning configuration.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PruneConfig {
    /// Mode selector.
    pub mode: PruneMode,
    /// Run a pass every `interval` events (0 disables automatic passes;
    /// [`Execution::prune_now`] can still be called manually).
    pub interval: u64,
    /// Trace-window length in events for aggressive mode.
    pub window: u64,
    /// First-class §7.1 memory limiting: when tombstones dominate the
    /// mo-graph arena after a pass, compact the arena — physically
    /// evicting pruned nodes and remapping survivors — so *resident*
    /// graph state stays bounded instead of merely recycled. The
    /// trigger is a pure function of deterministic graph state, so
    /// compaction fires at identical points regardless of worker count
    /// or execution recycling.
    pub memory_limit: bool,
}

impl PruneConfig {
    /// No pruning.
    pub fn disabled() -> Self {
        PruneConfig {
            mode: PruneMode::Disabled,
            interval: 0,
            window: 0,
            memory_limit: false,
        }
    }

    /// Conservative pruning every `interval` events.
    pub fn conservative(interval: u64) -> Self {
        PruneConfig {
            mode: PruneMode::Conservative,
            interval,
            window: 0,
            memory_limit: false,
        }
    }

    /// Aggressive pruning every `interval` events with a `window`-event
    /// trace window.
    pub fn aggressive(interval: u64, window: u64) -> Self {
        PruneConfig {
            mode: PruneMode::Aggressive,
            interval,
            window,
            memory_limit: false,
        }
    }

    /// The first-class `--memory-limit` mode: windowed (aggressive)
    /// pruning every `interval` events plus mo-graph arena compaction.
    ///
    /// Faithful to the paper's §7.1: resident trace state is *bounded*
    /// by discarding stores older than the trace window even when some
    /// thread never observed them — which can narrow the set of
    /// producible executions, but is the only way to cap memory on
    /// programs whose threads never synchronize (e.g. workloads whose
    /// seeded bug is precisely a missing release edge). Conservative
    /// pruning alone leaves such histories to grow without bound. The
    /// window is in events, a pure function of the deterministic event
    /// sequence, so behavior stays byte-identical across worker counts.
    pub fn memory_limited(interval: u64) -> Self {
        PruneConfig::aggressive(interval, interval.saturating_mul(8)).with_memory_limit()
    }

    /// Enables mo-graph arena compaction on top of any pruning mode.
    pub fn with_memory_limit(mut self) -> Self {
        self.memory_limit = true;
        self
    }

    /// Whether mo-graph arena compaction is enabled.
    pub fn limits_memory(&self) -> bool {
        self.memory_limit
    }
}

impl Default for PruneConfig {
    fn default() -> Self {
        PruneConfig::disabled()
    }
}

impl Execution {
    /// Hook invoked after every committed event.
    pub(crate) fn maybe_prune(&mut self) {
        if self.prune_cfg.mode == PruneMode::Disabled || self.prune_cfg.interval == 0 {
            return;
        }
        if !self.seq.is_multiple_of(self.prune_cfg.interval) {
            return;
        }
        let timer = c11tester_telemetry::phase_start(c11tester_telemetry::Phase::Prune);
        self.prune_now();
        if let Some(timer) = timer {
            timer.stop(&mut self.stats.phase);
        }
    }

    /// Runs one pruning pass immediately (no-op when disabled).
    pub fn prune_now(&mut self) {
        match self.prune_cfg.mode {
            PruneMode::Disabled => {}
            PruneMode::Conservative => self.prune_pass(false),
            PruneMode::Aggressive => self.prune_pass(true),
        }
    }

    /// `CV_min`: intersection over all live threads of each thread's
    /// *effective* clock vector.
    ///
    /// A thread parked in `join` contributes its own clock unioned with
    /// the join target's current clock (chains followed transitively).
    /// That union is a sound lower bound on the joiner's clock at its
    /// next visible operation: clocks grow monotonically and the joiner
    /// resumes only after folding in the target's final clock. Without
    /// the credit, a main thread blocked in `join` for the whole
    /// execution pins `CV_min` near zero and nothing ever prunes.
    fn cv_min(&self) -> Option<ClockVector> {
        let mut min: Option<ClockVector> = None;
        for t in self.threads.iter().filter(|t| t.alive) {
            let mut cv = t.cv.clone();
            let mut next = t.waiting_on;
            // Join chains are acyclic (a cycle would deadlock), but
            // bound the walk by thread count for robustness.
            for _ in 0..self.threads.len() {
                let Some(target) = next else { break };
                let ts = &self.threads[target.index()];
                cv.union_with(&ts.cv);
                next = ts.waiting_on;
            }
            min = Some(match min {
                None => cv,
                Some(m) => m.intersect(&cv),
            });
        }
        min
    }

    /// Is `x` strictly modification-ordered before `k`?
    fn mo_before(&self, x: StoreIdx, k: StoreIdx) -> bool {
        if x == k {
            return false;
        }
        let xr = &self.stores[x.index()];
        let kr = &self.stores[k.index()];
        if xr.tid == kr.tid {
            // Same-thread same-location stores are mo-ordered in program
            // order (write-write coherence).
            return xr.seq < kr.seq;
        }
        match (xr.node, kr.node) {
            (Some(nx), Some(nk)) => self.graph.reaches(nx, nk),
            _ => false,
        }
    }

    fn prune_pass(&mut self, aggressive: bool) {
        let Some(cv_min) = self.cv_min() else {
            return;
        };
        self.stats.prune_passes += 1;
        let cutoff = if aggressive {
            self.seq.saturating_sub(self.prune_cfg.window)
        } else {
            0
        };

        // The dense location table iterates in ObjId order —
        // deterministic, unlike the former hash-map key order.
        for obj_ix in 0..self.locations.len() {
            // Phase 1: anchors — the newest store per thread known to
            // every live thread (conservative), plus the newest store
            // per thread older than the window (aggressive).
            let mut anchors: Vec<StoreIdx> = Vec::new();
            {
                let loc = &self.locations[obj_ix];
                for (uix, h) in loc.threads() {
                    let bound = cv_min.get(ThreadId::from_index(uix));
                    let pos = h
                        .stores
                        .partition_point(|&s| self.stores[s.index()].seq.0 <= bound);
                    if pos > 0 {
                        anchors.push(h.stores[pos - 1]);
                    }
                    if aggressive && cutoff > 0 {
                        let pos2 = h
                            .stores
                            .partition_point(|&s| self.stores[s.index()].seq.0 <= cutoff);
                        if pos2 > 0 {
                            anchors.push(h.stores[pos2 - 1]);
                        }
                    }
                }
            }
            if anchors.is_empty() {
                continue;
            }

            // Phase 2: everything strictly mo-before an anchor dies,
            // except the anchors themselves and bookkeeping stores the
            // engine still references.
            let mut doomed: Vec<StoreIdx> = Vec::new();
            {
                let loc = &self.locations[obj_ix];
                for (_, h) in loc.threads() {
                    for &s in &h.stores {
                        if anchors.contains(&s)
                            || loc.last_sc_store == Some(s)
                            || loc.last_store_exec == Some(s)
                        {
                            continue;
                        }
                        if anchors.iter().any(|&k| self.mo_before(s, k)) {
                            doomed.push(s);
                        }
                    }
                }
            }
            if doomed.is_empty() {
                continue;
            }
            let doom_set: HashSet<StoreIdx> = doomed.iter().copied().collect();

            // Phase 3: drop doomed stores and the loads that read them
            // from every history list; tombstone the records and nodes.
            let mut doomed_loads = Vec::new();
            {
                let Execution {
                    locations, loads, ..
                } = self;
                let loc = &mut locations[obj_ix];
                for h in &mut loc.per_thread {
                    h.stores.retain(|s| !doom_set.contains(s));
                    h.sc_stores.retain(|s| !doom_set.contains(s));
                    h.accesses.retain(|a| match *a {
                        AccessRef::Store(s) => !doom_set.contains(&s),
                        AccessRef::Load(l) => {
                            let keep = !doom_set.contains(&loads[l.index()].rf);
                            if !keep {
                                doomed_loads.push(l);
                            }
                            keep
                        }
                    });
                }
                loc.pruned_stores += doomed.len() as u64;
            }
            for &s in &doomed {
                let rec = &mut self.stores[s.index()];
                rec.pruned = true;
                // Release (not clear): tombstones must give spilled
                // clock storage back — §7.1 bounds real memory, and
                // `alloc_store` overwrites the whole record on reuse
                // anyway, so there is no capacity worth keeping.
                rec.rf_cv.release();
                rec.hb_cv.release();
                if let Some(n) = rec.node.take() {
                    self.graph.prune_node(n);
                }
                self.free_stores.push(s);
            }
            for &l in &doomed_loads {
                self.loads[l.index()].pruned = true;
                self.free_loads.push(l);
            }
            self.stats.pruned_stores += doomed.len() as u64;
            self.stats.pruned_loads += doomed_loads.len() as u64;
        }

        // Fence rule (§7.1): seq_cst fences that happen-before CV_min are
        // subsumed by happens-before from now on.
        {
            let Execution {
                threads, fences, ..
            } = self;
            let mut dropped = 0u64;
            for (uix, th) in threads.iter_mut().enumerate() {
                let bound = cv_min.get(ThreadId::from_index(uix));
                let before = th.sc_fences.len();
                th.sc_fences.retain(|&f| fences[f.index()].seq.0 > bound);
                dropped += (before - th.sc_fences.len()) as u64;
            }
            self.stats.pruned_fences += dropped;
        }

        self.graph.drop_edges_to_pruned();

        // §7.1 memory limiting: once tombstones make up half the
        // mo-graph arena (and there are enough of them to be worth a
        // pass), physically evict them. The threshold is a pure
        // function of graph state — never wall-clock or allocator
        // state — so compaction points are deterministic and the
        // canonical output stays byte-identical across worker counts.
        if self.prune_cfg.memory_limit {
            let tombs = self.graph.pruned_len();
            if tombs >= 32 && tombs * 2 >= self.graph.len() {
                self.compact_graph();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{MemOrder, StoreKind};
    use crate::policy::Policy;

    /// With full synchronization, old stores become unreadable and a
    /// conservative pass retires them.
    #[test]
    fn conservative_prunes_globally_known_history() {
        let mut e = Execution::with_pruning(Policy::C11Tester, PruneConfig::conservative(0));
        let main = ThreadId::MAIN;
        let x = e.new_object();
        for v in 0..100 {
            e.atomic_store(main, x, MemOrder::Relaxed, v, StoreKind::Atomic);
        }
        // Single live thread: everything it alone knows is globally
        // known; all but the newest store can go.
        assert_eq!(e.stores_at(x).len(), 100);
        e.prune_now();
        let left = e.stores_at(x);
        assert_eq!(left.len(), 1, "only the newest store survives");
        assert_eq!(e.store_value(left[0]), 99);
        assert_eq!(e.stats().pruned_stores, 99);
    }

    /// Pruning must never remove stores an unsynchronized thread could
    /// still read.
    #[test]
    fn conservative_keeps_stores_unknown_to_a_thread() {
        let mut e = Execution::with_pruning(Policy::C11Tester, PruneConfig::conservative(0));
        let main = ThreadId::MAIN;
        let x = e.new_object();
        e.atomic_store(main, x, MemOrder::Relaxed, 0, StoreKind::Atomic);
        let lagger = e.fork(main); // knows only the init store
        for v in 1..50 {
            e.atomic_store(main, x, MemOrder::Relaxed, v, StoreKind::Atomic);
        }
        e.prune_now();
        // The lagger's CV pins CV_min at the init store: nothing newer is
        // globally known, so nothing mo-after init is prunable — and the
        // init store itself is an anchor, so nothing at all goes.
        assert_eq!(e.stores_at(x).len(), 50);
        assert_eq!(e.stats().pruned_stores, 0);
        // The lagger can still read anything it could before.
        let cands = e.feasible_read_candidates(lagger, x, MemOrder::Relaxed, false);
        assert_eq!(cands.len(), 50);
    }

    /// Feasible read sets are identical with and without conservative
    /// pruning — the mode must not change producible executions.
    #[test]
    fn conservative_preserves_feasible_reads() {
        let run = |prune: bool| {
            let cfg = if prune {
                PruneConfig::conservative(0)
            } else {
                PruneConfig::disabled()
            };
            let mut e = Execution::with_pruning(Policy::C11Tester, cfg);
            let main = ThreadId::MAIN;
            let x = e.new_object();
            let y = e.new_object();
            e.atomic_store(main, x, MemOrder::Relaxed, 0, StoreKind::Atomic);
            e.atomic_store(main, y, MemOrder::Relaxed, 0, StoreKind::Atomic);
            let t1 = e.fork(main);
            for v in 1..20 {
                e.atomic_store(t1, x, MemOrder::Release, v, StoreKind::Atomic);
                e.atomic_store(t1, y, MemOrder::Release, v + 100, StoreKind::Atomic);
            }
            e.finish_thread(t1);
            e.join(main, t1);
            if prune {
                e.prune_now();
            }
            let cx: Vec<u64> = e
                .feasible_read_candidates(main, x, MemOrder::Acquire, false)
                .into_iter()
                .map(|s| e.store_value(s))
                .collect();
            let cy: Vec<u64> = e
                .feasible_read_candidates(main, y, MemOrder::Acquire, false)
                .into_iter()
                .map(|s| e.store_value(s))
                .collect();
            (cx, cy)
        };
        assert_eq!(run(false), run(true));
    }

    /// Aggressive mode bounds history length even without global
    /// synchronization.
    #[test]
    fn aggressive_prunes_outside_window() {
        let mut e = Execution::with_pruning(Policy::C11Tester, PruneConfig::aggressive(0, 10));
        let main = ThreadId::MAIN;
        let x = e.new_object();
        let _lagger = e.fork(main); // never synchronizes
        for v in 0..100 {
            e.atomic_store(main, x, MemOrder::Relaxed, v, StoreKind::Atomic);
        }
        e.prune_now();
        let left = e.stores_at(x).len();
        assert!(
            left < 100,
            "window-based anchors must retire old stores (left {left})"
        );
        assert!(e.stats().pruned_stores > 0);
    }

    /// Pruned arena slots are recycled, bounding memory.
    #[test]
    fn arena_slots_are_recycled() {
        let mut e = Execution::with_pruning(Policy::C11Tester, PruneConfig::conservative(16));
        let main = ThreadId::MAIN;
        let x = e.new_object();
        for v in 0..10_000 {
            e.atomic_store(main, x, MemOrder::Relaxed, v, StoreKind::Atomic);
        }
        assert!(
            e.stores.len() < 1000,
            "store arena must stay bounded, got {}",
            e.stores.len()
        );
    }

    /// Memory limiting compacts the mo-graph arena: resident node
    /// state stays bounded where the same windowed pruner without the
    /// limit only tombstones (slots stay occupied until the execution
    /// ends).
    #[test]
    fn memory_limit_bounds_resident_graph_nodes() {
        let run = |cfg: PruneConfig| {
            let mut e = Execution::with_pruning(Policy::C11Tester, cfg);
            let main = ThreadId::MAIN;
            let x = e.new_object();
            for v in 0..10_000 {
                e.atomic_store(main, x, MemOrder::Relaxed, v, StoreKind::Atomic);
            }
            e.finalize_alloc_stats();
            (e.mograph().len(), e.stats().mograph_perf)
        };
        // Same pruner as `memory_limited(16)`, minus the compaction —
        // the comparison isolates what the memory limit itself adds.
        let (plain_len, plain_perf) = run(PruneConfig::aggressive(16, 128));
        let (lim_len, lim_perf) = run(PruneConfig::memory_limited(16));
        assert_eq!(plain_perf.compactions, 0);
        assert!(lim_perf.compactions > 0, "compaction must trigger");
        assert!(
            lim_len < 256,
            "resident nodes bounded under --memory-limit, got {lim_len}"
        );
        assert!(
            lim_perf.peak_live_nodes < 1024,
            "high-water bounded, got {}",
            lim_perf.peak_live_nodes
        );
        assert!(
            plain_len > lim_len * 4,
            "tombstones accumulate without compaction ({plain_len} vs {lim_len})"
        );
    }

    /// Compaction is behaviorally invisible: a memory-limited run is
    /// indistinguishable — same values, same feasible sets, same
    /// behavioral statistics including prune counts — from the same
    /// program under the identical windowed pruner without the limit.
    #[test]
    fn compaction_is_behaviorally_invisible() {
        let run = |cfg: PruneConfig| {
            let mut e = Execution::with_pruning(Policy::C11Tester, cfg);
            let main = ThreadId::MAIN;
            let x = e.new_object();
            let mut vals = Vec::new();
            for v in 0..400u64 {
                let s = e.atomic_store(main, x, MemOrder::Relaxed, v, StoreKind::Atomic);
                if v % 7 == 0 {
                    vals.push(e.commit_load(main, x, MemOrder::Relaxed, s));
                }
                if v % 13 == 0 {
                    let (old, _) = e.commit_rmw(main, x, MemOrder::AcqRel, s, v + 1000);
                    vals.push(old);
                }
            }
            let cands: Vec<u64> = e
                .feasible_read_candidates(main, x, MemOrder::Relaxed, false)
                .into_iter()
                .map(|s| e.store_value(s))
                .collect();
            e.finalize_alloc_stats();
            (vals, cands, *e.stats())
        };
        let plain = run(PruneConfig::aggressive(16, 128));
        let limited = run(PruneConfig::memory_limited(16));
        assert!(
            limited.2.mograph_perf.compactions > 0,
            "the comparison must actually exercise compaction"
        );
        // ExecStats equality covers every behavioral counter; the
        // diagnostic mograph_perf/alloc/phase blocks are excluded.
        assert_eq!(plain, limited);
    }

    /// Old seq_cst fences are retired once happens-before subsumes them.
    #[test]
    fn sc_fences_are_pruned() {
        let mut e = Execution::with_pruning(Policy::C11Tester, PruneConfig::conservative(0));
        let main = ThreadId::MAIN;
        let x = e.new_object();
        for _ in 0..5 {
            e.fence(main, MemOrder::SeqCst);
            e.atomic_store(main, x, MemOrder::Relaxed, 1, StoreKind::Atomic);
        }
        e.prune_now();
        assert!(e.stats().pruned_fences >= 4);
    }
}
