//! Execution-graph pruning (paper §7.1, "Pruning the Execution Graph").
//!
//! Long executions accumulate stores, loads, and mo-graph nodes without
//! bound. Naively discarding old records is unsound: an old store can be
//! modification-ordered *after* a newer one, and dropping only the old
//! one could let a thread read both in an order the model forbids.
//!
//! * **Conservative mode** computes `CV_min = ⋂_t C_t` over live
//!   threads. A store `S` with `S.seq ≤ CV_min[S.tid]` happens-before
//!   every live thread's current point, so new loads must read `S` or
//!   something mo-after it; everything *strictly mo-before* such an `S`
//!   can never be read again and is retired. This mode never changes the
//!   set of producible executions.
//! * **Aggressive mode** additionally anchors on the newest store older
//!   than a trace window and retires everything mo-before it — possibly
//!   including still-readable stores, trading behavioral coverage for
//!   bounded memory (exactly the paper's trade-off).
//!
//! Both modes also retire seq_cst fences that happen-before `CV_min`
//! (their constraints are subsumed by happens-before from then on).
//!
//! Retired records are tombstoned and their arena slots recycled via
//! free lists, so memory use is genuinely bounded rather than merely
//! deferred.

use crate::clock::ClockVector;
use crate::event::{AccessRef, StoreIdx, ThreadId};
use crate::exec::Execution;
use std::collections::HashSet;

/// Which pruning mode is active (§7.1).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum PruneMode {
    /// Never prune (suitable for short executions; keeps full traces).
    #[default]
    Disabled,
    /// Retire only provably unreadable records.
    Conservative,
    /// Retire everything mo-before the newest store outside a trace
    /// window, possibly narrowing the set of producible executions.
    Aggressive,
}

/// Pruning configuration.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PruneConfig {
    /// Mode selector.
    pub mode: PruneMode,
    /// Run a pass every `interval` events (0 disables automatic passes;
    /// [`Execution::prune_now`] can still be called manually).
    pub interval: u64,
    /// Trace-window length in events for aggressive mode.
    pub window: u64,
}

impl PruneConfig {
    /// No pruning.
    pub fn disabled() -> Self {
        PruneConfig {
            mode: PruneMode::Disabled,
            interval: 0,
            window: 0,
        }
    }

    /// Conservative pruning every `interval` events.
    pub fn conservative(interval: u64) -> Self {
        PruneConfig {
            mode: PruneMode::Conservative,
            interval,
            window: 0,
        }
    }

    /// Aggressive pruning every `interval` events with a `window`-event
    /// trace window.
    pub fn aggressive(interval: u64, window: u64) -> Self {
        PruneConfig {
            mode: PruneMode::Aggressive,
            interval,
            window,
        }
    }
}

impl Default for PruneConfig {
    fn default() -> Self {
        PruneConfig::disabled()
    }
}

impl Execution {
    /// Hook invoked after every committed event.
    pub(crate) fn maybe_prune(&mut self) {
        if self.prune_cfg.mode == PruneMode::Disabled || self.prune_cfg.interval == 0 {
            return;
        }
        if !self.seq.is_multiple_of(self.prune_cfg.interval) {
            return;
        }
        let timer = c11tester_telemetry::phase_start(c11tester_telemetry::Phase::Prune);
        self.prune_now();
        if let Some(timer) = timer {
            timer.stop(&mut self.stats.phase);
        }
    }

    /// Runs one pruning pass immediately (no-op when disabled).
    pub fn prune_now(&mut self) {
        match self.prune_cfg.mode {
            PruneMode::Disabled => {}
            PruneMode::Conservative => self.prune_pass(false),
            PruneMode::Aggressive => self.prune_pass(true),
        }
    }

    /// `CV_min`: intersection of the clock vectors of all live threads.
    fn cv_min(&self) -> Option<ClockVector> {
        let mut alive = self.threads.iter().filter(|t| t.alive);
        let mut cv = alive.next()?.cv.clone();
        for t in alive {
            cv = cv.intersect(&t.cv);
        }
        Some(cv)
    }

    /// Is `x` strictly modification-ordered before `k`?
    fn mo_before(&self, x: StoreIdx, k: StoreIdx) -> bool {
        if x == k {
            return false;
        }
        let xr = &self.stores[x.index()];
        let kr = &self.stores[k.index()];
        if xr.tid == kr.tid {
            // Same-thread same-location stores are mo-ordered in program
            // order (write-write coherence).
            return xr.seq < kr.seq;
        }
        match (xr.node, kr.node) {
            (Some(nx), Some(nk)) => self.graph.reaches(nx, nk),
            _ => false,
        }
    }

    fn prune_pass(&mut self, aggressive: bool) {
        let Some(cv_min) = self.cv_min() else {
            return;
        };
        self.stats.prune_passes += 1;
        let cutoff = if aggressive {
            self.seq.saturating_sub(self.prune_cfg.window)
        } else {
            0
        };

        // The dense location table iterates in ObjId order —
        // deterministic, unlike the former hash-map key order.
        for obj_ix in 0..self.locations.len() {
            // Phase 1: anchors — the newest store per thread known to
            // every live thread (conservative), plus the newest store
            // per thread older than the window (aggressive).
            let mut anchors: Vec<StoreIdx> = Vec::new();
            {
                let loc = &self.locations[obj_ix];
                for (uix, h) in loc.threads() {
                    let bound = cv_min.get(ThreadId::from_index(uix));
                    let pos = h
                        .stores
                        .partition_point(|&s| self.stores[s.index()].seq.0 <= bound);
                    if pos > 0 {
                        anchors.push(h.stores[pos - 1]);
                    }
                    if aggressive && cutoff > 0 {
                        let pos2 = h
                            .stores
                            .partition_point(|&s| self.stores[s.index()].seq.0 <= cutoff);
                        if pos2 > 0 {
                            anchors.push(h.stores[pos2 - 1]);
                        }
                    }
                }
            }
            if anchors.is_empty() {
                continue;
            }

            // Phase 2: everything strictly mo-before an anchor dies,
            // except the anchors themselves and bookkeeping stores the
            // engine still references.
            let mut doomed: Vec<StoreIdx> = Vec::new();
            {
                let loc = &self.locations[obj_ix];
                for (_, h) in loc.threads() {
                    for &s in &h.stores {
                        if anchors.contains(&s)
                            || loc.last_sc_store == Some(s)
                            || loc.last_store_exec == Some(s)
                        {
                            continue;
                        }
                        if anchors.iter().any(|&k| self.mo_before(s, k)) {
                            doomed.push(s);
                        }
                    }
                }
            }
            if doomed.is_empty() {
                continue;
            }
            let doom_set: HashSet<StoreIdx> = doomed.iter().copied().collect();

            // Phase 3: drop doomed stores and the loads that read them
            // from every history list; tombstone the records and nodes.
            let mut doomed_loads = Vec::new();
            {
                let Execution {
                    locations, loads, ..
                } = self;
                let loc = &mut locations[obj_ix];
                for h in &mut loc.per_thread {
                    h.stores.retain(|s| !doom_set.contains(s));
                    h.sc_stores.retain(|s| !doom_set.contains(s));
                    h.accesses.retain(|a| match *a {
                        AccessRef::Store(s) => !doom_set.contains(&s),
                        AccessRef::Load(l) => {
                            let keep = !doom_set.contains(&loads[l.index()].rf);
                            if !keep {
                                doomed_loads.push(l);
                            }
                            keep
                        }
                    });
                }
                loc.pruned_stores += doomed.len() as u64;
            }
            for &s in &doomed {
                let rec = &mut self.stores[s.index()];
                rec.pruned = true;
                // Release (not clear): tombstones must give spilled
                // clock storage back — §7.1 bounds real memory, and
                // `alloc_store` overwrites the whole record on reuse
                // anyway, so there is no capacity worth keeping.
                rec.rf_cv.release();
                rec.hb_cv.release();
                if let Some(n) = rec.node.take() {
                    self.graph.prune_node(n);
                }
                self.free_stores.push(s);
            }
            for &l in &doomed_loads {
                self.loads[l.index()].pruned = true;
                self.free_loads.push(l);
            }
            self.stats.pruned_stores += doomed.len() as u64;
            self.stats.pruned_loads += doomed_loads.len() as u64;
        }

        // Fence rule (§7.1): seq_cst fences that happen-before CV_min are
        // subsumed by happens-before from now on.
        {
            let Execution {
                threads, fences, ..
            } = self;
            let mut dropped = 0u64;
            for (uix, th) in threads.iter_mut().enumerate() {
                let bound = cv_min.get(ThreadId::from_index(uix));
                let before = th.sc_fences.len();
                th.sc_fences.retain(|&f| fences[f.index()].seq.0 > bound);
                dropped += (before - th.sc_fences.len()) as u64;
            }
            self.stats.pruned_fences += dropped;
        }

        self.graph.drop_edges_to_pruned();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{MemOrder, StoreKind};
    use crate::policy::Policy;

    /// With full synchronization, old stores become unreadable and a
    /// conservative pass retires them.
    #[test]
    fn conservative_prunes_globally_known_history() {
        let mut e = Execution::with_pruning(Policy::C11Tester, PruneConfig::conservative(0));
        let main = ThreadId::MAIN;
        let x = e.new_object();
        for v in 0..100 {
            e.atomic_store(main, x, MemOrder::Relaxed, v, StoreKind::Atomic);
        }
        // Single live thread: everything it alone knows is globally
        // known; all but the newest store can go.
        assert_eq!(e.stores_at(x).len(), 100);
        e.prune_now();
        let left = e.stores_at(x);
        assert_eq!(left.len(), 1, "only the newest store survives");
        assert_eq!(e.store_value(left[0]), 99);
        assert_eq!(e.stats().pruned_stores, 99);
    }

    /// Pruning must never remove stores an unsynchronized thread could
    /// still read.
    #[test]
    fn conservative_keeps_stores_unknown_to_a_thread() {
        let mut e = Execution::with_pruning(Policy::C11Tester, PruneConfig::conservative(0));
        let main = ThreadId::MAIN;
        let x = e.new_object();
        e.atomic_store(main, x, MemOrder::Relaxed, 0, StoreKind::Atomic);
        let lagger = e.fork(main); // knows only the init store
        for v in 1..50 {
            e.atomic_store(main, x, MemOrder::Relaxed, v, StoreKind::Atomic);
        }
        e.prune_now();
        // The lagger's CV pins CV_min at the init store: nothing newer is
        // globally known, so nothing mo-after init is prunable — and the
        // init store itself is an anchor, so nothing at all goes.
        assert_eq!(e.stores_at(x).len(), 50);
        assert_eq!(e.stats().pruned_stores, 0);
        // The lagger can still read anything it could before.
        let cands = e.feasible_read_candidates(lagger, x, MemOrder::Relaxed, false);
        assert_eq!(cands.len(), 50);
    }

    /// Feasible read sets are identical with and without conservative
    /// pruning — the mode must not change producible executions.
    #[test]
    fn conservative_preserves_feasible_reads() {
        let run = |prune: bool| {
            let cfg = if prune {
                PruneConfig::conservative(0)
            } else {
                PruneConfig::disabled()
            };
            let mut e = Execution::with_pruning(Policy::C11Tester, cfg);
            let main = ThreadId::MAIN;
            let x = e.new_object();
            let y = e.new_object();
            e.atomic_store(main, x, MemOrder::Relaxed, 0, StoreKind::Atomic);
            e.atomic_store(main, y, MemOrder::Relaxed, 0, StoreKind::Atomic);
            let t1 = e.fork(main);
            for v in 1..20 {
                e.atomic_store(t1, x, MemOrder::Release, v, StoreKind::Atomic);
                e.atomic_store(t1, y, MemOrder::Release, v + 100, StoreKind::Atomic);
            }
            e.finish_thread(t1);
            e.join(main, t1);
            if prune {
                e.prune_now();
            }
            let cx: Vec<u64> = e
                .feasible_read_candidates(main, x, MemOrder::Acquire, false)
                .into_iter()
                .map(|s| e.store_value(s))
                .collect();
            let cy: Vec<u64> = e
                .feasible_read_candidates(main, y, MemOrder::Acquire, false)
                .into_iter()
                .map(|s| e.store_value(s))
                .collect();
            (cx, cy)
        };
        assert_eq!(run(false), run(true));
    }

    /// Aggressive mode bounds history length even without global
    /// synchronization.
    #[test]
    fn aggressive_prunes_outside_window() {
        let mut e = Execution::with_pruning(Policy::C11Tester, PruneConfig::aggressive(0, 10));
        let main = ThreadId::MAIN;
        let x = e.new_object();
        let _lagger = e.fork(main); // never synchronizes
        for v in 0..100 {
            e.atomic_store(main, x, MemOrder::Relaxed, v, StoreKind::Atomic);
        }
        e.prune_now();
        let left = e.stores_at(x).len();
        assert!(
            left < 100,
            "window-based anchors must retire old stores (left {left})"
        );
        assert!(e.stats().pruned_stores > 0);
    }

    /// Pruned arena slots are recycled, bounding memory.
    #[test]
    fn arena_slots_are_recycled() {
        let mut e = Execution::with_pruning(Policy::C11Tester, PruneConfig::conservative(16));
        let main = ThreadId::MAIN;
        let x = e.new_object();
        for v in 0..10_000 {
            e.atomic_store(main, x, MemOrder::Relaxed, v, StoreKind::Atomic);
        }
        assert!(
            e.stores.len() < 1000,
            "store arena must stay bounded, got {}",
            e.stores.len()
        );
    }

    /// Old seq_cst fences are retired once happens-before subsumes them.
    #[test]
    fn sc_fences_are_pruned() {
        let mut e = Execution::with_pruning(Policy::C11Tester, PruneConfig::conservative(0));
        let main = ThreadId::MAIN;
        let x = e.new_object();
        for _ in 0..5 {
            e.fence(main, MemOrder::SeqCst);
            e.atomic_store(main, x, MemOrder::Relaxed, 1, StoreKind::Atomic);
        }
        e.prune_now();
        assert!(e.stats().pruned_fences >= 4);
    }
}
