//! Per-execution operation statistics (Table 3 of the paper reports the
//! number of atomic operations — including synchronization operations —
//! and normal shared-memory accesses per benchmark).

use crate::mograph::MoGraphStats;

/// Counters accumulated over a single execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Atomic loads committed.
    pub atomic_loads: u64,
    /// Atomic stores committed (excluding RMW store halves).
    pub atomic_stores: u64,
    /// RMW operations committed.
    pub rmws: u64,
    /// Fences executed.
    pub fences: u64,
    /// Synchronization operations (mutex lock/unlock, condvar ops,
    /// thread create/join) — the paper counts these as atomic ops.
    pub sync_ops: u64,
    /// Non-atomic (plain) shared-memory accesses observed by the race
    /// detector ("normal memory accesses" in Table 3).
    pub normal_accesses: u64,
    /// Volatile accesses converted to atomics (§7.2).
    pub volatile_accesses: u64,
    /// Reads-from candidates rejected by the feasibility check (§4.3).
    pub candidates_rejected: u64,
    /// Stores pruned from the execution graph (§7.1).
    pub pruned_stores: u64,
    /// Loads pruned from the execution graph (§7.1).
    pub pruned_loads: u64,
    /// Seq_cst fences pruned (§7.1, fence rules).
    pub pruned_fences: u64,
    /// Pruning passes performed.
    pub prune_passes: u64,
    /// Mo-graph maintenance statistics.
    pub mograph: MoGraphStats,
}

impl ExecStats {
    /// Total atomic operations in the paper's Table 3 sense: atomics
    /// plus synchronization operations.
    pub fn atomic_ops(&self) -> u64 {
        self.atomic_loads
            + self.atomic_stores
            + self.rmws
            + self.fences
            + self.sync_ops
            + self.volatile_accesses
    }

    /// Folds another execution's counters into this one (used when a
    /// model accumulates totals across repeated executions).
    pub fn absorb(&mut self, other: &ExecStats) {
        self.atomic_loads += other.atomic_loads;
        self.atomic_stores += other.atomic_stores;
        self.rmws += other.rmws;
        self.fences += other.fences;
        self.sync_ops += other.sync_ops;
        self.normal_accesses += other.normal_accesses;
        self.volatile_accesses += other.volatile_accesses;
        self.candidates_rejected += other.candidates_rejected;
        self.pruned_stores += other.pruned_stores;
        self.pruned_loads += other.pruned_loads;
        self.pruned_fences += other.pruned_fences;
        self.prune_passes += other.prune_passes;
        self.mograph.edges_added += other.mograph.edges_added;
        self.mograph.edges_redundant += other.mograph.edges_redundant;
        self.mograph.merges += other.mograph.merges;
        self.mograph.rmw_edges += other.mograph.rmw_edges;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_ops_totals_all_visible_categories() {
        let s = ExecStats {
            atomic_loads: 1,
            atomic_stores: 2,
            rmws: 3,
            fences: 4,
            sync_ops: 5,
            volatile_accesses: 6,
            normal_accesses: 100,
            ..ExecStats::default()
        };
        assert_eq!(s.atomic_ops(), 21);
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = ExecStats {
            atomic_loads: 1,
            normal_accesses: 10,
            ..ExecStats::default()
        };
        let b = ExecStats {
            atomic_loads: 2,
            normal_accesses: 5,
            prune_passes: 1,
            ..ExecStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.atomic_loads, 3);
        assert_eq!(a.normal_accesses, 15);
        assert_eq!(a.prune_passes, 1);
    }
}
