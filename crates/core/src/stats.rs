//! Per-execution operation statistics (Table 3 of the paper reports the
//! number of atomic operations — including synchronization operations —
//! and normal shared-memory accesses per benchmark).

use crate::mograph::{MoGraphPerfStats, MoGraphStats};
use c11tester_telemetry::PhaseProfile;

/// Allocation-behavior diagnostics (hot-path observability).
///
/// These counters describe *how* an execution was provisioned —
/// recycled arena vs fresh allocation, clock vectors spilled past the
/// inline capacity — not *what* it computed. They are deliberately
/// **excluded from [`ExecStats`] equality** and from the default
/// canonical campaign JSON: a replayed execution is behaviorally
/// identical whether it ran on a recycled or a fresh arena, and the
/// determinism contract (byte-identical canonical reports, recycled vs
/// fresh, at any worker count) must not be broken by provisioning
/// details. Surface them explicitly (e.g. `c11campaign --alloc-stats`)
/// when diagnosing allocator behavior.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Executions that started from a freshly allocated state.
    pub fresh_executions: u64,
    /// Executions that started from a recycled (capacity-retaining)
    /// execution state.
    pub recycled_executions: u64,
    /// Live clock vectors that had spilled past the inline capacity
    /// ([`crate::clock::INLINE_SLOTS`] threads) when the execution
    /// finished.
    pub clock_spills: u64,
}

impl AllocStats {
    /// Folds another execution's allocation counters into this one.
    pub fn absorb(&mut self, other: &AllocStats) {
        self.fresh_executions += other.fresh_executions;
        self.recycled_executions += other.recycled_executions;
        self.clock_spills += other.clock_spills;
    }
}

/// Counters accumulated over a single execution.
///
/// Equality compares the *behavioral* counters only: [`ExecStats::alloc`]
/// is excluded, so a replayed execution matches its original regardless
/// of whether either ran on recycled state.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecStats {
    /// Atomic loads committed.
    pub atomic_loads: u64,
    /// Atomic stores committed (excluding RMW store halves).
    pub atomic_stores: u64,
    /// RMW operations committed.
    pub rmws: u64,
    /// Fences executed.
    pub fences: u64,
    /// Synchronization operations (mutex lock/unlock, condvar ops,
    /// thread create/join) — the paper counts these as atomic ops.
    pub sync_ops: u64,
    /// Non-atomic (plain) shared-memory accesses observed by the race
    /// detector ("normal memory accesses" in Table 3).
    pub normal_accesses: u64,
    /// Volatile accesses converted to atomics (§7.2).
    pub volatile_accesses: u64,
    /// Reads-from candidates rejected by the feasibility check (§4.3).
    pub candidates_rejected: u64,
    /// Stores pruned from the execution graph (§7.1).
    pub pruned_stores: u64,
    /// Loads pruned from the execution graph (§7.1).
    pub pruned_loads: u64,
    /// Seq_cst fences pruned (§7.1, fence rules).
    pub pruned_fences: u64,
    /// Pruning passes performed.
    pub prune_passes: u64,
    /// Mo-graph maintenance statistics.
    pub mograph: MoGraphStats,
    /// Incremental-topological-order / memory-limiting diagnostics
    /// (excluded from equality: fast-path hit rates and compaction
    /// bookkeeping describe *how* the graph answered queries, not what
    /// the execution computed — like [`AllocStats`] they must never
    /// distinguish behaviorally identical executions).
    pub mograph_perf: MoGraphPerfStats,
    /// Allocation-behavior diagnostics (excluded from equality; see
    /// [`AllocStats`]).
    pub alloc: AllocStats,
    /// Per-phase wall-time profile (excluded from equality: timing is
    /// nondeterministic and diagnostic, never behavioral). Empty
    /// unless phase profiling is enabled
    /// ([`c11tester_telemetry::set_profiling`]).
    pub phase: PhaseProfile,
}

impl PartialEq for ExecStats {
    fn eq(&self, other: &Self) -> bool {
        // Exhaustive destructuring: adding a field without deciding
        // whether it participates in equality is a compile error.
        // `mograph_perf`, `alloc`, and `phase` are the intentional
        // exclusions — graph fast-path diagnostics, provisioning
        // details, and wall-clock timings must not distinguish
        // behaviorally identical executions.
        let ExecStats {
            atomic_loads,
            atomic_stores,
            rmws,
            fences,
            sync_ops,
            normal_accesses,
            volatile_accesses,
            candidates_rejected,
            pruned_stores,
            pruned_loads,
            pruned_fences,
            prune_passes,
            mograph,
            mograph_perf: _,
            alloc: _,
            phase: _,
        } = self;
        *atomic_loads == other.atomic_loads
            && *atomic_stores == other.atomic_stores
            && *rmws == other.rmws
            && *fences == other.fences
            && *sync_ops == other.sync_ops
            && *normal_accesses == other.normal_accesses
            && *volatile_accesses == other.volatile_accesses
            && *candidates_rejected == other.candidates_rejected
            && *pruned_stores == other.pruned_stores
            && *pruned_loads == other.pruned_loads
            && *pruned_fences == other.pruned_fences
            && *prune_passes == other.prune_passes
            && *mograph == other.mograph
    }
}

impl Eq for ExecStats {}

impl ExecStats {
    /// Total atomic operations in the paper's Table 3 sense: atomics
    /// plus synchronization operations.
    pub fn atomic_ops(&self) -> u64 {
        self.atomic_loads
            + self.atomic_stores
            + self.rmws
            + self.fences
            + self.sync_ops
            + self.volatile_accesses
    }

    /// Folds another execution's counters into this one (used when a
    /// model accumulates totals across repeated executions).
    pub fn absorb(&mut self, other: &ExecStats) {
        self.atomic_loads += other.atomic_loads;
        self.atomic_stores += other.atomic_stores;
        self.rmws += other.rmws;
        self.fences += other.fences;
        self.sync_ops += other.sync_ops;
        self.normal_accesses += other.normal_accesses;
        self.volatile_accesses += other.volatile_accesses;
        self.candidates_rejected += other.candidates_rejected;
        self.pruned_stores += other.pruned_stores;
        self.pruned_loads += other.pruned_loads;
        self.pruned_fences += other.pruned_fences;
        self.prune_passes += other.prune_passes;
        self.mograph.edges_added += other.mograph.edges_added;
        self.mograph.edges_redundant += other.mograph.edges_redundant;
        self.mograph.merges += other.mograph.merges;
        self.mograph.rmw_edges += other.mograph.rmw_edges;
        self.mograph_perf.absorb(&other.mograph_perf);
        self.alloc.absorb(&other.alloc);
        self.phase.absorb(&other.phase);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_ops_totals_all_visible_categories() {
        let s = ExecStats {
            atomic_loads: 1,
            atomic_stores: 2,
            rmws: 3,
            fences: 4,
            sync_ops: 5,
            volatile_accesses: 6,
            normal_accesses: 100,
            ..ExecStats::default()
        };
        assert_eq!(s.atomic_ops(), 21);
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = ExecStats {
            atomic_loads: 1,
            normal_accesses: 10,
            ..ExecStats::default()
        };
        let b = ExecStats {
            atomic_loads: 2,
            normal_accesses: 5,
            prune_passes: 1,
            ..ExecStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.atomic_loads, 3);
        assert_eq!(a.normal_accesses, 15);
        assert_eq!(a.prune_passes, 1);
    }

    #[test]
    fn equality_ignores_alloc_diagnostics() {
        let fresh = ExecStats {
            atomic_loads: 4,
            alloc: AllocStats {
                fresh_executions: 1,
                ..AllocStats::default()
            },
            ..ExecStats::default()
        };
        let recycled = ExecStats {
            atomic_loads: 4,
            alloc: AllocStats {
                recycled_executions: 1,
                clock_spills: 3,
                ..AllocStats::default()
            },
            ..ExecStats::default()
        };
        // Same behavior, different provisioning: equal.
        assert_eq!(fresh, recycled);
        let different = ExecStats {
            atomic_loads: 5,
            ..ExecStats::default()
        };
        assert_ne!(fresh, different);
    }

    #[test]
    fn equality_ignores_mograph_perf_diagnostics() {
        let plain = ExecStats {
            atomic_loads: 4,
            ..ExecStats::default()
        };
        let gated = ExecStats {
            atomic_loads: 4,
            mograph_perf: MoGraphPerfStats {
                reach_fast_negative: 99,
                order_reorders: 2,
                peak_live_nodes: 40,
                ..MoGraphPerfStats::default()
            },
            ..ExecStats::default()
        };
        // Same behavior, different fast-path hit profile: equal.
        assert_eq!(plain, gated);
    }

    #[test]
    fn absorb_accumulates_mograph_perf() {
        let mut a = ExecStats::default();
        let b = ExecStats {
            mograph_perf: MoGraphPerfStats {
                reach_cv_checks: 3,
                peak_live_nodes: 25,
                ..MoGraphPerfStats::default()
            },
            ..ExecStats::default()
        };
        a.absorb(&b);
        a.absorb(&b);
        assert_eq!(a.mograph_perf.reach_cv_checks, 6);
        assert_eq!(a.mograph_perf.peak_live_nodes, 25, "peak maxes, not sums");
    }

    #[test]
    fn equality_ignores_phase_profile() {
        use c11tester_telemetry::Phase;
        let plain = ExecStats {
            atomic_loads: 4,
            ..ExecStats::default()
        };
        let mut profiled = plain;
        profiled.phase.record(Phase::Scheduling, 1_000);
        // Same behavior, different wall-clock profile: equal.
        assert_eq!(plain, profiled);
    }

    #[test]
    fn absorb_accumulates_phase_profile() {
        use c11tester_telemetry::Phase;
        let mut a = ExecStats::default();
        let mut b = ExecStats::default();
        b.phase.record(Phase::Prune, 5);
        a.absorb(&b);
        a.absorb(&b);
        assert_eq!(a.phase.nanos(Phase::Prune), 10);
        assert_eq!(a.phase.calls(Phase::Prune), 2);
    }

    #[test]
    fn absorb_accumulates_alloc_counters() {
        let mut a = ExecStats::default();
        let b = ExecStats {
            alloc: AllocStats {
                fresh_executions: 1,
                recycled_executions: 2,
                clock_spills: 7,
            },
            ..ExecStats::default()
        };
        a.absorb(&b);
        a.absorb(&b);
        assert_eq!(a.alloc.fresh_executions, 2);
        assert_eq!(a.alloc.recycled_executions, 4);
        assert_eq!(a.alloc.clock_spills, 14);
    }
}
