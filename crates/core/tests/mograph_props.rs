//! Property tests: the incremental-topological-order mo-graph against
//! an independent naive reachability oracle.
//!
//! The oracle mirrors only the Fig. 6 edge *semantics* (rmw-chain
//! redirection, rmw edge migration) on plain adjacency lists and
//! answers reachability with a Floyd–Warshall transitive closure — no
//! clock vectors, no order indices, no shared engine code (the same
//! independence discipline as the `c11fuzz` trace oracle). Random
//! operation sequences are biased at the machinery's boundaries:
//! order-violating edge insertions, which force bounded local
//! reorders, and §7.1 prune/compact passes, which tombstone and then
//! physically evict nodes while remapping ids.
//!
//! The generator maintains the engine's structural invariants — edges
//! connect same-location stores, per-(thread, location) stores form a
//! CoWW chain, at most one RMW reads from a store, and prune sets are
//! ancestor-closed — because Theorem 1's exactness (and therefore
//! `MoGraph::reaches`) is only promised under them.

use c11tester_core::{MoGraph, NodeId, ObjId, SeqNum, ThreadId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 32;
const STEPS: usize = 48;
const THREADS: usize = 4;
const OBJS: u64 = 2;

/// The naive mirror: adjacency lists plus the Fig. 6 edge semantics,
/// nothing else.
#[derive(Default)]
struct Oracle {
    obj: Vec<u64>,
    edges: Vec<Vec<usize>>,
    rmw: Vec<Option<usize>>,
    pruned: Vec<bool>,
}

impl Oracle {
    fn add_node(&mut self, obj: u64) -> usize {
        self.obj.push(obj);
        self.edges.push(Vec::new());
        self.rmw.push(None);
        self.pruned.push(false);
        self.obj.len() - 1
    }

    fn len(&self) -> usize {
        self.obj.len()
    }

    /// Fig. 6 `AddEdge` redirection: an edge out of a store that feeds
    /// an RMW lands after the rmw chain's end instead.
    fn chain_end(&self, start: usize, stop: usize) -> usize {
        let mut n = start;
        while let Some(next) = self.rmw[n] {
            if next == stop {
                break;
            }
            n = next;
        }
        n
    }

    fn add_edge(&mut self, from: usize, to: usize) {
        let from = self.chain_end(from, to);
        if from != to && !self.edges[from].contains(&to) {
            self.edges[from].push(to);
        }
    }

    /// Fig. 6 `AddRMWEdge`: install the rmw pointer, migrate `from`'s
    /// outgoing edges onto `rmw`, then add the ordinary edge.
    fn add_rmw_edge(&mut self, from: usize, rmw: usize) {
        assert!(self.rmw[from].is_none(), "store already feeds an RMW");
        self.rmw[from] = Some(rmw);
        let migrated: Vec<usize> = std::mem::take(&mut self.edges[from])
            .into_iter()
            .filter(|&d| d != rmw)
            .collect();
        for d in migrated {
            if !self.edges[rmw].contains(&d) {
                self.edges[rmw].push(d);
            }
        }
        self.add_edge(from, rmw);
    }

    /// Floyd–Warshall transitive closure over mo and rmw edges.
    fn closure(&self) -> Vec<Vec<bool>> {
        let n = self.len();
        let mut c = vec![vec![false; n]; n];
        for (u, row) in c.iter_mut().enumerate() {
            for &v in &self.edges[u] {
                row[v] = true;
            }
            if let Some(r) = self.rmw[u] {
                row[r] = true;
            }
        }
        for k in 0..n {
            let row_k = c[k].clone();
            for row_i in c.iter_mut() {
                if row_i[k] {
                    for (j, &reach) in row_k.iter().enumerate() {
                        if reach {
                            row_i[j] = true;
                        }
                    }
                }
            }
        }
        c
    }

    fn prune(&mut self, ix: usize) {
        self.pruned[ix] = true;
        self.edges[ix].clear();
        self.rmw[ix] = None;
    }

    fn drop_edges_to_pruned(&mut self) {
        let pruned = self.pruned.clone();
        for u in 0..self.len() {
            self.edges[u].retain(|&d| !pruned[d]);
            if let Some(r) = self.rmw[u] {
                if pruned[r] {
                    self.rmw[u] = None;
                }
            }
        }
    }
}

/// One generated case: a random, invariant-respecting operation
/// sequence applied to both implementations with cross-checks after
/// every step.
struct Case {
    g: MoGraph,
    o: Oracle,
    /// Oracle index → graph arena id (rewritten by compaction).
    ids: Vec<NodeId>,
    /// CoWW chain tail per (thread, location), as the engine keeps it.
    tails: [[Option<usize>; OBJS as usize]; THREADS],
    seq: u64,
}

impl Case {
    fn new() -> Self {
        Case {
            g: MoGraph::new(),
            o: Oracle::default(),
            ids: Vec::new(),
            tails: [[None; OBJS as usize]; THREADS],
            seq: 0,
        }
    }

    /// Adds a store node for `(t, obj)` with its CoWW chain edge.
    fn add_store(&mut self, t: usize, obj: u64) -> usize {
        self.seq += 1;
        let id = self
            .g
            .add_node(ThreadId::from_index(t), SeqNum(self.seq), ObjId(obj));
        let ix = self.o.add_node(obj);
        assert_eq!(self.ids.len(), ix);
        self.ids.push(id);
        if let Some(tail) = self.tails[t][obj as usize] {
            self.g.add_edge(self.ids[tail], id);
            self.o.add_edge(tail, ix);
        }
        self.tails[t][obj as usize] = Some(ix);
        ix
    }

    /// Live (unpruned) oracle indices.
    fn live(&self) -> Vec<usize> {
        (0..self.o.len()).filter(|&i| !self.o.pruned[i]).collect()
    }

    /// Attempts one extra mo edge between same-location nodes. With
    /// `bias_reorder`, prefers pairs whose *effective* source (after
    /// rmw-chain redirection) sits later in the maintained order than
    /// the target — exactly the insertions that trigger a bounded
    /// local reorder.
    fn add_random_edge(&mut self, rng: &mut StdRng, closure: &[Vec<bool>], bias_reorder: bool) {
        let live = self.live();
        if live.len() < 2 {
            return;
        }
        let mut fallback = None;
        for _ in 0..16 {
            let a = live[rng.gen_range(0..live.len())];
            let b = live[rng.gen_range(0..live.len())];
            if a == b || self.o.obj[a] != self.o.obj[b] {
                continue;
            }
            // The edge actually lands at the rmw-chain end; cycle
            // safety and reorder bias are judged there.
            let s = self.o.chain_end(a, b);
            if s == b || closure[b][s] {
                continue;
            }
            let violates = self.g.order_index(self.ids[s]) > self.g.order_index(self.ids[b]);
            if violates || !bias_reorder {
                self.apply_edge(a, b);
                return;
            }
            fallback = Some((a, b));
        }
        if let Some((a, b)) = fallback {
            self.apply_edge(a, b);
        }
    }

    fn apply_edge(&mut self, a: usize, b: usize) {
        self.g.add_edge(self.ids[a], self.ids[b]);
        self.o.add_edge(a, b);
    }

    /// Attempts an RMW: a new same-location store node on `t`'s CoWW
    /// chain that reads from a safe existing store. Safety mirrors the
    /// engine's §4.3 feasibility requirement: migrating `src`'s edges
    /// onto the new node must not order anything before the node's
    /// existing predecessors.
    fn add_random_rmw(&mut self, rng: &mut StdRng, closure: &[Vec<bool>]) {
        let t = rng.gen_range(0..THREADS);
        let obj = rng.gen_range(0..OBJS);
        let tail = self.tails[t][obj as usize];
        // The CoWW edge out of the tail is itself redirected through
        // the tail's rmw chain, so the new node's real predecessor is
        // the chain's end, not the tail.
        let pred = tail.map(|p| self.o.chain_end(p, usize::MAX));
        let candidates: Vec<usize> = self
            .live()
            .into_iter()
            .filter(|&src| {
                self.o.obj[src] == obj
                    && self.o.rmw[src].is_none()
                    && self.o.edges[src].iter().all(|&d| {
                        // A migrated target must not reach the
                        // predecessor of the node we are about to add.
                        pred.is_none_or(|p| d != p && !closure[d][p])
                    })
            })
            .collect();
        if candidates.is_empty() {
            return;
        }
        let src = candidates[rng.gen_range(0..candidates.len())];
        let n = self.add_store(t, obj);
        self.g.add_rmw_edge(self.ids[src], self.ids[n]);
        self.o.add_rmw_edge(src, n);
    }

    /// §7.1 prune pass: tombstones the ancestor closure of a random
    /// node (ancestor-closedness is the engine's contract — survivors
    /// never needed reachability answers through pruned nodes), then
    /// optionally compacts, rewriting every retained id through the
    /// remap table exactly as the execution layer must.
    fn prune_and_maybe_compact(&mut self, rng: &mut StdRng, closure: &[Vec<bool>]) {
        let live = self.live();
        if live.is_empty() {
            return;
        }
        let v = live[rng.gen_range(0..live.len())];
        let doomed: Vec<usize> = live
            .into_iter()
            .filter(|&u| u == v || closure[u][v])
            .collect();
        for &u in &doomed {
            self.g.prune_node(self.ids[u]);
            self.o.prune(u);
        }
        self.g.drop_edges_to_pruned();
        self.o.drop_edges_to_pruned();
        for row in self.tails.iter_mut() {
            for tail in row.iter_mut() {
                if tail.is_some_and(|ix| self.o.pruned[ix]) {
                    *tail = None;
                }
            }
        }
        if rng.gen_range(0..2u32) == 0 {
            let remap = self.g.compact().to_vec();
            // Rebuild the oracle over the survivors, renumbering both
            // sides consistently.
            let mut new_of_old = vec![None; self.o.len()];
            let mut o2 = Oracle::default();
            let mut ids2 = Vec::new();
            for old in 0..self.o.len() {
                if self.o.pruned[old] {
                    assert_eq!(
                        remap[self.ids[old].0 as usize], None,
                        "pruned node survived compaction"
                    );
                    continue;
                }
                let new_id =
                    remap[self.ids[old].0 as usize].expect("live node evicted by compaction");
                new_of_old[old] = Some(o2.add_node(self.o.obj[old]));
                ids2.push(new_id);
            }
            for old in 0..self.o.len() {
                let Some(new) = new_of_old[old] else { continue };
                for &d in &self.o.edges[old] {
                    o2.edges[new].push(new_of_old[d].expect("edge to pruned node"));
                }
                o2.rmw[new] = self.o.rmw[old].map(|r| new_of_old[r].expect("rmw to pruned node"));
            }
            for row in self.tails.iter_mut() {
                for tail in row.iter_mut() {
                    *tail = tail.and_then(|ix| new_of_old[ix]);
                }
            }
            self.o = o2;
            self.ids = ids2;
        }
    }

    /// Cross-checks every pair against the oracle closure:
    /// * the maintained topological order is a valid one;
    /// * graph-traversal reachability equals the naive closure;
    /// * clock-vector reachability (`reaches`) equals it for
    ///   same-location pairs (its documented domain);
    /// * every reachable pair respects the order indices.
    fn check(&self, closure: &[Vec<bool>], ctx: &str) {
        if !self.g.order_is_valid_slow() {
            for (ix, &id) in self.ids.iter().enumerate() {
                let n = self.g.node(id);
                eprintln!(
                    "  ix {ix} id {:?} ord {} tid {:?} obj {:?} edges {:?} rmw {:?} pruned {}",
                    id,
                    self.g.order_index(id),
                    n.tid,
                    n.obj,
                    n.edges,
                    n.rmw,
                    n.pruned
                );
            }
            panic!("{ctx}: order invariant broken");
        }
        assert!(!self.g.has_cycle_slow(), "{ctx}: graph acquired a cycle");
        let live = self.live();
        for &a in &live {
            for &b in &live {
                if a == b {
                    continue;
                }
                assert_eq!(
                    self.g.reaches_slow(self.ids[a], self.ids[b]),
                    closure[a][b],
                    "{ctx}: traversal disagrees with oracle for {a} -> {b}"
                );
                if self.o.obj[a] == self.o.obj[b] {
                    assert_eq!(
                        self.g.reaches(self.ids[a], self.ids[b]),
                        closure[a][b],
                        "{ctx}: clock vectors disagree with oracle for {a} -> {b}"
                    );
                }
                if closure[a][b] {
                    assert!(
                        self.g.order_index(self.ids[a]) < self.g.order_index(self.ids[b]),
                        "{ctx}: order contradicts reachability for {a} -> {b}"
                    );
                }
            }
        }
    }
}

fn run_case(seed: u64, bias_reorder: bool, with_pruning: bool) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut case = Case::new();
    for step in 0..STEPS {
        let closure = case.o.closure();
        let roll = rng.gen_range(0..100u32);
        if roll < 30 {
            let t = rng.gen_range(0..THREADS);
            let obj = rng.gen_range(0..OBJS);
            case.add_store(t, obj);
        } else if roll < 70 {
            case.add_random_edge(&mut rng, &closure, bias_reorder);
        } else if roll < 85 {
            case.add_random_rmw(&mut rng, &closure);
        } else if with_pruning {
            case.prune_and_maybe_compact(&mut rng, &closure);
        } else {
            case.add_random_edge(&mut rng, &closure, true);
        }
        let closure = case.o.closure();
        case.check(&closure, &format!("seed {seed} step {step}"));
    }
}

#[test]
fn random_graphs_match_naive_oracle() {
    for seed in 0..CASES {
        run_case(0xA_11CE_0000 + seed, false, false);
    }
}

#[test]
fn reorder_heavy_graphs_match_naive_oracle() {
    // Every edge step hunts for an order-violating insertion first, so
    // the bounded local reorder path runs constantly.
    for seed in 0..CASES {
        run_case(0xB0B_0000 + seed, true, false);
    }
}

#[test]
fn pruned_and_compacted_graphs_match_naive_oracle() {
    // §7.1 boundary: ancestor-closed tombstoning, edge dropping, and
    // physical compaction with id remapping interleave with growth.
    for seed in 0..CASES {
        run_case(0xC0_FFEE_0000 + seed, true, true);
    }
}
