//! Property-based tests over random programs.
//!
//! Random sequences of atomic operations (stores, loads, RMWs, fences,
//! forks) are replayed through [`Execution`] with generated read
//! choices, and the engine's core invariants are checked:
//!
//! * the mo-graph never acquires a cycle (constraint satisfiability);
//! * **Theorem 1**: clock-vector reachability coincides with graph
//!   reachability for same-location nodes;
//! * loads only read already-executed stores (`hb ∪ sc ∪ rf` acyclic);
//! * per-thread read-read coherence over the lifted execution;
//! * the restricted tsan11 fragment only produces a *subset* of the
//!   full fragment's feasible reads;
//! * conservative pruning never changes feasible read sets.
//!
//! The harness generates its cases with the workspace's deterministic
//! `rand` shim (the offline environment has no proptest): each property
//! replays a fixed number of seeded random programs, so failures
//! reproduce exactly by seed.

use c11tester_core::{
    Execution, MemOrder, ObjId, Policy, PruneConfig, StoreIdx, StoreKind, ThreadId,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 256;

#[derive(Clone, Debug)]
enum Op {
    Store {
        t: u8,
        obj: u8,
        order: u8,
        val: u8,
    },
    Load {
        t: u8,
        obj: u8,
        order: u8,
        choice: u8,
    },
    Rmw {
        t: u8,
        obj: u8,
        order: u8,
        choice: u8,
    },
    Fence {
        t: u8,
        order: u8,
    },
    Fork {
        t: u8,
    },
}

fn order_of(ix: u8) -> MemOrder {
    match ix % 5 {
        0 => MemOrder::Relaxed,
        1 => MemOrder::Acquire,
        2 => MemOrder::Release,
        3 => MemOrder::AcqRel,
        _ => MemOrder::SeqCst,
    }
}

/// Draws a random program of `1..max_len` operations.
fn gen_ops(rng: &mut StdRng, max_len: usize) -> Vec<Op> {
    let len = rng.gen_range(1..max_len);
    (0..len)
        .map(|_| match rng.gen_range(0..5u8) {
            0 => Op::Store {
                t: rng.gen_range(0..=255u8),
                obj: rng.gen_range(0..=255u8),
                order: rng.gen_range(0..=255u8),
                val: rng.gen_range(0..=255u8),
            },
            1 => Op::Load {
                t: rng.gen_range(0..=255u8),
                obj: rng.gen_range(0..=255u8),
                order: rng.gen_range(0..=255u8),
                choice: rng.gen_range(0..=255u8),
            },
            2 => Op::Rmw {
                t: rng.gen_range(0..=255u8),
                obj: rng.gen_range(0..=255u8),
                order: rng.gen_range(0..=255u8),
                choice: rng.gen_range(0..=255u8),
            },
            3 => Op::Fence {
                t: rng.gen_range(0..=255u8),
                order: rng.gen_range(0..=255u8),
            },
            _ => Op::Fork {
                t: rng.gen_range(0..=255u8),
            },
        })
        .collect()
}

/// Runs `property` against `CASES` seeded random programs.
fn for_random_programs(name: &str, max_len: usize, mut property: impl FnMut(&[Op])) {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC11_7E57);
        let ops = gen_ops(&mut rng, max_len);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(&ops)));
        if let Err(payload) = result {
            eprintln!("property `{name}` failed on seed {seed} with ops: {ops:?}");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Replays `ops` on an execution, recording `(thread, obj, store)` for
/// every committed read. Returns the execution and the read log.
fn replay(
    policy: Policy,
    prune: PruneConfig,
    ops: &[Op],
) -> (Execution, Vec<(ThreadId, ObjId, StoreIdx)>) {
    let mut e = Execution::with_pruning(policy, prune);
    let mut threads = vec![ThreadId::MAIN];
    let objs: Vec<ObjId> = (0..3).map(|_| e.new_object()).collect();
    let mut reads = Vec::new();
    for op in ops {
        match *op {
            Op::Store { t, obj, order, val } => {
                let t = threads[t as usize % threads.len()];
                let obj = objs[obj as usize % objs.len()];
                e.atomic_store(t, obj, order_of(order), u64::from(val), StoreKind::Atomic);
            }
            Op::Load {
                t,
                obj,
                order,
                choice,
            } => {
                let t = threads[t as usize % threads.len()];
                let obj = objs[obj as usize % objs.len()];
                let cands = e.feasible_read_candidates(t, obj, order_of(order), false);
                if !cands.is_empty() {
                    let c = cands[choice as usize % cands.len()];
                    e.commit_load(t, obj, order_of(order), c);
                    reads.push((t, obj, c));
                }
            }
            Op::Rmw {
                t,
                obj,
                order,
                choice,
            } => {
                let t = threads[t as usize % threads.len()];
                let obj = objs[obj as usize % objs.len()];
                let cands = e.feasible_read_candidates(t, obj, order_of(order), true);
                if !cands.is_empty() {
                    let c = cands[choice as usize % cands.len()];
                    let old = e.store_value(c);
                    e.commit_rmw(t, obj, order_of(order), c, old.wrapping_add(1));
                    reads.push((t, obj, c));
                }
            }
            Op::Fence { t, order } => {
                let t = threads[t as usize % threads.len()];
                e.fence(t, order_of(order));
            }
            Op::Fork { t } => {
                if threads.len() < 4 {
                    let parent = threads[t as usize % threads.len()];
                    threads.push(e.fork(parent));
                }
            }
        }
    }
    (e, reads)
}

/// The mo-graph stays acyclic and Theorem 1 holds after any program.
#[test]
fn mograph_acyclic_and_theorem1() {
    for_random_programs("mograph_acyclic_and_theorem1", 40, |ops| {
        let (e, _) = replay(Policy::C11Tester, PruneConfig::disabled(), ops);
        let g = e.mograph();
        assert!(!g.has_cycle_slow(), "mo-graph acquired a cycle");
        // Theorem 1 on every same-location node pair.
        let nodes: Vec<_> = (0..g.len())
            .map(|i| c11tester_core::NodeId(i as u32))
            .filter(|&n| !g.node(n).pruned)
            .collect();
        for &a in &nodes {
            for &b in &nodes {
                if a == b || g.node(a).obj != g.node(b).obj {
                    continue;
                }
                assert_eq!(
                    g.reaches(a, b),
                    g.reaches_slow(a, b),
                    "Theorem 1 violated between {a:?} and {b:?}"
                );
            }
        }
    });
}

/// Loads only ever read stores that already executed, so
/// `hb ∪ sc ∪ rf` is trivially acyclic (Lemma 4).
#[test]
fn reads_only_from_the_past() {
    for_random_programs("reads_only_from_the_past", 40, |ops| {
        let (e, reads) = replay(Policy::C11Tester, PruneConfig::disabled(), ops);
        for &(_, _, s) in &reads {
            assert!(e.store(s).seq <= e.now());
        }
    });
}

/// Per-thread read-read coherence: two successive reads of the same
/// location by one thread never observe stores in anti-mo order.
#[test]
fn read_read_coherence() {
    for_random_programs("read_read_coherence", 40, |ops| {
        let (mut e, reads) = replay(Policy::C11Tester, PruneConfig::disabled(), ops);
        for t_ix in 0..4 {
            let t = ThreadId::from_index(t_ix);
            for obj_ix in 0..3 {
                let mine: Vec<StoreIdx> = reads
                    .iter()
                    .filter(|(rt, robj, _)| *rt == t && robj.0 == obj_ix)
                    .map(|&(_, _, s)| s)
                    .collect();
                for w in mine.windows(2) {
                    let (x, y) = (w[0], w[1]);
                    if x == y {
                        continue;
                    }
                    let nx = e.node_of(x);
                    let ny = e.node_of(y);
                    assert!(
                        !e.mograph().reaches_slow(ny, nx),
                        "CoRR violated: later read saw mo-earlier store"
                    );
                }
            }
        }
    });
}

/// The restricted fragment's feasible reads are a subset of the
/// full fragment's at every step (driving both with the restricted
/// choice, which must be legal in both).
#[test]
fn restricted_fragment_is_a_subset() {
    for_random_programs("restricted_fragment_is_a_subset", 30, |ops| {
        let mut full = Execution::new(Policy::C11Tester);
        let mut restr = Execution::new(Policy::Tsan11);
        let mut threads = vec![ThreadId::MAIN];
        let objs_f: Vec<ObjId> = (0..3).map(|_| full.new_object()).collect();
        let objs_r: Vec<ObjId> = (0..3).map(|_| restr.new_object()).collect();
        for op in ops {
            match *op {
                Op::Store { t, obj, order, val } => {
                    let t = threads[t as usize % threads.len()];
                    full.atomic_store(
                        t,
                        objs_f[obj as usize % 3],
                        order_of(order),
                        u64::from(val),
                        StoreKind::Atomic,
                    );
                    restr.atomic_store(
                        t,
                        objs_r[obj as usize % 3],
                        order_of(order),
                        u64::from(val),
                        StoreKind::Atomic,
                    );
                }
                Op::Load {
                    t,
                    obj,
                    order,
                    choice,
                }
                | Op::Rmw {
                    t,
                    obj,
                    order,
                    choice,
                } => {
                    let for_rmw = matches!(op, Op::Rmw { .. });
                    let t = threads[t as usize % threads.len()];
                    let of = objs_f[obj as usize % 3];
                    let or = objs_r[obj as usize % 3];
                    let cf = full.feasible_read_candidates(t, of, order_of(order), for_rmw);
                    let cr = restr.feasible_read_candidates(t, or, order_of(order), for_rmw);
                    // Candidate sets are over distinct executions; compare
                    // by the identifying (tid, seq) of the stores.
                    let key = |e: &Execution, s: StoreIdx| (e.store(s).tid, e.store(s).seq);
                    let kf: Vec<_> = cf.iter().map(|&s| key(&full, s)).collect();
                    for &s in &cr {
                        assert!(
                            kf.contains(&key(&restr, s)),
                            "restricted fragment allowed a read the full one forbids"
                        );
                    }
                    if !cr.is_empty() {
                        let pick_r = cr[choice as usize % cr.len()];
                        let k = key(&restr, pick_r);
                        let pick_f = cf
                            .iter()
                            .copied()
                            .find(|&s| key(&full, s) == k)
                            .expect("subset property");
                        if for_rmw {
                            let old = restr.store_value(pick_r);
                            restr.commit_rmw(t, or, order_of(order), pick_r, old + 1);
                            full.commit_rmw(t, of, order_of(order), pick_f, old + 1);
                        } else {
                            restr.commit_load(t, or, order_of(order), pick_r);
                            full.commit_load(t, of, order_of(order), pick_f);
                        }
                    }
                }
                Op::Fence { t, order } => {
                    let t = threads[t as usize % threads.len()];
                    full.fence(t, order_of(order));
                    restr.fence(t, order_of(order));
                }
                Op::Fork { t } => {
                    if threads.len() < 4 {
                        let parent = threads[t as usize % threads.len()];
                        let a = full.fork(parent);
                        let b = restr.fork(parent);
                        assert_eq!(a, b);
                        threads.push(a);
                    }
                }
            }
        }
    });
}

/// Conservative pruning never changes the feasible read set of any
/// load (it only retires unreadable history).
#[test]
fn conservative_pruning_is_invisible() {
    for_random_programs("conservative_pruning_is_invisible", 30, |ops| {
        let mut plain = Execution::new(Policy::C11Tester);
        let mut pruned = Execution::with_pruning(Policy::C11Tester, PruneConfig::conservative(8));
        let mut threads = vec![ThreadId::MAIN];
        let objs_a: Vec<ObjId> = (0..3).map(|_| plain.new_object()).collect();
        let objs_b: Vec<ObjId> = (0..3).map(|_| pruned.new_object()).collect();
        for op in ops {
            match *op {
                Op::Store { t, obj, order, val } => {
                    let t = threads[t as usize % threads.len()];
                    plain.atomic_store(
                        t,
                        objs_a[obj as usize % 3],
                        order_of(order),
                        u64::from(val),
                        StoreKind::Atomic,
                    );
                    pruned.atomic_store(
                        t,
                        objs_b[obj as usize % 3],
                        order_of(order),
                        u64::from(val),
                        StoreKind::Atomic,
                    );
                }
                Op::Load {
                    t,
                    obj,
                    order,
                    choice,
                } => {
                    let t = threads[t as usize % threads.len()];
                    let oa = objs_a[obj as usize % 3];
                    let ob = objs_b[obj as usize % 3];
                    let key = |e: &Execution, s: StoreIdx| (e.store(s).tid, e.store(s).seq);
                    let ca = plain.feasible_read_candidates(t, oa, order_of(order), false);
                    let cb = pruned.feasible_read_candidates(t, ob, order_of(order), false);
                    let mut ka: Vec<_> = ca.iter().map(|&s| key(&plain, s)).collect();
                    let mut kb: Vec<_> = cb.iter().map(|&s| key(&pruned, s)).collect();
                    ka.sort_unstable();
                    kb.sort_unstable();
                    assert_eq!(&ka, &kb, "pruning changed a feasible read set");
                    if !ca.is_empty() {
                        let pa = ca[choice as usize % ca.len()];
                        let k = key(&plain, pa);
                        let pb = cb
                            .iter()
                            .copied()
                            .find(|&s| key(&pruned, s) == k)
                            .expect("equal sets");
                        plain.commit_load(t, oa, order_of(order), pa);
                        pruned.commit_load(t, ob, order_of(order), pb);
                    }
                }
                Op::Rmw {
                    t,
                    obj,
                    order,
                    choice,
                } => {
                    let t = threads[t as usize % threads.len()];
                    let oa = objs_a[obj as usize % 3];
                    let ob = objs_b[obj as usize % 3];
                    let key = |e: &Execution, s: StoreIdx| (e.store(s).tid, e.store(s).seq);
                    let ca = plain.feasible_read_candidates(t, oa, order_of(order), true);
                    if ca.is_empty() {
                        continue;
                    }
                    let pa = ca[choice as usize % ca.len()];
                    let k = key(&plain, pa);
                    let cb = pruned.feasible_read_candidates(t, ob, order_of(order), true);
                    let pb = cb.iter().copied().find(|&s| key(&pruned, s) == k);
                    assert!(pb.is_some(), "pruning lost an RMW candidate");
                    let old = plain.store_value(pa);
                    plain.commit_rmw(t, oa, order_of(order), pa, old + 1);
                    pruned.commit_rmw(t, ob, order_of(order), pb.expect("present"), old + 1);
                }
                Op::Fence { t, order } => {
                    let t = threads[t as usize % threads.len()];
                    plain.fence(t, order_of(order));
                    pruned.fence(t, order_of(order));
                }
                Op::Fork { t } => {
                    if threads.len() < 4 {
                        let parent = threads[t as usize % threads.len()];
                        let a = plain.fork(parent);
                        let b = pruned.fork(parent);
                        assert_eq!(a, b);
                        threads.push(a);
                    }
                }
            }
        }
    });
}
