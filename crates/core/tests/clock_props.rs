//! Property tests for [`ClockVector`] against a naive `Vec<u64>`
//! reference model, concentrated on the inline→spill boundary.
//!
//! The production vector keeps up to [`INLINE_SLOTS`] slots in a fixed
//! array and transparently spills to the heap for the 9th thread; the
//! contract is that the spill is *invisible* — every operator behaves
//! as if the vector were a plain `Vec<u64>` whose physical length (and
//! significant trailing zeros) match the naive model's. The model here
//! re-implements union/leq/intersect/set/get in the most obvious way
//! possible and the properties drive both through the same random
//! operation streams, biased so vectors straddle slots 7, 8, and 9.
//!
//! Like `tests/properties.rs`, cases are generated with the
//! workspace's deterministic `rand` shim, so any failure reproduces
//! exactly by seed.

use c11tester_core::{ClockVector, ThreadId, INLINE_SLOTS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 512;

/// The naive reference: a growable `Vec<u64>` with the same
/// physical-length semantics (trailing zeros up to `len` are
/// significant for equality).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
struct NaiveCv(Vec<u64>);

impl NaiveCv {
    fn get(&self, ix: usize) -> u64 {
        self.0.get(ix).copied().unwrap_or(0)
    }

    fn set(&mut self, ix: usize, v: u64) {
        if self.0.len() <= ix {
            self.0.resize(ix + 1, 0);
        }
        self.0[ix] = v;
    }

    fn union_with(&mut self, other: &NaiveCv) -> bool {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        let mut changed = false;
        for (d, &o) in self.0.iter_mut().zip(&other.0) {
            if o > *d {
                *d = o;
                changed = true;
            }
        }
        changed
    }

    fn leq(&self, other: &NaiveCv) -> bool {
        (0..self.0.len().max(other.0.len())).all(|ix| self.get(ix) <= other.get(ix))
    }

    fn intersect(&self, other: &NaiveCv) -> NaiveCv {
        let n = self.0.len().min(other.0.len());
        NaiveCv((0..n).map(|ix| self.get(ix).min(other.get(ix))).collect())
    }
}

fn t(ix: usize) -> ThreadId {
    ThreadId::from_index(ix)
}

/// Asserts the production vector and the model agree on every
/// observable: physical length, every slot, and the exposed slice.
fn assert_agrees(cv: &ClockVector, model: &NaiveCv, ctx: &str) {
    assert_eq!(cv.len(), model.0.len(), "{ctx}: physical length");
    assert_eq!(cv.as_slice(), &model.0[..], "{ctx}: slice");
    // `get` past the physical length reads 0 on both sides.
    for ix in 0..model.0.len() + 3 {
        assert_eq!(cv.get(t(ix)), model.get(ix), "{ctx}: slot {ix}");
    }
    assert_eq!(
        cv.is_empty(),
        model.0.iter().all(|&v| v == 0),
        "{ctx}: is_empty"
    );
}

/// Draws a slot index biased toward the spill boundary: most writes
/// land on slots 6..=9 so vectors constantly cross `INLINE_SLOTS`.
fn boundary_slot(rng: &mut StdRng) -> usize {
    if rng.gen_range(0..4u64) == 0 {
        rng.gen_range(0..INLINE_SLOTS + 4)
    } else {
        rng.gen_range(INLINE_SLOTS - 2..INLINE_SLOTS + 2)
    }
}

/// Builds a random (production, model) pair with `writes` random sets.
fn random_pair(rng: &mut StdRng, writes: usize) -> (ClockVector, NaiveCv) {
    let mut cv = ClockVector::new();
    let mut model = NaiveCv::default();
    for _ in 0..writes {
        let ix = boundary_slot(rng);
        // Zero values are legal and exercise significant trailing zeros.
        let v = rng.gen_range(0..5u64);
        cv.set(t(ix), v);
        model.set(ix, v);
    }
    (cv, model)
}

#[test]
fn set_get_tracks_the_model_across_the_spill_boundary() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_cv = rng.gen_range(0..12usize);
        let (mut cv, mut model) = random_pair(&mut rng, n_cv);
        assert_agrees(&cv, &model, &format!("seed {seed} after build"));
        // A targeted walk across the boundary: slot 7, then 8, then 9.
        for ix in [INLINE_SLOTS - 1, INLINE_SLOTS, INLINE_SLOTS + 1] {
            let v = rng.gen_range(1..100u64);
            cv.set(t(ix), v);
            model.set(ix, v);
            assert_agrees(&cv, &model, &format!("seed {seed} slot {ix}"));
        }
        assert!(cv.is_spilled(), "slot {INLINE_SLOTS} must spill");
    }
}

#[test]
fn union_with_matches_the_model_and_its_changed_flag() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5EED ^ seed);
        let n_a = rng.gen_range(0..10usize);
        let (mut a, mut ma) = random_pair(&mut rng, n_a);
        let n_b = rng.gen_range(0..10usize);
        let (b, mb) = random_pair(&mut rng, n_b);
        let changed = a.union_with(&b);
        let model_changed = ma.union_with(&mb);
        assert_eq!(changed, model_changed, "seed {seed}: changed flag");
        assert_agrees(&a, &ma, &format!("seed {seed} after union"));
        // Union is idempotent and reports no change the second time.
        assert!(!a.union_with(&b), "seed {seed}: idempotent union");
        // Both inputs are ≤ the union.
        assert!(b.leq(&a), "seed {seed}: rhs ≤ union");
    }
}

#[test]
fn leq_and_eq_match_the_model() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xAB1E ^ seed);
        let n_a = rng.gen_range(0..10usize);
        let (a, ma) = random_pair(&mut rng, n_a);
        let n_b = rng.gen_range(0..10usize);
        let (b, mb) = random_pair(&mut rng, n_b);
        assert_eq!(a.leq(&b), ma.leq(&mb), "seed {seed}: a ≤ b");
        assert_eq!(b.leq(&a), mb.leq(&ma), "seed {seed}: b ≤ a");
        // PartialEq compares physical slices — length included.
        assert_eq!(a == b, ma == mb, "seed {seed}: equality");
        assert!(a.leq(&a), "seed {seed}: reflexive");
    }
}

#[test]
fn intersect_matches_the_model() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x1234 ^ seed);
        let n_a = rng.gen_range(0..10usize);
        let (a, ma) = random_pair(&mut rng, n_a);
        let n_b = rng.gen_range(0..10usize);
        let (b, mb) = random_pair(&mut rng, n_b);
        let i = a.intersect(&b);
        let mi = ma.intersect(&mb);
        assert_agrees(&i, &mi, &format!("seed {seed} intersection"));
        // The intersection is ≤ both inputs.
        assert!(i.leq(&a) && i.leq(&b), "seed {seed}: lower bound");
    }
}

#[test]
fn clear_and_release_preserve_the_model_semantics() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC1EA ^ seed);
        let n_a = rng.gen_range(0..12usize);
        let (mut a, _) = random_pair(&mut rng, n_a);
        let spilled = a.is_spilled();
        let mut b = a.clone();
        // `clear` keeps backing storage; `release` drops the spill.
        a.clear();
        b.release();
        assert_eq!(a.len(), 0, "seed {seed}: clear zeroes length");
        assert_eq!(b.len(), 0, "seed {seed}: release zeroes length");
        assert_eq!(a.is_spilled(), spilled, "seed {seed}: clear keeps heap");
        assert!(!b.is_spilled(), "seed {seed}: release returns inline");
        assert_eq!(a, b, "seed {seed}: both are logically empty");
        // Repopulating after either works identically.
        let ix = boundary_slot(&mut rng);
        let v = rng.gen_range(1..50u64);
        a.set(t(ix), v);
        b.set(t(ix), v);
        assert_eq!(a, b, "seed {seed}: repopulated equal");
        assert_eq!(a.get(t(ix)), v, "seed {seed}: repopulated value");
    }
}

#[test]
fn iter_nonzero_matches_the_model() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x17E4 ^ seed);
        let n_a = rng.gen_range(0..12usize);
        let (a, ma) = random_pair(&mut rng, n_a);
        let got: Vec<(usize, u64)> = a.iter_nonzero().map(|(tid, v)| (tid.index(), v)).collect();
        let want: Vec<(usize, u64)> =
            ma.0.iter()
                .enumerate()
                .filter(|&(_, &v)| v != 0)
                .map(|(ix, &v)| (ix, v))
                .collect();
        assert_eq!(got, want, "seed {seed}: nonzero iteration");
    }
}
