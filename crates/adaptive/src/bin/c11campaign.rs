//! `c11campaign` — run a (plain or adaptive) exploration campaign on a
//! built-in workload.
//!
//! ```text
//! c11campaign --target seqlock-buggy --executions 1000 --workers 8 --seed 7
//! c11campaign --target rwlock-buggy --stop-on-first-bug
//! c11campaign --target rwlock-buggy --mix random:2,pct2:1,pct3:1
//! c11campaign --target rwlock-buggy --adaptive ucb1 --epoch 100
//! c11campaign --target null-deref-buggy --isolate
//! c11campaign --target spin-forever --isolate --exec-timeout 2
//! c11campaign --target rwlock-buggy --canonical > baseline.json
//! c11campaign --target rwlock-buggy --baseline baseline.json
//! c11campaign --target ms-queue --deadline-secs 10 --json
//! c11campaign --list
//! ```

use c11tester::{Config, DedupHistory, Model, Policy, StrategyMix};
use c11tester_adaptive::AdaptiveCampaign;
use c11tester_campaign::baseline::{BaselineDiff, BaselineSummary};
use c11tester_campaign::cli::{parse_u64, usage_error};
use c11tester_campaign::forensics::{self, CaptureSink, Witness};
use c11tester_campaign::{targets, Campaign, CampaignBudget, EpochTrace};
use c11tester_isolation::ForkServer;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
c11campaign — parallel exploration campaigns over the built-in workloads

USAGE:
    c11campaign --target <NAME> [OPTIONS]
    c11campaign --list

OPTIONS:
    --target <NAME>         workload to campaign on (see --list). The open-ended
                            gen:<PSEED> namespace (decimal or 0x-hex) names
                            seed-generated programs beyond the showcase list
    --executions <N>        execution budget [default: 1000]
    --workers <N>           worker threads [default: all CPUs]
    --seed <N>              base seed (decimal or 0x-hex) [default: 0xC11]
    --policy <P>            c11tester | tsan11 | tsan11rec [default: c11tester]
    --mix <SPEC>            strategy mix: comma-separated <strategy>[:<weight>]
                            entries, where <strategy> is random, burst[@<mean>],
                            or pct<depth>[@<ops>] (e.g. random:4,pct2:2,pct3:1,
                            burst:1). Execution i runs under the strategy
                            assigned from (seed, i); the report gains
                            per-strategy detection columns.
    --adaptive <POLICY>     close the loop: split the budget into epochs and
                            reweight the mix between epochs from the
                            per-strategy detection columns. POLICY is fixed,
                            ucb1[@<c>], coverage-ucb[@<c>] (rewards arms by
                            *new behaviors* discovered — enables coverage
                            collection automatically), or exp3[@<eta>].
                            Without --mix the default arm set
                            random:1,pct2:1,pct3:1,burst:1 is used; the
                            report becomes a c11campaign/v3 epoch trace.
    --epoch <N>             epoch length in executions [default: 64;
                            requires --adaptive]
    --isolate               run executions in child worker processes (fork
                            server): a target that segfaults, aborts, or hangs
                            kills one child, is recorded in the report's
                            crashes column, and the campaign continues. The
                            aggregate is byte-identical to an in-process run
                            on healthy targets.
    --exec-timeout <SECS>   with --isolate: kill a child that spends longer
                            than SECS wall-clock on a single execution and
                            record a timeout crash
    --batch <N>             with --isolate: executions per child process
                            [default: 64]
    --baseline <FILE>       diff this run's detection rates against a saved
                            canonical/full JSON report (v2, v3, or v4); exits
                            3 when a rate regressed beyond the threshold
    --baseline-threshold <R> absolute rate drop tolerated by --baseline
                            [default: 0.05]
    --memory-limit          first-class §7.1 memory limiting: windowed
                            execution-graph pruning plus mo-graph arena
                            compaction, so resident graph state stays bounded
                            on long executions (old trace state is discarded,
                            which may narrow producible behaviors). The window
                            and compaction trigger are deterministic —
                            canonical output is byte-identical at any worker
                            count, in-process or --isolate
    --no-thread-pool        spawn a fresh OS thread per model thread per
                            execution instead of reusing pooled workers —
                            the pre-pool behavior, kept for A/B comparison.
                            Canonical output is byte-identical either way
                            (works with --isolate: children inherit it)
    --stop-on-first-bug     stop all workers at the first bug
    --deadline-secs <SECS>  wall-clock deadline for the campaign
    --json                  emit the full JSON report instead of text
    --canonical             emit the canonical (worker-count independent)
                            JSON report — the format --baseline consumes
    --alloc-stats           with --canonical: include the allocation
                            diagnostics block (recycled-vs-fresh execution
                            provisioning, clock-vector spills) inside
                            stats. Off by default — the block depends on
                            worker count and recycling, so it is excluded
                            from the byte-identity contract and goldens.
                            Works with --isolate too: children report their
                            batch counters over the wire in a metrics frame.
    --metrics-out <FILE>    write a c11metrics/v1 diagnostic report (phase
                            timings, per-worker utilization, fork-server
                            health, epoch timeline; see docs/METRICS.md)
                            to FILE. Enables phase profiling for the run.
                            Diagnostics never enter the canonical report:
                            stdout stays byte-identical with or without
                            this flag.
    --metrics-format <FMT>  json (default) | chrome: with chrome, FILE gets
                            a Chrome trace-event array — open it in
                            chrome://tracing or https://ui.perfetto.dev
    --coverage-out <FILE>   write a c11coverage/v1 behavior-coverage report to
                            FILE: the distinct rf edges, mo adjacencies, race
                            classes, and interleaving signatures the campaign
                            explored, plus a per-epoch new-behavior growth
                            curve for adaptive runs (see docs/COVERAGE.md).
                            Enables coverage collection for the run; stdout
                            stays byte-identical with or without this flag,
                            and the file is byte-identical for any worker
                            count, in-process or --isolate
    --forensics-dir <DIR>   write one race-NNN.{json,dot} provenance bundle
                            per deduplicated race into DIR: the replay key
                            (seed, epoch, index), every access-pair shape seen
                            behind the dedup key, a committed-event window
                            around the racing object, and a po/rf/mo event
                            graph in Graphviz DOT — rebuilt by re-running each
                            race's witness execution with tracing enabled
    --list                  list available targets
    --help                  show this help

ENVIRONMENT:
    C11TESTER_TRACE=1       stream structured per-event schedule traces
                            (JSONL, one object per committed load/store/RMW,
                            keyed by seed/epoch/index) to stderr
";

/// Arm set used by `--adaptive` when no `--mix` is given.
const DEFAULT_ADAPTIVE_MIX: &str = "random:1,pct2:1,pct3:1,burst:1";

struct Args {
    target: Option<String>,
    executions: u64,
    workers: Option<usize>,
    seed: u64,
    policy: Policy,
    mix: Option<StrategyMix>,
    adaptive: Option<String>,
    epoch: Option<u64>,
    isolate: bool,
    exec_timeout_secs: Option<f64>,
    batch: Option<u64>,
    baseline: Option<String>,
    baseline_threshold: f64,
    thread_pool: bool,
    memory_limit: bool,
    stop_on_first_bug: bool,
    deadline_secs: Option<f64>,
    json: bool,
    canonical: bool,
    alloc_stats: bool,
    metrics_out: Option<String>,
    metrics_chrome: bool,
    coverage_out: Option<String>,
    forensics_dir: Option<String>,
    list: bool,
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        target: None,
        executions: 1000,
        workers: None,
        seed: 0xC11,
        policy: Policy::C11Tester,
        mix: None,
        adaptive: None,
        epoch: None,
        isolate: false,
        exec_timeout_secs: None,
        batch: None,
        baseline: None,
        baseline_threshold: 0.05,
        thread_pool: true,
        memory_limit: false,
        stop_on_first_bug: false,
        deadline_secs: None,
        json: false,
        canonical: false,
        alloc_stats: false,
        metrics_out: None,
        metrics_chrome: false,
        coverage_out: None,
        forensics_dir: None,
        list: false,
    };
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--target" => args.target = Some(value()?),
            "--executions" => args.executions = parse_u64(&value()?)?,
            "--workers" => {
                let v = value()?;
                let n: usize = v.parse().map_err(|_| format!("not a number: `{v}`"))?;
                if n == 0 {
                    return Err("--workers must be at least 1".into());
                }
                args.workers = Some(n);
            }
            "--seed" => args.seed = parse_u64(&value()?)?,
            "--policy" => {
                let v = value()?;
                args.policy = match v.to_ascii_lowercase().as_str() {
                    "c11tester" => Policy::C11Tester,
                    "tsan11" => Policy::Tsan11,
                    "tsan11rec" => Policy::Tsan11Rec,
                    _ => return Err(format!("unknown policy `{v}`")),
                };
            }
            "--mix" => args.mix = Some(StrategyMix::parse(&value()?)?),
            "--adaptive" => {
                let v = value()?;
                // Validate eagerly for a parse-time error message.
                c11tester_adaptive::parse_policy(&v)?;
                args.adaptive = Some(v);
            }
            "--epoch" => {
                let n = parse_u64(&value()?)?;
                if n == 0 {
                    return Err("--epoch must be at least 1".into());
                }
                args.epoch = Some(n);
            }
            "--isolate" => args.isolate = true,
            "--exec-timeout" => {
                let v = value()?;
                let secs: f64 = v.parse().map_err(|_| format!("not a number: `{v}`"))?;
                if !secs.is_finite() || secs <= 0.0 || secs > 1e9 {
                    return Err("--exec-timeout must be a positive number of seconds".into());
                }
                args.exec_timeout_secs = Some(secs);
            }
            "--batch" => {
                let n = parse_u64(&value()?)?;
                if n == 0 {
                    return Err("--batch must be at least 1".into());
                }
                args.batch = Some(n);
            }
            "--baseline" => args.baseline = Some(value()?),
            "--baseline-threshold" => {
                let v = value()?;
                let t: f64 = v.parse().map_err(|_| format!("not a number: `{v}`"))?;
                if !t.is_finite() || !(0.0..=1.0).contains(&t) {
                    return Err("--baseline-threshold must be a rate in [0, 1]".into());
                }
                args.baseline_threshold = t;
            }
            "--no-thread-pool" => args.thread_pool = false,
            "--memory-limit" => args.memory_limit = true,
            "--stop-on-first-bug" => args.stop_on_first_bug = true,
            "--deadline-secs" => {
                let v = value()?;
                let secs: f64 = v.parse().map_err(|_| format!("not a number: `{v}`"))?;
                // Finite and within Duration range, so from_secs_f64
                // cannot panic (rejects nan/inf/1e20 cleanly).
                if !secs.is_finite() || secs <= 0.0 || secs > 1e9 {
                    return Err("--deadline-secs must be a positive number of seconds".into());
                }
                args.deadline_secs = Some(secs);
            }
            "--json" => args.json = true,
            "--canonical" => args.canonical = true,
            "--alloc-stats" => args.alloc_stats = true,
            "--metrics-out" => args.metrics_out = Some(value()?),
            "--metrics-format" => {
                let v = value()?;
                args.metrics_chrome = match v.to_ascii_lowercase().as_str() {
                    "json" => false,
                    "chrome" => true,
                    _ => return Err(format!("unknown metrics format `{v}` (json | chrome)")),
                };
            }
            "--coverage-out" => args.coverage_out = Some(value()?),
            "--forensics-dir" => args.forensics_dir = Some(value()?),
            "--list" => args.list = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.epoch.is_some() && args.adaptive.is_none() {
        return Err("--epoch requires --adaptive".into());
    }
    if args.exec_timeout_secs.is_some() && !args.isolate {
        return Err("--exec-timeout requires --isolate".into());
    }
    if args.batch.is_some() && !args.isolate {
        return Err("--batch requires --isolate".into());
    }
    if args.json && args.canonical {
        return Err("--json and --canonical are mutually exclusive".into());
    }
    if args.alloc_stats && !args.canonical {
        return Err("--alloc-stats requires --canonical".into());
    }
    if args.metrics_chrome && args.metrics_out.is_none() {
        return Err("--metrics-format requires --metrics-out".into());
    }
    Ok(args)
}

fn list_targets() {
    println!("{:<18} {:<12} DESCRIPTION", "TARGET", "GROUP");
    for t in targets::all() {
        println!("{:<18} {:<12} {}", t.name, t.group, t.description);
    }
}

/// Restores default `SIGPIPE` so `c11campaign ... | head` exits
/// quietly instead of panicking on a closed stdout (Rust ignores
/// `SIGPIPE` by default; declared directly since the `libc` crate is
/// unavailable offline).
#[cfg(unix)]
fn reset_sigpipe() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGPIPE: i32 = 13;
    const SIG_DFL: usize = 0;
    unsafe {
        signal(SIGPIPE, SIG_DFL);
    }
}

#[cfg(not(unix))]
fn reset_sigpipe() {}

/// Diffs the current run against the saved baseline; returns the exit
/// code (0 clean, 3 regressed, 2 on load/parse errors).
fn diff_against_baseline(current_canonical: &str, baseline_path: &str, threshold: f64) -> ExitCode {
    let current = match BaselineSummary::parse(current_canonical) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: current report unreadable: {e}");
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read baseline `{baseline_path}`: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline = match BaselineSummary::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: baseline `{baseline_path}` unreadable: {e}");
            return ExitCode::from(2);
        }
    };
    let diff = BaselineDiff::compare(&current, &baseline, threshold);
    eprintln!(
        "baseline: {} (seed {:#x}, {} executions, strategy {})",
        baseline.schema, baseline.base_seed, baseline.executions, baseline.strategy,
    );
    eprintln!("{diff}");
    if diff.regressed() {
        eprintln!("error: detection rate regressed beyond {threshold} vs `{baseline_path}`");
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    }
}

/// Replays global execution `index` under `config` with schedule
/// tracing enabled and returns the forensics witness. Deterministic:
/// executions are pure functions of `(seed, index)`, so the replay
/// commits the same events the campaign's worker did.
fn replay_witness(config: &Config, target: targets::Target, epoch: u64, index: u64) -> Witness {
    let was_tracing = c11tester_telemetry::tracing_enabled();
    c11tester_telemetry::set_tracing(true);
    let sink = CaptureSink::new();
    let mut model = Model::new(config.clone()).with_trace_sink(Box::new(sink.clone()));
    model.set_trace_epoch(epoch);
    let report = model.run_at(index, move || target.run());
    c11tester_telemetry::set_tracing(was_tracing);
    let events = sink
        .take()
        .into_iter()
        .find(|(k, _)| k.index == index)
        .map(|(_, ev)| ev)
        .unwrap_or_default();
    Witness {
        epoch,
        report,
        events,
    }
}

/// Forensics bundles for a plain campaign: every witness replays under
/// the campaign's own config (epoch 0).
fn write_plain_forensics(
    dir: &str,
    seed: u64,
    config: &Config,
    target: targets::Target,
    races: &DedupHistory,
) -> Result<forensics::ForensicsSummary, String> {
    forensics::write_bundles(std::path::Path::new(dir), seed, races, |index| {
        Ok(replay_witness(config, target, 0, index))
    })
}

/// Forensics bundles for an adaptive campaign: each witness index is
/// mapped to the epoch that ran it, and replays under that epoch's
/// recorded mix on the base config.
fn write_adaptive_forensics(
    dir: &str,
    seed: u64,
    base_config: &Config,
    target: targets::Target,
    trace: &EpochTrace,
) -> Result<forensics::ForensicsSummary, String> {
    forensics::write_bundles(
        std::path::Path::new(dir),
        seed,
        &trace.aggregate.races,
        |index| {
            let record = trace
                .records
                .iter()
                .find(|r| index >= r.start_index && index < r.start_index + trace.epoch_len)
                .ok_or_else(|| format!("witness execution {index} falls outside every epoch"))?;
            let mix = StrategyMix::parse(&record.mix)?;
            let config = base_config.clone().with_mix(mix);
            Ok(replay_witness(&config, target, record.epoch, index))
        },
    )
}

fn main() -> ExitCode {
    reset_sigpipe();
    // Hidden fork-server re-entry: `c11campaign --worker …` runs one
    // batch of executions serially and streams length-prefixed JSON
    // frames to stdout (see `c11tester_isolation::worker`). Must be
    // the first argument — the fork server always puts it there.
    let mut argv = std::env::args().skip(1).peekable();
    if argv.peek().map(String::as_str) == Some("--worker") {
        argv.next();
        return c11tester_isolation::worker_main(argv);
    }
    let args = match parse_args(argv) {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            return usage_error(&msg, USAGE);
        }
    };
    if args.list {
        list_targets();
        return ExitCode::SUCCESS;
    }
    let Some(name) = args.target.as_deref() else {
        return usage_error("--target (or --list) is required", USAGE);
    };
    let target = match targets::resolve(name) {
        targets::Lookup::Found(t) => t,
        targets::Lookup::MalformedGen(msg) => return usage_error(&msg, USAGE),
        targets::Lookup::Unknown => {
            eprintln!("error: unknown target `{name}`; available targets:\n");
            list_targets();
            return ExitCode::from(2);
        }
    };

    // Phase profiling is opt-in: off, each timer site costs one relaxed
    // atomic load. --metrics-out is what opts in (child workers inherit
    // the gate through the fork server's --profile-phases flag).
    if args.metrics_out.is_some() {
        c11tester_telemetry::set_profiling(true);
    }

    // Coverage collection is opt-in the same way: --coverage-out, or a
    // coverage-driven adaptive policy (which reweights from the deltas),
    // arms the per-execution capture. Child workers inherit the gate
    // through the fork server's --coverage flag.
    let coverage_policy = args
        .adaptive
        .as_deref()
        .is_some_and(|p| p.trim().to_ascii_lowercase().starts_with("coverage"));
    if args.coverage_out.is_some() || coverage_policy {
        c11tester_telemetry::set_coverage(true);
    }

    let mut config = Config::for_policy(args.policy)
        .with_seed(args.seed)
        .with_thread_pool(args.thread_pool);
    if args.memory_limit {
        config = config.with_memory_limit();
    }
    if let Some(mix) = args.mix.clone() {
        config = config.with_mix(mix);
    } else if args.adaptive.is_some() {
        config = config.with_mix(StrategyMix::parse(DEFAULT_ADAPTIVE_MIX).expect("valid default"));
    }
    // Kept aside for forensics replays (the campaign consumes `config`).
    let base_config = config.clone();
    let mut budget =
        CampaignBudget::executions(args.executions).with_stop_on_first_bug(args.stop_on_first_bug);
    if let Some(secs) = args.deadline_secs {
        budget = budget.with_deadline(Duration::from_secs_f64(secs));
    }

    // With --isolate, executions run in child processes that re-enter
    // this binary in --worker mode.
    let fork = if args.isolate {
        match ForkServer::current_exe() {
            Ok(fork) => {
                let fork = match args.batch {
                    Some(n) => fork.with_batch_size(n),
                    None => fork,
                };
                Some(fork.with_exec_timeout(args.exec_timeout_secs.map(Duration::from_secs_f64)))
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::from(2);
            }
        }
    } else {
        None
    };

    // Run the campaign (adaptive or plain, in-process or isolated) and
    // collect the output forms the tail of main needs.
    let (text, full_json, canonical_json, metrics, workers_used) = if let Some(policy) =
        args.adaptive.as_deref()
    {
        let mut campaign = AdaptiveCampaign::new(config)
            .with_epoch_len(args.epoch.unwrap_or(c11tester_adaptive::DEFAULT_EPOCH_LEN));
        campaign = match campaign.with_policy(policy) {
            Ok(c) => c,
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::from(2);
            }
        };
        if let Some(w) = args.workers {
            campaign = campaign.with_workers(w);
        }
        let report = if let Some(fork) = &fork {
            match campaign.run_target(fork, &target, &budget) {
                Ok(report) => report,
                Err(msg) => {
                    eprintln!("error: {msg}");
                    return ExitCode::from(2);
                }
            }
        } else {
            campaign.run(&budget, move || target.run())
        };
        if let Some(path) = args.coverage_out.as_deref() {
            if let Err(e) = std::fs::write(path, report.coverage_json() + "\n") {
                eprintln!("error: cannot write coverage to `{path}`: {e}");
                return ExitCode::from(2);
            }
        }
        if let Some(dir) = args.forensics_dir.as_deref() {
            match write_adaptive_forensics(dir, args.seed, &base_config, target, &report.trace) {
                Ok(summary) => eprintln!("forensics: {summary} -> {dir}"),
                Err(msg) => {
                    eprintln!("error: {msg}");
                    return ExitCode::from(2);
                }
            }
        }
        let canonical = if args.alloc_stats {
            report.canonical_json_with_alloc_stats()
        } else {
            report.canonical_json()
        };
        let workers = report.workers;
        (
            report.to_string(),
            report.to_json(),
            canonical,
            report.metrics,
            workers,
        )
    } else {
        let mut campaign = Campaign::new(config);
        if let Some(w) = args.workers {
            campaign = campaign.with_workers(w);
        }
        let report = if let Some(fork) = &fork {
            match campaign.run_target(fork, &target, &budget) {
                Ok(report) => report,
                Err(msg) => {
                    eprintln!("error: {msg}");
                    return ExitCode::from(2);
                }
            }
        } else {
            campaign.run(&budget, move || target.run())
        };
        if let Some(path) = args.coverage_out.as_deref() {
            if let Err(e) = std::fs::write(path, report.coverage_json() + "\n") {
                eprintln!("error: cannot write coverage to `{path}`: {e}");
                return ExitCode::from(2);
            }
        }
        if let Some(dir) = args.forensics_dir.as_deref() {
            match write_plain_forensics(
                dir,
                args.seed,
                &base_config,
                target,
                &report.aggregate.races,
            ) {
                Ok(summary) => eprintln!("forensics: {summary} -> {dir}"),
                Err(msg) => {
                    eprintln!("error: {msg}");
                    return ExitCode::from(2);
                }
            }
        }
        let canonical = if args.alloc_stats {
            report.canonical_json_with_alloc_stats()
        } else {
            report.canonical_json()
        };
        let workers = report.workers;
        (
            report.to_string(),
            report.to_json(),
            canonical,
            report.metrics,
            workers,
        )
    };

    if let Some(path) = args.metrics_out.as_deref() {
        let meta = c11tester_telemetry::MetricsMeta {
            target: target.name.to_string(),
            seed: args.seed,
            policy: args.policy.name().to_string(),
            workers: workers_used as u64,
            isolated: args.isolate,
        };
        let body = if args.metrics_chrome {
            c11tester_telemetry::chrome_trace(&metrics, &meta)
        } else {
            metrics.to_json(&meta)
        };
        if let Err(e) = std::fs::write(path, body + "\n") {
            eprintln!("error: cannot write metrics to `{path}`: {e}");
            return ExitCode::from(2);
        }
    }

    if args.canonical {
        println!("{canonical_json}");
    } else if args.json {
        println!("{full_json}");
    } else {
        println!("target: {} ({})", target.name, target.group);
        print!("{text}");
    }

    if let Some(path) = args.baseline.as_deref() {
        return diff_against_baseline(&canonical_json, path, args.baseline_threshold);
    }
    ExitCode::SUCCESS
}
