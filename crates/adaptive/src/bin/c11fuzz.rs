//! `c11fuzz` — differential fuzzing of the model engine against the
//! independent C11-axiom oracle.
//!
//! Each program seed (`pseed`) deterministically names a generated
//! atomic-op program (the same namespace as the `gen:<pseed>` campaign
//! targets). For every pseed in the range, the fuzzer sweeps the
//! program through the model, re-validates each committed trace with
//! the oracle, and — for the small-scope variant — checks every
//! observed outcome against the exhaustively enumerated axiom-allowed
//! set. Mismatches are shrunk and reported as `c11fuzz/v1` JSON.
//!
//! ```text
//! c11fuzz --count 64
//! c11fuzz --pseed 3 --executions 128 --print
//! c11fuzz --start 1000 --count 256 --seed 0xC11 --report mismatches.json
//! ```
//!
//! Exit code 0 when every pseed agreed, 1 when any mismatch was found,
//! 2 on usage errors.

use c11tester_campaign::cli::{parse_u64, usage_error};
use c11tester_genprog::{fuzz_pseed, FuzzParams, MismatchReport, Program};
use std::process::ExitCode;

const USAGE: &str = "\
c11fuzz — generated-program fuzzing with an independent C11-axiom oracle

USAGE:
    c11fuzz [OPTIONS]

OPTIONS:
    --pseed <N>        fuzz exactly one program seed (decimal or 0x-hex);
                       shorthand for --start <N> --count 1
    --start <N>        first program seed of the range [default: 0]
    --count <N>        how many consecutive program seeds to fuzz
                       [default: 64]
    --executions <N>   model executions per program sweep [default: 32]
    --seed <N>         model seed for the sweeps [default: 0xC11]
    --no-tiny          skip the small-scope enumerator cross-check and
                       only run the oracle over the full-grammar programs
    --print            print each generated program before fuzzing it
    --report <FILE>    write all mismatch reports to FILE as a JSON array
                       (written even when empty, so CI can always upload)
    --help             show this help
";

struct Args {
    start: u64,
    count: u64,
    params: FuzzParams,
    print: bool,
    report: Option<String>,
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut start = 0u64;
    let mut count = 64u64;
    let mut pseed: Option<u64> = None;
    let mut params = FuzzParams::default();
    let mut print = false;
    let mut report = None;
    while let Some(arg) = argv.next() {
        let mut value = |flag: &str| {
            argv.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--pseed" => pseed = Some(parse_u64(&value("--pseed")?)?),
            "--start" => start = parse_u64(&value("--start")?)?,
            "--count" => count = parse_u64(&value("--count")?)?,
            "--executions" => params.executions = parse_u64(&value("--executions")?)?,
            "--seed" => params.seed = parse_u64(&value("--seed")?)?,
            "--no-tiny" => params.check_tiny = false,
            "--print" => print = true,
            "--report" => report = Some(value("--report")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if let Some(p) = pseed {
        start = p;
        count = 1;
    }
    if count == 0 {
        return Err("--count must be at least 1".to_string());
    }
    if params.executions == 0 {
        return Err("--executions must be at least 1".to_string());
    }
    Ok(Args {
        start,
        count,
        params,
        print,
        report,
    })
}

fn write_report(path: &str, reports: &[MismatchReport]) -> std::io::Result<()> {
    let body: Vec<String> = reports.iter().map(MismatchReport::to_json).collect();
    std::fs::write(path, format!("[{}]\n", body.join(",\n")))
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            return usage_error(&msg, USAGE);
        }
    };
    let mut all: Vec<MismatchReport> = Vec::new();
    let mut swept = 0u64;
    for pseed in args.start..args.start.saturating_add(args.count) {
        if args.print {
            for line in Program::generate(pseed).render() {
                println!("{line}");
            }
        }
        let reports = fuzz_pseed(pseed, args.params);
        swept += 1;
        for r in &reports {
            eprintln!("MISMATCH {}", r.to_json());
        }
        all.extend(reports);
    }
    if let Some(path) = &args.report {
        if let Err(e) = write_report(path, &all) {
            eprintln!("error: cannot write report to `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    }
    if all.is_empty() {
        println!(
            "c11fuzz: {swept} program seed(s) x {} execution(s): no mismatches",
            args.params.executions
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "c11fuzz: {swept} program seed(s) x {} execution(s): {} mismatch(es)",
            args.params.executions,
            all.len()
        );
        ExitCode::FAILURE
    }
}
