//! Pluggable epoch reweighters: pure functions from completed-epoch
//! detection columns to the next epoch's [`StrategyMix`].
//!
//! The controller treats each member strategy of the initial mix as a
//! **bandit arm** and the per-strategy bug detection columns
//! ([`c11tester_race::StrategyLedger`]) as the reward signal. Between
//! epochs it asks the [`Reweighter`] for the next mix; the contract is
//! that the answer is a *pure function of the inputs in
//! [`ReweightCtx`]* — no clocks, no ambient randomness, no interior
//! mutability. Since fixed-budget epoch aggregates are byte-identical
//! across worker counts (the campaign determinism contract), purity
//! here is exactly what makes the whole adaptive run worker-count
//! independent and replayable.
//!
//! Weights are quantized to integers on a fixed scale and then
//! [`StrategyMix::normalize`]d, so they stay bounded over arbitrarily
//! many epochs and every arm keeps weight ≥ 1 (no arm ever becomes
//! unreachable, which both keeps exploration alive and keeps every
//! spec's detection column flowing).

use c11tester::{Strategy, StrategyMix};
use c11tester_campaign::EpochRecord;
use c11tester_race::StrategyLedger;
use std::collections::BTreeMap;

/// Everything a reweighter may condition on: the campaign's base seed,
/// the arms (the initial mix), and the completed epochs' aggregates.
#[derive(Debug)]
pub struct ReweightCtx<'a> {
    /// The campaign's base seed (available for tie-breaking; the
    /// built-in policies don't need it).
    pub base_seed: u64,
    /// 0-based number of the epoch being planned (first reweight is
    /// asked for epoch 1).
    pub next_epoch: u64,
    /// The initial mix — its entries are the arms.
    pub initial_mix: &'a StrategyMix,
    /// Completed epochs in order.
    pub epochs: &'a [EpochRecord],
    /// Per-strategy detection columns merged over all completed epochs.
    pub cumulative: &'a StrategyLedger,
    /// Per-epoch coverage deltas, aligned with `epochs`: for each
    /// completed epoch, how many **new** behaviors (rf edges, mo
    /// adjacencies, race classes, interleaving signatures not seen in
    /// any earlier epoch) each strategy spec first discovered. Empty
    /// maps when the campaign runs without coverage collection — the
    /// detection-driven policies ignore this field entirely, so their
    /// mix trajectories are unchanged by its presence.
    pub coverage_deltas: &'a [BTreeMap<String, u64>],
}

impl ReweightCtx<'_> {
    /// The arms in initial-mix order.
    pub fn arms(&self) -> Vec<Strategy> {
        self.initial_mix.entries().iter().map(|(s, _)| *s).collect()
    }

    /// Total executions completed so far.
    pub fn total_executions(&self) -> u64 {
        self.cumulative.total_executions()
    }

    /// `(executions, executions_with_bug)` for one arm so far.
    pub fn arm_counts(&self, arm: &Strategy) -> (u64, u64) {
        match self.cumulative.get(&arm.spec()) {
            Some(b) => (b.executions, b.executions_with_bug),
            None => (0, 0),
        }
    }

    /// Total new behaviors one arm first discovered over all completed
    /// epochs (zero when the campaign runs without coverage).
    pub fn arm_new_behaviors(&self, arm: &Strategy) -> u64 {
        let spec = arm.spec();
        self.coverage_deltas
            .iter()
            .filter_map(|d| d.get(&spec))
            .sum()
    }
}

/// A policy that emits the next epoch's mix from the completed epochs'
/// detection columns. Implementations MUST be pure functions of the
/// [`ReweightCtx`] (see the module docs for why).
pub trait Reweighter: std::fmt::Debug + Send + Sync {
    /// Canonical spec of the policy (recorded in the epoch trace), e.g.
    /// `fixed`, `ucb1`, `ucb1@2`, `exp3@0.25`.
    fn spec(&self) -> String;

    /// The mix for `ctx.next_epoch`.
    fn reweight(&self, ctx: &ReweightCtx<'_>) -> StrategyMix;
}

/// Resolution scores are quantized to: the best-scoring arm gets this
/// weight, the rest get proportionally less (min 1).
const WEIGHT_SCALE: u32 = 120;

/// Quantizes per-arm scores into a normalized integer-weight mix.
/// Non-finite or non-positive scores are floored to the minimum weight;
/// if no score is positive the mix falls back to uniform.
fn mix_from_scores(arms: &[Strategy], scores: &[f64]) -> StrategyMix {
    debug_assert_eq!(arms.len(), scores.len());
    let max = scores
        .iter()
        .copied()
        .filter(|s| s.is_finite())
        .fold(0.0f64, f64::max);
    let entries: Vec<(Strategy, u32)> = arms
        .iter()
        .zip(scores)
        .map(|(&arm, &score)| {
            let weight = if score.is_infinite() && score > 0.0 {
                WEIGHT_SCALE
            } else if max <= 0.0 || !score.is_finite() || score <= 0.0 {
                1
            } else {
                ((score / max) * f64::from(WEIGHT_SCALE)).round().max(1.0) as u32
            };
            (arm, weight)
        })
        .collect();
    StrategyMix::new(entries)
        .expect("arms are distinct with positive weights")
        .normalize()
}

/// The no-op control: every epoch re-uses the initial mix **verbatim**
/// (not even normalized), so an adaptive campaign under `Fixed` runs
/// exactly the executions a plain mixed campaign runs — the
/// equivalence the test suite pins.
#[derive(Clone, Copy, Debug, Default)]
pub struct Fixed;

impl Reweighter for Fixed {
    fn spec(&self) -> String {
        "fixed".to_string()
    }

    fn reweight(&self, ctx: &ReweightCtx<'_>) -> StrategyMix {
        ctx.initial_mix.clone()
    }
}

/// UCB1 (Auer et al.): score each arm by mean reward plus an
/// exploration bonus, `r̄ₐ + c·√(ln N / nₐ)`, where the reward of an
/// execution is 1 if it found any bug. Arms that never ran score
/// infinite (maximum weight) so no column stays empty. The classical
/// algorithm *plays* the argmax arm; an epoch draws many executions,
/// so weights are set proportional to the scores instead — the argmax
/// arm dominates the epoch while lower-confidence arms keep sampling.
#[derive(Clone, Copy, Debug)]
pub struct Ucb1 {
    /// Exploration constant (`√2` is the classical choice).
    pub exploration: f64,
}

impl Default for Ucb1 {
    fn default() -> Self {
        Ucb1 {
            exploration: std::f64::consts::SQRT_2,
        }
    }
}

impl Reweighter for Ucb1 {
    fn spec(&self) -> String {
        if (self.exploration - std::f64::consts::SQRT_2).abs() < 1e-12 {
            "ucb1".to_string()
        } else {
            format!("ucb1@{}", self.exploration)
        }
    }

    fn reweight(&self, ctx: &ReweightCtx<'_>) -> StrategyMix {
        let arms = ctx.arms();
        let total = ctx.total_executions().max(1) as f64;
        let scores: Vec<f64> = arms
            .iter()
            .map(|arm| {
                let (n, bugs) = ctx.arm_counts(arm);
                if n == 0 {
                    return f64::INFINITY;
                }
                let mean = bugs as f64 / n as f64;
                mean + self.exploration * (total.ln().max(0.0) / n as f64).sqrt()
            })
            .collect();
        mix_from_scores(&arms, &scores)
    }
}

/// Coverage-driven UCB: like [`Ucb1`], but the reward of an arm is its
/// mean **new-behavior discovery rate** (new rf edges, mo adjacencies,
/// race classes, and interleaving signatures it was first to exhibit,
/// per execution — [`ReweightCtx::arm_new_behaviors`]) instead of its
/// bug rate. This closes the ROADMAP's coverage loop: the budget flows
/// toward strategies that keep *exploring*, which front-loads distinct
/// behaviors even on targets where every strategy's bug column is flat
/// zero. Requires coverage collection
/// ([`c11tester_telemetry::set_coverage`] — `c11campaign` enables it
/// automatically for this policy); without it every delta is zero and
/// the policy degenerates to pure exploration (uniform-ish mixing).
#[derive(Clone, Copy, Debug)]
pub struct CoverageUcb {
    /// Exploration constant (`√2` is the classical choice).
    pub exploration: f64,
}

impl Default for CoverageUcb {
    fn default() -> Self {
        CoverageUcb {
            exploration: std::f64::consts::SQRT_2,
        }
    }
}

impl Reweighter for CoverageUcb {
    fn spec(&self) -> String {
        if (self.exploration - std::f64::consts::SQRT_2).abs() < 1e-12 {
            "coverage-ucb".to_string()
        } else {
            format!("coverage-ucb@{}", self.exploration)
        }
    }

    fn reweight(&self, ctx: &ReweightCtx<'_>) -> StrategyMix {
        let arms = ctx.arms();
        let total = ctx.total_executions().max(1) as f64;
        // Normalize discovery counts so the exploration bonus keeps its
        // classical scale: rewards land in [0, 1] with the best
        // discoverer at 1.
        let raw: Vec<f64> = arms
            .iter()
            .map(|arm| {
                let (n, _) = ctx.arm_counts(arm);
                if n == 0 {
                    return f64::NAN; // marked unplayed below
                }
                ctx.arm_new_behaviors(arm) as f64 / n as f64
            })
            .collect();
        let best = raw
            .iter()
            .copied()
            .filter(|r| r.is_finite())
            .fold(0.0f64, f64::max);
        let scores: Vec<f64> = arms
            .iter()
            .zip(&raw)
            .map(|(arm, &rate)| {
                if rate.is_nan() {
                    return f64::INFINITY;
                }
                let mean = if best > 0.0 { rate / best } else { 0.0 };
                let (n, _) = ctx.arm_counts(arm);
                mean + self.exploration * (total.ln().max(0.0) / n as f64).sqrt()
            })
            .collect();
        mix_from_scores(&arms, &scores)
    }
}

/// Exponential-weights (EXP3-style): each arm accumulates
/// `η · (epoch bug rate)` in the log domain over the completed epochs,
/// the next mix is the softmax of those totals blended with a `γ`
/// uniform-exploration floor. Epoch rewards (rather than
/// importance-weighted per-play rewards) keep the update deterministic
/// and worker-count independent.
#[derive(Clone, Copy, Debug)]
pub struct ExpWeights {
    /// Learning rate `η` (log-weight gain per unit of bug rate).
    pub eta: f64,
    /// Uniform exploration floor `γ` in `[0, 1]`.
    pub gamma: f64,
}

impl Default for ExpWeights {
    fn default() -> Self {
        ExpWeights {
            eta: 0.5,
            gamma: 0.1,
        }
    }
}

impl Reweighter for ExpWeights {
    fn spec(&self) -> String {
        let default = ExpWeights::default();
        if (self.gamma - default.gamma).abs() >= 1e-12 {
            // Both parameters, so the recorded spec parses back to
            // this exact controller.
            format!("exp3@{},{}", self.eta, self.gamma)
        } else if (self.eta - default.eta).abs() >= 1e-12 {
            format!("exp3@{}", self.eta)
        } else {
            "exp3".to_string()
        }
    }

    fn reweight(&self, ctx: &ReweightCtx<'_>) -> StrategyMix {
        let arms = ctx.arms();
        let k = arms.len().max(1) as f64;
        // Log-domain accumulation over epochs.
        let log_weights: Vec<f64> = arms
            .iter()
            .map(|arm| {
                let spec = arm.spec();
                ctx.epochs
                    .iter()
                    .map(|e| match e.aggregate.per_strategy.get(&spec) {
                        Some(b) if b.executions > 0 => {
                            self.eta * (b.executions_with_bug as f64 / b.executions as f64)
                        }
                        _ => 0.0,
                    })
                    .sum()
            })
            .collect();
        let max_log = log_weights
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let exp: Vec<f64> = log_weights.iter().map(|w| (w - max_log).exp()).collect();
        let sum: f64 = exp.iter().sum();
        let scores: Vec<f64> = exp
            .iter()
            .map(|e| (1.0 - self.gamma) * (e / sum) + self.gamma / k)
            .collect();
        mix_from_scores(&arms, &scores)
    }
}

/// Parses a reweighting-policy spec: `fixed`, `ucb1[@<c>]`,
/// `coverage-ucb[@<c>]`, or `exp3[@<eta>[,<gamma>]]`
/// (case-insensitive). The inverse of [`Reweighter::spec`].
pub fn parse_policy(token: &str) -> Result<Box<dyn Reweighter>, String> {
    let token = token.trim().to_ascii_lowercase();
    let (name, param) = match token.split_once('@') {
        Some((n, p)) => (n, Some(p)),
        None => (token.as_str(), None),
    };
    let param_f64 = |p: Option<&str>, what: &str| -> Result<Option<f64>, String> {
        match p {
            None => Ok(None),
            Some(raw) => {
                let v: f64 = raw
                    .parse()
                    .map_err(|_| format!("bad {what} in `{token}`"))?;
                if !v.is_finite() || v <= 0.0 {
                    return Err(format!("{what} must be positive in `{token}`"));
                }
                Ok(Some(v))
            }
        }
    };
    match name {
        "fixed" => {
            if param.is_some() {
                return Err(format!("`fixed` takes no parameter (got `{token}`)"));
            }
            Ok(Box::new(Fixed))
        }
        "ucb1" => {
            let exploration =
                param_f64(param, "exploration constant")?.unwrap_or(std::f64::consts::SQRT_2);
            Ok(Box::new(Ucb1 { exploration }))
        }
        "coverage-ucb" => {
            let exploration =
                param_f64(param, "exploration constant")?.unwrap_or(std::f64::consts::SQRT_2);
            Ok(Box::new(CoverageUcb { exploration }))
        }
        "exp3" | "exp" => {
            let (eta_raw, gamma_raw) = match param.and_then(|p| p.split_once(',')) {
                Some((e, g)) => (Some(e), Some(g)),
                None => (param, None),
            };
            let eta = param_f64(eta_raw, "learning rate")?.unwrap_or(ExpWeights::default().eta);
            let gamma = match gamma_raw {
                None => ExpWeights::default().gamma,
                Some(raw) => {
                    let g: f64 = raw
                        .parse()
                        .map_err(|_| format!("bad exploration floor in `{token}`"))?;
                    if !g.is_finite() || !(0.0..=1.0).contains(&g) {
                        return Err(format!("exploration floor must be in [0, 1] in `{token}`"));
                    }
                    g
                }
            };
            Ok(Box::new(ExpWeights { eta, gamma }))
        }
        other => Err(format!(
            "unknown adaptive policy `{other}` \
             (expected fixed, ucb1[@c], coverage-ucb[@c], or exp3[@eta])"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c11tester::TestReport;

    /// Builds a ledger + epoch records from `(spec, execs, bugs)` rows.
    fn synthetic(rows: &[(&str, u64, u64)]) -> (StrategyLedger, Vec<EpochRecord>) {
        let mut ledger = StrategyLedger::new();
        let mut ix = 0u64;
        for &(spec, execs, bugs) in rows {
            for i in 0..execs {
                ledger.record(spec, ix, &[], i < bugs);
                ix += 1;
            }
        }
        let aggregate = TestReport {
            executions: ledger.total_executions(),
            per_strategy: ledger.clone(),
            ..Default::default()
        };
        let record = EpochRecord {
            epoch: 0,
            start_index: 0,
            mix: "synthetic".to_string(),
            aggregate,
            crashes: Vec::new(),
        };
        (ledger, vec![record])
    }

    fn ctx<'a>(
        initial: &'a StrategyMix,
        ledger: &'a StrategyLedger,
        epochs: &'a [EpochRecord],
    ) -> ReweightCtx<'a> {
        ReweightCtx {
            base_seed: 0xC11,
            next_epoch: epochs.len() as u64,
            initial_mix: initial,
            epochs,
            cumulative: ledger,
            coverage_deltas: &[],
        }
    }

    fn weight_of(mix: &StrategyMix, spec: &str) -> u32 {
        mix.entries()
            .iter()
            .find(|(s, _)| s.spec() == spec)
            .map(|(_, w)| *w)
            .expect("arm present")
    }

    #[test]
    fn ucb1_prefers_the_arm_with_the_higher_bug_rate() {
        let initial = StrategyMix::parse("pct1:1,pct2:1").expect("valid");
        let (ledger, epochs) = synthetic(&[("pct1", 50, 0), ("pct2", 50, 40)]);
        let mix = Ucb1::default().reweight(&ctx(&initial, &ledger, &epochs));
        assert!(
            weight_of(&mix, "pct2") > weight_of(&mix, "pct1"),
            "pct2 found bugs, pct1 none: {}",
            mix.spec()
        );
        // Every arm stays in the mix (weight >= 1).
        assert_eq!(mix.entries().len(), 2);
        assert!(mix.entries().iter().all(|(_, w)| *w >= 1));
    }

    #[test]
    fn ucb1_explores_unplayed_and_undersampled_arms() {
        let initial = StrategyMix::parse("random:1,pct2:1,burst:1").expect("valid");
        // burst never ran: it must get the top weight.
        let (ledger, epochs) = synthetic(&[("random", 60, 0), ("pct2", 4, 0)]);
        let mix = Ucb1::default().reweight(&ctx(&initial, &ledger, &epochs));
        let b = weight_of(&mix, "burst");
        assert!(b >= weight_of(&mix, "random"));
        assert!(b >= weight_of(&mix, "pct2"));
        // With zero reward everywhere, the undersampled arm outranks
        // the heavily sampled one (pure exploration bonus).
        assert!(weight_of(&mix, "pct2") >= weight_of(&mix, "random"));
    }

    #[test]
    fn coverage_ucb_prefers_the_arm_that_discovers_more_behaviors() {
        let initial = StrategyMix::parse("pct1:1,pct2:1").expect("valid");
        // Equal play, zero bugs everywhere — the detection-driven
        // policies see a flat landscape, but pct2 keeps finding new
        // behaviors.
        let (ledger, epochs) = synthetic(&[("pct1", 50, 0), ("pct2", 50, 0)]);
        let deltas = vec![BTreeMap::from([
            ("pct1".to_string(), 2u64),
            ("pct2".to_string(), 40u64),
        ])];
        let mut c = ctx(&initial, &ledger, &epochs);
        c.coverage_deltas = &deltas;
        let mix = CoverageUcb::default().reweight(&c);
        assert!(
            weight_of(&mix, "pct2") > weight_of(&mix, "pct1"),
            "pct2 discovered 20x the behaviors: {}",
            mix.spec()
        );
        assert!(mix.entries().iter().all(|(_, w)| *w >= 1));
        // Unplayed arms still win the exploration bonus.
        let initial3 = StrategyMix::parse("pct1:1,pct2:1,burst:1").expect("valid");
        let mut c = ctx(&initial3, &ledger, &epochs);
        c.coverage_deltas = &deltas;
        let mix = CoverageUcb::default().reweight(&c);
        assert!(weight_of(&mix, "burst") >= weight_of(&mix, "pct1"));
    }

    #[test]
    fn coverage_deltas_do_not_perturb_detection_driven_policies() {
        let initial = StrategyMix::parse("random:2,pct2:1").expect("valid");
        let (ledger, epochs) = synthetic(&[("random", 30, 3), ("pct2", 20, 10)]);
        let deltas = vec![BTreeMap::from([("random".to_string(), 99u64)])];
        for policy in ["fixed", "ucb1", "exp3"] {
            let p = parse_policy(policy).expect("valid policy");
            let without = p.reweight(&ctx(&initial, &ledger, &epochs));
            let mut c = ctx(&initial, &ledger, &epochs);
            c.coverage_deltas = &deltas;
            let with = p.reweight(&c);
            assert_eq!(
                without.spec(),
                with.spec(),
                "policy {policy} must ignore coverage deltas"
            );
        }
    }

    #[test]
    fn exp_weights_shift_toward_the_rewarding_arm_but_keep_the_floor() {
        let initial = StrategyMix::parse("pct1:1,pct2:1").expect("valid");
        let (ledger, epochs) = synthetic(&[("pct1", 50, 0), ("pct2", 50, 50)]);
        let mix = ExpWeights::default().reweight(&ctx(&initial, &ledger, &epochs));
        assert!(
            weight_of(&mix, "pct2") > weight_of(&mix, "pct1"),
            "{}",
            mix.spec()
        );
        assert!(
            weight_of(&mix, "pct1") >= 1,
            "gamma floor keeps losers alive"
        );
    }

    #[test]
    fn reweighting_is_a_pure_function_of_the_context() {
        let initial = StrategyMix::parse("random:2,pct2:1").expect("valid");
        let (ledger, epochs) = synthetic(&[("random", 30, 3), ("pct2", 20, 10)]);
        for policy in [
            "fixed",
            "ucb1",
            "exp3",
            "ucb1@2",
            "exp3@0.25",
            "coverage-ucb",
        ] {
            let p = parse_policy(policy).expect("valid policy");
            let a = p.reweight(&ctx(&initial, &ledger, &epochs));
            let b = p.reweight(&ctx(&initial, &ledger, &epochs));
            assert_eq!(a.spec(), b.spec(), "policy {policy} must be pure");
        }
    }

    #[test]
    fn fixed_returns_the_initial_mix_verbatim() {
        let initial = StrategyMix::parse("random:4,pct2:2").expect("valid");
        let (ledger, epochs) = synthetic(&[("random", 10, 10)]);
        let mix = Fixed.reweight(&ctx(&initial, &ledger, &epochs));
        // Verbatim, not normalized: total weight (hence per-index
        // assignment) is exactly the plain campaign's.
        assert_eq!(mix.spec(), "random:4,pct2:2");
    }

    #[test]
    fn policy_specs_parse_and_round_trip() {
        for (token, spec) in [
            ("fixed", "fixed"),
            ("ucb1", "ucb1"),
            ("UCB1@2", "ucb1@2"),
            ("exp3", "exp3"),
            ("exp3@0.25", "exp3@0.25"),
            ("exp3@0.25,0.3", "exp3@0.25,0.3"),
            ("coverage-ucb", "coverage-ucb"),
            ("Coverage-UCB@2", "coverage-ucb@2"),
        ] {
            let p = parse_policy(token).expect("valid policy");
            assert_eq!(p.spec(), spec);
        }
        // A custom-gamma reweighter's recorded spec parses back to the
        // identical controller (gamma is not silently dropped).
        let custom = ExpWeights {
            eta: 0.5,
            gamma: 0.3,
        };
        assert_eq!(custom.spec(), "exp3@0.5,0.3");
        assert_eq!(
            parse_policy(&custom.spec()).expect("round-trips").spec(),
            custom.spec()
        );
        assert!(parse_policy("thompson").is_err());
        assert!(parse_policy("ucb1@0").is_err());
        assert!(parse_policy("coverage-ucb@0").is_err());
        assert!(parse_policy("ucb1@x").is_err());
        assert!(parse_policy("fixed@1").is_err());
        assert!(parse_policy("exp3@-1").is_err());
        assert!(parse_policy("exp3@0.5,2").is_err());
        assert!(parse_policy("exp3@0.5,x").is_err());
    }
}
