//! # c11tester-adaptive
//!
//! Adaptive, epoch-driven exploration campaigns: a deterministic
//! bandit controller that **reweights the strategy mix from live
//! detection columns**.
//!
//! C11Tester's detection power is statistical (paper §7.6, Tables
//! 1–2), and *which* scheduling strategy drives each execution changes
//! what gets found — PCT depth-2 reaches lost-update bugs pure random
//! sampling misses, while random scheduling covers broad interleaving
//! mass cheaply. A fixed [`StrategyMix`] spends the execution budget
//! open-loop; an [`AdaptiveCampaign`] closes the loop:
//!
//! 1. the budget is split into fixed-size **epochs**;
//! 2. each epoch runs as an ordinary sharded campaign over a
//!    contiguous range of the global execution-index stream
//!    ([`Campaign::run_range`]) under the current mix;
//! 3. the epoch's merged per-strategy detection columns
//!    ([`c11tester_race::StrategyLedger`]) feed a pluggable
//!    [`Reweighter`] — [`Ucb1`], [`ExpWeights`] (EXP3-style), or the
//!    [`Fixed`] no-op control — which emits the next epoch's mix as a
//!    **pure function of (seed, completed-epoch aggregates)**.
//!
//! Because fixed-budget epoch aggregates are byte-identical across
//! worker counts (the campaign determinism contract) and reweighting
//! is pure, the full adaptive run — including its
//! [`EpochTrace`] canonical JSON (`c11campaign/v3`) — is
//! **byte-identical for any worker count**, and every execution
//! remains replayable by `(seed, epoch, index)`:
//! [`AdaptiveCampaign::replay`] reconstructs the epoch's mix from the
//! trace and re-runs the global index serially.
//!
//! ```
//! use c11tester::{Config, StrategyMix};
//! use c11tester_adaptive::AdaptiveCampaign;
//! use c11tester_campaign::CampaignBudget;
//!
//! let config = Config::new()
//!     .with_seed(7)
//!     .with_mix(StrategyMix::parse("random:1,pct2:1").unwrap());
//! let report = AdaptiveCampaign::new(config)
//!     .with_workers(2)
//!     .with_epoch_len(12)
//!     .with_policy("ucb1")
//!     .unwrap()
//!     .run(&CampaignBudget::executions(36), || {
//!         c11tester_workloads::ds::rwlock_buggy::run_buggy();
//!     });
//! assert_eq!(report.trace.epochs(), 3);
//! assert_eq!(report.aggregate().executions, 36);
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod reweight;

pub use reweight::{parse_policy, CoverageUcb, ExpWeights, Fixed, ReweightCtx, Reweighter, Ucb1};

use c11tester::{Config, CoverageMap, ExecutionReport, Model, StrategyMix, TestReport};
use c11tester_campaign::targets::Target;
use c11tester_campaign::{Campaign, CampaignBudget, EpochRecord, EpochTrace, Executor, StopReason};
use c11tester_telemetry::{CampaignMetrics, EpochMetric};
use std::time::{Duration, Instant};

/// Default epoch length (executions per epoch) when none is set.
pub const DEFAULT_EPOCH_LEN: u64 = 64;

/// An adaptive campaign: epochs of sharded execution under a mix the
/// controller reweights between epochs.
///
/// See the [crate docs](crate) for the determinism contract.
#[derive(Debug)]
pub struct AdaptiveCampaign {
    config: Config,
    initial_mix: StrategyMix,
    workers: usize,
    epoch_len: u64,
    policy: Box<dyn Reweighter>,
}

impl AdaptiveCampaign {
    /// Creates an adaptive campaign over `config`, defaulting to one
    /// worker per CPU, [`DEFAULT_EPOCH_LEN`]-execution epochs, and the
    /// [`Fixed`] (no-op) policy. The arms are the entries of
    /// `config.mix`; a config without a mix gets the single-arm mix of
    /// its fixed strategy (reweighting is then a no-op by
    /// construction).
    pub fn new(mut config: Config) -> Self {
        let initial_mix = match &config.mix {
            Some(mix) => mix.clone(),
            None => StrategyMix::single(config.strategy),
        };
        config = config.with_mix(initial_mix.clone());
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        AdaptiveCampaign {
            config,
            initial_mix,
            workers,
            epoch_len: DEFAULT_EPOCH_LEN,
            policy: Box::new(Fixed),
        }
    }

    /// Sets the worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "a campaign needs at least one worker");
        self.workers = workers;
        self
    }

    /// Sets the epoch length (executions per epoch).
    ///
    /// # Panics
    ///
    /// Panics if `epoch_len == 0`.
    pub fn with_epoch_len(mut self, epoch_len: u64) -> Self {
        assert!(epoch_len > 0, "epochs need at least one execution");
        self.epoch_len = epoch_len;
        self
    }

    /// Sets the reweighting policy by spec (`fixed`, `ucb1[@c]`,
    /// `exp3[@eta]`).
    pub fn with_policy(mut self, spec: &str) -> Result<Self, String> {
        self.policy = parse_policy(spec)?;
        Ok(self)
    }

    /// Installs a custom reweighter (the pluggable-controller entry
    /// point). The reweighter must be a pure function of its
    /// [`ReweightCtx`] for the determinism contract to hold.
    pub fn with_reweighter(mut self, policy: Box<dyn Reweighter>) -> Self {
        self.policy = policy;
        self
    }

    /// The base configuration (mix = the initial mix).
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The configured epoch length.
    pub fn epoch_len(&self) -> u64 {
        self.epoch_len
    }

    /// Runs the adaptive campaign: epochs of `epoch_len` executions
    /// until `budget.max_executions` is reached (the final epoch may
    /// be shorter), a deadline expires, or — with
    /// `budget.stop_on_first_bug` — a bug is found. Only the pure
    /// fixed-budget mode promises worker-count-independent traces
    /// (early stops cut the stream at a racy point, exactly as for
    /// [`Campaign::run`]).
    pub fn run<F>(&self, budget: &CampaignBudget, program: F) -> AdaptiveReport
    where
        F: Fn() + Send + Sync,
    {
        self.run_epochs(budget, |config, first_index, epoch_budget| {
            let report = Campaign::new(config.clone())
                .with_workers(self.workers)
                .run_range(first_index, epoch_budget, &program);
            Ok((
                report.aggregate,
                Vec::new(),
                report.stop_reason,
                report.metrics,
            ))
        })
        .expect("in-process epochs are infallible")
    }

    /// Runs the adaptive campaign on a *named* target through an
    /// [`Executor`] — the process-isolation entry point, mirroring
    /// [`c11tester_campaign::Campaign::run_target`]. Epochs behave
    /// exactly as in [`AdaptiveCampaign::run`]; under a fork server,
    /// crashing executions land in their epoch's
    /// [`EpochRecord::crashes`] and the reweighter's reward signal
    /// counts each crash as a found bug for the strategy that drove
    /// the crashing index (a segfault is the strongest detection
    /// signal a strategy can produce).
    pub fn run_target(
        &self,
        executor: &dyn Executor,
        target: &Target,
        budget: &CampaignBudget,
    ) -> Result<AdaptiveReport, String> {
        self.run_epochs(budget, |config, first_index, epoch_budget| {
            let outcome =
                executor.run_range(config, self.workers, target, first_index, epoch_budget)?;
            Ok((
                outcome.aggregate,
                outcome.crashes,
                outcome.stop_reason,
                outcome.metrics,
            ))
        })
    }

    /// The shared epoch loop: `run_range` produces each epoch's
    /// `(aggregate, crashes, stop reason)` for a contiguous global
    /// index range; reweighting between epochs is a pure function of
    /// the completed-epoch records plus the crash-aware reward ledger.
    fn run_epochs<R>(
        &self,
        budget: &CampaignBudget,
        mut run_range: R,
    ) -> Result<AdaptiveReport, String>
    where
        R: FnMut(
            &Config,
            u64,
            &CampaignBudget,
        ) -> Result<
            (
                TestReport,
                Vec<c11tester_campaign::CrashRecord>,
                StopReason,
                CampaignMetrics,
            ),
            String,
        >,
    {
        let start = Instant::now();
        let mut mix = self.initial_mix.clone();
        let mut records: Vec<EpochRecord> = Vec::new();
        let mut aggregate = TestReport::default();
        let mut metrics = CampaignMetrics::default();
        // The reward signal: the merged per-strategy ledger, with every
        // crash booked as a bugged execution for its strategy. Kept
        // separate from `aggregate.per_strategy` so report invariants
        // (bucket counters sum to completed executions) still hold.
        let mut reward_ledger = c11tester::StrategyLedger::new();
        // Coverage bookkeeping for reweighters that reward discovery:
        // the cumulative behavior map plus, per epoch, how many new
        // behaviors each strategy spec was first to exhibit. Both stay
        // empty (and cost nothing) without coverage collection.
        let mut coverage_cumulative = CoverageMap::new();
        let mut coverage_deltas: Vec<std::collections::BTreeMap<String, u64>> = Vec::new();
        let mut stop_reason = StopReason::BudgetExhausted;
        let mut next_index = 0u64;
        let mut epoch = 0u64;
        while next_index < budget.max_executions {
            let len = self.epoch_len.min(budget.max_executions - next_index);
            let mut epoch_budget =
                CampaignBudget::executions(len).with_stop_on_first_bug(budget.stop_on_first_bug);
            if let Some(deadline) = budget.deadline {
                let elapsed = start.elapsed();
                if elapsed >= deadline {
                    stop_reason = StopReason::Deadline;
                    break;
                }
                epoch_budget = epoch_budget.with_deadline(deadline - elapsed);
            }
            let config = self.config.clone().with_mix(mix.clone());
            let epoch_started = Instant::now();
            let (epoch_aggregate, crashes, epoch_stop, epoch_metrics) =
                run_range(&config, next_index, &epoch_budget)?;
            metrics.absorb(&epoch_metrics);
            metrics.epochs.push(EpochMetric {
                epoch,
                start_index: next_index,
                executions: epoch_aggregate.executions,
                wall_nanos: epoch_started.elapsed().as_nanos() as u64,
                mix: mix.spec(),
            });
            aggregate.merge(&epoch_aggregate);
            reward_ledger.merge(&epoch_aggregate.per_strategy);
            for crash in &crashes {
                reward_ledger.record(&crash.strategy, crash.index, &[], true);
            }
            // Attribute each behavior this epoch was first to exhibit
            // to the strategy that drove its first execution (a pure
            // function of (epoch mix, global index), so the delta is
            // worker-count independent like everything else here).
            let mut delta = std::collections::BTreeMap::new();
            epoch_aggregate
                .coverage
                .for_each_new(&coverage_cumulative, |first_execution| {
                    let spec = config.strategy_for(first_execution).spec();
                    *delta.entry(spec).or_insert(0u64) += 1;
                });
            coverage_cumulative.merge(&epoch_aggregate.coverage);
            coverage_deltas.push(delta);
            records.push(EpochRecord {
                epoch,
                start_index: next_index,
                mix: mix.spec(),
                aggregate: epoch_aggregate,
                crashes,
            });
            if epoch_stop != StopReason::BudgetExhausted {
                stop_reason = epoch_stop;
                break;
            }
            next_index += len;
            epoch += 1;
            if next_index >= budget.max_executions {
                break;
            }
            let ctx = ReweightCtx {
                base_seed: self.config.seed,
                next_epoch: epoch,
                initial_mix: &self.initial_mix,
                epochs: &records,
                cumulative: &reward_ledger,
                coverage_deltas: &coverage_deltas,
            };
            mix = self.policy.reweight(&ctx);
        }
        // Sequential epochs: the campaign's wall clock is the loop's,
        // not the maximum over epochs that `absorb` (a parallel merge)
        // keeps.
        metrics.wall_nanos = start.elapsed().as_nanos() as u64;
        metrics.executions = aggregate.executions;
        Ok(AdaptiveReport {
            trace: EpochTrace {
                base_seed: self.config.seed,
                policy: self.config.policy.name(),
                adaptive_policy: self.policy.spec(),
                epoch_len: self.epoch_len,
                initial_mix: self.initial_mix.spec(),
                budget: budget.clone(),
                stop_reason,
                records,
                aggregate,
            },
            workers: self.workers,
            wall_time: start.elapsed(),
            metrics,
        })
    }

    /// Replays execution `offset` of epoch `epoch` from a trace this
    /// campaign (same config) produced: rebuilds the epoch's mix from
    /// the trace and serially re-runs the **global** index
    /// `start_index + offset`. Returns `None` if the trace has no such
    /// epoch or the offset is outside the epoch's *nominal* index
    /// range (`epoch_len`, clipped by the overall budget). The nominal
    /// range — not the completed-execution count — is the bound
    /// because an early-stopped epoch (first bug, deadline) completes
    /// a strided subset of its range across workers: the flagged
    /// execution's index can exceed the completed count, and replaying
    /// any in-range index is deterministic regardless of whether the
    /// campaign happened to finish it.
    pub fn replay<F>(
        &self,
        trace: &EpochTrace,
        epoch: u64,
        offset: u64,
        program: F,
    ) -> Option<ExecutionReport>
    where
        F: Fn() + Send + Sync,
    {
        let record = trace.record(epoch)?;
        let nominal = trace.epoch_len.min(
            trace
                .budget
                .max_executions
                .saturating_sub(record.start_index),
        );
        if offset >= nominal {
            return None;
        }
        let mix = StrategyMix::parse(&record.mix).ok()?;
        let config = self.config.clone().with_mix(mix);
        Some(Model::new(config).run_at(record.start_index + offset, program))
    }
}

/// The outcome of an adaptive campaign: the canonical [`EpochTrace`]
/// plus run-local facts (worker count, wall time) excluded from the
/// canonical form.
#[derive(Clone, Debug)]
pub struct AdaptiveReport {
    /// The canonical epoch trace (mix trajectory, per-epoch columns,
    /// overall aggregate).
    pub trace: EpochTrace,
    /// Worker threads used (not part of the canonical form).
    pub workers: usize,
    /// Wall-clock duration (not part of the canonical form).
    pub wall_time: Duration,
    /// Diagnostic campaign telemetry with a per-epoch timeline. Like
    /// `workers` and `wall_time`, never part of the canonical form —
    /// see `docs/METRICS.md`.
    pub metrics: CampaignMetrics,
}

impl AdaptiveReport {
    /// The overall aggregate over all epochs.
    pub fn aggregate(&self) -> &TestReport {
        &self.trace.aggregate
    }

    /// Lowest global execution index that exhibited a bug, if any —
    /// the executions-to-first-bug metric.
    pub fn first_bug_execution(&self) -> Option<u64> {
        self.trace.aggregate.first_bug_execution()
    }

    /// Fraction of executions that detected a race.
    pub fn race_detection_rate(&self) -> f64 {
        self.trace.aggregate.race_detection_rate()
    }

    /// Fraction of executions that found any bug.
    pub fn bug_detection_rate(&self) -> f64 {
        self.trace.aggregate.bug_detection_rate()
    }

    /// The canonical (worker-count independent) `c11campaign/v3` JSON.
    pub fn canonical_json(&self) -> String {
        self.trace.canonical_json()
    }

    /// The canonical trace plus the opt-in `alloc` diagnostics block
    /// (`c11campaign --alloc-stats`); not covered by the byte-identity
    /// contract.
    pub fn canonical_json_with_alloc_stats(&self) -> String {
        self.trace.canonical_json_with_alloc_stats()
    }

    /// The `c11coverage/v1` behavior-coverage object with per-epoch
    /// growth curves (see [`EpochTrace::coverage_json`]).
    pub fn coverage_json(&self) -> String {
        self.trace.coverage_json()
    }

    /// The full JSON form: the canonical trace plus campaign timing.
    pub fn to_json(&self) -> String {
        let secs = self.wall_time.as_secs_f64();
        let throughput = if secs > 0.0 {
            self.trace.aggregate.executions as f64 / secs
        } else {
            0.0
        };
        format!(
            "{{\"campaign\":{},\"timing\":{{\"workers\":{},\"wall_secs\":{},\"executions_per_second\":{}}}}}",
            self.trace.canonical_json(),
            self.workers,
            secs,
            throughput,
        )
    }
}

impl std::fmt::Display for AdaptiveReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "adaptive: {} executions on {} worker(s) in {:.2?}, policy {}, initial mix {}",
            self.trace.aggregate.executions,
            self.workers,
            self.wall_time,
            self.trace.adaptive_policy,
            self.trace.initial_mix,
        )?;
        write!(f, "{}", self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn racy() {
        c11tester_workloads::ds::rwlock_buggy::run_buggy();
    }

    fn mixed_config(seed: u64) -> Config {
        Config::new()
            .with_seed(seed)
            .with_mix(StrategyMix::parse("random:2,pct2:1").expect("valid mix"))
    }

    #[test]
    fn epochs_tile_the_budget_including_a_short_tail() {
        let report = AdaptiveCampaign::new(mixed_config(3))
            .with_workers(2)
            .with_epoch_len(8)
            .run(&CampaignBudget::executions(20), || {});
        assert_eq!(report.trace.epochs(), 3);
        let lens: Vec<u64> = report
            .trace
            .records
            .iter()
            .map(|r| r.executions())
            .collect();
        assert_eq!(lens, [8, 8, 4]);
        let starts: Vec<u64> = report.trace.records.iter().map(|r| r.start_index).collect();
        assert_eq!(starts, [0, 8, 16]);
        assert_eq!(report.aggregate().executions, 20);
        assert_eq!(report.trace.stop_reason, StopReason::BudgetExhausted);
    }

    #[test]
    fn unmixed_config_degenerates_to_a_single_arm() {
        let report = AdaptiveCampaign::new(Config::new().with_seed(5))
            .with_workers(1)
            .with_epoch_len(4)
            .with_policy("ucb1")
            .expect("valid policy")
            .run(&CampaignBudget::executions(8), || {});
        assert_eq!(report.trace.initial_mix, "random:1");
        // Both epochs ran the lone arm.
        assert_eq!(report.trace.mix_trajectory(), ["random:1", "random:1"]);
    }

    #[test]
    fn zero_budget_yields_an_empty_trace() {
        let report =
            AdaptiveCampaign::new(mixed_config(1)).run(&CampaignBudget::executions(0), racy);
        assert_eq!(report.trace.epochs(), 0);
        assert_eq!(report.aggregate().executions, 0);
        assert!(report.canonical_json().contains("\"epochs\":[]"));
    }

    #[test]
    fn stop_on_first_bug_ends_the_epoch_loop() {
        let budget = CampaignBudget::executions(1_000).with_stop_on_first_bug(true);
        let campaign = AdaptiveCampaign::new(mixed_config(9))
            .with_workers(2)
            .with_epoch_len(50);
        let report = campaign.run(&budget, racy);
        assert_eq!(report.trace.stop_reason, StopReason::FirstBug);
        assert!(report.aggregate().executions < 1_000);
        assert!(report.aggregate().executions_with_bug > 0);
        // Even though the early stop completed only a strided subset
        // of the epoch, the flagged execution replays: the replay
        // bound is the epoch's nominal range, not its completed count.
        let first = report.first_bug_execution().expect("bug found");
        let record = report
            .trace
            .records
            .iter()
            .find(|r| first >= r.start_index && first < r.start_index + 50)
            .expect("first bug lies in an epoch's nominal range");
        let replayed = campaign
            .replay(
                &report.trace,
                record.epoch,
                first - record.start_index,
                racy,
            )
            .expect("flagged execution must be replayable after an early stop");
        assert_eq!(replayed.execution_index, first);
        assert!(replayed.found_bug());
    }

    #[test]
    fn replay_rejects_out_of_range_coordinates() {
        let campaign = AdaptiveCampaign::new(mixed_config(7)).with_epoch_len(4);
        let report = campaign.run(&CampaignBudget::executions(8), racy);
        assert!(campaign.replay(&report.trace, 0, 0, racy).is_some());
        assert!(campaign.replay(&report.trace, 0, 4, racy).is_none());
        assert!(campaign.replay(&report.trace, 2, 0, racy).is_none());
    }
}
