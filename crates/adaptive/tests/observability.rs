//! End-to-end observability contract, driven through the real
//! `c11campaign` binary:
//!
//! * `--coverage-out` writes a `c11coverage/v1` report that is
//!   **byte-identical** across 1/4/8 workers and in-process vs
//!   `--isolate` (children ship their fold in a batched coverage
//!   frame; merge is order-independent);
//! * collecting coverage never perturbs the default canonical JSON on
//!   stdout — plain and adaptive, any policy;
//! * `--forensics-dir` writes one `race-NNN.{json,dot}` bundle per
//!   deduplicated race, every bundle's replay key reproduces its race
//!   (`verified: true`), and the DOT export is structurally sound;
//! * the `coverage-ucb` adaptive policy runs a worker-count
//!   independent closed loop with a per-epoch new-behavior growth
//!   curve in its coverage report.

use c11tester_campaign::baseline::JsonValue;
use std::path::PathBuf;
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_c11campaign");

fn run(args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        .output()
        .expect("c11campaign binary runs")
}

fn run_ok(args: &[&str]) -> (String, String) {
    let out = run(args);
    assert!(
        out.status.success(),
        "c11campaign {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8(out.stdout).expect("stdout is UTF-8"),
        String::from_utf8(out.stderr).expect("stderr is UTF-8"),
    )
}

/// Fresh scratch path under the system temp dir, unique per test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("c11observability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn coverage_report_is_byte_identical_across_workers_and_isolation() {
    let dir = scratch("cov");
    let base = [
        "--target",
        "rwlock-buggy",
        "--executions",
        "96",
        "--seed",
        "7",
        "--mix",
        "random:2,pct2:1",
        "--canonical",
    ];
    let mut first: Option<(String, String)> = None;
    for (label, extra) in [
        ("w1", vec!["--workers", "1"]),
        ("w4", vec!["--workers", "4"]),
        ("w8i", vec!["--workers", "8", "--isolate"]),
        (
            "w4i-batch7",
            vec!["--workers", "4", "--isolate", "--batch", "7"],
        ),
    ] {
        let cov = dir.join(format!("{label}.json"));
        let cov_str = cov.to_str().expect("utf-8 path");
        let mut args = base.to_vec();
        args.extend(["--coverage-out", cov_str]);
        args.extend(extra.iter().copied());
        let (stdout, _) = run_ok(&args);
        let coverage = std::fs::read_to_string(&cov).expect("coverage file written");
        match &first {
            None => first = Some((coverage, stdout)),
            Some((cov0, stdout0)) => {
                assert_eq!(&coverage, cov0, "coverage diverged at {label}");
                assert_eq!(&stdout, stdout0, "canonical stdout diverged at {label}");
            }
        }
    }
    let (coverage, stdout) = first.expect("ran");
    // Collecting coverage must not perturb the canonical report.
    let (plain_stdout, _) = run_ok(&base);
    assert_eq!(
        stdout, plain_stdout,
        "coverage collection leaked into stdout"
    );
    // And the report itself is a well-formed c11coverage/v1 document.
    let doc = JsonValue::parse(&coverage).expect("coverage JSON parses");
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some("c11coverage/v1")
    );
    assert_eq!(
        doc.get("collected_executions").and_then(JsonValue::as_u64),
        Some(96)
    );
    let distinct = doc.get("distinct").expect("distinct block");
    assert!(distinct.get("total").and_then(JsonValue::as_u64).unwrap() > 0);
    assert!(distinct.get("races").and_then(JsonValue::as_u64).unwrap() > 0);
    for field in ["rf_edges", "mo_edges", "races", "interleavings"] {
        assert!(
            !doc.get(field)
                .and_then(JsonValue::as_array)
                .expect("behavior array")
                .is_empty(),
            "`{field}` is empty"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn forensics_bundles_verify_by_replay_and_export_sound_dot() {
    let dir = scratch("forensics");
    let fdir = dir.join("bundles");
    let fdir_str = fdir.to_str().expect("utf-8 path");
    let (_, stderr) = run_ok(&[
        "--target",
        "rwlock-buggy",
        "--executions",
        "96",
        "--seed",
        "7",
        "--forensics-dir",
        fdir_str,
        "--canonical",
    ]);
    let mut bundles: Vec<String> = std::fs::read_dir(&fdir)
        .expect("forensics dir exists")
        .map(|e| e.expect("entry").file_name().into_string().expect("utf-8"))
        .collect();
    bundles.sort();
    assert!(
        bundles.contains(&"race-000.json".to_string()),
        "no bundle written: {bundles:?}"
    );
    let json_count = bundles.iter().filter(|n| n.ends_with(".json")).count();
    let dot_count = bundles.iter().filter(|n| n.ends_with(".dot")).count();
    assert_eq!(json_count, dot_count, "every race gets both files");
    assert!(
        stderr.contains(&format!(
            "{json_count} forensics bundle(s), {json_count} verified by replay"
        )),
        "not all bundles verified: {stderr}"
    );

    // Every bundle: schema, replay key matching the run, verified.
    for i in 0..json_count {
        let text = std::fs::read_to_string(fdir.join(format!("race-{i:03}.json"))).expect("json");
        let doc = JsonValue::parse(&text).expect("bundle JSON parses");
        assert_eq!(
            doc.get("schema").and_then(JsonValue::as_str),
            Some("c11forensics/v1")
        );
        let replay = doc.get("replay").expect("replay key");
        assert_eq!(replay.get("seed").and_then(JsonValue::as_u64), Some(7));
        assert!(replay.get("index").and_then(JsonValue::as_u64).unwrap() < 96);
        assert_eq!(
            doc.get("verified").and_then(JsonValue::as_bool),
            Some(true),
            "bundle {i} replay did not reproduce its race"
        );
        assert!(!doc
            .get("shapes")
            .and_then(JsonValue::as_array)
            .expect("shapes")
            .is_empty());
        let window = doc
            .get("trace")
            .and_then(|t| t.get("window"))
            .and_then(JsonValue::as_array)
            .expect("event window");
        assert!(!window.is_empty(), "bundle {i} has an empty event window");
    }

    // DOT structural check (no graphviz in the offline tree: verify
    // shape, balance, and the edge kinds the doc promises).
    let dot = std::fs::read_to_string(fdir.join("race-000.dot")).expect("dot");
    assert!(dot.starts_with("digraph"));
    assert_eq!(
        dot.matches('{').count(),
        dot.matches('}').count(),
        "unbalanced braces"
    );
    assert!(dot.contains("subgraph \"cluster_t"), "no thread clusters");
    assert!(dot.contains("->"), "no edges");
    assert!(dot.contains("label=\"rf\""), "no rf edges");
    assert!(dot.trim_end().ends_with('}'));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn coverage_ucb_closed_loop_is_worker_count_independent_with_growth_curve() {
    let dir = scratch("ucb");
    let base = [
        "--target",
        "rwlock-buggy",
        "--executions",
        "192",
        "--epoch",
        "48",
        "--seed",
        "7",
        "--adaptive",
        "coverage-ucb",
        "--canonical",
    ];
    let mut first: Option<(String, String)> = None;
    for workers in ["1", "4", "8"] {
        let cov = dir.join(format!("w{workers}.json"));
        let cov_str = cov.to_str().expect("utf-8 path");
        let mut args = base.to_vec();
        args.extend(["--workers", workers, "--coverage-out", cov_str]);
        let (stdout, _) = run_ok(&args);
        let coverage = std::fs::read_to_string(&cov).expect("coverage written");
        match &first {
            None => first = Some((coverage, stdout)),
            Some((cov0, stdout0)) => {
                assert_eq!(&coverage, cov0, "coverage diverged at {workers} workers");
                assert_eq!(&stdout, stdout0, "trace diverged at {workers} workers");
            }
        }
    }
    let (coverage, stdout) = first.expect("ran");
    assert!(stdout.contains("\"schema\":\"c11campaign/v4\""));
    assert!(stdout.contains("\"adaptive\":{\"policy\":\"coverage-ucb\""));
    let doc = JsonValue::parse(&coverage).expect("coverage JSON parses");
    let epochs = doc
        .get("epochs")
        .and_then(JsonValue::as_array)
        .expect("epochs array");
    assert_eq!(epochs.len(), 4, "192 executions / 48 per epoch");
    // Epoch 0 discovers everything it sees; the curve values must sum
    // to the overall distinct total (each behavior is new exactly once).
    let total: u64 = epochs
        .iter()
        .map(|e| e.get("new_behaviors").and_then(JsonValue::as_u64).unwrap())
        .sum();
    assert_eq!(
        doc.get("distinct")
            .and_then(|d| d.get("total"))
            .and_then(JsonValue::as_u64),
        Some(total),
        "per-epoch growth curve does not sum to the distinct total"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fixed_policy_trace_is_unchanged_by_coverage_collection() {
    let dir = scratch("fixed");
    let base = [
        "--target",
        "rwlock-buggy",
        "--executions",
        "96",
        "--epoch",
        "48",
        "--seed",
        "7",
        "--adaptive",
        "fixed",
        "--canonical",
    ];
    let (without, _) = run_ok(&base);
    let cov = dir.join("cov.json");
    let mut args = base.to_vec();
    args.extend(["--coverage-out", cov.to_str().expect("utf-8 path")]);
    let (with_cov, _) = run_ok(&args);
    assert_eq!(
        without, with_cov,
        "coverage collection perturbed the fixed-policy trace"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flag_errors_share_one_style_across_binaries() {
    // Satellite of the observability PR: c11campaign and c11bench
    // report flag errors through one shared helper. Pin the shape.
    let out = run(&["--metrics-format", "chrome"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.starts_with("error: --metrics-format requires --metrics-out\n\n"),
        "unexpected error shape: {stderr}"
    );
    assert!(stderr.contains("USAGE:"), "usage text follows the error");
}
