//! End-to-end coverage of the generated-program surface through the
//! real binaries: `gen:<pseed>` campaign targets (determinism across
//! worker counts and isolation, malformed-spec usage errors) and the
//! `c11fuzz` differential fuzzer (clean sweeps, report files, usage
//! errors).

use std::process::{Command, Output};

const CAMPAIGN: &str = env!("CARGO_BIN_EXE_c11campaign");
const FUZZ: &str = env!("CARGO_BIN_EXE_c11fuzz");

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin).args(args).output().expect("binary runs")
}

fn canonical(args: &[&str]) -> String {
    let out = run(CAMPAIGN, args);
    assert!(
        out.status.success(),
        "c11campaign {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("canonical JSON is UTF-8")
}

#[test]
fn gen_target_canonical_json_is_worker_count_and_isolation_invariant() {
    let base = [
        "--target",
        "gen:7",
        "--executions",
        "24",
        "--seed",
        "0xF00D",
        "--canonical",
    ];
    let mut one = base.to_vec();
    one.extend(["--workers", "1"]);
    let reference = canonical(&one);
    assert!(
        reference.contains("\"schema\":\"c11campaign/v4\""),
        "{reference}"
    );
    for workers in ["4", "8"] {
        let mut v = base.to_vec();
        v.extend(["--workers", workers]);
        assert_eq!(
            canonical(&v),
            reference,
            "gen:7 canonical JSON diverged at {workers} workers"
        );
    }
    let mut iso = base.to_vec();
    iso.extend(["--isolate", "--workers", "4"]);
    assert_eq!(
        canonical(&iso),
        reference,
        "gen:7 canonical JSON diverged under --isolate"
    );
}

#[test]
fn gen_targets_beyond_the_showcase_table_resolve() {
    // Any pseed names a target; hex and decimal canonicalize alike.
    let dec = canonical(&["--target", "gen:123456", "--executions", "8", "--canonical"]);
    let hex = canonical(&[
        "--target",
        "gen:0x1E240",
        "--executions",
        "8",
        "--canonical",
    ]);
    assert_eq!(dec, hex, "hex pseed spec must canonicalize to decimal");
}

#[test]
fn malformed_gen_specs_are_usage_errors() {
    for bad in ["gen:", "gen:zzz", "gen:0x", "gen:12q"] {
        let out = run(CAMPAIGN, &["--target", bad, "--executions", "1"]);
        assert_eq!(out.status.code(), Some(2), "`--target {bad}` must exit 2");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("malformed gen target"),
            "`--target {bad}`: {stderr}"
        );
        assert!(
            stderr.contains("USAGE:"),
            "malformed gen spec is a usage error, got: {stderr}"
        );
        assert!(
            !stderr.contains("unknown target"),
            "malformed spec must not be reported as unknown: {stderr}"
        );
    }
    // A non-gen unknown name keeps the unknown-target shape.
    let out = run(CAMPAIGN, &["--target", "no-such-target"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown target `no-such-target`"),
        "{stderr}"
    );
}

#[test]
fn fuzz_smoke_sweep_is_clean_and_writes_an_empty_report() {
    let dir = std::env::temp_dir().join(format!("c11fuzz-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let report = dir.join("mismatches.json");
    let report_s = report.to_str().expect("utf-8 path");
    let out = run(
        FUZZ,
        &["--count", "8", "--executions", "8", "--report", report_s],
    );
    assert!(
        out.status.success(),
        "c11fuzz smoke sweep failed: {}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no mismatches"), "{stdout}");
    let body = std::fs::read_to_string(&report).expect("report written even when clean");
    assert_eq!(body.trim(), "[]", "clean run writes an empty JSON array");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fuzz_cli_usage_errors_exit_2() {
    for args in [
        &["--nope"][..],
        &["--count"][..],
        &["--count", "0"][..],
        &["--pseed", "12q"][..],
        &["--executions", "0"][..],
    ] {
        let out = run(FUZZ, args);
        assert_eq!(out.status.code(), Some(2), "c11fuzz {args:?} must exit 2");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("USAGE:"), "c11fuzz {args:?}: {stderr}");
    }
    let help = run(FUZZ, &["--help"]);
    assert!(help.status.success());
    assert!(String::from_utf8_lossy(&help.stdout).contains("c11fuzz"));
}
