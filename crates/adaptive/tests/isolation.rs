//! End-to-end fork-isolation tests, driven through the real
//! `c11campaign` binary (the fork server re-enters it via the hidden
//! `--worker` mode, so these tests exercise the actual production
//! re-entry path, not a stub).
//!
//! The contracts pinned here (see `ARCHITECTURE.md`):
//!
//! * **healthy-target byte-identity** — fork-isolated canonical JSON
//!   equals in-process canonical JSON, for 1/4/8 workers and odd batch
//!   sizes;
//! * **crash determinism** — a crashing target completes the full
//!   budget with exit 0, and its crash records (signal, strategy,
//!   index) are byte-identical across worker counts, while the same
//!   invocation without `--isolate` dies;
//! * **timeout triage** — `--exec-timeout` kills a wedged child and
//!   records a timeout crash instead of hanging the campaign.

use std::path::Path;
use std::process::{Command, Output};
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_c11campaign");

fn run(args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        .output()
        .expect("c11campaign binary runs")
}

fn canonical(args: &[&str]) -> String {
    let out = run(args);
    assert!(
        out.status.success(),
        "c11campaign {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("canonical JSON is UTF-8")
}

fn crash_count(json: &str) -> u64 {
    let summary = c11tester_campaign::baseline::BaselineSummary::parse(json)
        .expect("canonical JSON parses as a baseline summary");
    summary.crashes
}

#[test]
fn healthy_target_fork_server_matches_in_process_byte_for_byte() {
    let base = [
        "--target",
        "rwlock-buggy",
        "--executions",
        "48",
        "--seed",
        "7",
        "--mix",
        "random:2,pct2:1",
        "--canonical",
    ];
    let in_process = canonical(&base);
    assert!(in_process.contains("\"schema\":\"c11campaign/v4\""));
    assert!(in_process.contains("\"crashes\":0"));
    for workers in ["1", "4", "8"] {
        let mut args = base.to_vec();
        args.extend(["--isolate", "--workers", workers]);
        assert_eq!(
            canonical(&args),
            in_process,
            "fork-isolated canonical JSON diverged at {workers} workers"
        );
    }
    // Batch size must be invisible too (batches repartition the same
    // global index stream).
    let mut args = base.to_vec();
    args.extend(["--isolate", "--workers", "4", "--batch", "7"]);
    assert_eq!(
        canonical(&args),
        in_process,
        "batch size leaked into the report"
    );
}

#[test]
fn thread_pool_opt_out_is_byte_identical_in_process_and_isolated() {
    // The pooled model-thread runtime must be behaviorally invisible:
    // `--no-thread-pool` (spawn-per-execution) produces the same
    // canonical bytes in-process and through the fork server, where
    // children inherit the switch over the worker flag surface.
    let base = [
        "--target",
        "rwlock-buggy",
        "--executions",
        "32",
        "--seed",
        "11",
        "--canonical",
    ];
    let pooled = canonical(&base);
    let mut no_pool = base.to_vec();
    no_pool.push("--no-thread-pool");
    assert_eq!(
        canonical(&no_pool),
        pooled,
        "thread pool changed the in-process canonical report"
    );
    for workers in ["1", "4"] {
        let mut isolated = base.to_vec();
        isolated.extend(["--isolate", "--workers", workers]);
        assert_eq!(
            canonical(&isolated),
            pooled,
            "pooled fork-isolated canonical JSON diverged at {workers} workers"
        );
        let mut isolated_no_pool = isolated.clone();
        isolated_no_pool.push("--no-thread-pool");
        assert_eq!(
            canonical(&isolated_no_pool),
            pooled,
            "--no-thread-pool fork-isolated canonical JSON diverged at {workers} workers"
        );
    }
}

#[test]
fn crashing_target_completes_the_budget_and_records_deterministic_crashes() {
    let base = [
        "--target",
        "null-deref-buggy",
        "--executions",
        "200",
        "--seed",
        "7",
        "--isolate",
        "--canonical",
    ];
    let mut reference = None;
    for workers in ["1", "4", "8"] {
        let mut args = base.to_vec();
        args.extend(["--workers", workers]);
        let json = canonical(&args);
        let crashes = crash_count(&json);
        assert!(crashes > 0, "crashing target must record crashes");
        assert!(
            json.contains("\"kind\":\"signal\",\"code\":11"),
            "SIGSEGV triaged"
        );
        // Completed executions + crashes tile the whole budget.
        let summary = c11tester_campaign::baseline::BaselineSummary::parse(&json).expect("parses");
        assert_eq!(summary.executions + crashes, 200);
        match &reference {
            None => reference = Some(json),
            Some(expected) => assert_eq!(
                &json, expected,
                "crash records diverged at {workers} workers"
            ),
        }
    }
}

#[test]
fn the_same_invocation_without_isolate_dies() {
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        let out = run(&[
            "--target",
            "null-deref-buggy",
            "--executions",
            "200",
            "--seed",
            "7",
        ]);
        assert!(
            !out.status.success(),
            "in-process campaign should not survive a segfaulting target"
        );
        assert_eq!(
            out.status.signal(),
            Some(11),
            "the campaign process itself takes the SIGSEGV"
        );
    }
}

#[test]
fn exec_timeout_kills_wedged_children_and_records_timeouts() {
    let json = canonical(&[
        "--target",
        "spin-forever",
        "--executions",
        "2",
        "--seed",
        "7",
        "--isolate",
        "--exec-timeout",
        "0.5",
        "--workers",
        "2",
        "--canonical",
    ]);
    assert_eq!(crash_count(&json), 2, "every spin execution times out");
    assert_eq!(
        json.matches("\"kind\":\"timeout\",\"code\":null").count(),
        2
    );
    // No execution completed, but the campaign itself finished.
    assert!(json.contains("\"executions\":0"));
    assert!(json.contains("\"stop_reason\":\"budget-exhausted\""));
}

#[test]
fn campaign_deadline_kills_a_wedged_child_without_exec_timeout() {
    // A spinning child must not hang the campaign past its deadline
    // even when no per-execution timeout is configured — and running
    // out of campaign time is a deadline stop, not a crash.
    let start = std::time::Instant::now();
    let json = canonical(&[
        "--target",
        "spin-forever",
        "--executions",
        "100",
        "--seed",
        "7",
        "--isolate",
        "--deadline-secs",
        "1",
        "--workers",
        "2",
        "--canonical",
    ]);
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "deadline was not enforced while waiting on the child"
    );
    assert!(json.contains("\"stop_reason\":\"deadline\""));
    assert_eq!(crash_count(&json), 0, "a deadline stop is not a crash");
    assert!(json.contains("\"executions\":0"));
}

#[test]
fn adaptive_isolated_campaigns_are_worker_count_independent() {
    let base = [
        "--target",
        "null-deref-buggy",
        "--executions",
        "120",
        "--seed",
        "7",
        "--adaptive",
        "ucb1",
        "--epoch",
        "30",
        "--isolate",
        "--canonical",
    ];
    let mut one = base.to_vec();
    one.extend(["--workers", "1"]);
    let mut four = base.to_vec();
    four.extend(["--workers", "4"]);
    let trace = canonical(&one);
    assert_eq!(trace, canonical(&four));
    assert!(trace.contains("\"adaptive\":{\"policy\":\"ucb1\""));
    assert!(
        crash_count(&trace) > 0,
        "adaptive trace carries the crashes"
    );
    // Per-epoch crash columns are present.
    assert!(trace.contains("\"epoch\":0"));
    assert!(trace.contains("\"crash_records\":[{\"execution\":"));
}

#[test]
fn library_fork_server_reports_crashes_through_run_target() {
    use c11tester::Config;
    use c11tester_campaign::{targets, Campaign, CampaignBudget, CrashKind};
    use c11tester_isolation::ForkServer;

    let target = targets::find("null-deref-buggy").expect("target exists");
    let fork = ForkServer::new(Path::new(BIN)).with_batch_size(16);
    let report = Campaign::new(Config::new().with_seed(7))
        .with_workers(4)
        .run_target(&fork, &target, &CampaignBudget::executions(96))
        .expect("fork server runs");
    assert!(!report.crashes.is_empty());
    assert!(report
        .crashes
        .iter()
        .all(|c| c.kind == CrashKind::Signal(11)));
    assert_eq!(
        report.aggregate.executions + report.crashes.len() as u64,
        96,
        "completed executions + crashes tile the budget"
    );
    // Crash indices are sorted and unique.
    let indices: Vec<u64> = report.crashes.iter().map(|c| c.index).collect();
    let mut sorted = indices.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(indices, sorted);
}

#[test]
fn library_exec_timeout_defeats_a_spinning_target() {
    use c11tester::Config;
    use c11tester_campaign::{targets, Campaign, CampaignBudget, CrashKind};
    use c11tester_isolation::ForkServer;

    let target = targets::find("spin-forever").expect("target exists");
    let fork = ForkServer::new(Path::new(BIN)).with_exec_timeout(Some(Duration::from_millis(500)));
    let report = Campaign::new(Config::new().with_seed(1))
        .with_workers(2)
        .run_target(&fork, &target, &CampaignBudget::executions(2))
        .expect("fork server runs");
    assert_eq!(report.aggregate.executions, 0);
    assert_eq!(report.crashes.len(), 2);
    assert!(report.crashes.iter().all(|c| c.kind == CrashKind::Timeout));
}
