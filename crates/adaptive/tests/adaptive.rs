//! Determinism and detection contract for **adaptive epoch-driven**
//! campaigns (the acceptance tests of the adaptive tentpole):
//!
//! * an adaptive UCB1 campaign produces **byte-identical**
//!   canonical JSON for 1, 4, and 8 workers;
//! * adaptive with the `Fixed` (no-op) policy equals the plain mixed
//!   campaign over the same budget — the closed loop degenerates to
//!   the open loop exactly;
//! * a flagged execution replays by `(seed, epoch, index)` under the
//!   strategy its epoch's mix assigned it;
//! * on a seeded-bug workload, adaptive UCB1 reaches first-bug in no
//!   more executions than the **worst** fixed single-strategy campaign
//!   at the same seed, and shifts weight toward the arm that finds the
//!   bug.

use c11tester::sync::atomic::{AtomicU32, Ordering};
use c11tester::{Config, Model, Strategy, StrategyMix};
use c11tester_adaptive::AdaptiveCampaign;
use c11tester_campaign::{Campaign, CampaignBudget};
use c11tester_workloads::ds::rwlock_buggy;
use std::sync::Arc;

const SEED: u64 = 0xADA;
const MIX: &str = "random:2,pct2:1,pct3:1";

fn racy() {
    rwlock_buggy::run_buggy();
}

fn mixed_config() -> Config {
    Config::new()
        .with_seed(SEED)
        .with_mix(StrategyMix::parse(MIX).expect("valid mix"))
}

/// A depth-2 lost-update bug (cf. the PCT suite): the final count is 1
/// only when a thread is preempted between its load and its store.
/// PCT depth 1 never preempts mid-thread, so the `pct1` arm can never
/// find it — which is what makes the bandit's reweighting observable.
fn lost_update() {
    let c = Arc::new(AtomicU32::new(0));
    let c2 = Arc::clone(&c);
    let t = c11tester::thread::spawn(move || {
        let v = c2.load(Ordering::SeqCst);
        c2.store(v + 1, Ordering::SeqCst);
    });
    let v = c.load(Ordering::SeqCst);
    c.store(v + 1, Ordering::SeqCst);
    t.join();
    assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
}

#[test]
fn adaptive_trace_json_is_byte_identical_across_1_4_8_workers() {
    let budget = CampaignBudget::executions(48);
    let traces: Vec<String> = [1usize, 4, 8]
        .into_iter()
        .map(|w| {
            AdaptiveCampaign::new(mixed_config())
                .with_workers(w)
                .with_epoch_len(12)
                .with_policy("ucb1")
                .expect("valid policy")
                .run(&budget, racy)
                .canonical_json()
        })
        .collect();
    assert_eq!(traces[0], traces[1], "1 vs 4 workers");
    assert_eq!(traces[1], traces[2], "4 vs 8 workers");
    assert!(traces[0].contains("\"schema\":\"c11campaign/v4\""));
    assert!(traces[0].contains("\"adaptive\":{\"policy\":\"ucb1\",\"epoch_len\":12"));
    assert!(traces[0].contains("\"epochs\":[{\"epoch\":0,"));
    // Exp3 holds to the same contract.
    let exp: Vec<String> = [1usize, 4]
        .into_iter()
        .map(|w| {
            AdaptiveCampaign::new(mixed_config())
                .with_workers(w)
                .with_epoch_len(12)
                .with_policy("exp3")
                .expect("valid policy")
                .run(&budget, racy)
                .canonical_json()
        })
        .collect();
    assert_eq!(exp[0], exp[1], "exp3: 1 vs 4 workers");
}

#[test]
fn adaptive_with_fixed_policy_equals_the_plain_mixed_campaign() {
    let executions = 60;
    let adaptive = AdaptiveCampaign::new(mixed_config())
        .with_workers(4)
        .with_epoch_len(16)
        .run(&CampaignBudget::executions(executions), racy);
    let plain = Campaign::new(mixed_config())
        .with_workers(4)
        .run(&CampaignBudget::executions(executions), racy);
    // Fixed never changes the mix, epochs keep the base seed and walk
    // global indices — so the executions are literally the same ones.
    assert_eq!(adaptive.trace.aggregate, plain.aggregate);
    assert_eq!(
        adaptive.trace.mix_trajectory(),
        vec![MIX; adaptive.trace.epochs()]
    );
    // And both match the serial reference.
    let serial = Model::new(mixed_config()).run_many(executions, racy);
    assert_eq!(adaptive.trace.aggregate, serial);
}

#[test]
fn flagged_executions_replay_by_seed_epoch_index() {
    let campaign = AdaptiveCampaign::new(mixed_config())
        .with_workers(4)
        .with_epoch_len(12)
        .with_policy("ucb1")
        .expect("valid policy");
    let report = campaign.run(&CampaignBudget::executions(48), racy);

    // Find the epoch containing the aggregate's first flagged
    // execution and replay it by (epoch, offset).
    let first = report.first_bug_execution().expect("rwlock_buggy races");
    let record = report
        .trace
        .records
        .iter()
        .find(|r| first >= r.start_index && first < r.end_index())
        .expect("first bug falls in a completed epoch");
    let offset = first - record.start_index;
    let replayed = campaign
        .replay(&report.trace, record.epoch, offset, racy)
        .expect("coordinates in range");
    assert_eq!(replayed.execution_index, first);
    assert!(replayed.found_bug(), "replay must reproduce the bug");
    // The replay ran under the strategy the epoch's mix assigned.
    let mix = StrategyMix::parse(&record.mix).expect("trace mix parses");
    assert_eq!(replayed.strategy, mix.strategy_at(SEED, first).spec());

    // Spot-check replays across later (reweighted) epochs too: the
    // recorded per-epoch mix governs the assignment, not the initial
    // mix.
    for record in &report.trace.records {
        let mix = StrategyMix::parse(&record.mix).expect("trace mix parses");
        let index = record.start_index;
        let replayed = campaign
            .replay(&report.trace, record.epoch, 0, racy)
            .expect("offset 0 in range");
        assert_eq!(replayed.strategy, mix.strategy_at(SEED, index).spec());
    }
}

#[test]
fn ucb1_beats_the_worst_fixed_arm_to_first_bug_and_shifts_weight() {
    // Arms: pct1 (structurally blind to the depth-2 bug) and pct2
    // (finds it). The horizon 16 matches the program's length.
    let arms = "pct1@16:1,pct2@16:1";
    let seed = 0x52;
    let executions = 240;
    let config = Config::new()
        .with_seed(seed)
        .with_mix(StrategyMix::parse(arms).expect("valid mix"));
    let adaptive = AdaptiveCampaign::new(config)
        .with_workers(4)
        .with_epoch_len(40)
        .with_policy("ucb1")
        .expect("valid policy")
        .run(&CampaignBudget::executions(executions), lost_update);

    // Fixed single-strategy campaigns over the same seed and budget.
    let fixed_first_bug = |strategy: &str| {
        let config = Config::new()
            .with_seed(seed)
            .with_strategy(Strategy::parse_spec(strategy).expect("valid spec"));
        Campaign::new(config)
            .with_workers(4)
            .run(&CampaignBudget::executions(executions), lost_update)
            .aggregate
            .first_bug_execution()
    };
    assert_eq!(
        fixed_first_bug("pct1@16"),
        None,
        "depth-1 PCT must be blind to the depth-2 bug"
    );
    let adaptive_first = adaptive.first_bug_execution();
    assert!(
        adaptive_first.is_some(),
        "adaptive campaign must find the bug: {}",
        adaptive.trace
    );
    // Executions-to-first-bug: no worse than the worst fixed arm
    // (None = never found = worst possible).
    let worst_fixed = ["pct1@16", "pct2@16"]
        .iter()
        .map(|s| fixed_first_bug(s).unwrap_or(u64::MAX))
        .max()
        .expect("two arms");
    assert!(
        adaptive_first.unwrap_or(u64::MAX) <= worst_fixed,
        "adaptive first-bug {adaptive_first:?} vs worst fixed {worst_fixed}"
    );

    // The controller must shift weight toward the productive arm: in
    // the final epoch's mix, pct2 outweighs pct1.
    let last = adaptive.trace.records.last().expect("epochs ran");
    let mix = StrategyMix::parse(&last.mix).expect("trace mix parses");
    let weight = |spec: &str| {
        mix.entries()
            .iter()
            .find(|(s, _)| s.spec() == spec)
            .map(|(_, w)| *w)
            .expect("arm present")
    };
    assert!(
        weight("pct2@16") > weight("pct1@16"),
        "final mix must favor the bug-finding arm: {}",
        last.mix
    );
}

#[test]
fn exp3_also_shifts_weight_toward_the_productive_arm() {
    let config = Config::new()
        .with_seed(0x52)
        .with_mix(StrategyMix::parse("pct1@16:1,pct2@16:1").expect("valid mix"));
    let report = AdaptiveCampaign::new(config)
        .with_workers(2)
        .with_epoch_len(40)
        .with_policy("exp3")
        .expect("valid policy")
        .run(&CampaignBudget::executions(240), lost_update);
    let last = report.trace.records.last().expect("epochs ran");
    let mix = StrategyMix::parse(&last.mix).expect("trace mix parses");
    let weight = |spec: &str| {
        mix.entries()
            .iter()
            .find(|(s, _)| s.spec() == spec)
            .map(|(_, w)| *w)
            .expect("arm present")
    };
    assert!(
        weight("pct2@16") > weight("pct1@16"),
        "exp3 final mix must favor the bug-finding arm: {}",
        last.mix
    );
}
