//! Golden-schema test for the canonical epoch trace (`c11campaign/v4`,
//! historically introduced as v3 — hence this file's name).
//!
//! A fixed `(seed, target, mix, policy, epoch, budget)` adaptive
//! campaign must reproduce the checked-in trace **byte for byte** —
//! the same contract the v2 golden report pins for plain campaigns,
//! extended over the closed loop: epoch aggregates are pure functions
//! of `(seed, index range, mix)`, reweighting is a pure function of
//! those aggregates, and the emitter is deterministic.
//!
//! The CI baseline-diff step runs the **CLI** with these exact
//! parameters (`c11campaign --target rwlock-buggy --adaptive ucb1
//! --epoch 12 --executions 48 --seed 0xC0FFEE --mix random:2,pct2:1,pct3:1
//! --canonical`) and byte-compares against the same file, so the
//! fixture also pins the CLI plumbing.
//!
//! Regenerate with:
//!
//! ```text
//! cargo test -p c11tester-adaptive --test golden_v3 -- --ignored regenerate
//! ```

use c11tester::{Config, StrategyMix};
use c11tester_adaptive::{AdaptiveCampaign, AdaptiveReport};
use c11tester_campaign::CampaignBudget;
use c11tester_workloads::ds::rwlock_buggy;

const SEED: u64 = 0xC0FFEE;
const MIX: &str = "random:2,pct2:1,pct3:1";
const EPOCH_LEN: u64 = 12;
const EXECUTIONS: u64 = 48;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/rwlock_buggy_ucb1.json")
}

fn golden_campaign() -> AdaptiveReport {
    let config = Config::new()
        .with_seed(SEED)
        .with_mix(StrategyMix::parse(MIX).expect("valid mix"));
    AdaptiveCampaign::new(config)
        .with_workers(4)
        .with_epoch_len(EPOCH_LEN)
        .with_policy("ucb1")
        .expect("valid policy")
        .run(&CampaignBudget::executions(EXECUTIONS), || {
            rwlock_buggy::run_buggy()
        })
}

#[test]
fn canonical_trace_matches_the_checked_in_golden_report() {
    let expected = std::fs::read_to_string(golden_path())
        .expect("golden file present (regenerate with the ignored `regenerate` test)");
    let actual = golden_campaign().canonical_json();
    assert_eq!(
        actual,
        expected.trim_end(),
        "canonical v3 trace diverged from the golden report; if the \
         schema change is intentional, regenerate the golden file and \
         review the diff"
    );
}

#[test]
fn golden_trace_pins_the_schema_and_columns() {
    let golden = std::fs::read_to_string(golden_path()).expect("golden file present");
    for needle in [
        "\"schema\":\"c11campaign/v4\"",
        "\"crashes\":0",
        "\"crash_records\":[]",
        &format!("\"base_seed\":{SEED}"),
        &format!(
            "\"adaptive\":{{\"policy\":\"ucb1\",\"epoch_len\":{EPOCH_LEN},\
             \"initial_mix\":\"{MIX}\",\"epochs\":4}}"
        ),
        &format!("\"executions\":{EXECUTIONS}"),
        "\"epochs\":[{\"epoch\":0,\"start_index\":0,",
        "\"cumulative\":{\"executions\":12,",
        &format!("\"cumulative\":{{\"executions\":{EXECUTIONS},"),
        "\"first_bug_execution\":",
        "\"per_strategy\":[{\"strategy\":",
        "\"distinct_races\":[",
        "\"stats\":{",
    ] {
        assert!(golden.contains(needle), "golden trace lost `{needle}`");
    }
    // The baseline reader must accept the golden trace.
    let summary =
        c11tester_campaign::baseline::BaselineSummary::parse(&golden).expect("trace parses");
    assert_eq!(summary.schema, "c11campaign/v4");
    assert_eq!(summary.executions, EXECUTIONS);
    assert!(!summary.per_strategy.is_empty());
}

/// Not a test: rewrites the golden file from the current output.
#[test]
#[ignore = "golden-file regeneration helper"]
fn regenerate() {
    std::fs::create_dir_all(golden_path().parent().expect("parent dir")).expect("mkdir");
    let json = golden_campaign().canonical_json();
    std::fs::write(golden_path(), format!("{json}\n")).expect("write golden file");
}
