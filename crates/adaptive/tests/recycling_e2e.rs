//! End-to-end recycling determinism, driven through the real
//! `c11campaign` binary.
//!
//! An in-process campaign worker recycles one `Execution` along its
//! whole shard; a fork-isolated campaign with `--batch 1` puts every
//! execution in a brand-new child process — maximally *fresh* state.
//! Byte-identical canonical JSON between the two proves the recycled
//! hot path is observationally invisible through the entire stack
//! (engine, wire protocol, aggregation), at several worker counts.

use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_c11campaign");

fn run(args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        .output()
        .expect("c11campaign binary runs")
}

fn canonical(args: &[&str]) -> String {
    let out = run(args);
    assert!(
        out.status.success(),
        "c11campaign {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("canonical JSON is UTF-8")
}

#[test]
fn recycled_in_process_matches_fresh_per_execution_children() {
    let base = [
        "--target",
        "rwlock-buggy",
        "--executions",
        "32",
        "--seed",
        "0xA110C",
        "--canonical",
    ];
    // One in-process worker: executions 1..31 run on recycled state.
    let mut recycled = base.to_vec();
    recycled.extend(["--workers", "1"]);
    let recycled = canonical(&recycled);
    // --batch 1 forks a fresh child per execution: nothing recycled.
    for workers in ["1", "4", "8"] {
        let mut fresh = base.to_vec();
        fresh.extend(["--isolate", "--batch", "1", "--workers", workers]);
        assert_eq!(
            canonical(&fresh),
            recycled,
            "fresh-per-execution children diverged from the recycled \
             in-process campaign at {workers} workers"
        );
    }
}

#[test]
fn alloc_stats_flag_requires_canonical_and_emits_block() {
    let out = run(&["--target", "rwlock-buggy", "--alloc-stats"]);
    assert!(
        !out.status.success(),
        "--alloc-stats without --canonical must be rejected"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("--alloc-stats requires --canonical"));

    // The isolated combination works too: children batch their
    // provisioning counters into the wire protocol's `metrics` frame.
    // 8 executions in batches of 4 means two children, each starting
    // fresh and recycling within its batch.
    let with = canonical(&[
        "--target",
        "rwlock-buggy",
        "--executions",
        "8",
        "--workers",
        "1",
        "--isolate",
        "--batch",
        "4",
        "--canonical",
        "--alloc-stats",
    ]);
    assert!(
        with.contains("\"alloc\":{\"fresh_executions\":2,\"recycled_executions\":6,"),
        "children must report batch provisioning over the wire: {with}"
    );

    let with = canonical(&[
        "--target",
        "rwlock-buggy",
        "--executions",
        "8",
        "--workers",
        "1",
        "--canonical",
        "--alloc-stats",
    ]);
    assert!(with.contains("\"alloc\":{\"fresh_executions\":1,\"recycled_executions\":7,"));
}
