//! Telemetry end-to-end, driven through the real `c11campaign` binary.
//!
//! Two properties guard the observability layer:
//!
//! * **Diagnostics never leak into behavior.** The canonical
//!   `c11campaign/v4` report must stay byte-identical with and without
//!   `--metrics-out`, at several worker counts, in-process and
//!   fork-isolated — profiling timers and metric channels may cost
//!   nanoseconds, never bytes.
//! * **The `c11metrics/v1` schema is stable.** Metric *values* are
//!   wall-clock measurements and vary run to run, but the set of key
//!   paths in the document is deterministic; it is pinned by a
//!   checked-in golden.

use c11tester_campaign::baseline::JsonValue;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_c11campaign");

fn run(args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        .output()
        .expect("c11campaign binary runs")
}

fn canonical(args: &[&str]) -> String {
    let out = run(args);
    assert!(
        out.status.success(),
        "c11campaign {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("canonical JSON is UTF-8")
}

/// A scratch path under the cargo-managed test tmpdir.
fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("tmpdir exists");
    dir.join(name)
}

#[test]
fn canonical_report_is_byte_identical_with_and_without_metrics() {
    let base = [
        "--target",
        "rwlock-buggy",
        "--executions",
        "24",
        "--seed",
        "0xFEED",
        "--canonical",
    ];
    for isolate in [false, true] {
        for workers in ["1", "4", "8"] {
            let mut plain = base.to_vec();
            plain.extend(["--workers", workers]);
            if isolate {
                plain.extend(["--isolate", "--batch", "6"]);
            }
            let mut metered = plain.clone();
            let path = scratch(&format!(
                "metrics_identity_{workers}_{}.json",
                if isolate { "isolated" } else { "inproc" }
            ));
            let path = path.to_str().expect("utf-8 tmp path").to_string();
            metered.extend(["--metrics-out", &path]);
            assert_eq!(
                canonical(&metered),
                canonical(&plain),
                "--metrics-out changed canonical bytes at {workers} workers \
                 (isolate: {isolate})"
            );
            let doc = std::fs::read_to_string(&path).expect("metrics file written");
            assert!(doc.contains("\"schema\":\"c11metrics/v1\""));
        }
    }
}

/// Collects every object key path in `v`, with array indices collapsed
/// to `[]` so variable-length sections (workers, epochs) normalize.
fn key_paths(v: &JsonValue, prefix: &str, out: &mut BTreeSet<String>) {
    match v {
        JsonValue::Object(fields) => {
            for (k, val) in fields {
                let p = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                out.insert(p.clone());
                key_paths(val, &p, out);
            }
        }
        JsonValue::Array(items) => {
            for item in items {
                key_paths(item, &format!("{prefix}[]"), out);
            }
        }
        _ => {}
    }
}

#[test]
fn metrics_schema_shape_matches_golden() {
    // Adaptive + isolated so every optional section (epoch timeline,
    // fork-server health) is populated.
    let path = scratch("metrics_schema.json");
    let path_str = path.to_str().expect("utf-8 tmp path");
    canonical(&[
        "--target",
        "rwlock-buggy",
        "--executions",
        "32",
        "--workers",
        "2",
        "--adaptive",
        "ucb1",
        "--epoch",
        "16",
        "--isolate",
        "--batch",
        "8",
        "--canonical",
        "--metrics-out",
        path_str,
    ]);
    let doc = std::fs::read_to_string(&path).expect("metrics file written");
    let parsed = JsonValue::parse(&doc).expect("metrics file is valid JSON");
    let mut paths = BTreeSet::new();
    key_paths(&parsed, "", &mut paths);
    assert!(
        !parsed
            .get("epochs")
            .and_then(|e| e.as_array())
            .expect("epochs array present")
            .is_empty(),
        "adaptive run must record an epoch timeline"
    );

    let got: Vec<String> = paths.into_iter().collect();
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/metrics_v1_schema.txt"
    );
    let golden = std::fs::read_to_string(golden_path)
        .unwrap_or_else(|e| panic!("golden {golden_path} unreadable: {e}"));
    let want: Vec<String> = golden.lines().map(str::to_string).collect();
    assert_eq!(
        got, want,
        "c11metrics/v1 key paths diverged from the golden; if the schema \
         change is intentional, update {golden_path} and docs/METRICS.md"
    );
}

#[test]
fn chrome_export_is_a_wellformed_trace_event_array() {
    let path = scratch("metrics_chrome.json");
    let path_str = path.to_str().expect("utf-8 tmp path");
    canonical(&[
        "--target",
        "rwlock-buggy",
        "--executions",
        "16",
        "--workers",
        "2",
        "--canonical",
        "--metrics-out",
        path_str,
        "--metrics-format",
        "chrome",
    ]);
    let doc = std::fs::read_to_string(&path).expect("chrome trace written");
    let parsed = JsonValue::parse(&doc).expect("chrome trace is valid JSON");
    let events = parsed.as_array().expect("chrome trace is a JSON array");
    assert!(!events.is_empty());
    // Every event carries the required trace-event fields; the first
    // is the process_name metadata record.
    for e in events {
        assert!(e.get("ph").is_some(), "event missing phase type: {e:?}");
        assert!(e.get("pid").is_some(), "event missing pid: {e:?}");
    }
    assert_eq!(
        events[0].get("name").and_then(|n| n.as_str()),
        Some("process_name")
    );
}

#[test]
fn metrics_format_requires_metrics_out() {
    let out = run(&[
        "--target",
        "rwlock-buggy",
        "--canonical",
        "--metrics-format",
        "chrome",
    ]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--metrics-format requires --metrics-out")
    );
}
