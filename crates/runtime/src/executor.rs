//! The controlled-execution substrate (paper §7.3–§7.5, adapted).
//!
//! C11Tester implements application threads as fibers and borrows a
//! kernel thread's context for TLS (§7.4). In Rust, each model thread
//! *is* an OS thread, so TLS works natively; what this module provides
//! is the same observable discipline the fibers gave the paper's tool:
//!
//! * at most one model thread runs at any instant — the *run token*;
//! * the token moves only at visible operations, to the exact thread
//!   the testing strategy chose;
//! * blocked or descheduled threads wait in their [`Notifier`] mailbox;
//! * aborting an execution (deadlock, assertion failure, race-as-fatal)
//!   poisons the runtime and wakes every parked thread so it can unwind
//!   and exit cleanly.
//!
//! The memory-model engine, the enabled-set bookkeeping, and the
//! scheduling policy live a layer above (in the `c11tester` facade);
//! this module is deliberately mechanism-only.

use crate::fiber::{self, Fibers};
use crate::handover::{HandoverKind, Notifier};
use crate::pool::{panic_message, ThreadPool};
use parking_lot::Mutex;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Panic payload used to unwind model threads when an execution aborts.
/// The runtime swallows it at each thread's root; user `Drop` code runs
/// during the unwind, so model operations detect poisoning and re-raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aborted;

/// The run-token runtime: one slot (mailbox) per model thread — or,
/// in [`HandoverKind::Fiber`] mode, one fiber per model thread, all
/// multiplexed onto the driver's OS thread (paper §7.3).
#[derive(Debug)]
pub struct Runtime {
    kind: HandoverKind,
    slots: Mutex<Vec<Arc<Notifier>>>,
    poisoned: AtomicBool,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Backing pool for model threads: `Some` dispatches workloads to
    /// reusable pooled workers, `None` spawns a fresh OS thread per
    /// model thread (the pre-pool behavior, kept for A/B comparison).
    /// Unused (and not retained) in fiber mode.
    pool: Option<Arc<ThreadPool>>,
    /// Fresh OS threads spawned by this runtime (fresh mode only; the
    /// pool counts its own growth).
    fresh_spawns: AtomicU64,
    /// The fiber group backing this execution when the handover
    /// strategy is [`HandoverKind::Fiber`]; `None` otherwise.
    fibers: Option<Fibers>,
}

impl Runtime {
    /// Creates a runtime that spawns a fresh OS thread per model
    /// thread (spawn-per-execution mode).
    pub fn new(kind: HandoverKind) -> Arc<Self> {
        Runtime::build(kind, None)
    }

    /// Creates a runtime that dispatches model threads onto `pool`'s
    /// reusable workers instead of spawning. The pool outlives the
    /// runtime; `join_all` quiesces it rather than joining threads.
    pub fn with_pool(kind: HandoverKind, pool: Arc<ThreadPool>) -> Arc<Self> {
        Runtime::build(kind, Some(pool))
    }

    fn build(kind: HandoverKind, pool: Option<Arc<ThreadPool>>) -> Arc<Self> {
        // Fiber handover needs the x86_64 context switch; elsewhere it
        // degrades to the futex strategy (same observable behavior,
        // kernel-mediated switches).
        let kind = if kind == HandoverKind::Fiber && !fiber::supported() {
            HandoverKind::Park
        } else {
            kind
        };
        let fibers = (kind == HandoverKind::Fiber).then(Fibers::new);
        // Fibers never leave the driver thread: a backing pool would be
        // dead weight, so it is not retained.
        let pool = if fibers.is_some() { None } else { pool };
        Arc::new(Runtime {
            kind,
            slots: Mutex::new(Vec::new()),
            poisoned: AtomicBool::new(false),
            handles: Mutex::new(Vec::new()),
            pool,
            fresh_spawns: AtomicU64::new(0),
            fibers,
        })
    }

    /// The handover strategy in use.
    pub fn handover_kind(&self) -> HandoverKind {
        self.kind
    }

    /// Whether model threads run as fibers on the driver's OS thread.
    /// When true, the current model thread's identity is slot-derived
    /// ([`Runtime::current_fiber_slot`]) rather than OS-thread-local.
    pub fn is_fiber(&self) -> bool {
        self.fibers.is_some()
    }

    /// The slot index currently executing on the driver thread, when
    /// in fiber mode.
    pub fn current_fiber_slot(&self) -> Option<usize> {
        self.fibers.as_ref().map(Fibers::current)
    }

    /// Allocates a mailbox slot for a new model thread and returns its
    /// index. Slot indices match the engine's `ThreadId::index()`.
    pub fn add_slot(&self) -> usize {
        if let Some(fibers) = &self.fibers {
            return fibers.add_slot();
        }
        let mut slots = self.slots.lock();
        slots.push(Arc::new(Notifier::new(self.kind)));
        slots.len() - 1
    }

    fn slot(&self, ix: usize) -> Arc<Notifier> {
        Arc::clone(&self.slots.lock()[ix])
    }

    /// Binds the calling OS thread as the owner of slot `ix` (required
    /// before the first `park` on strategies that need a thread handle;
    /// binds the driver's native context in fiber mode).
    pub fn bind_current(&self, ix: usize) {
        if let Some(fibers) = &self.fibers {
            fibers.bind_driver(ix);
            return;
        }
        self.slot(ix).bind_current();
    }

    /// Hands the run token to model thread `ix`. In fiber mode the
    /// switch itself happens at the caller's next suspension point
    /// (park or body end), making `wake + park` one atomic handover.
    pub fn wake(&self, ix: usize) {
        if let Some(fibers) = &self.fibers {
            fibers.wake(ix);
            return;
        }
        self.slot(ix).notify();
    }

    /// Parks the calling model thread until its mailbox receives a
    /// token.
    ///
    /// # Errors
    ///
    /// Returns [`Aborted`] if the execution was poisoned — the caller
    /// must unwind (e.g. via `std::panic::panic_any(Aborted)`).
    pub fn park(&self, ix: usize) -> Result<(), Aborted> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(Aborted);
        }
        match &self.fibers {
            Some(fibers) => fibers.park(ix),
            None => self.slot(ix).wait(),
        }
        if self.poisoned.load(Ordering::Acquire) {
            return Err(Aborted);
        }
        Ok(())
    }

    /// Provisions the OS thread backing model thread `ix` — a pooled
    /// worker when the runtime has a [`ThreadPool`], a fresh named
    /// thread otherwise. Either way the thread binds its mailbox,
    /// waits to be scheduled for the first time, and then runs `body`.
    ///
    /// The expected [`Aborted`] unwind is swallowed here (the facade
    /// records failures before poisoning); any *other* panic escaping
    /// `body` is re-raised so [`Runtime::join_all`] can surface it
    /// instead of losing it.
    ///
    /// # Errors
    ///
    /// Returns the OS error message if thread creation fails (e.g.
    /// transient `EAGAIN`). Recoverable: the runtime is unchanged, so
    /// the caller can poison just the current execution.
    pub fn spawn(
        self: &Arc<Self>,
        ix: usize,
        body: Box<dyn FnOnce() + Send>,
    ) -> Result<(), String> {
        if let Some(fibers) = &self.fibers {
            // Fibers start lazily at their first wake; a fiber first
            // scheduled after poisoning never runs its body, which is
            // exactly what the park-before-body below achieves for OS
            // threads. Infallible: no OS resources are acquired here.
            fibers.spawn(ix, body, &self.poisoned);
            return Ok(());
        }
        let rt = Arc::clone(self);
        let wrapper = move || {
            rt.bind_current(ix);
            if rt.park(ix).is_err() {
                return;
            }
            if let Err(payload) = catch_unwind(AssertUnwindSafe(body)) {
                if payload.downcast_ref::<Aborted>().is_none() {
                    // Not the cooperative abort unwind: rethrow so the
                    // join/quiesce path reports it (satellite bugfix —
                    // previously `let _ = h.join()` dropped these).
                    resume_unwind(payload);
                }
            }
        };
        match &self.pool {
            Some(pool) => pool.dispatch(Box::new(wrapper)),
            None => {
                let handle = std::thread::Builder::new()
                    .name(format!("c11tester-model-{ix}"))
                    .spawn(wrapper)
                    .map_err(|e| format!("failed to spawn model thread: {e}"))?;
                self.fresh_spawns.fetch_add(1, Ordering::Relaxed);
                self.handles.lock().push(handle);
                Ok(())
            }
        }
    }

    /// Poisons the execution and wakes every parked thread so it can
    /// observe the poison and unwind.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        if self.fibers.is_some() {
            // Suspended fibers cannot observe anything until switched
            // to; `join_all` resumes each so it unwinds. No notify.
            return;
        }
        let slots: Vec<Arc<Notifier>> = self.slots.lock().iter().cloned().collect();
        for s in slots {
            s.notify();
        }
    }

    /// Whether the execution was aborted.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Waits for every model thread of this execution to finish: joins
    /// the fresh-spawned OS threads, or quiesces the backing pool
    /// (workers return to the idle list; no thread teardown). Call
    /// only after the execution completed or was poisoned.
    ///
    /// # Errors
    ///
    /// Returns the collected panic messages if any model thread died
    /// of a panic that escaped its root `catch_unwind` (anything but
    /// the cooperative [`Aborted`] unwind) — previously these were
    /// silently discarded.
    pub fn join_all(&self) -> Result<(), String> {
        if let Some(fibers) = &self.fibers {
            return fibers.finish(self.poisoned.load(Ordering::Acquire));
        }
        if let Some(pool) = &self.pool {
            return pool.quiesce();
        }
        let handles: Vec<JoinHandle<()>> = self.handles.lock().drain(..).collect();
        let mut escaped: Vec<String> = Vec::new();
        for h in handles {
            if let Err(payload) = h.join() {
                escaped.push(panic_message(payload.as_ref()));
            }
        }
        if escaped.is_empty() {
            Ok(())
        } else {
            Err(escaped.join("; "))
        }
    }

    /// Fresh OS threads this runtime spawned (always 0 in pooled mode;
    /// pool growth is counted by the pool itself).
    pub fn fresh_spawn_count(&self) -> u64 {
        self.fresh_spawns.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Drives three model threads around a token ring on `rt` and
    /// asserts the visit order is exactly the handover order — proof
    /// that only one thread runs at a time and control moves where
    /// directed. Shared between the fresh-spawn and pooled tests.
    fn run_token_ring(rt: &Arc<Runtime>) {
        let log = Arc::new(Mutex::new(Vec::new()));
        let counter = Arc::new(AtomicUsize::new(0));

        let main_slot = rt.add_slot();
        rt.bind_current(main_slot);
        let mut slots = vec![main_slot];
        for _ in 0..3 {
            slots.push(rt.add_slot());
        }
        for (k, &ix) in slots.iter().enumerate().skip(1) {
            let rt2 = Arc::clone(rt);
            let log2 = Arc::clone(&log);
            let counter2 = Arc::clone(&counter);
            let next = if k == 3 { main_slot } else { slots[k + 1] };
            rt.spawn(
                ix,
                Box::new(move || {
                    for round in 0..5 {
                        log2.lock().push((ix, round));
                        counter2.fetch_add(1, Ordering::Relaxed);
                        rt2.wake(next);
                        if round < 4 && rt2.park(ix).is_err() {
                            return;
                        }
                    }
                }),
            )
            .expect("spawn model thread");
        }
        // Kick the ring and wait for it to come back around 5 times.
        for _ in 0..5 {
            rt.wake(slots[1]);
            rt.park(main_slot).expect("not poisoned");
        }
        rt.join_all().expect("no escaped panics");
        assert_eq!(counter.load(Ordering::Relaxed), 15);
        let log = log.lock();
        // Per round, threads appear in ring order.
        for round in 0..5 {
            let entries: Vec<usize> = log
                .iter()
                .filter(|(_, r)| *r == round)
                .map(|(ix, _)| *ix)
                .collect();
            assert_eq!(entries, vec![slots[1], slots[2], slots[3]]);
        }
    }

    #[test]
    fn token_ring_runs_in_order() {
        let rt = Runtime::new(HandoverKind::Park);
        run_token_ring(&rt);
    }

    /// The same ring discipline must hold on pooled workers — and a
    /// second execution on the same pool must reuse them instead of
    /// spawning more.
    #[test]
    fn token_ring_runs_in_order_on_pooled_workers() {
        let pool = ThreadPool::new();
        let rt = Runtime::with_pool(HandoverKind::Park, Arc::clone(&pool));
        run_token_ring(&rt);
        let warm = pool.workers_spawned();
        assert!(warm > 0 && warm <= 3);
        assert_eq!(rt.fresh_spawn_count(), 0);

        let rt2 = Runtime::with_pool(HandoverKind::Park, Arc::clone(&pool));
        run_token_ring(&rt2);
        assert_eq!(
            pool.workers_spawned(),
            warm,
            "second execution must not grow the pool"
        );
        assert_eq!(pool.dispatches_reused(), 3);
    }

    /// Poisoning wakes parked threads and park reports the abort.
    #[test]
    fn poison_unblocks_parked_threads() {
        let rt = Runtime::new(HandoverKind::Park);
        let parked = rt.add_slot();
        let witnessed_abort = Arc::new(AtomicBool::new(false));
        let w2 = Arc::clone(&witnessed_abort);
        let rt2 = Arc::clone(&rt);
        rt.spawn(
            parked,
            Box::new(move || {
                // Parks forever unless poisoned.
                if rt2.park(parked).is_err() {
                    w2.store(true, Ordering::Release);
                    std::panic::panic_any(Aborted);
                }
            }),
        )
        .expect("spawn model thread");
        // Let the thread start and park (first park is inside spawn).
        rt.wake(parked);
        std::thread::sleep(std::time::Duration::from_millis(20));
        rt.poison();
        // The Aborted unwind is cooperative, not an escaped panic.
        rt.join_all().expect("Aborted unwind is swallowed");
        assert!(witnessed_abort.load(Ordering::Acquire));
        assert!(rt.is_poisoned());
    }

    /// A spawned thread that is never scheduled exits cleanly on abort.
    #[test]
    fn unscheduled_thread_exits_on_poison() {
        let rt = Runtime::new(HandoverKind::Park);
        let ix = rt.add_slot();
        let ran = Arc::new(AtomicBool::new(false));
        let r2 = Arc::clone(&ran);
        rt.spawn(
            ix,
            Box::new(move || {
                r2.store(true, Ordering::Release);
            }),
        )
        .expect("spawn model thread");
        rt.poison();
        rt.join_all().expect("unscheduled exit is clean");
        assert!(
            !ran.load(Ordering::Acquire),
            "body must not run after abort"
        );
    }

    /// park after poison returns the abort error immediately.
    #[test]
    fn park_after_poison_errors() {
        let rt = Runtime::new(HandoverKind::Park);
        let ix = rt.add_slot();
        rt.bind_current(ix);
        rt.poison();
        assert_eq!(rt.park(ix), Err(Aborted));
    }

    /// Regression (silent-loss bugfix): a panic that escapes a model
    /// thread's root `catch_unwind` — anything but the cooperative
    /// `Aborted` unwind — must surface from `join_all`, not vanish.
    #[test]
    fn join_all_surfaces_escaped_panics() {
        let rt = Runtime::new(HandoverKind::Park);
        let ix = rt.add_slot();
        rt.spawn(ix, Box::new(|| panic!("model thread exploded")))
            .expect("spawn model thread");
        rt.wake(ix);
        let err = rt.join_all().expect_err("escaped panic must surface");
        assert!(err.contains("model thread exploded"), "got: {err}");
    }

    /// The fiber runtime honors the same token-ring discipline with
    /// zero OS threads: every model thread is a fiber on this thread.
    #[test]
    fn token_ring_runs_in_order_on_fibers() {
        let rt = Runtime::new(HandoverKind::Fiber);
        assert!(rt.is_fiber());
        run_token_ring(&rt);
        assert_eq!(rt.fresh_spawn_count(), 0);
        // The runtime is per-execution; a fresh one on the same driver
        // thread reuses the recycled fiber stacks.
        let rt2 = Runtime::new(HandoverKind::Fiber);
        run_token_ring(&rt2);
    }

    /// Fiber poisoning: suspended fibers unwind at teardown (running
    /// their `Drop`/abort paths), never-started fibers never run, and
    /// `park` after poison reports the abort.
    #[test]
    fn fiber_poison_unwinds_suspended_and_skips_unstarted() {
        let rt = Runtime::new(HandoverKind::Fiber);
        let main = rt.add_slot();
        rt.bind_current(main);
        let parked = rt.add_slot();
        let never = rt.add_slot();
        let witnessed = Arc::new(AtomicBool::new(false));
        let ran = Arc::new(AtomicBool::new(false));
        let w2 = Arc::clone(&witnessed);
        let rt2 = Arc::clone(&rt);
        rt.spawn(
            parked,
            Box::new(move || {
                // Hand the token back to the driver and park; only the
                // poisoned teardown resumes us.
                rt2.wake(main);
                if rt2.park(parked).is_err() {
                    w2.store(true, Ordering::Release);
                    std::panic::panic_any(Aborted);
                }
            }),
        )
        .expect("spawn fiber");
        let r2 = Arc::clone(&ran);
        rt.spawn(never, Box::new(move || r2.store(true, Ordering::Release)))
            .expect("spawn fiber");
        rt.wake(parked);
        rt.park(main).expect("not yet poisoned");
        rt.poison();
        rt.join_all().expect("Aborted unwind is swallowed");
        assert!(witnessed.load(Ordering::Acquire));
        assert!(!ran.load(Ordering::Acquire), "unstarted body must not run");
        assert_eq!(rt.park(main), Err(Aborted));
    }

    /// A non-`Aborted` panic in a fiber body surfaces from `join_all`,
    /// exactly like the OS-thread runtime.
    #[test]
    fn fiber_join_all_surfaces_escaped_panics() {
        let rt = Runtime::new(HandoverKind::Fiber);
        let main = rt.add_slot();
        rt.bind_current(main);
        let ix = rt.add_slot();
        rt.spawn(ix, Box::new(|| panic!("fiber model thread exploded")))
            .expect("spawn fiber");
        rt.wake(ix);
        let err = rt.join_all().expect_err("escaped panic must surface");
        assert!(err.contains("fiber model thread exploded"), "got: {err}");
    }

    /// The pooled path has the same obligation: quiesce reports
    /// escaped panics and leaves the pool reusable.
    #[test]
    fn pooled_join_all_surfaces_escaped_panics() {
        let pool = ThreadPool::new();
        let rt = Runtime::with_pool(HandoverKind::Park, Arc::clone(&pool));
        let ix = rt.add_slot();
        rt.spawn(ix, Box::new(|| panic!("pooled thread exploded")))
            .expect("dispatch model thread");
        rt.wake(ix);
        let err = rt.join_all().expect_err("escaped panic must surface");
        assert!(err.contains("pooled thread exploded"), "got: {err}");
        // The pool recovered: the next execution is clean.
        let rt2 = Runtime::with_pool(HandoverKind::Park, pool);
        run_token_ring(&rt2);
    }
}
